
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_incremental.cc" "bench/CMakeFiles/ablation_incremental.dir/ablation_incremental.cc.o" "gcc" "bench/CMakeFiles/ablation_incremental.dir/ablation_incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sxnm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sxnm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sxnm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/sxnm/CMakeFiles/sxnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sxnm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sxnm_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
