# Empty dependencies file for fig4a_recall_ds1.
# This may be replaced when dependencies are built.
