file(REMOVE_RECURSE
  "CMakeFiles/fig6a_od_threshold.dir/fig6a_od_threshold.cc.o"
  "CMakeFiles/fig6a_od_threshold.dir/fig6a_od_threshold.cc.o.d"
  "fig6a_od_threshold"
  "fig6a_od_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_od_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
