# Empty dependencies file for fig6a_od_threshold.
# This may be replaced when dependencies are built.
