# Empty compiler generated dependencies file for fig4b_precision_ds1.
# This may be replaced when dependencies are built.
