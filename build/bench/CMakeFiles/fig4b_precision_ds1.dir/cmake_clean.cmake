file(REMOVE_RECURSE
  "CMakeFiles/fig4b_precision_ds1.dir/fig4b_precision_ds1.cc.o"
  "CMakeFiles/fig4b_precision_ds1.dir/fig4b_precision_ds1.cc.o.d"
  "fig4b_precision_ds1"
  "fig4b_precision_ds1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_precision_ds1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
