# Empty dependencies file for ablation_comparators.
# This may be replaced when dependencies are built.
