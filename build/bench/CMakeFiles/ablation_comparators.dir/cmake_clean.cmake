file(REMOVE_RECURSE
  "CMakeFiles/ablation_comparators.dir/ablation_comparators.cc.o"
  "CMakeFiles/ablation_comparators.dir/ablation_comparators.cc.o.d"
  "ablation_comparators"
  "ablation_comparators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comparators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
