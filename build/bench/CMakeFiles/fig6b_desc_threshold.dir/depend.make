# Empty dependencies file for fig6b_desc_threshold.
# This may be replaced when dependencies are built.
