file(REMOVE_RECURSE
  "CMakeFiles/fig6b_desc_threshold.dir/fig6b_desc_threshold.cc.o"
  "CMakeFiles/fig6b_desc_threshold.dir/fig6b_desc_threshold.cc.o.d"
  "fig6b_desc_threshold"
  "fig6b_desc_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_desc_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
