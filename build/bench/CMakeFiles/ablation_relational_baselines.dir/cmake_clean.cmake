file(REMOVE_RECURSE
  "CMakeFiles/ablation_relational_baselines.dir/ablation_relational_baselines.cc.o"
  "CMakeFiles/ablation_relational_baselines.dir/ablation_relational_baselines.cc.o.d"
  "ablation_relational_baselines"
  "ablation_relational_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relational_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
