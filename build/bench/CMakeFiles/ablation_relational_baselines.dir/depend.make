# Empty dependencies file for ablation_relational_baselines.
# This may be replaced when dependencies are built.
