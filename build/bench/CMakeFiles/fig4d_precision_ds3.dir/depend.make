# Empty dependencies file for fig4d_precision_ds3.
# This may be replaced when dependencies are built.
