file(REMOVE_RECURSE
  "CMakeFiles/fig4d_precision_ds3.dir/fig4d_precision_ds3.cc.o"
  "CMakeFiles/fig4d_precision_ds3.dir/fig4d_precision_ds3.cc.o.d"
  "fig4d_precision_ds3"
  "fig4d_precision_ds3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_precision_ds3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
