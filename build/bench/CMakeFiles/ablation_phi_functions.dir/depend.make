# Empty dependencies file for ablation_phi_functions.
# This may be replaced when dependencies are built.
