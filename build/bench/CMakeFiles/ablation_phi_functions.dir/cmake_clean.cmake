file(REMOVE_RECURSE
  "CMakeFiles/ablation_phi_functions.dir/ablation_phi_functions.cc.o"
  "CMakeFiles/ablation_phi_functions.dir/ablation_phi_functions.cc.o.d"
  "ablation_phi_functions"
  "ablation_phi_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phi_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
