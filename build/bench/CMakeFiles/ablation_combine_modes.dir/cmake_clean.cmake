file(REMOVE_RECURSE
  "CMakeFiles/ablation_combine_modes.dir/ablation_combine_modes.cc.o"
  "CMakeFiles/ablation_combine_modes.dir/ablation_combine_modes.cc.o.d"
  "ablation_combine_modes"
  "ablation_combine_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combine_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
