# Empty compiler generated dependencies file for ablation_combine_modes.
# This may be replaced when dependencies are built.
