# Empty dependencies file for ablation_adaptive_window.
# This may be replaced when dependencies are built.
