file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_window.dir/ablation_adaptive_window.cc.o"
  "CMakeFiles/ablation_adaptive_window.dir/ablation_adaptive_window.cc.o.d"
  "ablation_adaptive_window"
  "ablation_adaptive_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
