file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_vs_allpairs.dir/ablation_window_vs_allpairs.cc.o"
  "CMakeFiles/ablation_window_vs_allpairs.dir/ablation_window_vs_allpairs.cc.o.d"
  "ablation_window_vs_allpairs"
  "ablation_window_vs_allpairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_vs_allpairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
