# Empty compiler generated dependencies file for ablation_window_vs_allpairs.
# This may be replaced when dependencies are built.
