file(REMOVE_RECURSE
  "CMakeFiles/fig4c_fmeasure_ds2.dir/fig4c_fmeasure_ds2.cc.o"
  "CMakeFiles/fig4c_fmeasure_ds2.dir/fig4c_fmeasure_ds2.cc.o.d"
  "fig4c_fmeasure_ds2"
  "fig4c_fmeasure_ds2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_fmeasure_ds2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
