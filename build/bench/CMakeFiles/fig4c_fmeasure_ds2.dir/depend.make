# Empty dependencies file for fig4c_fmeasure_ds2.
# This may be replaced when dependencies are built.
