
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sxnm/adaptive_window_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/adaptive_window_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/adaptive_window_test.cc.o.d"
  "/root/repo/tests/sxnm/candidate_tree_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/candidate_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/candidate_tree_test.cc.o.d"
  "/root/repo/tests/sxnm/cluster_set_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/cluster_set_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/cluster_set_test.cc.o.d"
  "/root/repo/tests/sxnm/comparators_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/comparators_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/comparators_test.cc.o.d"
  "/root/repo/tests/sxnm/config_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/config_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/config_test.cc.o.d"
  "/root/repo/tests/sxnm/config_xml_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/config_xml_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/config_xml_test.cc.o.d"
  "/root/repo/tests/sxnm/dedup_writer_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/dedup_writer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/dedup_writer_test.cc.o.d"
  "/root/repo/tests/sxnm/detector_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/detector_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/detector_test.cc.o.d"
  "/root/repo/tests/sxnm/equational_theory_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/equational_theory_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/equational_theory_test.cc.o.d"
  "/root/repo/tests/sxnm/fusion_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/fusion_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/fusion_test.cc.o.d"
  "/root/repo/tests/sxnm/key_generation_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/key_generation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/key_generation_test.cc.o.d"
  "/root/repo/tests/sxnm/key_pattern_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/key_pattern_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/key_pattern_test.cc.o.d"
  "/root/repo/tests/sxnm/result_io_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/result_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/result_io_test.cc.o.d"
  "/root/repo/tests/sxnm/similarity_measure_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/similarity_measure_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/similarity_measure_test.cc.o.d"
  "/root/repo/tests/sxnm/sliding_window_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/sliding_window_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/sliding_window_test.cc.o.d"
  "/root/repo/tests/sxnm/transitive_closure_test.cc" "tests/CMakeFiles/core_test.dir/sxnm/transitive_closure_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/sxnm/transitive_closure_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sxnm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sxnm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sxnm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/sxnm/CMakeFiles/sxnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sxnm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sxnm_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
