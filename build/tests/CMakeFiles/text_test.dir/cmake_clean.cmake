file(REMOVE_RECURSE
  "CMakeFiles/text_test.dir/text/edit_distance_test.cc.o"
  "CMakeFiles/text_test.dir/text/edit_distance_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/filtered_similarity_test.cc.o"
  "CMakeFiles/text_test.dir/text/filtered_similarity_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/jaro_winkler_test.cc.o"
  "CMakeFiles/text_test.dir/text/jaro_winkler_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/qgram_test.cc.o"
  "CMakeFiles/text_test.dir/text/qgram_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/similarity_test.cc.o"
  "CMakeFiles/text_test.dir/text/similarity_test.cc.o.d"
  "CMakeFiles/text_test.dir/text/soundex_test.cc.o"
  "CMakeFiles/text_test.dir/text/soundex_test.cc.o.d"
  "text_test"
  "text_test.pdb"
  "text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
