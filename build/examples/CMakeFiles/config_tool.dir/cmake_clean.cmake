file(REMOVE_RECURSE
  "CMakeFiles/config_tool.dir/config_tool.cpp.o"
  "CMakeFiles/config_tool.dir/config_tool.cpp.o.d"
  "config_tool"
  "config_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
