# Empty dependencies file for config_tool.
# This may be replaced when dependencies are built.
