file(REMOVE_RECURSE
  "CMakeFiles/cd_store.dir/cd_store.cpp.o"
  "CMakeFiles/cd_store.dir/cd_store.cpp.o.d"
  "cd_store"
  "cd_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
