# Empty dependencies file for cd_store.
# This may be replaced when dependencies are built.
