# Empty dependencies file for movie_dedup.
# This may be replaced when dependencies are built.
