file(REMOVE_RECURSE
  "CMakeFiles/movie_dedup.dir/movie_dedup.cpp.o"
  "CMakeFiles/movie_dedup.dir/movie_dedup.cpp.o.d"
  "movie_dedup"
  "movie_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
