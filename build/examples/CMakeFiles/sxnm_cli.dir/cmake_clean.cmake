file(REMOVE_RECURSE
  "CMakeFiles/sxnm_cli.dir/sxnm_cli.cpp.o"
  "CMakeFiles/sxnm_cli.dir/sxnm_cli.cpp.o.d"
  "sxnm_cli"
  "sxnm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
