# Empty compiler generated dependencies file for sxnm_cli.
# This may be replaced when dependencies are built.
