file(REMOVE_RECURSE
  "CMakeFiles/relational_snm.dir/relational_snm.cpp.o"
  "CMakeFiles/relational_snm.dir/relational_snm.cpp.o.d"
  "relational_snm"
  "relational_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
