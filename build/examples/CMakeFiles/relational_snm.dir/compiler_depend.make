# Empty compiler generated dependencies file for relational_snm.
# This may be replaced when dependencies are built.
