# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_dedup "/root/repo/build/examples/movie_dedup" "300" "6")
set_tests_properties(example_movie_dedup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cd_store "/root/repo/build/examples/cd_store" "150" "4")
set_tests_properties(example_cd_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_relational_snm "/root/repo/build/examples/relational_snm" "800" "8")
set_tests_properties(example_relational_snm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_config_tool "/root/repo/build/examples/config_tool")
set_tests_properties(example_config_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_integration "/root/repo/build/examples/data_integration" "150")
set_tests_properties(example_data_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
