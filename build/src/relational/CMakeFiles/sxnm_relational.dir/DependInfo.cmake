
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/incremental_snm.cc" "src/relational/CMakeFiles/sxnm_relational.dir/incremental_snm.cc.o" "gcc" "src/relational/CMakeFiles/sxnm_relational.dir/incremental_snm.cc.o.d"
  "/root/repo/src/relational/record.cc" "src/relational/CMakeFiles/sxnm_relational.dir/record.cc.o" "gcc" "src/relational/CMakeFiles/sxnm_relational.dir/record.cc.o.d"
  "/root/repo/src/relational/snm.cc" "src/relational/CMakeFiles/sxnm_relational.dir/snm.cc.o" "gcc" "src/relational/CMakeFiles/sxnm_relational.dir/snm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sxnm_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
