file(REMOVE_RECURSE
  "libsxnm_relational.a"
)
