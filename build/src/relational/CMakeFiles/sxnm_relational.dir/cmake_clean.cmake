file(REMOVE_RECURSE
  "CMakeFiles/sxnm_relational.dir/incremental_snm.cc.o"
  "CMakeFiles/sxnm_relational.dir/incremental_snm.cc.o.d"
  "CMakeFiles/sxnm_relational.dir/record.cc.o"
  "CMakeFiles/sxnm_relational.dir/record.cc.o.d"
  "CMakeFiles/sxnm_relational.dir/snm.cc.o"
  "CMakeFiles/sxnm_relational.dir/snm.cc.o.d"
  "libsxnm_relational.a"
  "libsxnm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
