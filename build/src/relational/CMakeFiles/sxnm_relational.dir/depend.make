# Empty dependencies file for sxnm_relational.
# This may be replaced when dependencies are built.
