file(REMOVE_RECURSE
  "libsxnm_core.a"
)
