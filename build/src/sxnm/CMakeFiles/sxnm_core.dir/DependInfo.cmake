
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sxnm/candidate_tree.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/candidate_tree.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/candidate_tree.cc.o.d"
  "/root/repo/src/sxnm/cluster_set.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/cluster_set.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/cluster_set.cc.o.d"
  "/root/repo/src/sxnm/comparators.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/comparators.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/comparators.cc.o.d"
  "/root/repo/src/sxnm/config.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/config.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/config.cc.o.d"
  "/root/repo/src/sxnm/config_xml.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/config_xml.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/config_xml.cc.o.d"
  "/root/repo/src/sxnm/dedup_writer.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/dedup_writer.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/dedup_writer.cc.o.d"
  "/root/repo/src/sxnm/detector.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/detector.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/detector.cc.o.d"
  "/root/repo/src/sxnm/equational_theory.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/equational_theory.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/equational_theory.cc.o.d"
  "/root/repo/src/sxnm/key_generation.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/key_generation.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/key_generation.cc.o.d"
  "/root/repo/src/sxnm/key_pattern.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/key_pattern.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/key_pattern.cc.o.d"
  "/root/repo/src/sxnm/result_io.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/result_io.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/result_io.cc.o.d"
  "/root/repo/src/sxnm/similarity_measure.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/similarity_measure.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/similarity_measure.cc.o.d"
  "/root/repo/src/sxnm/sliding_window.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/sliding_window.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/sliding_window.cc.o.d"
  "/root/repo/src/sxnm/transitive_closure.cc" "src/sxnm/CMakeFiles/sxnm_core.dir/transitive_closure.cc.o" "gcc" "src/sxnm/CMakeFiles/sxnm_core.dir/transitive_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sxnm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sxnm_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
