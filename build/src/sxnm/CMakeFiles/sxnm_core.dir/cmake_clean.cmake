file(REMOVE_RECURSE
  "CMakeFiles/sxnm_core.dir/candidate_tree.cc.o"
  "CMakeFiles/sxnm_core.dir/candidate_tree.cc.o.d"
  "CMakeFiles/sxnm_core.dir/cluster_set.cc.o"
  "CMakeFiles/sxnm_core.dir/cluster_set.cc.o.d"
  "CMakeFiles/sxnm_core.dir/comparators.cc.o"
  "CMakeFiles/sxnm_core.dir/comparators.cc.o.d"
  "CMakeFiles/sxnm_core.dir/config.cc.o"
  "CMakeFiles/sxnm_core.dir/config.cc.o.d"
  "CMakeFiles/sxnm_core.dir/config_xml.cc.o"
  "CMakeFiles/sxnm_core.dir/config_xml.cc.o.d"
  "CMakeFiles/sxnm_core.dir/dedup_writer.cc.o"
  "CMakeFiles/sxnm_core.dir/dedup_writer.cc.o.d"
  "CMakeFiles/sxnm_core.dir/detector.cc.o"
  "CMakeFiles/sxnm_core.dir/detector.cc.o.d"
  "CMakeFiles/sxnm_core.dir/equational_theory.cc.o"
  "CMakeFiles/sxnm_core.dir/equational_theory.cc.o.d"
  "CMakeFiles/sxnm_core.dir/key_generation.cc.o"
  "CMakeFiles/sxnm_core.dir/key_generation.cc.o.d"
  "CMakeFiles/sxnm_core.dir/key_pattern.cc.o"
  "CMakeFiles/sxnm_core.dir/key_pattern.cc.o.d"
  "CMakeFiles/sxnm_core.dir/result_io.cc.o"
  "CMakeFiles/sxnm_core.dir/result_io.cc.o.d"
  "CMakeFiles/sxnm_core.dir/similarity_measure.cc.o"
  "CMakeFiles/sxnm_core.dir/similarity_measure.cc.o.d"
  "CMakeFiles/sxnm_core.dir/sliding_window.cc.o"
  "CMakeFiles/sxnm_core.dir/sliding_window.cc.o.d"
  "CMakeFiles/sxnm_core.dir/transitive_closure.cc.o"
  "CMakeFiles/sxnm_core.dir/transitive_closure.cc.o.d"
  "libsxnm_core.a"
  "libsxnm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
