# Empty dependencies file for sxnm_core.
# This may be replaced when dependencies are built.
