
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/sxnm_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/sxnm_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/gold.cc" "src/eval/CMakeFiles/sxnm_eval.dir/gold.cc.o" "gcc" "src/eval/CMakeFiles/sxnm_eval.dir/gold.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/sxnm_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/sxnm_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/sxnm_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/sxnm_eval.dir/report.cc.o.d"
  "/root/repo/src/eval/threshold_advisor.cc" "src/eval/CMakeFiles/sxnm_eval.dir/threshold_advisor.cc.o" "gcc" "src/eval/CMakeFiles/sxnm_eval.dir/threshold_advisor.cc.o.d"
  "/root/repo/src/eval/window_advisor.cc" "src/eval/CMakeFiles/sxnm_eval.dir/window_advisor.cc.o" "gcc" "src/eval/CMakeFiles/sxnm_eval.dir/window_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sxnm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sxnm/CMakeFiles/sxnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sxnm_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
