file(REMOVE_RECURSE
  "libsxnm_eval.a"
)
