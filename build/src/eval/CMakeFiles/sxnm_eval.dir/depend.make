# Empty dependencies file for sxnm_eval.
# This may be replaced when dependencies are built.
