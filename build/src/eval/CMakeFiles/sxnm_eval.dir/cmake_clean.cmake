file(REMOVE_RECURSE
  "CMakeFiles/sxnm_eval.dir/experiment.cc.o"
  "CMakeFiles/sxnm_eval.dir/experiment.cc.o.d"
  "CMakeFiles/sxnm_eval.dir/gold.cc.o"
  "CMakeFiles/sxnm_eval.dir/gold.cc.o.d"
  "CMakeFiles/sxnm_eval.dir/metrics.cc.o"
  "CMakeFiles/sxnm_eval.dir/metrics.cc.o.d"
  "CMakeFiles/sxnm_eval.dir/report.cc.o"
  "CMakeFiles/sxnm_eval.dir/report.cc.o.d"
  "CMakeFiles/sxnm_eval.dir/threshold_advisor.cc.o"
  "CMakeFiles/sxnm_eval.dir/threshold_advisor.cc.o.d"
  "CMakeFiles/sxnm_eval.dir/window_advisor.cc.o"
  "CMakeFiles/sxnm_eval.dir/window_advisor.cc.o.d"
  "libsxnm_eval.a"
  "libsxnm_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
