file(REMOVE_RECURSE
  "libsxnm_util.a"
)
