file(REMOVE_RECURSE
  "CMakeFiles/sxnm_util.dir/rng.cc.o"
  "CMakeFiles/sxnm_util.dir/rng.cc.o.d"
  "CMakeFiles/sxnm_util.dir/status.cc.o"
  "CMakeFiles/sxnm_util.dir/status.cc.o.d"
  "CMakeFiles/sxnm_util.dir/stopwatch.cc.o"
  "CMakeFiles/sxnm_util.dir/stopwatch.cc.o.d"
  "CMakeFiles/sxnm_util.dir/string_util.cc.o"
  "CMakeFiles/sxnm_util.dir/string_util.cc.o.d"
  "CMakeFiles/sxnm_util.dir/table_printer.cc.o"
  "CMakeFiles/sxnm_util.dir/table_printer.cc.o.d"
  "CMakeFiles/sxnm_util.dir/union_find.cc.o"
  "CMakeFiles/sxnm_util.dir/union_find.cc.o.d"
  "libsxnm_util.a"
  "libsxnm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
