# Empty dependencies file for sxnm_util.
# This may be replaced when dependencies are built.
