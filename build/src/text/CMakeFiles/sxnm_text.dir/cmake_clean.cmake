file(REMOVE_RECURSE
  "CMakeFiles/sxnm_text.dir/edit_distance.cc.o"
  "CMakeFiles/sxnm_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/sxnm_text.dir/jaro_winkler.cc.o"
  "CMakeFiles/sxnm_text.dir/jaro_winkler.cc.o.d"
  "CMakeFiles/sxnm_text.dir/qgram.cc.o"
  "CMakeFiles/sxnm_text.dir/qgram.cc.o.d"
  "CMakeFiles/sxnm_text.dir/similarity.cc.o"
  "CMakeFiles/sxnm_text.dir/similarity.cc.o.d"
  "CMakeFiles/sxnm_text.dir/soundex.cc.o"
  "CMakeFiles/sxnm_text.dir/soundex.cc.o.d"
  "libsxnm_text.a"
  "libsxnm_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
