# Empty dependencies file for sxnm_text.
# This may be replaced when dependencies are built.
