file(REMOVE_RECURSE
  "libsxnm_text.a"
)
