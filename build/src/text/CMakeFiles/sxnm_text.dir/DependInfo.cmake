
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/sxnm_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/sxnm_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/jaro_winkler.cc" "src/text/CMakeFiles/sxnm_text.dir/jaro_winkler.cc.o" "gcc" "src/text/CMakeFiles/sxnm_text.dir/jaro_winkler.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/text/CMakeFiles/sxnm_text.dir/qgram.cc.o" "gcc" "src/text/CMakeFiles/sxnm_text.dir/qgram.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/text/CMakeFiles/sxnm_text.dir/similarity.cc.o" "gcc" "src/text/CMakeFiles/sxnm_text.dir/similarity.cc.o.d"
  "/root/repo/src/text/soundex.cc" "src/text/CMakeFiles/sxnm_text.dir/soundex.cc.o" "gcc" "src/text/CMakeFiles/sxnm_text.dir/soundex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
