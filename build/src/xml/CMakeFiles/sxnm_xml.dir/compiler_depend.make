# Empty compiler generated dependencies file for sxnm_xml.
# This may be replaced when dependencies are built.
