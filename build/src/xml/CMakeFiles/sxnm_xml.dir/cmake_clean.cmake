file(REMOVE_RECURSE
  "CMakeFiles/sxnm_xml.dir/node.cc.o"
  "CMakeFiles/sxnm_xml.dir/node.cc.o.d"
  "CMakeFiles/sxnm_xml.dir/parser.cc.o"
  "CMakeFiles/sxnm_xml.dir/parser.cc.o.d"
  "CMakeFiles/sxnm_xml.dir/writer.cc.o"
  "CMakeFiles/sxnm_xml.dir/writer.cc.o.d"
  "CMakeFiles/sxnm_xml.dir/xpath.cc.o"
  "CMakeFiles/sxnm_xml.dir/xpath.cc.o.d"
  "libsxnm_xml.a"
  "libsxnm_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
