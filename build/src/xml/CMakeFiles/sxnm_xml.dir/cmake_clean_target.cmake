file(REMOVE_RECURSE
  "libsxnm_xml.a"
)
