
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dirty_gen.cc" "src/datagen/CMakeFiles/sxnm_datagen.dir/dirty_gen.cc.o" "gcc" "src/datagen/CMakeFiles/sxnm_datagen.dir/dirty_gen.cc.o.d"
  "/root/repo/src/datagen/freedb.cc" "src/datagen/CMakeFiles/sxnm_datagen.dir/freedb.cc.o" "gcc" "src/datagen/CMakeFiles/sxnm_datagen.dir/freedb.cc.o.d"
  "/root/repo/src/datagen/movies.cc" "src/datagen/CMakeFiles/sxnm_datagen.dir/movies.cc.o" "gcc" "src/datagen/CMakeFiles/sxnm_datagen.dir/movies.cc.o.d"
  "/root/repo/src/datagen/template_gen.cc" "src/datagen/CMakeFiles/sxnm_datagen.dir/template_gen.cc.o" "gcc" "src/datagen/CMakeFiles/sxnm_datagen.dir/template_gen.cc.o.d"
  "/root/repo/src/datagen/vocab.cc" "src/datagen/CMakeFiles/sxnm_datagen.dir/vocab.cc.o" "gcc" "src/datagen/CMakeFiles/sxnm_datagen.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sxnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/sxnm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sxnm/CMakeFiles/sxnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sxnm_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
