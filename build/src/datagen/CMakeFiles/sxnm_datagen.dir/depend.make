# Empty dependencies file for sxnm_datagen.
# This may be replaced when dependencies are built.
