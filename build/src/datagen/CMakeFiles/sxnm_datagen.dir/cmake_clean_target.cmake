file(REMOVE_RECURSE
  "libsxnm_datagen.a"
)
