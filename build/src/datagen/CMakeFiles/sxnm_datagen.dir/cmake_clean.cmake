file(REMOVE_RECURSE
  "CMakeFiles/sxnm_datagen.dir/dirty_gen.cc.o"
  "CMakeFiles/sxnm_datagen.dir/dirty_gen.cc.o.d"
  "CMakeFiles/sxnm_datagen.dir/freedb.cc.o"
  "CMakeFiles/sxnm_datagen.dir/freedb.cc.o.d"
  "CMakeFiles/sxnm_datagen.dir/movies.cc.o"
  "CMakeFiles/sxnm_datagen.dir/movies.cc.o.d"
  "CMakeFiles/sxnm_datagen.dir/template_gen.cc.o"
  "CMakeFiles/sxnm_datagen.dir/template_gen.cc.o.d"
  "CMakeFiles/sxnm_datagen.dir/vocab.cc.o"
  "CMakeFiles/sxnm_datagen.dir/vocab.cc.o.d"
  "libsxnm_datagen.a"
  "libsxnm_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sxnm_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
