#!/usr/bin/env python3
"""Validate bench JSON output against the documented schema.

Checks the schema_version-7 files produced by the benches:

  * ``micro_pipeline --json BENCH_pipeline.json`` (the checked-in
    ``BENCH_pipeline.json`` at the repo root),
  * ``micro_similarity --json BENCH_similarity.json`` (the checked-in
    edit-distance kernel comparison at the repo root), and
  * ``fig5_scalability --json fig5.json``.

The file kind is auto-detected from the top-level ``bench`` field.
Beyond shape/type checks this cross-validates the invariants the
observability layer guarantees, e.g. that the legacy ``comparisons``
field equals the registry's ``sw.unique_comparisons`` counter and that
histogram quantiles are monotone.

With ``--explain-schema`` the arguments are instead decision-provenance
NDJSON logs (``<observability explain="...">``, see
docs/OBSERVABILITY.md): every record is checked for its type's required
fields, provenance tags against the enum, scores against [0, 1], and
the per-candidate merge lineage against the set of accepted pairs.

With ``--telemetry-schema`` the arguments are live-telemetry NDJSON
streams (``<observability telemetry="...">``): one header record, then
samples with non-decreasing timestamps, strictly sequential ``seq``,
monotone counters, well-formed memory accounting, CPU utilization
(``cpu_user_pct`` / ``cpu_sys_pct`` / ``threads``), and exactly one
``final`` sample in last position.

With ``--profile-folded-schema`` the arguments are folded-stack CPU
profiles (``<observability profile="...">``): every line must be
``root;child;leaf COUNT`` with non-empty frames and a non-negative
integer count, and the file must contain at least one stack.

Usage:
  tools/check_bench_json.py [--min-gk-rows N] FILE [FILE ...]
  tools/check_bench_json.py --explain-schema LOG [LOG ...]
  tools/check_bench_json.py --telemetry-schema STREAM [STREAM ...]
  tools/check_bench_json.py --profile-folded-schema FOLDED [FOLDED ...]

``--min-gk-rows N`` additionally requires each fig5 file to carry an
``out_of_core`` block covering at least N generated-key rows — the
opt-in `bench_scale` ctest uses it to pin the >= 1M-row point.

Exits 0 when every file validates, 1 otherwise (one message per
violation on stderr). See docs/BENCHMARKS.md for the schema.
"""

import json
import sys

SCHEMA_VERSION = 9

# Counters the engine always registers (values may legitimately be 0).
# Version 3 added the kernel fast-path counters: kg.od_pool_* (OD value
# interning), sw.verdict_cache_hits / sw.interned_equal (cross-pass
# verdict cache and interned-equality shortcut), and text.myers_words
# (bit-parallel edit-distance kernel work). Version 4 added the
# sw.similarity histogram (combined-score distribution of owned kernel
# invocations). Version 5 added the DAG-compression / batched-scoring
# layer: kg.subtree_pool_* (hash-consed subtree DAG), sw.dag_equal
# (whole-candidate subtree-id shortcut) and sw.batch_rejects (SoA
# pre-filter rejections). Version 6 added the live-telemetry progress
# family: kg.rows_done / sw.pairs_done / tc.edges_done counters, the
# progress.phase / kg.rows_total / sw.pairs_planned_total /
# cache.verdict_occupancy gauges, and the telemetry-overhead block.
# Version 7 added the checkpoint/resume block: snapshot size and
# write/load cost at two corpus scales, the every-pass checkpointing
# overhead ceiling (5%), and the persist.* counters of a fault-injected
# interrupt + resume. Version 8 added the out-of-core layer: the fig5
# `out_of_core` block (external-sort spill + key-range sharded passes)
# with its RSS-ceiling, spill/merge floors, and shards=1-vs-N identity
# sub-check; pipeline/similarity files carry the bump only. Version 9
# added the in-process sampling profiler: the pipeline `profile` A/B
# block (profiling-on wall-clock overhead <= 3% over profiling-off,
# bit-identical detection, and the span-attributed sample table whose
# top self-CPU span must be non-empty); telemetry samples additionally
# carry cpu_user_pct / cpu_sys_pct / threads; similarity/fig5 files
# carry the bump only.
REQUIRED_COUNTERS = [
    "kg.rows",
    "kg.rows_done",
    "kg.keys_emitted",
    "kg.od_values",
    "kg.od_normalize_us",
    "kg.od_pool_strings",
    "kg.od_pool_bytes",
    "kg.subtree_pool_nodes",
    "kg.subtree_pool_bytes",
    "sw.pairs_windowed",
    "sw.pairs_done",
    "sw.prepass_skips",
    "sw.comparisons",
    "sw.hits",
    "sw.ed_bailouts",
    "sw.desc_jaccard",
    "sw.desc_short_circuits",
    "sw.verdict_cache_hits",
    "sw.interned_equal",
    "sw.dag_equal",
    "sw.batch_rejects",
    "sw.unique_comparisons",
    "sw.unique_duplicates",
    "text.myers_words",
    "tc.pairs",
    "tc.edges_done",
    "tc.union_ops",
    "tc.clusters",
]
REQUIRED_GAUGES = [
    "engine.num_threads",
    "engine.num_candidates",
    "progress.phase",
    "kg.rows_total",
    "sw.pairs_planned_total",
    "cache.verdict_occupancy",
]
REQUIRED_HISTOGRAMS = ["sw.pass_seconds", "sw.similarity", "tc.cluster_size"]
HISTOGRAM_FIELDS = ["count", "sum", "p50", "p90", "p99"]
PHASE_FIELDS = [
    "key_generation_s",
    "sliding_window_s",
    "transitive_closure_s",
    "duplicate_detection_s",
]


class Checker:
    def __init__(self, path, min_gk_rows=0):
        self.path = path
        self.min_gk_rows = min_gk_rows
        self.errors = []

    def error(self, where, message):
        self.errors.append(f"{self.path}: {where}: {message}")

    def require(self, obj, key, types, where):
        """Check obj[key] exists and has one of `types`; return it or None."""
        if not isinstance(obj, dict) or key not in obj:
            self.error(where, f"missing required field '{key}'")
            return None
        value = obj[key]
        # bool is an int subclass in Python; reject it unless asked for.
        if isinstance(value, bool) and bool not in types:
            self.error(where, f"'{key}' must be {types}, got bool")
            return None
        if not isinstance(value, tuple(types)):
            self.error(
                where, f"'{key}' must be {types}, got {type(value).__name__}")
            return None
        return value

    def check_nonneg(self, obj, key, where, types=(int,)):
        value = self.require(obj, key, types, where)
        if value is not None and value < 0:
            self.error(where, f"'{key}' must be non-negative, got {value}")
        return value

    def check_phases(self, phases, where):
        for field in PHASE_FIELDS:
            self.check_nonneg(phases, field, where, types=(int, float))

    def check_metrics(self, metrics, where):
        counters = self.require(metrics, "counters", (dict,), where)
        if counters is not None:
            for name in REQUIRED_COUNTERS:
                self.check_nonneg(counters, name, f"{where}.counters")
        gauges = self.require(metrics, "gauges", (dict,), where)
        if gauges is not None:
            for name in REQUIRED_GAUGES:
                self.require(gauges, name, (int, float), f"{where}.gauges")
        histograms = self.require(metrics, "histograms", (dict,), where)
        if histograms is not None:
            for name in REQUIRED_HISTOGRAMS:
                hist = self.require(histograms, name, (dict,),
                                    f"{where}.histograms")
                if hist is not None:
                    self.check_histogram(hist, f"{where}.histograms.{name}")
        return counters

    def check_degradation(self, deg, where, counters=None):
        """Validate the optional per-engine governance block.

        Present since the resource-governance layer: totals of shed work
        plus the reason. An undegraded run must report zero everywhere,
        and when the robust.* counters are in the metrics registry they
        must agree with these totals.
        """
        degraded = self.require(deg, "degraded", (bool,), where)
        reason = self.require(deg, "reason", (str,), where)
        self.check_nonneg(deg, "comparison_budget", where)
        totals = {}
        for key in ("passes_skipped", "passes_shrunk", "rows_skipped",
                    "pairs_elided"):
            totals[key] = self.check_nonneg(deg, key, where)
        if degraded is False:
            if reason is not None and reason != "OK":
                self.error(where,
                           f"undegraded run must have reason OK, got {reason}")
            for key, value in totals.items():
                if isinstance(value, int) and value != 0:
                    self.error(where,
                               f"undegraded run must shed nothing, "
                               f"'{key}' is {value}")
        elif degraded is True and reason == "OK":
            self.error(where, "degraded run must name a non-OK reason")
        if isinstance(counters, dict) and "robust.degraded" in counters:
            if degraded is not None:
                flagged = counters.get("robust.degraded")
                if isinstance(flagged, int) and bool(flagged) != degraded:
                    self.error(where,
                               "'degraded' disagrees with counter "
                               f"robust.degraded: {degraded} != {flagged}")
            for key, value in totals.items():
                counter = counters.get(f"robust.{key}")
                if isinstance(value, int) and isinstance(counter, int) \
                        and value != counter:
                    self.error(where,
                               f"'{key}' disagrees with counter "
                               f"robust.{key}: {value} != {counter}")

    def check_histogram(self, hist, where):
        for field in HISTOGRAM_FIELDS:
            self.check_nonneg(hist, field, where, types=(int, float))
        quantiles = [hist.get(q) for q in ("p50", "p90", "p99")]
        if all(isinstance(q, (int, float)) for q in quantiles):
            if not (quantiles[0] <= quantiles[1] <= quantiles[2]):
                self.error(where, f"quantiles not monotone: {quantiles}")

    # --- micro_pipeline ---------------------------------------------------

    def check_pipeline(self, doc):
        dataset = self.require(doc, "dataset", (dict,), "top-level")
        if dataset is not None:
            self.require(dataset, "generator", (str,), "dataset")
            for key in ("clean_movies", "window", "repeats"):
                self.check_nonneg(dataset, key, "dataset")
        self.check_nonneg(doc, "hardware_threads", "top-level")

        engines = self.require(doc, "engines", (list,), "top-level")
        if not engines:
            if engines == []:
                self.error("engines", "must not be empty")
            return
        detected = set()  # (comparisons, pairs) must agree across engines
        for i, engine in enumerate(engines):
            where = f"engines[{i}]"
            if not isinstance(engine, dict):
                self.error(where, "must be an object")
                continue
            name = self.require(engine, "name", (str,), where)
            if name:
                where = f"engines[{i}] ({name})"
            self.check_nonneg(engine, "num_threads", where)
            self.require(engine, "fast_paths", (bool,), where)
            self.require(engine, "dag", (bool,), where)
            self.require(engine, "batch_scoring", (bool,), where)
            phases = self.require(engine, "phases", (dict,), where)
            if phases is not None:
                self.check_phases(phases, f"{where}.phases")
            comparisons = self.check_nonneg(engine, "comparisons", where)
            pairs = self.check_nonneg(engine, "movie_duplicate_pairs", where)
            if comparisons is not None and pairs is not None:
                detected.add((comparisons, pairs))
            metrics = self.require(engine, "metrics", (dict,), where)
            if metrics is None:
                continue
            counters = self.check_metrics(metrics, f"{where}.metrics")
            if "degradation" in engine:  # optional governance block
                deg = self.require(engine, "degradation", (dict,), where)
                if deg is not None:
                    self.check_degradation(deg, f"{where}.degradation",
                                           counters)
            if counters is None or comparisons is None:
                continue
            unique = counters.get("sw.unique_comparisons")
            if isinstance(unique, int) and unique != comparisons:
                self.error(where,
                           "'comparisons' disagrees with counter "
                           f"sw.unique_comparisons: {comparisons} != {unique}")
            windowed = counters.get("sw.pairs_windowed")
            kernel = counters.get("sw.comparisons")
            skips = counters.get("sw.prepass_skips")
            if all(isinstance(v, int) for v in (windowed, kernel, skips)):
                if windowed != kernel + skips:
                    self.error(
                        where,
                        "sw.pairs_windowed != sw.comparisons + "
                        f"sw.prepass_skips: {windowed} != {kernel} + {skips}")
            cache_hits = counters.get("sw.verdict_cache_hits")
            if all(isinstance(v, int) for v in (cache_hits, kernel, unique)):
                if cache_hits > kernel:
                    self.error(where,
                               "sw.verdict_cache_hits exceed pair "
                               f"classifications: {cache_hits} > {kernel}")
                # Every cross-pass repeat is either a cache hit (fast
                # paths) or a recomputation; in both cases the merge drops
                # it, so hits can never exceed the repeat count.
                if cache_hits > kernel - unique:
                    self.error(where,
                               "sw.verdict_cache_hits exceed cross-pass "
                               f"repeats: {cache_hits} > {kernel} - {unique}")
            dag_equal = counters.get("sw.dag_equal")
            batch_rejects = counters.get("sw.batch_rejects")
            if all(isinstance(v, int) for v in
                   (dag_equal, batch_rejects, cache_hits, kernel)):
                shortcut = dag_equal + batch_rejects + cache_hits
                if shortcut > kernel:
                    self.error(
                        where,
                        "shortcut classifications exceed sw.comparisons: "
                        f"{dag_equal} + {batch_rejects} + {cache_hits} "
                        f"> {kernel}")
            # Progress-counter closures (version 6): the live-progress
            # counters batch their adds but flush at the same completion
            # points as their post-hoc twins, so on an ungoverned bench
            # run the totals must agree exactly.
            for live, twin in (("kg.rows_done", "kg.rows"),
                               ("sw.pairs_done", "sw.pairs_windowed"),
                               ("tc.edges_done", "tc.pairs")):
                done = counters.get(live)
                total = counters.get(twin)
                if isinstance(done, int) and isinstance(total, int) \
                        and done != total:
                    self.error(where,
                               f"progress counter {live} disagrees with "
                               f"{twin}: {done} != {total}")
        if len(detected) > 1:
            self.error("engines",
                       "engines disagree on (comparisons, "
                       f"movie_duplicate_pairs): {sorted(detected)} — "
                       "fast paths / threading must not change detection")
        self.check_repeated_subtree(doc)
        self.check_telemetry_overhead(doc)
        self.check_checkpoint(doc)
        self.check_profile(doc)

    def check_repeated_subtree(self, doc):
        """Validate the copy-paste-heavy A/B block (schema version 5).

        The checked-in file must demonstrate the DAG+batching layer's
        advantage on a corpus where most duplicates are byte-exact
        subtree copies; the 2x floor is set below the expected ~3-6x so
        reruns on slower CI machines still validate. Detection must be
        bit-identical with the layer on and off.
        """
        block = self.require(doc, "repeated_subtree", (dict,), "top-level")
        if block is None:
            return
        where = "repeated_subtree"
        self.require(block, "generator", (str,), where)
        self.check_nonneg(block, "clean_movies", where)
        self.check_nonneg(block, "window", where)
        off_s = self.check_nonneg(block, "sliding_window_off_s", where,
                                  types=(int, float))
        on_s = self.check_nonneg(block, "sliding_window_on_s", where,
                                 types=(int, float))
        speedup = self.check_nonneg(block, "sliding_window_speedup", where,
                                    types=(int, float))
        pairs_off = self.check_nonneg(block, "duplicate_pairs_off", where)
        pairs_on = self.check_nonneg(block, "duplicate_pairs_on", where)
        dag_equal = self.check_nonneg(block, "dag_equal", where)
        self.check_nonneg(block, "batch_rejects", where)
        pool_nodes = self.check_nonneg(block, "subtree_pool_nodes", where)
        self.check_nonneg(block, "subtree_pool_bytes", where)
        if None not in (pairs_off, pairs_on) and pairs_off != pairs_on:
            self.error(where,
                       "DAG+batching must not change detection: "
                       f"duplicate_pairs_off {pairs_off} != "
                       f"duplicate_pairs_on {pairs_on}")
        for key, value in (("dag_equal", dag_equal),
                           ("subtree_pool_nodes", pool_nodes)):
            if value == 0:
                self.error(where,
                           f"'{key}' is 0 — the corpus must actually "
                           "exercise the subtree pool")
        if None in (off_s, on_s, speedup) or on_s <= 0:
            return
        expected = off_s / on_s
        if abs(speedup - expected) > 1e-3 * max(expected, 1.0):
            self.error(where,
                       f"'sliding_window_speedup' inconsistent: {speedup} "
                       f"!= {off_s} / {on_s}")
        # The floor was 2.0 when first recorded (2.63x on the original
        # measurement host), but the ratio is host-sensitive: machines
        # with faster scalar kernels leave the shortcuts less to save,
        # and the same corpus measures ~1.7x there.  1.5x still catches
        # the failure mode this guards (shortcuts silently disabled or
        # regressed to ~1x) on every host we have seen.
        if speedup < 1.5:
            self.error(where,
                       "DAG+batching must be at least 1.5x on the "
                       "repeated-subtree corpus, got "
                       f"{speedup:.2f}x")

    def check_telemetry_overhead(self, doc):
        """Validate the live-telemetry A/B block (schema version 6).

        Telemetry must be performance-isolated: the same full run with
        the sampler streaming at the default interval may cost at most
        2% over telemetry-off, and detection must be bit-identical.
        """
        block = self.require(doc, "telemetry", (dict,), "top-level")
        if block is None:
            return
        where = "telemetry"
        interval = self.check_nonneg(block, "interval_ms", where,
                                     types=(int, float))
        if interval == 0:
            self.error(where, "interval_ms must be positive")
        repeats = self.check_nonneg(block, "repeats", where)
        if repeats == 0:
            self.error(where, "repeats must be positive")
        self.check_nonneg(block, "clean_movies", where)
        self.check_nonneg(block, "window", where)
        samples = self.check_nonneg(block, "samples", where)
        if samples == 0:
            self.error(where,
                       "samples is 0 — the sampler never ticked (at "
                       "minimum the final sample must land)")
        off_s = self.check_nonneg(block, "telemetry_off_s", where,
                                  types=(int, float))
        on_s = self.check_nonneg(block, "telemetry_on_s", where,
                                 types=(int, float))
        overhead = self.require(block, "overhead_pct", (int, float), where)
        pairs_off = self.check_nonneg(block, "duplicate_pairs_off", where)
        pairs_on = self.check_nonneg(block, "duplicate_pairs_on", where)
        if None not in (pairs_off, pairs_on) and pairs_off != pairs_on:
            self.error(where,
                       "telemetry must not change detection: "
                       f"duplicate_pairs_off {pairs_off} != "
                       f"duplicate_pairs_on {pairs_on}")
        if None in (off_s, on_s, overhead) or off_s <= 0:
            return
        expected = (on_s - off_s) / off_s * 100.0
        # The seconds in the file are rounded for printing, so allow a
        # small absolute slack on top of the relative tolerance (the
        # ceiling below is 2.0, so 0.05 points cannot mask a breach).
        if abs(overhead - expected) > max(0.05, 1e-3 * abs(expected)):
            self.error(where,
                       f"'overhead_pct' inconsistent: {overhead} != "
                       f"({on_s} - {off_s}) / {off_s} * 100")
        if overhead > 2.0:
            self.error(where,
                       "telemetry overhead must stay within 2% at the "
                       f"default interval, got {overhead:.2f}%")

    def check_checkpoint(self, doc):
        """Validate the checkpoint/resume block (schema version 7).

        Three sub-blocks: `snapshots` records snapshot size and
        write/load cost at two corpus scales; `overhead` proves
        every-pass checkpointing costs at most 5% wall-clock over the
        same run cold; `resume` proves a fault-interrupted run, resumed
        from its durable snapshot, reproduces the cold run's output and
        reports the persist.* counters.
        """
        block = self.require(doc, "checkpoint", (dict,), "top-level")
        if block is None:
            return
        snapshots = self.require(block, "snapshots", (list,), "checkpoint")
        if snapshots is not None:
            if len(snapshots) < 2:
                self.error("checkpoint.snapshots",
                           "must record at least two corpus scales, got "
                           f"{len(snapshots)}")
            for i, snap in enumerate(snapshots):
                where = f"checkpoint.snapshots[{i}]"
                if not isinstance(snap, dict):
                    self.error(where, "must be an object")
                    continue
                for key in ("clean_movies", "snapshot_bytes", "frames"):
                    value = self.check_nonneg(snap, key, where)
                    if value == 0:
                        self.error(where, f"{key} must be positive")
                for key in ("write_ms", "load_ms"):
                    self.check_nonneg(snap, key, where, types=(int, float))

        overhead_block = self.require(block, "overhead", (dict,),
                                      "checkpoint")
        if overhead_block is not None:
            where = "checkpoint.overhead"
            self.check_nonneg(overhead_block, "clean_movies", where)
            repeats = self.check_nonneg(overhead_block, "repeats", where)
            if repeats == 0:
                self.error(where, "repeats must be positive")
            off_s = self.check_nonneg(overhead_block, "checkpoint_off_s",
                                      where, types=(int, float))
            on_s = self.check_nonneg(overhead_block, "checkpoint_on_s",
                                     where, types=(int, float))
            overhead = self.require(overhead_block, "overhead_pct",
                                    (int, float), where)
            pairs_off = self.check_nonneg(overhead_block,
                                          "duplicate_pairs_off", where)
            pairs_on = self.check_nonneg(overhead_block,
                                         "duplicate_pairs_on", where)
            if None not in (pairs_off, pairs_on) and pairs_off != pairs_on:
                self.error(where,
                           "checkpointing must not change detection: "
                           f"duplicate_pairs_off {pairs_off} != "
                           f"duplicate_pairs_on {pairs_on}")
            if None not in (off_s, on_s, overhead) and off_s > 0:
                expected = (on_s - off_s) / off_s * 100.0
                if abs(overhead - expected) > max(0.05,
                                                  1e-3 * abs(expected)):
                    self.error(where,
                               f"'overhead_pct' inconsistent: {overhead} "
                               f"!= ({on_s} - {off_s}) / {off_s} * 100")
                if overhead > 5.0:
                    self.error(where,
                               "every-pass checkpointing overhead must "
                               "stay within 5% of the cold run, got "
                               f"{overhead:.2f}%")

        resume = self.require(block, "resume", (dict,), "checkpoint")
        if resume is not None:
            where = "checkpoint.resume"
            self.check_nonneg(resume, "clean_movies", where)
            cold = self.check_nonneg(resume, "duplicate_pairs_cold", where)
            resumed = self.check_nonneg(resume, "duplicate_pairs_resumed",
                                        where)
            if None not in (cold, resumed) and cold != resumed:
                self.error(where,
                           "resumed run must reproduce the cold run: "
                           f"duplicate_pairs_cold {cold} != "
                           f"duplicate_pairs_resumed {resumed}")
            counters = self.require(resume, "counters", (dict,), where)
            if counters is not None:
                for name, floor in (("persist.resume_loads", 1),
                                    ("persist.resume_levels_restored", 1),
                                    ("persist.snapshot_writes", 1),
                                    ("persist.snapshot_bytes_total", 1)):
                    value = self.check_nonneg(counters, name,
                                              f"{where}.counters")
                    if value is not None and value < floor:
                        self.error(f"{where}.counters",
                                   f"{name} must be >= {floor} (the block "
                                   "records a real fault-injected resume), "
                                   f"got {value}")

    def check_profile(self, doc):
        """Validate the sampling-profiler A/B block (schema version 9).

        The same full run profiled and unprofiled: profiling must be
        performance-isolated (<= 3% wall-clock overhead at the default
        97 Hz) and must not change detection. The block also records
        the span-attributed sample table of the profiled run; its top
        self-CPU span proves samples landed in real engine spans, not
        just the scaffolding.
        """
        block = self.require(doc, "profile", (dict,), "top-level")
        if block is None:
            return
        where = "profile"
        hz = self.check_nonneg(block, "hz", where, types=(int, float))
        if hz == 0:
            self.error(where, "hz must be positive")
        backend = self.require(block, "backend", (str,), where)
        if backend not in (None, "sigprof", "cputime-poll"):
            self.error(where, "backend must be 'sigprof' or "
                              f"'cputime-poll', got {backend!r}")
        repeats = self.check_nonneg(block, "repeats", where)
        if repeats == 0:
            self.error(where, "repeats must be positive")
        self.check_nonneg(block, "clean_movies", where)
        self.check_nonneg(block, "window", where)
        samples = self.check_nonneg(block, "samples", where)
        if samples == 0:
            self.error(where,
                       "samples is 0 — the profiled run must be long "
                       "enough for the sampler to land ticks")
        self.check_nonneg(block, "dropped_samples", where)
        off_s = self.check_nonneg(block, "profile_off_s", where,
                                  types=(int, float))
        on_s = self.check_nonneg(block, "profile_on_s", where,
                                 types=(int, float))
        overhead = self.require(block, "overhead_pct", (int, float), where)
        pairs_off = self.check_nonneg(block, "duplicate_pairs_off", where)
        pairs_on = self.check_nonneg(block, "duplicate_pairs_on", where)
        if None not in (pairs_off, pairs_on) and pairs_off != pairs_on:
            self.error(where,
                       "profiling must not change detection: "
                       f"duplicate_pairs_off {pairs_off} != "
                       f"duplicate_pairs_on {pairs_on}")
        spans = self.require(block, "top_spans", (list,), where)
        if spans is not None:
            if not spans:
                self.error(f"{where}.top_spans",
                           "must not be empty — the profile must "
                           "attribute samples to spans")
            prev_self = None
            for i, span in enumerate(spans):
                swhere = f"{where}.top_spans[{i}]"
                if not isinstance(span, dict):
                    self.error(swhere, "must be an object")
                    continue
                path = self.require(span, "path", (str,), swhere)
                if path == "":
                    self.error(swhere, "path must be non-empty")
                self_samples = self.check_nonneg(span, "self_samples",
                                                 swhere)
                total = self.check_nonneg(span, "total_samples", swhere)
                if None not in (self_samples, total)                         and self_samples > total:
                    self.error(swhere,
                               "self_samples exceed total_samples: "
                               f"{self_samples} > {total}")
                if isinstance(self_samples, int):
                    if isinstance(prev_self, int)                             and self_samples > prev_self:
                        self.error(swhere,
                                   "top_spans must be sorted by "
                                   "self_samples descending")
                    prev_self = self_samples
            if spans and isinstance(spans[0], dict):
                top_self = spans[0].get("self_samples")
                if isinstance(top_self, int) and top_self == 0:
                    self.error(f"{where}.top_spans[0]",
                               "the top span must have self CPU — a "
                               "profile with no self samples anywhere "
                               "attributed nothing")
        if None in (off_s, on_s, overhead) or off_s <= 0:
            return
        expected = (on_s - off_s) / off_s * 100.0
        # Seconds are rounded for printing; allow absolute slack well
        # below the 3.0 ceiling.
        if abs(overhead - expected) > max(0.05, 1e-3 * abs(expected)):
            self.error(where,
                       f"'overhead_pct' inconsistent: {overhead} != "
                       f"({on_s} - {off_s}) / {off_s} * 100")
        if overhead > 3.0:
            self.error(where,
                       "sampling-profiler overhead must stay within 3% "
                       f"at the default rate, got {overhead:.2f}%")

    # --- fig5_scalability -------------------------------------------------

    def check_fig5(self, doc):
        self.check_nonneg(doc, "window", "top-level")
        self.check_nonneg(doc, "seed", "top-level")
        for panel in ("clean", "few_duplicates", "many_duplicates"):
            rows = self.require(doc, panel, (list,), "top-level")
            if rows is None:
                continue
            if not rows:
                self.error(panel, "must not be empty")
                continue
            for i, row in enumerate(rows):
                where = f"{panel}[{i}]"
                if not isinstance(row, dict):
                    self.error(where, "must be an object")
                    continue
                self.check_nonneg(row, "clean_movies", where)
                self.check_nonneg(row, "movie_instances", where)
                phases = self.require(row, "phases", (dict,), where)
                if phases is not None:
                    self.check_phases(phases, f"{where}.phases")
                unique = self.check_nonneg(row, "comparisons", where)
                kernel = self.check_nonneg(row, "kernel_comparisons", where)
                windowed = self.check_nonneg(row, "pairs_windowed", where)
                bailouts = self.check_nonneg(row, "ed_bailouts", where)
                if None in (unique, kernel, windowed, bailouts):
                    continue
                if unique > kernel:
                    self.error(where,
                               "unique comparisons exceed kernel invocations: "
                               f"{unique} > {kernel}")
                if kernel > windowed:
                    self.error(where,
                               "kernel invocations exceed windowed pairs: "
                               f"{kernel} > {windowed}")
                if bailouts > kernel:
                    self.error(where,
                               "ed_bailouts exceed kernel invocations: "
                               f"{bailouts} > {kernel}")
        self.check_out_of_core(doc)

    def check_out_of_core(self, doc):
        """Validate the out-of-core block (schema version 8, optional —
        written by ``fig5_scalability --scale-movies``).

        The block records one sharded run with external-sort spilling
        under a memory budget: the spill path must actually fire
        (spilled_runs / merge_fanin floors), the process's peak RSS
        must stay within ``memory_budget_bytes * rss_slack``, and the
        embedded identity sub-check must prove shards=1 and shards=N
        detect the same duplicates.
        """
        block = doc.get("out_of_core")
        if block is None:
            if self.min_gk_rows:
                self.error("top-level",
                           "--min-gk-rows requires an out_of_core block, "
                           "rerun fig5_scalability with --scale-movies")
            return
        where = "out_of_core"
        if not isinstance(block, dict):
            self.error(where, "must be an object")
            return
        for key in ("clean_movies", "movie_instances"):
            value = self.check_nonneg(block, key, where)
            if value == 0:
                self.error(where, f"{key} must be positive")
        gk_rows = self.check_nonneg(block, "gk_rows", where)
        if gk_rows == 0:
            self.error(where, "gk_rows must be positive")
        if self.min_gk_rows and isinstance(gk_rows, int) \
                and gk_rows < self.min_gk_rows:
            self.error(where,
                       f"gk_rows must cover at least {self.min_gk_rows} "
                       f"generated-key rows, got {gk_rows}")
        shards = self.check_nonneg(block, "shards", where)
        if shards is not None and shards < 2:
            self.error(where,
                       f"the sharded run must use >= 2 shards, got {shards}")
        budget = self.check_nonneg(block, "memory_budget_bytes", where)
        if budget == 0:
            self.error(where, "memory_budget_bytes must be positive "
                              "(0 disables spilling)")
        peak = self.check_nonneg(block, "peak_rss_bytes", where)
        slack = self.require(block, "rss_slack", (int, float), where)
        if slack is not None and slack < 1.0:
            self.error(where, f"rss_slack must be >= 1, got {slack}")
        if None not in (peak, budget, slack) and budget > 0 \
                and peak > budget * slack:
            self.error(where,
                       "peak RSS breaches the memory budget: "
                       f"{peak} > {budget} * {slack}")
        spilled = self.check_nonneg(block, "spilled_runs", where)
        if spilled is not None and spilled < 1:
            self.error(where,
                       "spilled_runs must be >= 1 — the run must "
                       "actually exercise the external-sort spill path")
        spill_bytes = self.check_nonneg(block, "spill_bytes", where)
        if spill_bytes is not None and spilled and spill_bytes < 1:
            self.error(where, "spilled runs must account spill_bytes > 0")
        fanin = self.check_nonneg(block, "merge_fanin_max", where)
        if fanin is not None and fanin < 2:
            self.error(where,
                       "merge_fanin_max must be >= 2 — at least one "
                       f"pass must merge multiple runs, got {fanin}")
        self.check_nonneg(block, "overlap_rows", where)
        self.check_nonneg(block, "duplicate_pairs", where)
        phases = self.require(block, "phases", (dict,), where)
        if phases is not None:
            self.check_phases(phases, f"{where}.phases")

        identity = self.require(block, "identity", (dict,), where)
        if identity is None:
            return
        where = "out_of_core.identity"
        self.check_nonneg(identity, "clean_movies", where)
        self.check_nonneg(identity, "shards", where)
        single = self.check_nonneg(identity, "duplicate_pairs_single", where)
        sharded = self.check_nonneg(identity, "duplicate_pairs_sharded",
                                    where)
        if None not in (single, sharded) and single != sharded:
            self.error(where,
                       "sharding must not change detection: "
                       f"duplicate_pairs_single {single} != "
                       f"duplicate_pairs_sharded {sharded}")
        comp_single = self.check_nonneg(identity, "comparisons_single", where)
        comp_sharded = self.check_nonneg(identity, "comparisons_sharded",
                                         where)
        if None not in (comp_single, comp_sharded) \
                and comp_single != comp_sharded:
            self.error(where,
                       "sharding must not change the comparison count: "
                       f"comparisons_single {comp_single} != "
                       f"comparisons_sharded {comp_sharded}")
        identical = self.require(identity, "identical", (bool,), where)
        if identical is False:
            self.error(where,
                       "the bench's own shards=1 vs shards=N comparison "
                       "failed — sharded detection is not bit-identical")

    # --- micro_similarity -------------------------------------------------

    def check_similarity(self, doc):
        """Edit-distance kernel comparison: classic row DP vs Myers.

        The checked-in file must demonstrate the bit-parallel kernel's
        advantage; the floor here (2x on 16..64-char strings) is set
        below the expected ~3-5x so reruns on slower CI machines still
        validate.
        """
        self.check_nonneg(doc, "repeats", "top-level")
        kernels = self.require(doc, "kernels", (list,), "top-level")
        if kernels is None:
            return
        if not kernels:
            self.error("kernels", "must not be empty")
            return
        for i, row in enumerate(kernels):
            where = f"kernels[{i}]"
            if not isinstance(row, dict):
                self.error(where, "must be an object")
                continue
            length = self.check_nonneg(row, "length", where)
            if length is not None:
                where = f"kernels[{i}] (len {length})"
            classic = self.check_nonneg(row, "classic_dp_ns", where,
                                        types=(int, float))
            myers = self.check_nonneg(row, "myers_ns", where,
                                      types=(int, float))
            speedup = self.check_nonneg(row, "speedup", where,
                                        types=(int, float))
            match = self.require(row, "distances_match", (bool,), where)
            if match is False:
                self.error(where,
                           "kernels disagree on distances — the Myers "
                           "kernel must be exact")
            if None in (classic, myers, speedup) or myers <= 0:
                continue
            expected = classic / myers
            if abs(speedup - expected) > 1e-3 * max(expected, 1.0):
                self.error(where,
                           f"'speedup' inconsistent: {speedup} != "
                           f"{classic} / {myers}")
            if length is not None and 16 <= length <= 64 and speedup < 2.0:
                self.error(where,
                           "bit-parallel kernel must be at least 2x the "
                           f"classic DP on {length}-char strings, "
                           f"got {speedup:.2f}x")
        self.check_filters(doc)

    def check_filters(self, doc):
        """Validate the batched SoA pre-filter profile (schema version 5).

        Soundness is the load-bearing bit: the bench re-checks every
        rejected pair against the kernel and must report sound == true —
        a false here means the vectorized screen rejected a pair the
        kernel would have accepted.
        """
        filters = self.require(doc, "filters", (dict,), "top-level")
        if filters is None:
            return
        backend = self.require(filters, "backend", (str,), "filters")
        if backend == "":
            self.error("filters", "backend must name the SIMD backend "
                                  "(e.g. sse2, neon, scalar)")
        lengths = self.require(filters, "lengths", (list,), "filters")
        if lengths is None:
            return
        if not lengths:
            self.error("filters.lengths", "must not be empty")
            return
        for i, row in enumerate(lengths):
            where = f"filters.lengths[{i}]"
            if not isinstance(row, dict):
                self.error(where, "must be an object")
                continue
            length = self.check_nonneg(row, "length", where)
            if length is not None:
                where = f"filters.lengths[{i}] (len {length})"
            self.check_nonneg(row, "pairs", where)
            rate = self.require(row, "reject_rate", (int, float), where)
            if rate is not None and not 0.0 <= rate <= 1.0:
                self.error(where,
                           f"reject_rate must be within [0, 1], got {rate}")
            self.check_nonneg(row, "filter_ns_per_pair", where,
                              types=(int, float))
            self.check_nonneg(row, "kernel_ns_per_pair", where,
                              types=(int, float))
            sound = self.require(row, "sound", (bool,), where)
            if sound is False:
                self.error(where,
                           "pre-filter rejected a pair the kernel accepts "
                           "— the SoA screen must be sound")

    # --- entry point ------------------------------------------------------

    def check(self, doc):
        if not isinstance(doc, dict):
            self.error("top-level", "document must be a JSON object")
            return
        bench = self.require(doc, "bench", (str,), "top-level")
        version = self.require(doc, "schema_version", (int,), "top-level")
        if version is not None and version != SCHEMA_VERSION:
            self.error("top-level",
                       f"schema_version must be {SCHEMA_VERSION}, "
                       f"got {version}")
        if bench == "micro_pipeline":
            self.check_pipeline(doc)
        elif bench == "micro_similarity":
            self.check_similarity(doc)
        elif bench == "fig5_scalability":
            self.check_fig5(doc)
        elif bench is not None:
            self.error("top-level", f"unknown bench kind '{bench}'")


# --- decision-provenance NDJSON (--explain-schema) ------------------------

PROVENANCE_ENUM = ("owned", "verdict_cache", "prepass", "dag_equal",
                   "batch_filter")

# type -> (field, allowed python types); bool before int matters nowhere
# here because require() rejects bools unless asked for.
EXPLAIN_REQUIRED = {
    "candidate": [("candidate", (str,)), ("depth", (int,)),
                  ("instances", (int,)), ("keys", (int,)),
                  ("window", (int,)), ("window_policy", (str,)),
                  ("threshold", (int, float))],
    "instance": [("candidate", (str,)), ("ordinal", (int,)),
                 ("eid", (int,)), ("keys", (list,)), ("ranks", (list,))],
    "pair": [("candidate", (str,)), ("pass", (int,)), ("a", (int,)),
             ("b", (int,)), ("eid_a", (int,)), ("eid_b", (int,)),
             ("window_distance", (int,)), ("provenance", (str,)),
             ("verdict", (bool,))],
    "shed": [("candidate", (str,)), ("pass", (int,)),
             ("provenance", (str,)), ("skipped", (bool,)),
             ("window_configured", (int,)), ("window_used", (int,)),
             ("rows", (int,)), ("pairs_planned", (int,)),
             ("pairs_elided", (int,))],
    "merge": [("candidate", (str,)), ("a", (int,)), ("b", (int,)),
              ("root_a", (int,)), ("root_b", (int,)), ("root", (int,)),
              ("merged", (bool,))],
    "cluster": [("candidate", (str,)), ("cluster", (int,)),
                ("members", (list,))],
}

OWNED_DETAIL_FIELDS = [("components", (list,)), ("descendants", (list,)),
                       ("theory_equal", (bool,)), ("od_valid", (bool,)),
                       ("od_sim", (int, float)), ("desc_valid", (bool,)),
                       ("desc_sim", (int, float)), ("score", (int, float)),
                       ("threshold", (int, float))]


class ExplainChecker(Checker):
    """Validates one explain NDJSON log (shares Checker's plumbing)."""

    def check_unit(self, obj, key, where):
        value = self.require(obj, key, (int, float), where)
        if value is not None and not 0.0 <= value <= 1.0:
            self.error(where, f"'{key}' must be within [0, 1], got {value}")
        return value

    def check_pair(self, record, where):
        provenance = record.get("provenance")
        if provenance not in PROVENANCE_ENUM:
            self.error(where, f"provenance must be one of {PROVENANCE_ENUM}, "
                              f"got {provenance!r}")
        a, b = record.get("a"), record.get("b")
        if isinstance(a, int) and isinstance(b, int) and not a < b:
            self.error(where, f"pair must be ordered a < b, got ({a}, {b})")
        pass_index = record.get("pass")
        if isinstance(pass_index, int):
            if provenance == "prepass" and pass_index != -1:
                self.error(where, "prepass records must carry pass -1, "
                                  f"got {pass_index}")
            if provenance != "prepass" and pass_index < 0:
                self.error(where, f"pass must be >= 0, got {pass_index}")
        if provenance == "batch_filter" and record.get("verdict") is True:
            self.error(where, "batch_filter records are pre-kernel "
                              "rejections and must carry verdict false")
        if provenance != "owned":
            if "score" in record:
                self.error(where, f"{provenance} records replay a verdict "
                                  "and must not carry a scoring breakdown")
            return
        for field, types in OWNED_DETAIL_FIELDS:
            self.require(record, field, types, where)
        for field in ("od_sim", "desc_sim", "score", "threshold"):
            if isinstance(record.get(field), (int, float)):
                self.check_unit(record, field, where)
        for j, component in enumerate(record.get("components") or []):
            cwhere = f"{where}.components[{j}]"
            if not isinstance(component, dict):
                self.error(cwhere, "must be an object")
                continue
            self.require(component, "index", (int,), cwhere)
            self.require(component, "comparable", (bool,), cwhere)
            self.check_unit(component, "sim", cwhere)
            distance = self.require(component, "edit_distance", (int,), cwhere)
            if distance is not None and distance < -1:
                self.error(cwhere, f"edit_distance must be >= -1, "
                                   f"got {distance}")

    def check(self, lines):
        accepted = {}  # candidate -> set of accepted (a, b)
        merged = {}    # candidate -> set of merge-record (a, b)
        seen_events = set()  # (candidate, pass, a, b) must be unique
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            where = f"line {lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                self.error(where, f"invalid JSON: {e}")
                continue
            if not isinstance(record, dict):
                self.error(where, "record must be a JSON object")
                continue
            kind = record.get("type")
            if kind not in EXPLAIN_REQUIRED:
                self.error(where, f"unknown record type {kind!r}")
                continue
            where = f"line {lineno} ({kind})"
            for field, types in EXPLAIN_REQUIRED[kind]:
                self.require(record, field, types, where)
            candidate = record.get("candidate")
            if kind == "candidate":
                self.check_unit(record, "threshold", where)
            elif kind == "pair":
                self.check_pair(record, where)
                event = (candidate, record.get("pass"), record.get("a"),
                         record.get("b"))
                if event in seen_events:
                    self.error(where, "duplicate classification event "
                                      f"{event}")
                seen_events.add(event)
                if record.get("verdict") is True:
                    accepted.setdefault(candidate, set()).add(
                        (record.get("a"), record.get("b")))
            elif kind == "shed":
                if record.get("provenance") != "shed":
                    self.error(where, "shed records must carry "
                                      "provenance \"shed\"")
            elif kind == "merge":
                merged.setdefault(candidate, set()).add(
                    (record.get("a"), record.get("b")))
            elif kind == "cluster":
                members = record.get("members")
                if isinstance(members, list) and len(members) < 2:
                    self.error(where, "clusters in the log are non-trivial "
                                      f"(>= 2 members), got {members}")
        # The merge lineage replays exactly the deduplicated accepted
        # pairs — no invented merges, no dropped accepts.
        for candidate in sorted(set(accepted) | set(merged)):
            got = merged.get(candidate, set())
            want = accepted.get(candidate, set())
            if got != want:
                self.error(f"candidate '{candidate}'",
                           "merge lineage disagrees with accepted pairs: "
                           f"{len(got)} merge record(s) vs "
                           f"{len(want)} accepted pair(s)")


# --- live-telemetry NDJSON (--telemetry-schema) ---------------------------

# Progress metrics every stream must carry: the detector registers them
# up front, so even a first-tick sample has the whole family.
TELEMETRY_REQUIRED_COUNTERS = ["kg.rows_done", "sw.pairs_done",
                               "tc.edges_done", "sw.comparisons"]
TELEMETRY_REQUIRED_GAUGES = ["progress.phase", "kg.rows_total",
                             "sw.pairs_planned_total",
                             "cache.verdict_occupancy"]
# setup, kg, sw, tc, done, external sort (v8; samples during the spill
# + merge stage of an out-of-core run).
TELEMETRY_PHASES = (0, 1, 2, 3, 4, 5)


class TelemetryChecker(Checker):
    """Validates one telemetry NDJSON stream (shares Checker's plumbing).

    The stream is wall-clock-driven, so sample *count* and mid-run
    values are run-dependent; this checks structure and the invariants
    that hold regardless: header first, sequential seq, non-decreasing
    time, monotone counters, one final sample in last position.
    """

    def check_sample(self, record, where, prev):
        seq = self.check_nonneg(record, "seq", where)
        t_ms = self.check_nonneg(record, "t_ms", where, types=(int, float))
        self.require(record, "final", (bool,), where)
        phase = self.require(record, "phase", (int,), where)
        if phase is not None and phase not in TELEMETRY_PHASES:
            self.error(where, f"phase must be in {TELEMETRY_PHASES}, "
                              f"got {phase}")
        self.require(record, "phase_name", (str,), where)
        progress = self.require(record, "progress", (int, float), where)
        if progress is not None and not (progress == -1
                                         or 0.0 <= progress <= 1.0):
            self.error(where, "progress must be -1 (unknown) or within "
                              f"[0, 1], got {progress}")
        eta = self.require(record, "eta_s", (int, float), where)
        if eta is not None and eta < 0 and eta != -1:
            self.error(where, f"eta_s must be -1 (unknown) or >= 0, "
                              f"got {eta}")
        mem = self.require(record, "mem", (dict,), where)
        if mem is not None:
            self.require(mem, "sampled", (bool,), f"{where}.mem")
            for field in ("rss_bytes", "peak_rss_bytes", "vm_bytes"):
                self.check_nonneg(mem, field, f"{where}.mem")
        # CPU utilization (v9): getrusage deltas over the sample window,
        # clamped to >= 0. 100% means one saturated core, so parallel
        # phases legitimately exceed 100.
        self.check_nonneg(record, "cpu_user_pct", where, types=(int, float))
        self.check_nonneg(record, "cpu_sys_pct", where, types=(int, float))
        self.check_nonneg(record, "threads", where)
        self.require(record, "cpu_sampled", (bool,), where)
        counters = self.require(record, "counters", (dict,), where)
        if counters is not None:
            for name in TELEMETRY_REQUIRED_COUNTERS:
                self.check_nonneg(counters, name, f"{where}.counters")
            for name, value in counters.items():
                if isinstance(value, bool) or not isinstance(value, int) \
                        or value < 0:
                    self.error(f"{where}.counters",
                               f"'{name}' must be a non-negative integer, "
                               f"got {value!r}")
        gauges = self.require(record, "gauges", (dict,), where)
        if gauges is not None:
            for name in TELEMETRY_REQUIRED_GAUGES:
                self.require(gauges, name, (int, float), f"{where}.gauges")
        rates = self.require(record, "rates", (dict,), where)
        if rates is not None:
            for name, value in rates.items():
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)) or value < 0:
                    self.error(f"{where}.rates",
                               f"'{name}' must be a non-negative number, "
                               f"got {value!r}")
        histograms = self.require(record, "histograms", (dict,), where)
        if histograms is not None:
            for name, value in histograms.items():
                hwhere = f"{where}.histograms.{name}"
                if not isinstance(value, dict):
                    self.error(hwhere, "must be an object")
                    continue
                self.check_nonneg(value, "count", hwhere)
                self.check_nonneg(value, "sum", hwhere, types=(int, float))

        if prev is not None:
            if isinstance(seq, int) and seq != prev.get("seq", -1) + 1:
                self.error(where, f"seq must be sequential, got {seq} "
                                  f"after {prev.get('seq')}")
            prev_t = prev.get("t_ms")
            if isinstance(t_ms, (int, float)) \
                    and isinstance(prev_t, (int, float)) and t_ms < prev_t:
                self.error(where, f"t_ms went backwards: {t_ms} < {prev_t}")
            if prev.get("final") is True:
                self.error(where, "no samples may follow the final sample")
            prev_counters = prev.get("counters")
            if isinstance(counters, dict) and isinstance(prev_counters, dict):
                for name, value in prev_counters.items():
                    now = counters.get(name)
                    if isinstance(now, int) and isinstance(value, int) \
                            and now < value:
                        self.error(f"{where}.counters",
                                   f"'{name}' went backwards: "
                                   f"{now} < {value}")
        elif isinstance(seq, int) and seq != 0:
            self.error(where, f"first sample must have seq 0, got {seq}")

    def check(self, lines):
        header = None
        prev = None
        saw_final = False
        sample_count = 0
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            where = f"line {lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                self.error(where, f"invalid JSON: {e}")
                continue
            if not isinstance(record, dict):
                self.error(where, "record must be a JSON object")
                continue
            kind = record.get("type")
            if header is None:
                if kind != "header":
                    self.error(where, "stream must start with a header "
                                      f"record, got {kind!r}")
                    return
                header = record
                version = self.require(record, "version", (int,), where)
                if version is not None and version != 1:
                    self.error(where, f"header version must be 1, "
                                      f"got {version}")
                interval = self.check_nonneg(record, "interval_ms", where,
                                             types=(int, float))
                if interval == 0:
                    self.error(where, "interval_ms must be positive")
                # pid (v8): optional — streams from older engines lack
                # it; when present it must be a positive process id.
                if "pid" in record:
                    pid = self.check_nonneg(record, "pid", where)
                    if pid == 0:
                        self.error(where, "pid must be positive")
                continue
            if kind != "sample":
                self.error(where, f"unknown record type {kind!r}")
                continue
            self.check_sample(record, f"line {lineno} (sample)", prev)
            saw_final = saw_final or record.get("final") is True
            sample_count += 1
            prev = record
        if header is None:
            self.error("top-level", "stream is empty (no header record)")
        elif sample_count == 0:
            self.error("top-level", "stream has no samples")
        elif not saw_final:
            self.error("top-level",
                       "stream never quiesced: no final sample (the run "
                       "may have crashed mid-write — acceptable for a "
                       "live tail, not for a checked-in stream)")


# --- folded-stack profiles (--profile-folded-schema) ----------------------


class FoldedChecker(Checker):
    """Validates one folded-stack CPU profile (flamegraph.pl format)."""

    def check(self, lines):
        stacks = 0
        for lineno, line in enumerate(lines, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            where = f"line {lineno}"
            head, sep, count_text = line.rpartition(" ")
            if not sep or not head:
                self.error(where, f"expected 'path COUNT', got {line!r}")
                continue
            try:
                count = int(count_text)
            except ValueError:
                self.error(where, f"sample count {count_text!r} is not an "
                                  "integer")
                continue
            if count < 0:
                self.error(where, f"negative sample count {count}")
            frames = head.split(";")
            for frame in frames:
                if not frame:
                    self.error(where, f"empty frame in path {head!r}")
                elif any(c in frame for c in " \t"):
                    self.error(where, f"unescaped whitespace in frame "
                                      f"{frame!r}")
            stacks += 1
        if stacks == 0:
            self.error("top-level", "profile has no stacks")


def check_folded_files(paths):
    failed = False
    for path in paths:
        checker = FoldedChecker(path)
        try:
            with open(path, encoding="utf-8") as f:
                checker.check(f)
        except OSError as e:
            checker.error("top-level", f"cannot load: {e}")
        if checker.errors:
            failed = True
            for error in checker.errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK (folded-stack profile)")
    return 1 if failed else 0


def check_telemetry_files(paths):
    failed = False
    for path in paths:
        checker = TelemetryChecker(path)
        try:
            with open(path, encoding="utf-8") as f:
                checker.check(f)
        except OSError as e:
            checker.error("top-level", f"cannot load: {e}")
        if checker.errors:
            failed = True
            for error in checker.errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK (telemetry NDJSON)")
    return 1 if failed else 0


def check_explain_files(paths):
    failed = False
    for path in paths:
        checker = ExplainChecker(path)
        try:
            with open(path, encoding="utf-8") as f:
                checker.check(f)
        except OSError as e:
            checker.error("top-level", f"cannot load: {e}")
        if checker.errors:
            failed = True
            for error in checker.errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK (explain NDJSON)")
    return 1 if failed else 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--explain-schema":
        if len(argv) < 3:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return check_explain_files(argv[2:])
    if argv[1] == "--telemetry-schema":
        if len(argv) < 3:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return check_telemetry_files(argv[2:])
    if argv[1] == "--profile-folded-schema":
        if len(argv) < 3:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        return check_folded_files(argv[2:])
    min_gk_rows = 0
    if argv[1] == "--min-gk-rows":
        if len(argv) < 4:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        try:
            min_gk_rows = int(argv[2])
        except ValueError:
            print(f"--min-gk-rows: not an integer: {argv[2]}",
                  file=sys.stderr)
            return 2
        argv = argv[:1] + argv[3:]
    failed = False
    for path in argv[1:]:
        checker = Checker(path, min_gk_rows=min_gk_rows)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            checker.error("top-level", f"cannot load: {e}")
            doc = None
        if doc is not None:
            checker.check(doc)
        if checker.errors:
            failed = True
            for error in checker.errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK ({doc['bench']}, "
                  f"schema_version {doc['schema_version']})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
