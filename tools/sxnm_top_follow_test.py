#!/usr/bin/env python3
"""Follow-mode liveness tests for sxnm_top.

Drives ``sxnm_top --follow`` against synthetic telemetry streams and
asserts the exit behavior around producer death:

  1. a stream whose header names a dead pid and that never received its
     final sample makes --follow exit 1 (instead of tailing forever);
  2. the same truncated stream with a live producer pid keeps the
     dashboard tailing (we kill it after a grace period);
  3. a finished stream (final sample present) exits 0 even though the
     producer is long gone;
  4. --pid with a dead process and a stream file that never appears
     exits 1 from the wait-for-file loop.

Usage: sxnm_top_follow_test.py /path/to/sxnm_top
"""

import json
import os
import subprocess
import sys
import tempfile
import time


def dead_pid():
    """Pid of a process that has already exited and been reaped."""
    child = subprocess.Popen(["sleep", "0"])
    child.wait()
    return child.pid


def write_stream(path, pid, final):
    header = {"type": "header", "version": 1, "interval_ms": 50,
              "clock": "steady", "deterministic": False}
    if pid is not None:
        header["pid"] = pid
    sample = {"type": "sample", "seq": 0, "t_ms": 1.0, "final": final,
              "phase": 4 if final else 2,
              "phase_name": "done" if final else "sliding_window",
              "progress": 1.0 if final else 0.5, "eta_s": 0,
              "mem": {"sampled": False},
              "counters": {"sw.comparisons": 10}, "gauges": {},
              "rates": {}}
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(header) + "\n")
        f.write(json.dumps(sample) + "\n")


def run_follow(tool, stream, extra=(), timeout=10):
    return subprocess.run(
        [sys.executable, tool, "--follow", "--plain", "--poll-ms", "20",
         *extra, stream],
        capture_output=True, text=True, timeout=timeout)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} /path/to/sxnm_top", file=sys.stderr)
        return 2
    tool = sys.argv[1]
    failures = []

    def check(name, ok, detail=""):
        print(f"{'ok  ' if ok else 'FAIL'} {name}" +
              (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(name)

    with tempfile.TemporaryDirectory(prefix="sxnm_top_test.") as tmp:
        # 1. Dead producer, truncated stream -> exit 1 with a diagnostic.
        stream = os.path.join(tmp, "dead.tlm.ndjsonl")
        write_stream(stream, dead_pid(), final=False)
        proc = run_follow(tool, stream)
        check("dead producer exits nonzero", proc.returncode == 1,
              f"rc={proc.returncode} stderr={proc.stderr!r}")
        check("dead producer names the condition",
              "died without a final sample" in proc.stderr, proc.stderr)

        # 2. Live producer, truncated stream -> keeps tailing. Use our
        # own pid as the producer; the follow process must still be
        # running after a grace period, then die with us... so instead
        # give it a child that outlives the grace period.
        stream = os.path.join(tmp, "live.tlm.ndjsonl")
        producer = subprocess.Popen(["sleep", "30"])
        try:
            write_stream(stream, producer.pid, final=False)
            tail = subprocess.Popen(
                [sys.executable, tool, "--follow", "--plain",
                 "--poll-ms", "20", stream],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            time.sleep(1.0)
            still_tailing = tail.poll() is None
            check("live producer keeps the tail running", still_tailing,
                  f"rc={tail.poll()}")
        finally:
            producer.kill()
            producer.wait()
        # The producer is now dead; the tail must notice and exit 1.
        try:
            tail_rc = tail.wait(timeout=10)
            check("tail exits once the producer dies", tail_rc == 1,
                  f"rc={tail_rc}")
        except subprocess.TimeoutExpired:
            tail.kill()
            tail.wait()
            check("tail exits once the producer dies", False, "timeout")

        # 3. Finished stream, dead producer -> normal success.
        stream = os.path.join(tmp, "final.tlm.ndjsonl")
        write_stream(stream, dead_pid(), final=True)
        proc = run_follow(tool, stream)
        check("finished stream exits 0", proc.returncode == 0,
              f"rc={proc.returncode} stderr={proc.stderr!r}")

        # 4. Stream never appears and --pid is dead -> wait loop aborts.
        stream = os.path.join(tmp, "never.tlm.ndjsonl")
        proc = run_follow(tool, stream, extra=["--pid", str(dead_pid())])
        check("missing stream with dead --pid exits nonzero",
              proc.returncode == 1,
              f"rc={proc.returncode} stderr={proc.stderr!r}")

        # 5. Legacy stream without a pid field parses and renders
        # normally in one-shot mode (pid stays optional).
        stream = os.path.join(tmp, "legacy.tlm.ndjsonl")
        write_stream(stream, None, final=True)
        proc = subprocess.run(
            [sys.executable, tool, "--plain", stream],
            capture_output=True, text=True, timeout=10)
        check("legacy pid-less stream renders", proc.returncode == 0,
              f"rc={proc.returncode} stderr={proc.stderr!r}")

    if failures:
        print(f"{len(failures)} case(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("all sxnm_top follow cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
