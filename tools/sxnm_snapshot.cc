// Checkpoint snapshot inspector: validates and dumps the SXNM snapshot
// container (persist/snapshot.h). Parsing alone verifies the magic,
// version, every frame checksum, and the end-frame commit marker, so a
// plain invocation doubles as an integrity check for CI and operators:
//
//   sxnm_snapshot RUN.ckpt            header, frame table, cursor,
//                                     fingerprint
//   sxnm_snapshot --quiet RUN.ckpt    no output; exit code only
//
// Exit codes follow the engine's status mapping (util/exit_code.h):
// 0 valid, 8 corrupt (kDataLoss), 7 version mismatch, 2 usage errors.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "persist/io.h"
#include "persist/snapshot.h"
#include "sxnm/checkpoint.h"
#include "util/exit_code.h"

namespace {

using sxnm::persist::Frame;
using sxnm::persist::FrameType;
using sxnm::persist::SnapshotReader;

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kFingerprint: return "fingerprint";
    case FrameType::kCursor: return "cursor";
    case FrameType::kGkTable: return "gk_table";
    case FrameType::kCandidateResult: return "candidate_result";
    case FrameType::kDegradation: return "degradation";
    case FrameType::kReportRows: return "report_rows";
    case FrameType::kMetrics: return "metrics";
    case FrameType::kExplain: return "explain";
    case FrameType::kVerdictCache: return "verdict_cache";
    case FrameType::kEndFrame: return "end";
  }
  return "unknown";
}

int Inspect(const std::string& path, bool quiet) {
  auto bytes = sxnm::persist::ReadFileToString(path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 bytes.status().ToString().c_str());
    return sxnm::util::ExitCodeForStatus(bytes.status());
  }

  auto reader = SnapshotReader::Parse(*bytes);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return sxnm::util::ExitCodeForStatus(reader.status());
  }
  if (quiet) return sxnm::util::kExitOk;

  std::printf("%s: valid snapshot, version %u, %zu byte(s), %zu frame(s)\n",
              path.c_str(), reader->version(), bytes->size(),
              reader->frames().size());
  std::printf("  %-18s %12s\n", "frame", "payload");
  for (const Frame& frame : reader->frames()) {
    std::printf("  %-18s %12zu\n", FrameTypeName(frame.type),
                frame.payload.size());
  }

  // The frame checksums already verified above; decode the two identity
  // frames so operators can eyeball what run this snapshot belongs to.
  if (const Frame* fp = reader->Find(FrameType::kFingerprint)) {
    auto decoded = sxnm::core::DecodeFingerprint(fp->payload);
    if (!decoded.ok()) {
      std::fprintf(stderr, "%s: fingerprint frame: %s\n", path.c_str(),
                   decoded.status().ToString().c_str());
      return sxnm::util::ExitCodeForStatus(decoded.status());
    }
    std::printf("fingerprint:\n");
    std::printf("  config   %016" PRIx64 "\n", decoded->config_fingerprint);
    std::printf("  document %016" PRIx64 "\n", decoded->doc_fingerprint);
    std::printf("  metrics  %s\n", decoded->metrics_enabled ? "on" : "off");
    std::printf("  explain  %s\n", decoded->explain_enabled ? "on" : "off");
  }
  if (const Frame* cur = reader->Find(FrameType::kCursor)) {
    auto decoded = sxnm::core::DecodeCursor(cur->payload);
    if (!decoded.ok()) {
      std::fprintf(stderr, "%s: cursor frame: %s\n", path.c_str(),
                   decoded.status().ToString().c_str());
      return sxnm::util::ExitCodeForStatus(decoded.status());
    }
    std::printf("cursor:\n");
    std::printf("  levels_completed  %" PRIu64 "\n",
                decoded->levels_completed);
    std::printf("  budget_spent      %" PRIu64 "%s\n", decoded->budget_spent,
                decoded->budget_exhausted ? " (exhausted)" : "");
    std::printf("  verdict_occupancy %" PRIu64 "/%" PRIu64 "\n",
                decoded->verdict_occupied_total,
                decoded->verdict_capacity_total);
    std::printf("  phase seconds     kg=%.6f sw=%.6f tc=%.6f\n",
                decoded->kg_seconds, decoded->sw_seconds,
                decoded->tc_seconds);
  }
  return sxnm::util::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0 ||
        std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return sxnm::util::kExitUsage;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: sxnm_snapshot [--quiet] <snapshot>\n");
      return sxnm::util::kExitUsage;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: sxnm_snapshot [--quiet] <snapshot>\n");
    return sxnm::util::kExitUsage;
  }
  return Inspect(path, quiet);
}
