#include "util/string_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace sxnm::util {

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsVowel(char c) {
  switch (AsciiToLower(c)) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return true;
    default:
      return false;
  }
}

bool IsConsonant(char c) { return IsAsciiAlpha(c) && !IsVowel(c); }

bool IsAsciiSpace(char c) {
  switch (c) {
    case ' ':
    case '\t':
    case '\n':
    case '\r':
    case '\f':
    case '\v':
      return true;
    default:
      return false;
  }
}

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string NormalizeWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // suppress leading spaces
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

int ParseNonNegativeInt(std::string_view s) {
  if (s.empty()) return -1;
  long long value = 0;
  for (char c : s) {
    if (!IsAsciiDigit(c)) return -1;
    value = value * 10 + (c - '0');
    if (value > std::numeric_limits<int>::max()) return -1;
  }
  return static_cast<int>(value);
}

double ParseDoubleOr(std::string_view s, double fallback) {
  std::string buf(TrimView(s));
  if (buf.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return fallback;
  return value;
}

namespace {

template <typename Pred>
std::string ExtractMatching(std::string_view s, Pred pred) {
  std::string out;
  for (char c : s) {
    if (pred(c)) out.push_back(AsciiToUpper(c));
  }
  return out;
}

}  // namespace

std::string ExtractConsonants(std::string_view s) {
  return ExtractMatching(s, IsConsonant);
}

std::string ExtractDigits(std::string_view s) {
  return ExtractMatching(s, IsAsciiDigit);
}

std::string ExtractAlnum(std::string_view s) {
  return ExtractMatching(s,
                         [](char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); });
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace sxnm::util
