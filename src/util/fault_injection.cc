#include "util/fault_injection.h"

#include <csignal>

namespace sxnm::util {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(std::string_view site, uint64_t fire_on_hit,
                        FaultAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[std::string(site)];
  state.fire_on_hit = fire_on_hit == 0 ? 1 : fire_on_hit;
  state.hits = 0;
  state.action = action;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.fire_on_hit = 0;
  for (const auto& [name, state] : sites_) {
    if (state.fire_on_hit != 0) return;
  }
  any_armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFailSlow(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.fire_on_hit == 0) return false;
  if (++it->second.hits != it->second.fire_on_hit) return false;
  if (it->second.action == FaultAction::kKill) {
    // Die exactly here, as a SIGKILL would land: no unwinding, no
    // destructors, no buffered-IO flushes. Whatever the instrumented
    // step had half-done stays half-done on disk.
    std::raise(SIGKILL);
  }
  it->second.fire_on_hit = 0;  // one-shot
  bool still_armed = false;
  for (const auto& [name, state] : sites_) {
    if (state.fire_on_hit != 0) still_armed = true;
  }
  if (!still_armed) any_armed_.store(false, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInjector::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

}  // namespace sxnm::util
