// ASCII-oriented string helpers shared by key generation, similarity
// functions, and the data generators.
//
// The paper's key patterns classify characters as consonants (K), generic
// characters (C) and digits (D); those predicates live here so that the key
// pattern engine, the relational SNM and tests agree on one definition.

#ifndef SXNM_UTIL_STRING_UTIL_H_
#define SXNM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sxnm::util {

/// True for 'a'-'z' / 'A'-'Z'.
bool IsAsciiAlpha(char c);
/// True for '0'-'9'.
bool IsAsciiDigit(char c);
/// True for an ASCII letter that is not a vowel (y counts as a consonant,
/// matching the common SNM key convention: "Mask of Zorro" -> MSKF...).
bool IsConsonant(char c);
/// True for a/e/i/o/u in either case.
bool IsVowel(char c);
/// True for space, tab, CR, LF, FF, VT.
bool IsAsciiSpace(char c);

/// Lower/upper-case a single ASCII character; non-ASCII bytes pass through.
char AsciiToLower(char c);
char AsciiToUpper(char c);

/// Lower/upper-case a whole string (ASCII only).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Collapses runs of whitespace into single spaces and trims the ends.
/// "  The   Matrix " -> "The Matrix".
std::string NormalizeWhitespace(std::string_view s);

/// Splits `s` at every occurrence of `sep` (single character). An empty
/// input yields a single empty token, matching common CSV semantics.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Parses a non-negative integer; returns -1 on any malformed input or
/// overflow beyond int range. Used by the XPath predicate and key pattern
/// parsers, which treat -1 as "not a number".
int ParseNonNegativeInt(std::string_view s);

/// Parses a double; returns `fallback` on malformed input.
double ParseDoubleOr(std::string_view s, double fallback);

/// Extracts only the characters matching a class from `s`, uppercased:
///   ExtractConsonants("Mask of Zorro") == "MSKFZRR"
///   ExtractDigits("19.10.1998")        == "19101998"
///   ExtractAlnum("Mask of Zorro!")     == "MASKOFZORRO"
std::string ExtractConsonants(std::string_view s);
std::string ExtractDigits(std::string_view s);
std::string ExtractAlnum(std::string_view s);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace sxnm::util

#endif  // SXNM_UTIL_STRING_UTIL_H_
