// Cooperative cancellation and deadlines for long-running pipeline
// stages (parsing, key generation, window passes).
//
// A `CancellationSource` owns a flag; the copyable `CancellationToken`
// handles it hands out are checked cooperatively by workers. Tokens are
// cheap to copy (shared_ptr to one atomic) and a default-constructed
// token can never be cancelled, so APIs can take tokens unconditionally.
//
// `Deadline` is a wall-clock expiry point. Both are *cooperative*: a
// stage observes them at its own checkpoints, finishes the unit of work
// in flight, and returns a partial, internally consistent result flagged
// kCancelled / kDeadlineExceeded — nothing is torn down mid-write.

#ifndef SXNM_UTIL_CANCELLATION_H_
#define SXNM_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace sxnm::util {

/// A copyable handle observing one cancellation flag. Thread-safe.
class CancellationToken {
 public:
  /// The default token is never cancelled (no shared state).
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token is connected to a source (i.e. cancellation is
  /// possible at all). Lets hot loops skip the check entirely.
  bool can_be_cancelled() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owns the flag behind a family of tokens. Thread-safe; outliving the
/// source is fine (tokens keep the flag alive).
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Idempotent; visible to every token immediately.
  void RequestCancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A wall-clock expiry point. Default-constructed deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `seconds` from now. `seconds <= 0` is already expired.
  static Deadline After(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// Never expires (alias of the default constructor, for readability).
  static Deadline Infinite() { return Deadline(); }

  bool has_deadline() const { return has_deadline_; }

  bool expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Seconds until expiry; negative once expired, +inf without a deadline.
  double RemainingSeconds() const;

 private:
  bool has_deadline_ = false;
  Clock::time_point at_;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_CANCELLATION_H_
