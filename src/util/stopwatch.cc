#include "util/stopwatch.h"

namespace sxnm::util {

void PhaseTimer::Add(const std::string& name, double seconds) {
  auto [it, inserted] = seconds_.try_emplace(name, 0.0);
  if (inserted) order_.push_back(name);
  it->second += seconds;
}

double PhaseTimer::Seconds(const std::string& name) const {
  auto it = seconds_.find(name);
  return it == seconds_.end() ? 0.0 : it->second;
}

double PhaseTimer::SecondsOf(const std::vector<std::string>& names) const {
  double total = 0.0;
  for (const auto& n : names) total += Seconds(n);
  return total;
}

std::vector<std::pair<std::string, double>> PhaseTimer::Phases() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(order_.size());
  for (const auto& name : order_) out.emplace_back(name, Seconds(name));
  return out;
}

void PhaseTimer::Clear() {
  order_.clear();
  seconds_.clear();
}

void PhaseTimer::Merge(const PhaseTimer& other) {
  for (const auto& [name, secs] : other.Phases()) Add(name, secs);
}

}  // namespace sxnm::util
