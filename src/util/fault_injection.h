// Deterministic fault injection for chaos testing.
//
// A fault *site* is a stable string naming one failure-prone step inside
// the pipeline (e.g. "kg.row", "xml.node", "detector.pass"). Chaos tests
// arm a site to fire on its Nth hit; production code asks `ShouldFail`
// at the site and, when it fires, fails that step through its normal
// error path — proving the error actually propagates as a clean Status
// and never leaves an inconsistent result behind.
//
// Disarmed (the default, and the only state outside chaos tests) the
// whole mechanism is one relaxed atomic load per site check. Hit
// counting is deterministic per site as long as the instrumented step
// itself executes a deterministic number of times before the fault —
// which is why sites sit on serial or per-item deterministic code, not
// on racy fast paths.

#ifndef SXNM_UTIL_FAULT_INJECTION_H_
#define SXNM_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sxnm::util {

/// What happens when an armed fault fires. `kFail` makes ShouldFail
/// return true so the instrumented step fails through its normal error
/// path. `kKill` raises SIGKILL on the spot — the crash-consistency
/// tests use it to die *inside* a persistence step (mid snapshot write,
/// between fsync and rename) exactly as an OOM kill or node preemption
/// would, with no destructors and no atexit handlers running.
enum class FaultAction : uint8_t {
  kFail,
  kKill,
};

/// One armed fault: fire on the `fire_on_hit`-th call (1-based) of the
/// named site.
struct FaultSpec {
  std::string site;
  uint64_t fire_on_hit = 1;
  FaultAction action = FaultAction::kFail;
};

/// Process-wide injector. Thread-safe. Use ScopedFault in tests.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `site` to fire once, on its `fire_on_hit`-th hit from now
  /// (resets the site's hit counter). A `kKill` action terminates the
  /// process with SIGKILL at the hit instead of returning true.
  void Arm(std::string_view site, uint64_t fire_on_hit,
           FaultAction action = FaultAction::kFail);
  void Arm(const FaultSpec& spec) {
    Arm(spec.site, spec.fire_on_hit, spec.action);
  }

  /// Disarms one site / everything; DisarmAll also clears hit counters.
  void Disarm(std::string_view site);
  void DisarmAll();

  /// Counts a hit of `site`; true exactly when the armed shot fires (the
  /// site disarms itself after firing). Always false while nothing is
  /// armed — a single relaxed atomic load.
  bool ShouldFail(std::string_view site) {
    if (!any_armed_.load(std::memory_order_relaxed)) return false;
    return ShouldFailSlow(site);
  }

  /// Number of hits `site` has seen since it was last armed.
  uint64_t HitCount(std::string_view site) const;

 private:
  FaultInjector() = default;
  bool ShouldFailSlow(std::string_view site);

  struct SiteState {
    uint64_t fire_on_hit = 0;  // 0 = disarmed
    uint64_t hits = 0;
    FaultAction action = FaultAction::kFail;
  };

  std::atomic<bool> any_armed_{false};
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// RAII arming for tests: arms on construction, disarms its site on
/// destruction (whether or not it fired).
class ScopedFault {
 public:
  ScopedFault(std::string_view site, uint64_t fire_on_hit = 1)
      : site_(site) {
    FaultInjector::Instance().Arm(site_, fire_on_hit);
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_FAULT_INJECTION_H_
