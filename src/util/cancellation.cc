#include "util/cancellation.h"

#include <limits>

namespace sxnm::util {

double Deadline::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

}  // namespace sxnm::util
