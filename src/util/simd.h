// Portable SIMD primitives for the batched sliding-window pre-filters
// (sxnm/similarity_measure.cc). The filters work on struct-of-arrays
// float buffers — per-pair lower-bound distances, maximum lengths, and
// component weights — and these kernels do the bulk arithmetic:
//
//   AccumulateWeightedBound   acc += w * (1 - d/m), wsum += w
//   LessThanMask              out  = x < threshold
//
// Backend selection is compile-time: SSE2 on x86-64, NEON on AArch64,
// and a plain scalar loop elsewhere. Like SXNM_NATIVE_ARCH, the choice
// is a build knob: configuring with -DSXNM_SIMD=OFF (which defines
// SXNM_DISABLE_SIMD) forces the scalar backend everywhere, e.g. to
// bisect a suspected vectorization difference. The *Scalar variants are
// always available as the reference implementations the differential
// tests compare the active backend against.
//
// All kernels are element-wise with no cross-lane reductions, so scalar
// and vector backends agree to the last ulp on IEEE hardware (loads are
// unaligned; tails run the scalar loop).

#ifndef SXNM_UTIL_SIMD_H_
#define SXNM_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

#if !defined(SXNM_DISABLE_SIMD) && (defined(__SSE2__) || \
    (defined(_M_X64) && !defined(_M_ARM64EC)))
#define SXNM_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(SXNM_DISABLE_SIMD) && defined(__ARM_NEON)
#define SXNM_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sxnm::util::simd {

/// Name of the active backend: "sse2", "neon", or "scalar". Reported by
/// micro_similarity's `filters` section so bench JSON records what was
/// measured.
inline const char* BackendName() {
#if defined(SXNM_SIMD_SSE2)
  return "sse2";
#elif defined(SXNM_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Reference implementation of AccumulateWeightedBound: for every i,
///   acc[i]  += w[i] * (1 - d[i] / m[i])
///   wsum[i] += w[i]
/// `m[i]` must be positive for all i — callers park zero-weight slots at
/// (d, m, w) = (0, 1, 0), which contributes exactly nothing.
inline void AccumulateWeightedBoundScalar(size_t n, const float* d,
                                          const float* m, const float* w,
                                          float* acc, float* wsum) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += w[i] * (1.0f - d[i] / m[i]);
    wsum[i] += w[i];
  }
}

/// Reference implementation of LessThanMask: out[i] = x[i] < threshold.
inline void LessThanMaskScalar(size_t n, const float* x, float threshold,
                               uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = x[i] < threshold ? 1 : 0;
  }
}

/// acc[i] += w[i] * (1 - d[i]/m[i]); wsum[i] += w[i]. See the scalar
/// reference for the contract.
inline void AccumulateWeightedBound(size_t n, const float* d, const float* m,
                                    const float* w, float* acc, float* wsum) {
#if defined(SXNM_SIMD_SSE2)
  const __m128 ones = _mm_set1_ps(1.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 vd = _mm_loadu_ps(d + i);
    __m128 vm = _mm_loadu_ps(m + i);
    __m128 vw = _mm_loadu_ps(w + i);
    __m128 bound = _mm_sub_ps(ones, _mm_div_ps(vd, vm));
    __m128 vacc = _mm_loadu_ps(acc + i);
    _mm_storeu_ps(acc + i, _mm_add_ps(vacc, _mm_mul_ps(vw, bound)));
    __m128 vws = _mm_loadu_ps(wsum + i);
    _mm_storeu_ps(wsum + i, _mm_add_ps(vws, vw));
  }
  AccumulateWeightedBoundScalar(n - i, d + i, m + i, w + i, acc + i,
                                wsum + i);
#elif defined(SXNM_SIMD_NEON)
  const float32x4_t ones = vdupq_n_f32(1.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t vd = vld1q_f32(d + i);
    float32x4_t vm = vld1q_f32(m + i);
    float32x4_t vw = vld1q_f32(w + i);
    float32x4_t bound = vsubq_f32(ones, vdivq_f32(vd, vm));
    float32x4_t vacc = vld1q_f32(acc + i);
    vst1q_f32(acc + i, vmlaq_f32(vacc, vw, bound));
    float32x4_t vws = vld1q_f32(wsum + i);
    vst1q_f32(wsum + i, vaddq_f32(vws, vw));
  }
  AccumulateWeightedBoundScalar(n - i, d + i, m + i, w + i, acc + i,
                                wsum + i);
#else
  AccumulateWeightedBoundScalar(n, d, m, w, acc, wsum);
#endif
}

/// out[i] = x[i] < threshold ? 1 : 0.
inline void LessThanMask(size_t n, const float* x, float threshold,
                         uint8_t* out) {
#if defined(SXNM_SIMD_SSE2)
  const __m128 vt = _mm_set1_ps(threshold);
  const __m128 ones = _mm_set1_ps(1.0f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 mask = _mm_cmplt_ps(_mm_loadu_ps(x + i), vt);
    // 0/1 floats -> 0/1 int32 -> pack the low bytes by hand (SSE2 has no
    // narrowing store; four scalar stores of a 0/1 int are cheap enough).
    __m128i bits = _mm_cvttps_epi32(_mm_and_ps(mask, ones));
    alignas(16) int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), bits);
    out[i + 0] = static_cast<uint8_t>(lanes[0]);
    out[i + 1] = static_cast<uint8_t>(lanes[1]);
    out[i + 2] = static_cast<uint8_t>(lanes[2]);
    out[i + 3] = static_cast<uint8_t>(lanes[3]);
  }
  LessThanMaskScalar(n - i, x + i, threshold, out + i);
#elif defined(SXNM_SIMD_NEON)
  const float32x4_t vt = vdupq_n_f32(threshold);
  const uint32x4_t ones = vdupq_n_u32(1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t mask = vandq_u32(vcltq_f32(vld1q_f32(x + i), vt), ones);
    uint16x4_t half = vmovn_u32(mask);
    uint8x8_t bytes = vmovn_u16(vcombine_u16(half, half));
    out[i + 0] = vget_lane_u8(bytes, 0);
    out[i + 1] = vget_lane_u8(bytes, 1);
    out[i + 2] = vget_lane_u8(bytes, 2);
    out[i + 3] = vget_lane_u8(bytes, 3);
  }
  LessThanMaskScalar(n - i, x + i, threshold, out + i);
#else
  LessThanMaskScalar(n, x, threshold, out);
#endif
}

}  // namespace sxnm::util::simd

#endif  // SXNM_UTIL_SIMD_H_
