#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace sxnm::util {

namespace {

// SplitMix64: seeds the xoshiro state and hashes sub-stream labels.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t HashString(const std::string& s) {
  // FNV-1a 64-bit.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  // xoshiro256**
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  uint64_t threshold = -bound % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  double z1 = mag * std::sin(2.0 * M_PI * u2);
  spare_gaussian_ = z1;
  have_gaussian_ = true;
  return mean + stddev * z0;
}

size_t Rng::NextZipf(size_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling over the truncated zeta distribution. n is small
  // in our generators (vocabulary sizes), so the linear scan is fine.
  double norm = 0.0;
  for (size_t r = 0; r < n; ++r) norm += 1.0 / std::pow(double(r + 1), s);
  double target = NextDouble() * norm;
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(double(r + 1), s);
    if (acc >= target) return r;
  }
  return n - 1;
}

Rng Rng::Fork(const std::string& label) {
  uint64_t mix = state_[0] ^ Rotl(state_[3], 13) ^ HashString(label);
  return Rng(mix);
}

}  // namespace sxnm::util
