#include "util/proc_stat.h"

#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define SXNM_HAVE_RUSAGE 1
#endif

namespace sxnm::util {

bool ParseStatm(std::string_view statm, size_t page_size_bytes,
                ProcMemory* out) {
  // statm: "size resident shared text lib data dt" (pages). Only the
  // first two fields matter; trailing fields may be absent.
  size_t fields[2] = {0, 0};
  size_t pos = 0;
  for (size_t& field : fields) {
    while (pos < statm.size() && statm[pos] == ' ') ++pos;
    size_t start = pos;
    while (pos < statm.size() && statm[pos] >= '0' && statm[pos] <= '9') {
      field = field * 10 + static_cast<size_t>(statm[pos] - '0');
      ++pos;
    }
    if (pos == start) return false;
  }
  if (pos < statm.size() && statm[pos] != ' ' && statm[pos] != '\n') {
    return false;
  }
  out->vm_bytes = fields[0] * page_size_bytes;
  out->rss_bytes = fields[1] * page_size_bytes;
  return true;
}

bool ParseStatusThreads(std::string_view status, int* threads) {
  // /proc/<pid>/status is "Key:\tvalue" lines; find the "Threads:" line
  // at a line start so a value can never be mistaken for the key.
  constexpr std::string_view kKey = "Threads:";
  size_t pos = 0;
  while (pos < status.size()) {
    size_t eol = status.find('\n', pos);
    std::string_view line = status.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    if (line.substr(0, kKey.size()) == kKey) {
      size_t i = kKey.size();
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      size_t start = i;
      long value = 0;
      while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        value = value * 10 + (line[i] - '0');
        if (value > 1 << 30) return false;
        ++i;
      }
      if (i == start) return false;
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r')) {
        ++i;
      }
      if (i != line.size()) return false;
      *threads = static_cast<int>(value);
      return true;
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return false;
}

ProcCpu ReadProcCpu() {
  ProcCpu cpu;

#if defined(SXNM_HAVE_RUSAGE)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    cpu.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                       static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    cpu.sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                      static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
    cpu.sampled = true;
  }
#endif

#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    int threads = 0;
    if (ParseStatusThreads(std::string_view(buf, n), &threads)) {
      cpu.threads = threads;
    }
  }
#endif

  return cpu;
}

ProcMemory ReadProcMemory() {
  ProcMemory mem;

#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    char buf[256];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    long page = sysconf(_SC_PAGESIZE);
    if (page > 0 &&
        ParseStatm(std::string_view(buf, n), static_cast<size_t>(page),
                   &mem)) {
      mem.sampled = true;
    }
  }
#endif

#if defined(SXNM_HAVE_RUSAGE)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
    mem.peak_rss_bytes = static_cast<size_t>(usage.ru_maxrss);
#else
    mem.peak_rss_bytes = static_cast<size_t>(usage.ru_maxrss) * 1024;
#endif
    if (!mem.sampled) {
      // No /proc: the high-water mark is the best current-RSS estimate.
      mem.rss_bytes = mem.peak_rss_bytes;
    }
    mem.sampled = true;
  }
#endif

  return mem;
}

}  // namespace sxnm::util
