// Stable process exit codes for the command-line tools, so scripts and
// CI can distinguish failure stages without parsing stderr:
//
//   0  success
//   2  usage error (bad flags/arguments)
//   3  configuration error (config file failed to load or validate)
//   4  data parse error (malformed input document)
//   5  resource limit exceeded (depth/bytes/nodes/attrs/diagnostics caps)
//   6  cancelled or deadline exceeded
//   7  runtime error (anything else: IO, internal invariants, ...)
//   8  data loss (corrupt/torn snapshot or artifact; checksum mismatch)

#ifndef SXNM_UTIL_EXIT_CODE_H_
#define SXNM_UTIL_EXIT_CODE_H_

#include "util/status.h"

namespace sxnm::util {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitConfig = 3;
inline constexpr int kExitParse = 4;
inline constexpr int kExitResource = 5;
inline constexpr int kExitDeadline = 6;
inline constexpr int kExitRuntime = 7;
inline constexpr int kExitDataLoss = 8;

/// Maps a non-OK status to the exit code of its failure class. The
/// configuration stage is positional, not a status code — tools return
/// kExitConfig directly when loading the config fails.
inline int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kParseError:
      return kExitParse;
    case StatusCode::kResourceExhausted:
      return kExitResource;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      return kExitDeadline;
    case StatusCode::kDataLoss:
      return kExitDataLoss;
    default:
      return kExitRuntime;
  }
}

}  // namespace sxnm::util

#endif  // SXNM_UTIL_EXIT_CODE_H_
