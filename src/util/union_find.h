// Disjoint-set (union-find) structure with union-by-size and path
// compression. Backs the transitive-closure phase of SNM/SXNM: duplicate
// pairs are unions, the resulting partition is the cluster set.

#ifndef SXNM_UTIL_UNION_FIND_H_
#define SXNM_UTIL_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace sxnm::util {

class UnionFind {
 public:
  /// Creates `n` singleton sets, elements 0..n-1.
  explicit UnionFind(size_t n);

  /// Grows the universe to at least `n` elements (new elements are
  /// singletons). Shrinking is not supported; smaller `n` is a no-op.
  void Resize(size_t n);

  /// Number of elements in the universe.
  size_t size() const { return parent_.size(); }

  /// Returns the canonical representative of `x`'s set. `x < size()`.
  /// Amortized near-O(1); mutates internal state (path compression) but is
  /// logically const.
  size_t Find(size_t x) const;

  /// Merges the sets containing `a` and `b`. Returns true when they were
  /// previously distinct sets.
  bool Union(size_t a, size_t b);

  /// True when `a` and `b` are in the same set.
  bool Connected(size_t a, size_t b) const { return Find(a) == Find(b); }

  /// Number of elements in the set containing `x`.
  size_t SetSize(size_t x) const { return size_of_[Find(x)]; }

  /// Number of disjoint sets.
  size_t NumSets() const { return num_sets_; }

  /// Materializes the partition as a list of clusters, each a sorted list
  /// of element indices. Clusters are ordered by their smallest element.
  /// Set `min_size` to 2 to get only non-trivial clusters.
  std::vector<std::vector<size_t>> Clusters(size_t min_size = 1) const;

 private:
  mutable std::vector<size_t> parent_;
  std::vector<size_t> size_of_;
  size_t num_sets_ = 0;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_UNION_FIND_H_
