// Deterministic pseudo-random number generator used by the data generators.
//
// A thin wrapper over a SplitMix64/xoshiro256** pipeline with convenience
// distributions. All experiment data is generated from explicit seeds so
// that every figure in EXPERIMENTS.md is exactly reproducible.

#ifndef SXNM_UTIL_RNG_H_
#define SXNM_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sxnm::util {

class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams on all
  /// platforms (no std::random_device, no libstdc++-specific behaviour).
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit value (xoshiro256**).
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  /// Gaussian sample via Box-Muller, mean/stddev as given.
  double NextGaussian(double mean, double stddev);

  /// Zipf-like rank selection in [0, n): probability of rank r proportional
  /// to 1/(r+1)^s. Used to give generated vocabularies a realistic skew.
  size_t NextZipf(size_t n, double s);

  /// Picks a uniformly random element of `v`; `v` must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[NextBelow(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Creates an independent generator for a named sub-stream. Lets a
  /// generator hand out decorrelated child RNGs ("movies", "pollution", ...)
  /// without manual seed bookkeeping.
  Rng Fork(const std::string& label);

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_RNG_H_
