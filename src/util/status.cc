#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace sxnm::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

void StatusCheckFailed(const char* message) {
  std::fprintf(stderr, "sxnm: fatal: %s\n", message);
  std::fflush(stderr);
  std::abort();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sxnm::util
