// Plain-text table formatting for the benchmark harnesses.
//
// Every figure-reproduction bench prints its series as an aligned ASCII
// table (one row per sweep point, one column per line in the paper's graph)
// plus an optional CSV block for downstream plotting.

#ifndef SXNM_UTIL_TABLE_PRINTER_H_
#define SXNM_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sxnm::util {

class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `digits` decimals.
  void AddNumericRow(const std::vector<double>& cells, int digits = 4);

  size_t NumRows() const { return rows_.size(); }

  /// Renders an aligned table:
  ///   window | recall(K1) | recall(K2)
  ///   -------+------------+-----------
  ///        2 |     0.6120 |     0.4010
  std::string ToString() const;

  /// Renders as CSV (headers + rows, comma-separated, no quoting — cell
  /// content in this project never contains commas).
  std::string ToCsv() const;

  /// Prints ToString() to `os` followed by a newline.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_TABLE_PRINTER_H_
