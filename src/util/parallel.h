// Small threading utilities for the parallel sliding-window engine.
//
// The detector's window passes are independent of each other (they only
// read the GK relation and append to pass-local buffers), so the natural
// execution model is a parallel-for over pass descriptors followed by a
// deterministic serial merge. `ParallelFor` covers that pattern;
// `ThreadPool` is the underlying reusable pool for callers that want to
// submit heterogeneous tasks.

#ifndef SXNM_UTIL_PARALLEL_H_
#define SXNM_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancellation.h"

namespace sxnm::util {

/// Number of hardware threads, at least 1 (hardware_concurrency may
/// report 0 on exotic platforms).
size_t HardwareThreads();

/// Resolves a `num_threads` configuration value: 0 means "auto" (all
/// hardware threads), anything else is used as-is.
size_t ResolveNumThreads(size_t configured);

/// A fixed-size pool of worker threads draining one shared task queue.
/// Tasks must not block on other tasks of the same pool (no nested
/// Submit+Wait from inside a task), which is all the detector needs: it
/// submits one flat batch per depth level and waits.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. Tasks may run in any order and on any worker.
  /// Exceptions must not escape the task (the pool has no channel to
  /// report them; the detector's tasks are noexcept by construction).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // queue became non-empty / shutdown
  std::condition_variable all_done_;     // pending_ dropped to zero
  std::deque<std::function<void()>> queue_;
  size_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for every i in [0, n), distributing iterations over up to
/// `num_threads` threads (work-stealing via a shared atomic index, so
/// uneven iteration costs balance out). `num_threads <= 1` or `n <= 1`
/// runs inline on the calling thread — the zero-dependency serial path.
///
/// `fn` must be safe to call concurrently for distinct `i` and must not
/// throw. The call returns after every iteration has finished.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// Cancellable variant: iterations are claimed in increasing index order
/// from a shared counter; once `token` reports cancellation no further
/// iteration is claimed (iterations already in flight complete). Because
/// claims are ordered, the set of executed iterations is always a prefix
/// [0, k) of the index space; returns k. k == n means the loop ran to
/// completion. A default token degenerates to ParallelFor.
size_t ParallelForCancellable(size_t n, size_t num_threads,
                              const CancellationToken& token,
                              const std::function<void(size_t)>& fn);

}  // namespace sxnm::util

#endif  // SXNM_UTIL_PARALLEL_H_
