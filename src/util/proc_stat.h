// Process memory accounting for the telemetry layer: current RSS and
// virtual size from /proc/self/statm on Linux, peak RSS from
// getrusage(2). Platforms without /proc fall back to rusage alone, and
// platforms without either report zeros with sampled == false — callers
// (the telemetry sampler, sxnm_top) treat zero-memory samples as
// "unavailable", never as an error.

#ifndef SXNM_UTIL_PROC_STAT_H_
#define SXNM_UTIL_PROC_STAT_H_

#include <cstddef>
#include <string_view>

namespace sxnm::util {

/// One point-in-time memory reading of the calling process.
struct ProcMemory {
  size_t rss_bytes = 0;       // current resident set size
  size_t peak_rss_bytes = 0;  // high-water resident set size
  size_t vm_bytes = 0;        // virtual size (0 where unavailable)
  bool sampled = false;       // false: no source on this platform
};

/// Reads the current process's memory accounting. Cheap enough to call
/// at telemetry-sampler frequency (one small /proc read + one syscall).
ProcMemory ReadProcMemory();

/// Parses the first two fields of a /proc/<pid>/statm line (total
/// program size and resident set size, in pages) into vm/rss bytes.
/// Returns false on malformed input; exposed for tests and for reading
/// other processes' statm files.
bool ParseStatm(std::string_view statm, size_t page_size_bytes,
                ProcMemory* out);

/// One point-in-time CPU reading of the calling process: cumulative
/// user/system CPU seconds (getrusage, all threads) plus the current
/// thread count (/proc/self/status on Linux, 0 where unavailable).
struct ProcCpu {
  double user_seconds = 0.0;  // cumulative user CPU, all threads
  double sys_seconds = 0.0;   // cumulative system CPU, all threads
  int threads = 0;            // live threads (0: unknown on this platform)
  bool sampled = false;       // false: no CPU source on this platform
};

/// Reads the current process's CPU accounting. Telemetry-sampler cheap
/// (one syscall + one small /proc read).
ProcCpu ReadProcCpu();

/// Extracts the "Threads:" field from /proc/<pid>/status content.
/// Returns false when the field is missing or malformed; exposed for
/// tests and for reading other processes' status files.
bool ParseStatusThreads(std::string_view status, int* threads);

}  // namespace sxnm::util

#endif  // SXNM_UTIL_PROC_STAT_H_
