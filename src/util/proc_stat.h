// Process memory accounting for the telemetry layer: current RSS and
// virtual size from /proc/self/statm on Linux, peak RSS from
// getrusage(2). Platforms without /proc fall back to rusage alone, and
// platforms without either report zeros with sampled == false — callers
// (the telemetry sampler, sxnm_top) treat zero-memory samples as
// "unavailable", never as an error.

#ifndef SXNM_UTIL_PROC_STAT_H_
#define SXNM_UTIL_PROC_STAT_H_

#include <cstddef>
#include <string_view>

namespace sxnm::util {

/// One point-in-time memory reading of the calling process.
struct ProcMemory {
  size_t rss_bytes = 0;       // current resident set size
  size_t peak_rss_bytes = 0;  // high-water resident set size
  size_t vm_bytes = 0;        // virtual size (0 where unavailable)
  bool sampled = false;       // false: no source on this platform
};

/// Reads the current process's memory accounting. Cheap enough to call
/// at telemetry-sampler frequency (one small /proc read + one syscall).
ProcMemory ReadProcMemory();

/// Parses the first two fields of a /proc/<pid>/statm line (total
/// program size and resident set size, in pages) into vm/rss bytes.
/// Returns false on malformed input; exposed for tests and for reading
/// other processes' statm files.
bool ParseStatm(std::string_view statm, size_t page_size_bytes,
                ProcMemory* out);

}  // namespace sxnm::util

#endif  // SXNM_UTIL_PROC_STAT_H_
