#include "util/union_find.h"

#include <algorithm>
#include <numeric>

namespace sxnm::util {

UnionFind::UnionFind(size_t n) : parent_(n), size_of_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

void UnionFind::Resize(size_t n) {
  if (n <= parent_.size()) return;
  size_t old = parent_.size();
  parent_.resize(n);
  size_of_.resize(n, 1);
  for (size_t i = old; i < n; ++i) parent_[i] = i;
  num_sets_ += n - old;
}

size_t UnionFind::Find(size_t x) const {
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_of_[ra] < size_of_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_of_[ra] += size_of_[rb];
  --num_sets_;
  return true;
}

std::vector<std::vector<size_t>> UnionFind::Clusters(size_t min_size) const {
  // Group members by root, preserving ascending element order within each
  // cluster (elements are visited in increasing index order).
  std::vector<std::vector<size_t>> by_root(parent_.size());
  for (size_t i = 0; i < parent_.size(); ++i) by_root[Find(i)].push_back(i);

  std::vector<std::vector<size_t>> clusters;
  for (auto& members : by_root) {
    if (members.size() >= min_size && !members.empty()) {
      clusters.push_back(std::move(members));
    }
  }
  // `by_root[root]` is keyed by root index; order clusters by smallest member.
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return clusters;
}

}  // namespace sxnm::util
