// Insert-only open-addressed hash set of non-zero 64-bit keys.
//
// The detector's merge phase dedupes one packed ordinal pair per
// classification — millions of inserts per run — and libstdc++'s
// node-based unordered_set pays a heap allocation plus two dependent
// cache misses for every one of them. This set stores keys in a single
// flat power-of-two array (linear probing, load factor <= 0.5), so an
// insert is one hash, one probe chain in contiguous memory, and no
// allocation. Key 0 is reserved as the empty-slot sentinel; the
// detector's packed pairs (lo << 32 | hi with lo < hi, so hi >= 1) are
// never 0, matching the VerdictCache convention.
//
// Not thread-safe; single-writer like the merge itself.

#ifndef SXNM_UTIL_FLAT_SET_H_
#define SXNM_UTIL_FLAT_SET_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sxnm::util {

/// Finalizer-style mixer (splitmix64): packed pairs are highly regular
/// (adjacent ordinals), so identity hashing would cluster probes.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class FlatU64Set {
 public:
  FlatU64Set() = default;

  /// Ensures capacity for `n` keys total without rehashing mid-insert.
  void Reserve(size_t n) {
    size_t capacity = kMinCapacity;
    while (capacity < n * 2) capacity <<= 1;
    if (capacity > slots_.size()) Rehash(capacity);
  }

  /// Inserts `key` (must be non-zero); returns true when newly inserted.
  bool Insert(uint64_t key) {
    assert(key != 0);
    if (slots_.empty()) Rehash(kMinCapacity);
    size_t slot = static_cast<size_t>(MixHash64(key)) & mask_;
    while (slots_[slot] != 0) {
      if (slots_[slot] == key) return false;
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = key;
    if (++size_ * 2 > slots_.size()) Rehash(slots_.size() * 2);
    return true;
  }

  bool Contains(uint64_t key) const {
    assert(key != 0);
    if (slots_.empty()) return false;
    size_t slot = static_cast<size_t>(MixHash64(key)) & mask_;
    while (slots_[slot] != 0) {
      if (slots_[slot] == key) return true;
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  /// Hints the key's home slot into cache ahead of an Insert/Contains.
  /// With load factor <= 0.5 probe chains are almost always length 1, so
  /// prefetching the home line hides the DRAM miss of a cold probe.
  void PrefetchKey(uint64_t key) const {
    if (slots_.empty()) return;
    size_t slot = static_cast<size_t>(MixHash64(key)) & mask_;
    __builtin_prefetch(&slots_[slot], /*rw=*/1);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr size_t kMinCapacity = 16;

  void Rehash(size_t capacity) {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (uint64_t key : old) {
      if (key == 0) continue;
      size_t slot = static_cast<size_t>(MixHash64(key)) & mask_;
      while (slots_[slot] != 0) slot = (slot + 1) & mask_;
      slots_[slot] = key;
    }
  }

  std::vector<uint64_t> slots_;  // 0 = empty
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_FLAT_SET_H_
