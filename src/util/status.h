// Lightweight error-handling primitives used across the SXNM codebase.
//
// The library does not throw exceptions across API boundaries (parsing user
// input, loading configuration, evaluating XPath expressions can all fail for
// data-dependent reasons). Fallible operations return `Status` or
// `Result<T>`, both of which carry a human-readable error message.

#ifndef SXNM_UTIL_STATUS_H_
#define SXNM_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace sxnm::util {

// Broad machine-readable classification of an error. Kept deliberately
// small; the message carries the details.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (bad pattern, ...)
  kParseError,        // malformed input data (XML, config, ...)
  kNotFound,          // a referenced entity does not exist (path id, ...)
  kFailedPrecondition,// operation not valid in the current state
  kInternal,          // invariant violation inside the library
  kCancelled,         // the caller requested cancellation mid-run
  kDeadlineExceeded,  // a configured deadline expired before completion
  kResourceExhausted, // a configured resource limit (depth, bytes, nodes,
                      // comparison budget, ...) was reached
  kDataLoss,          // persisted data is unrecoverably corrupt or torn
                      // (bad checksum, truncated frame, failed fsync)
};

/// Returns a short stable name for `code`, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

/// Prints `message` to stderr and aborts. Used for Status/Result invariant
/// violations: these are hard checks, active in release builds too —
/// accessing `value()` of an error Result must never be silent UB.
[[noreturn]] void StatusCheckFailed(const char* message);

namespace internal {
inline void StatusCheck(bool ok, const char* message) {
  if (!ok) StatusCheckFailed(message);
}
}  // namespace internal

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk — use the default constructor for success. Hard-checked
  /// (aborts with a message) in all build modes.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    internal::StatusCheck(code_ != StatusCode::kOk,
                          "Status constructed with kOk and a message; use "
                          "Status::Ok()");
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error, in the spirit of absl::StatusOr / std::expected.
///
/// Usage:
///   Result<Document> doc = Parser::Parse(input);
///   if (!doc.ok()) return doc.status();
///   Use(doc.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    internal::StatusCheck(
        !status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors require `ok()`; hard-checked (abort with message) in all
  /// build modes — an error Result has no value to hand out.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const {
    CheckHasValue();
    return &*value_;
  }
  T* operator->() {
    CheckHasValue();
    return &*value_;
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      StatusCheckFailed(("Result::value() called on error Result: " +
                         status_.ToString()).c_str());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace sxnm::util

// Propagates a non-OK Status from an expression, mirroring
// absl's RETURN_IF_ERROR.
#define SXNM_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::sxnm::util::Status sxnm_status__ = (expr);     \
    if (!sxnm_status__.ok()) return sxnm_status__;   \
  } while (false)

#endif  // SXNM_UTIL_STATUS_H_
