// Wall-clock timing utilities for the scalability experiments (Fig. 5).
//
// `Stopwatch` measures one interval; `PhaseTimer` accumulates named phases
// (key generation, sliding window, transitive closure) across an entire
// detection run, mirroring the KG/SW/TC/DD breakdown in the paper.

#ifndef SXNM_UTIL_STOPWATCH_H_
#define SXNM_UTIL_STOPWATCH_H_

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace sxnm::util {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Discards accumulated time and starts running from now.
  void Restart() {
    start_ = Clock::now();
    accumulated_ = 0.0;
    running_ = true;
  }

  /// Stops the watch, banking the running segment into the accumulated
  /// total. No-op while paused. Pause/Resume let one watch measure a
  /// phase that is suspended and picked up again — e.g. a span that
  /// waits on the thread pool, or per-row normalization time summed
  /// across a key-generation loop.
  void Pause() {
    if (!running_) return;
    accumulated_ += SegmentSeconds();
    running_ = false;
  }

  /// Starts a new running segment. No-op while already running.
  void Resume() {
    if (running_) return;
    start_ = Clock::now();
    running_ = true;
  }

  bool IsRunning() const { return running_; }

  /// Accumulated seconds across all segments, including the currently
  /// running one. Equals time-since-Restart when never paused.
  double ElapsedSeconds() const {
    return accumulated_ + (running_ ? SegmentSeconds() : 0.0);
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;

  double SegmentSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  Clock::time_point start_;
  double accumulated_ = 0.0;
  bool running_ = true;
};

/// Accumulates elapsed seconds into named phases. Not thread-safe (the
/// detector is single-threaded, as in the paper).
class PhaseTimer {
 public:
  /// Adds `seconds` to phase `name`, creating it on first use.
  void Add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name`; 0 if the phase never ran.
  double Seconds(const std::string& name) const;

  /// Sum over a set of phases (e.g. DD = SW + TC).
  double SecondsOf(const std::vector<std::string>& names) const;

  /// All phases in insertion order as (name, seconds).
  std::vector<std::pair<std::string, double>> Phases() const;

  void Clear();

  /// Merges another timer's phases into this one.
  void Merge(const PhaseTimer& other);

 private:
  std::vector<std::string> order_;
  std::map<std::string, double> seconds_;
};

/// RAII helper: measures its own lifetime into `timer`/`phase`.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ~ScopedPhase() { timer_->Add(phase_, watch_.ElapsedSeconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace sxnm::util

#endif  // SXNM_UTIL_STOPWATCH_H_
