#include "util/parallel.h"

#include <atomic>

namespace sxnm::util {

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ResolveNumThreads(size_t configured) {
  return configured == 0 ? HardwareThreads() : configured;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

size_t ParallelForCancellable(size_t n, size_t num_threads,
                              const CancellationToken& token,
                              const std::function<void(size_t)>& fn) {
  if (!token.can_be_cancelled()) {
    ParallelFor(n, num_threads, fn);
    return n;
  }
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (token.cancelled()) return i;
      fn(i);
    }
    return n;
  }

  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      if (token.cancelled()) return;
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  std::vector<std::thread> helpers;
  helpers.reserve(num_threads - 1);
  for (size_t t = 1; t < num_threads; ++t) helpers.emplace_back(drain);
  drain();
  for (std::thread& t : helpers) t.join();
  // Claims are handed out in increasing order, so the executed set is the
  // prefix [0, min(n, counter)).
  return std::min(n, next.load(std::memory_order_relaxed));
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  std::vector<std::thread> helpers;
  helpers.reserve(num_threads - 1);
  for (size_t t = 1; t < num_threads; ++t) helpers.emplace_back(drain);
  drain();  // the calling thread participates
  for (std::thread& t : helpers) t.join();
}

}  // namespace sxnm::util
