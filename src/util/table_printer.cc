#include "util/table_printer.h"

#include <algorithm>

#include "util/string_util.h"

namespace sxnm::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells,
                                 int digits) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto pad = [](const std::string& s, size_t w) {
    return std::string(w - s.size(), ' ') + s;
  };

  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += " | ";
    out += pad(headers_[c], width[c]);
  }
  out += '\n';
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "-+-";
    out += std::string(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += " | ";
      out += pad(row[c], width[c]);
    }
    out += '\n';
  }
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out = Join(headers_, ",");
  out += '\n';
  for (const auto& row : rows_) {
    out += Join(row, ",");
    out += '\n';
  }
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString() << "\n"; }

}  // namespace sxnm::util
