// Flat relational records — the substrate of the classic Sorted
// Neighborhood Method (Sec. 2.2 of the paper), kept deliberately simple:
// a schema (ordered field names) plus rows of string fields.

#ifndef SXNM_RELATIONAL_RECORD_H_
#define SXNM_RELATIONAL_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

namespace sxnm::relational {

/// One tuple; fields positionally match the owning table's schema.
struct Record {
  std::vector<std::string> fields;

  const std::string& field(size_t index) const { return fields[index]; }
};

/// Ordered field names of a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names)
      : field_names_(std::move(field_names)) {}

  size_t NumFields() const { return field_names_.size(); }
  const std::vector<std::string>& field_names() const { return field_names_; }

  /// Index of `name`, or -1 when absent.
  int FieldIndex(std::string_view name) const;

 private:
  std::vector<std::string> field_names_;
};

/// A relation instance: schema + rows. Row indices are the record IDs used
/// in duplicate pairs and clusters.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t NumRecords() const { return records_.size(); }
  const Record& record(size_t index) const { return records_[index]; }
  const std::vector<Record>& records() const { return records_; }

  /// Appends a record; must have exactly schema().NumFields() fields.
  /// Returns the new record's index.
  size_t AddRecord(Record record);

  /// Convenience for tests: AddRecord from an initializer list.
  size_t AddRow(std::vector<std::string> fields);

 private:
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace sxnm::relational

#endif  // SXNM_RELATIONAL_RECORD_H_
