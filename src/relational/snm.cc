#include "relational/snm.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "util/union_find.h"

namespace sxnm::relational {

namespace {

// Sorts record indices by their generated keys (stable: ties keep document
// order, which makes results deterministic).
std::vector<size_t> SortByKey(const std::vector<std::string>& keys) {
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  return order;
}

void FinishResult(const Table& table, const SnmOptions& options,
                  std::set<RecordPair>& accepted, SnmResult& result) {
  result.duplicate_pairs.assign(accepted.begin(), accepted.end());
  if (options.transitive_closure) {
    util::Stopwatch watch;
    util::UnionFind uf(table.NumRecords());
    for (const auto& [a, b] : result.duplicate_pairs) uf.Union(a, b);
    result.clusters = uf.Clusters();
    result.stats.timer.Add("closure", watch.ElapsedSeconds());
  }
}

}  // namespace

SnmResult RunSnm(const Table& table, const std::vector<KeyFn>& keys,
                 const MatchFn& match, const SnmOptions& options) {
  assert(options.window_size >= 2);
  SnmResult result;
  result.stats.passes = keys.size();
  std::set<RecordPair> accepted;
  std::set<RecordPair> compared;

  for (const KeyFn& key_fn : keys) {
    // Key generation.
    util::Stopwatch watch;
    std::vector<std::string> pass_keys;
    pass_keys.reserve(table.NumRecords());
    for (const Record& r : table.records()) pass_keys.push_back(key_fn(r));
    result.stats.timer.Add("key_generation", watch.ElapsedSeconds());

    // Sort.
    watch.Restart();
    std::vector<size_t> order = SortByKey(pass_keys);
    result.stats.timer.Add("sort", watch.ElapsedSeconds());

    // Sliding window.
    watch.Restart();
    size_t w = options.window_size;
    for (size_t i = 0; i < order.size(); ++i) {
      size_t lo = (i >= w - 1) ? i - (w - 1) : 0;
      for (size_t j = lo; j < i; ++j) {
        size_t a = order[j];
        size_t b = order[i];
        RecordPair pair = std::minmax(a, b);
        if (!compared.insert(pair).second) continue;  // seen in earlier pass
        ++result.stats.comparisons;
        if (match(table.record(a), table.record(b))) {
          accepted.insert(pair);
          ++result.stats.matched_pairs;
        }
      }
    }
    result.stats.timer.Add("window", watch.ElapsedSeconds());
  }

  FinishResult(table, options, accepted, result);
  return result;
}

SnmResult RunDeSnm(const Table& table, const std::vector<KeyFn>& keys,
                   const MatchFn& match, const SnmOptions& options) {
  assert(options.window_size >= 2);
  SnmResult result;
  result.stats.passes = keys.size();
  std::set<RecordPair> accepted;
  std::set<RecordPair> compared;

  for (const KeyFn& key_fn : keys) {
    util::Stopwatch watch;
    std::vector<std::string> pass_keys;
    pass_keys.reserve(table.NumRecords());
    for (const Record& r : table.records()) pass_keys.push_back(key_fn(r));
    result.stats.timer.Add("key_generation", watch.ElapsedSeconds());

    // Duplicate elimination: group records by exact key.
    watch.Restart();
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < pass_keys.size(); ++i) {
      groups[pass_keys[i]].push_back(i);
    }
    // Exact-key groups are duplicates by definition of DE-SNM (the key is
    // assumed discriminating); link members to the representative.
    for (const auto& [key, members] : groups) {
      (void)key;
      for (size_t m = 1; m < members.size(); ++m) {
        accepted.insert(std::minmax(members[0], members[m]));
        ++result.stats.matched_pairs;
      }
    }
    result.stats.timer.Add("sort", watch.ElapsedSeconds());

    // Window over distinct keys only (std::map iteration is key-sorted).
    watch.Restart();
    std::vector<size_t> reps;
    reps.reserve(groups.size());
    for (const auto& [key, members] : groups) {
      (void)key;
      reps.push_back(members.front());
    }
    size_t w = options.window_size;
    for (size_t i = 0; i < reps.size(); ++i) {
      size_t lo = (i >= w - 1) ? i - (w - 1) : 0;
      for (size_t j = lo; j < i; ++j) {
        RecordPair pair = std::minmax(reps[j], reps[i]);
        if (accepted.count(pair) != 0) continue;
        if (!compared.insert(pair).second) continue;
        ++result.stats.comparisons;
        if (match(table.record(pair.first), table.record(pair.second))) {
          accepted.insert(pair);
          ++result.stats.matched_pairs;
        }
      }
    }
    result.stats.timer.Add("window", watch.ElapsedSeconds());
  }

  FinishResult(table, options, accepted, result);
  return result;
}

SnmResult RunNaiveAllPairs(const Table& table, const MatchFn& match,
                           bool transitive_closure) {
  SnmResult result;
  result.stats.passes = 1;
  std::set<RecordPair> accepted;

  util::Stopwatch watch;
  for (size_t a = 0; a < table.NumRecords(); ++a) {
    for (size_t b = a + 1; b < table.NumRecords(); ++b) {
      ++result.stats.comparisons;
      if (match(table.record(a), table.record(b))) {
        accepted.insert({a, b});
        ++result.stats.matched_pairs;
      }
    }
  }
  result.stats.timer.Add("window", watch.ElapsedSeconds());

  SnmOptions options;
  options.transitive_closure = transitive_closure;
  FinishResult(table, options, accepted, result);
  return result;
}

SnmResult RunBlocking(const Table& table, const std::vector<KeyFn>& keys,
                      const MatchFn& match, bool transitive_closure) {
  SnmResult result;
  result.stats.passes = keys.size();
  std::set<RecordPair> accepted;
  std::set<RecordPair> compared;

  for (const KeyFn& key_fn : keys) {
    util::Stopwatch watch;
    std::map<std::string, std::vector<size_t>> blocks;
    for (size_t i = 0; i < table.NumRecords(); ++i) {
      blocks[key_fn(table.record(i))].push_back(i);
    }
    result.stats.timer.Add("key_generation", watch.ElapsedSeconds());

    watch.Restart();
    for (const auto& [key, members] : blocks) {
      (void)key;
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          RecordPair pair = std::minmax(members[a], members[b]);
          if (!compared.insert(pair).second) continue;
          ++result.stats.comparisons;
          if (match(table.record(pair.first), table.record(pair.second))) {
            accepted.insert(pair);
            ++result.stats.matched_pairs;
          }
        }
      }
    }
    result.stats.timer.Add("window", watch.ElapsedSeconds());
  }

  SnmOptions options;
  options.transitive_closure = transitive_closure;
  FinishResult(table, options, accepted, result);
  return result;
}

MatchFn MakeWeightedFieldMatch(std::vector<size_t> fields,
                               std::vector<double> weights,
                               std::vector<text::SimilarityFn> sims,
                               double threshold) {
  assert(fields.size() == weights.size());
  assert(fields.size() == sims.size());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) total = 1.0;
  for (double& w : weights) w /= total;

  return [fields = std::move(fields), weights = std::move(weights),
          sims = std::move(sims),
          threshold](const Record& a, const Record& b) {
    double sim = 0.0;
    for (size_t i = 0; i < fields.size(); ++i) {
      sim += weights[i] * sims[i](a.field(fields[i]), b.field(fields[i]));
    }
    return sim >= threshold;
  };
}

}  // namespace sxnm::relational
