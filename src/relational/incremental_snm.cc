#include "relational/incremental_snm.h"

#include <algorithm>
#include <cassert>

#include "util/union_find.h"

namespace sxnm::relational {

IncrementalSnm::IncrementalSnm(Schema schema, std::vector<KeyFn> keys,
                               MatchFn match, SnmOptions options)
    : table_(std::move(schema)),
      key_fns_(std::move(keys)),
      match_(std::move(match)),
      options_(options),
      sorted_(key_fns_.size()) {
  assert(options_.window_size >= 2);
  stats_.passes = key_fns_.size();
}

std::vector<RecordPair> IncrementalSnm::AddBatch(std::vector<Record> batch) {
  std::vector<RecordPair> newly_accepted;

  for (Record& record : batch) {
    size_t index = table_.AddRecord(std::move(record));

    for (size_t pass = 0; pass < key_fns_.size(); ++pass) {
      util::Stopwatch watch;
      std::string key = key_fns_[pass](table_.record(index));
      stats_.timer.Add("key_generation", watch.ElapsedSeconds());

      watch.Restart();
      auto& run = sorted_[pass];
      // upper_bound keeps insertion order among equal keys (stability).
      auto pos = std::upper_bound(
          run.begin(), run.end(), key,
          [](const std::string& k, const std::pair<std::string, size_t>& e) {
            return k < e.first;
          });
      size_t insert_at = static_cast<size_t>(pos - run.begin());
      stats_.timer.Add("sort", watch.ElapsedSeconds());

      // Compare against w-1 neighbors on each side of the insertion
      // position.
      watch.Restart();
      size_t w = options_.window_size;
      size_t lo = insert_at >= (w - 1) ? insert_at - (w - 1) : 0;
      size_t hi = std::min(run.size(), insert_at + (w - 1));
      for (size_t j = lo; j < hi; ++j) {
        RecordPair pair = std::minmax(run[j].second, index);
        if (!compared_.insert(pair).second) continue;
        ++stats_.comparisons;
        if (match_(table_.record(pair.first), table_.record(pair.second))) {
          ++stats_.matched_pairs;
          accepted_.insert(pair);
          newly_accepted.push_back(pair);
        }
      }
      run.insert(run.begin() + static_cast<long>(insert_at),
                 {std::move(key), index});
      stats_.timer.Add("window", watch.ElapsedSeconds());
    }
  }

  std::sort(newly_accepted.begin(), newly_accepted.end());
  return newly_accepted;
}

SnmResult IncrementalSnm::Snapshot() const {
  SnmResult result;
  result.duplicate_pairs.assign(accepted_.begin(), accepted_.end());
  result.stats = stats_;
  if (options_.transitive_closure) {
    util::UnionFind uf(table_.NumRecords());
    for (const auto& [a, b] : result.duplicate_pairs) uf.Union(a, b);
    result.clusters = uf.Clusters();
  }
  return result;
}

}  // namespace sxnm::relational
