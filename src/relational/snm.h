// The classic Sorted Neighborhood Method of Hernández & Stolfo, plus the
// baselines the paper positions itself against:
//
//   * Snm          — key generation, sort, sliding window; multi-pass;
//                    transitive closure (Sec. 2.2 of the paper)
//   * DeSnm        — Duplicate-Elimination SNM [Hernández '96]: records
//                    with identical keys are merged before windowing, the
//                    window slides over *distinct* keys (outlook, Sec. 5)
//   * NaiveAllPairs— quadratic baseline, the effectiveness ceiling
//   * Blocking     — compare only within equal-key blocks, the classic
//                    cheap alternative to windowing
//
// All algorithms report comparison counts and duplicate pairs so the
// ablation benches can chart effectiveness-vs-work trade-offs.

#ifndef SXNM_RELATIONAL_SNM_H_
#define SXNM_RELATIONAL_SNM_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "relational/record.h"
#include "text/similarity.h"
#include "util/stopwatch.h"

namespace sxnm::relational {

/// Extracts the sort key of a record for one pass.
using KeyFn = std::function<std::string(const Record&)>;

/// Decides whether two records are duplicates (the "equational theory"
/// combined with a similarity threshold).
using MatchFn = std::function<bool(const Record&, const Record&)>;

/// A record pair, ordered (first < second).
using RecordPair = std::pair<size_t, size_t>;

struct SnmOptions {
  /// Sliding window size w >= 2. The window advances one position at a
  /// time; each record is compared with the w-1 records preceding it in
  /// sort order, so every pair within sort distance < w is compared once
  /// per pass.
  size_t window_size = 10;

  /// Apply the transitive closure over pairs from all passes.
  bool transitive_closure = true;
};

struct SnmStats {
  size_t comparisons = 0;       // match-function invocations
  size_t matched_pairs = 0;     // pairs the match function accepted
  size_t passes = 0;            // number of keys used
  util::PhaseTimer timer;       // "key_generation", "sort", "window",
                                // "closure"
};

struct SnmResult {
  /// Accepted pairs (deduplicated across passes), each ordered and sorted.
  std::vector<RecordPair> duplicate_pairs;

  /// Clusters after transitive closure (all records; singletons included),
  /// ordered by smallest member. Empty when closure was disabled.
  std::vector<std::vector<size_t>> clusters;

  SnmStats stats;
};

/// Runs multi-pass SNM over `table`: one pass per entry of `keys`.
/// `match` is consulted for every windowed pair.
SnmResult RunSnm(const Table& table, const std::vector<KeyFn>& keys,
                 const MatchFn& match, const SnmOptions& options);

/// Duplicate-Elimination SNM: per pass, records with byte-identical keys
/// are pre-merged (they are trivially duplicates of each other when the
/// key is chosen to be discriminating); the window then slides over the
/// distinct keys only, with each distinct key represented by its first
/// record. Matches between representatives are expanded to their groups
/// by the transitive closure.
SnmResult RunDeSnm(const Table& table, const std::vector<KeyFn>& keys,
                   const MatchFn& match, const SnmOptions& options);

/// Quadratic baseline: every unordered pair is compared.
SnmResult RunNaiveAllPairs(const Table& table, const MatchFn& match,
                           bool transitive_closure = true);

/// Standard blocking: records are grouped by each key's value; all pairs
/// inside a block are compared. (Equivalent to windowing with unbounded
/// window inside exact-key groups.)
SnmResult RunBlocking(const Table& table, const std::vector<KeyFn>& keys,
                      const MatchFn& match, bool transitive_closure = true);

/// Builds a MatchFn from per-field weighted similarities: the weighted
/// average of φ(field_i) is compared against `threshold`. `weights` must
/// be parallel to the field indices in `fields`; weights are normalized
/// internally.
MatchFn MakeWeightedFieldMatch(std::vector<size_t> fields,
                               std::vector<double> weights,
                               std::vector<text::SimilarityFn> sims,
                               double threshold);

}  // namespace sxnm::relational

#endif  // SXNM_RELATIONAL_SNM_H_
