// Incremental Sorted Neighborhood Method (Sec. 2.2 of the paper: "for
// large amounts of data as well as for repeatedly updated data there
// exists an incremental version of the method dealing with how to combine
// data that have already been deduplicated with new data packets").
//
// The detector keeps, per key, the sorted key sequence of everything seen
// so far. A new data packet is merged in record by record: each new
// record is compared against the w-1 records on *both* sides of its
// insertion position. Old-old pairs are never re-compared.
//
// Guarantee (tested): after any sequence of AddBatch calls, the accepted
// pairs are a superset of what one batch run of RunSnm over the full
// table (same keys/window/match) would accept — insertions can only have
// compared *more* neighborhoods, never fewer.

#ifndef SXNM_RELATIONAL_INCREMENTAL_SNM_H_
#define SXNM_RELATIONAL_INCREMENTAL_SNM_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "relational/snm.h"

namespace sxnm::relational {

class IncrementalSnm {
 public:
  /// `keys`, `match` and `options` play the same roles as in RunSnm.
  IncrementalSnm(Schema schema, std::vector<KeyFn> keys, MatchFn match,
                 SnmOptions options);

  /// Merges a packet of new records. Returns the pairs newly accepted
  /// while processing this packet (global record indices, ordered).
  std::vector<RecordPair> AddBatch(std::vector<Record> batch);

  /// All records seen so far (indices are global and stable).
  const Table& table() const { return table_; }

  size_t NumRecords() const { return table_.NumRecords(); }

  /// All accepted pairs so far, with the transitive closure applied
  /// (unless options.transitive_closure is false) and cumulative stats.
  SnmResult Snapshot() const;

 private:
  Table table_;
  std::vector<KeyFn> key_fns_;
  MatchFn match_;
  SnmOptions options_;

  // Per pass: (key, record index), sorted by key then insertion order.
  std::vector<std::vector<std::pair<std::string, size_t>>> sorted_;

  std::set<RecordPair> accepted_;
  std::set<RecordPair> compared_;
  SnmStats stats_;
};

}  // namespace sxnm::relational

#endif  // SXNM_RELATIONAL_INCREMENTAL_SNM_H_
