#include "relational/record.h"

#include <cassert>

namespace sxnm::relational {

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Table::AddRecord(Record record) {
  assert(record.fields.size() == schema_.NumFields());
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

size_t Table::AddRow(std::vector<std::string> fields) {
  return AddRecord(Record{std::move(fields)});
}

}  // namespace sxnm::relational
