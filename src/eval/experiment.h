// Experiment harness shared by the figure-reproduction benches: config
// manipulation helpers (single-key vs multi-pass, window overrides) and
// one-call "run detector + evaluate candidate against gold" plumbing.

#ifndef SXNM_EVAL_EXPERIMENT_H_
#define SXNM_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "sxnm/config.h"
#include "sxnm/detector.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::eval {

/// Copy of `config` where candidate `candidate_name` keeps only its
/// `key_index`-th key — the single-pass (SP) variants of Experiment set 1.
/// Other candidates are untouched.
util::Result<core::Config> WithSingleKey(const core::Config& config,
                                         const std::string& candidate_name,
                                         size_t key_index);

/// Copy of `config` with every candidate's window size set to `window`.
core::Config WithWindow(const core::Config& config, size_t window);

/// Copy of `config` with only `candidate_name`'s window size changed
/// (window sizes are per-element parameters in the paper, Sec. 3.4).
util::Result<core::Config> WithWindowFor(const core::Config& config,
                                         const std::string& candidate_name,
                                         size_t window);

/// Copy of `config` with candidate thresholds/mode overridden (Experiment
/// set 3 sweeps). Applies to the named candidate only.
util::Result<core::Config> WithClassifier(const core::Config& config,
                                          const std::string& candidate_name,
                                          const core::ClassifierConfig& cls);

/// Result of one detector run evaluated for one candidate.
struct CandidateEvaluation {
  PairMetrics metrics;           // detected clusters vs gold clusters
  size_t instances = 0;          // candidate instances in the document
  size_t comparisons = 0;        // similarity calls for this candidate
  size_t detected_pair_count = 0;  // accepted window pairs (pre-closure)
  size_t detected_clusters = 0;  // non-trivial clusters
  double kg_seconds = 0.0;       // whole-run key generation time
  double sw_seconds = 0.0;       // whole-run sliding window time
  double tc_seconds = 0.0;       // whole-run transitive closure time
};

/// Runs SXNM over `doc` and evaluates candidate `candidate_name` against
/// the gold labels found under its absolute path.
util::Result<CandidateEvaluation> RunAndEvaluate(
    const core::Config& config, const xml::Document& doc,
    const std::string& candidate_name);

/// One point of a window sweep.
struct SweepPoint {
  size_t window = 0;
  std::string label;  // e.g. "SP Key 1" / "MP"
  CandidateEvaluation eval;
};

/// Sweeps window sizes for each single key of `candidate_name` and for
/// the multi-pass configuration, as in Fig. 4. Labels are "Key <i>" and
/// "MP".
util::Result<std::vector<SweepPoint>> WindowSweep(
    const core::Config& config, const xml::Document& doc,
    const std::string& candidate_name, const std::vector<size_t>& windows,
    bool include_single_keys = true, bool include_multipass = true);

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_EXPERIMENT_H_
