#include "eval/miss_diagnosis.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "eval/gold.h"
#include "sxnm/candidate_tree.h"
#include "sxnm/key_generation.h"
#include "sxnm/similarity_measure.h"
#include "sxnm/sliding_window.h"

namespace sxnm::eval {

namespace {

constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

uint64_t PackPair(core::OrdinalPair pair) {
  return (static_cast<uint64_t>(pair.first) << 32) |
         static_cast<uint64_t>(pair.second);
}

// Replays one pass's window enumeration: the same order, policy, and
// window the pass ran with, cut to the executed prefix (`limit`) when
// governance stopped it early. ForEachWindowPairInterruptible visits a
// prefix of the plain enumeration order, so counting to `limit`
// reproduces the executed pair set exactly.
void EnumeratePass(const core::GkTable& gk, size_t key_index,
                   const std::vector<size_t>& order,
                   const core::CandidateConfig& cand, size_t window,
                   bool adaptive, size_t limit,
                   const std::function<void(size_t, size_t)>& visit) {
  size_t count = 0;
  auto limited = [&](size_t a, size_t b) {
    if (count++ < limit) visit(a, b);
  };
  if (adaptive) {
    auto key_of = [&](size_t ordinal) -> const std::string& {
      return gk.rows[ordinal].keys[key_index];
    };
    core::ForEachAdaptiveWindowPair(order, key_of, window, cand.max_window,
                                    cand.adaptive_prefix_len, limited);
  } else {
    core::ForEachWindowPair(order, window, limited);
  }
}

}  // namespace

std::string_view MissKindName(MissKind kind) {
  switch (kind) {
    case MissKind::kNeverWindowed:
      return "never_windowed";
    case MissKind::kWindowedButRejected:
      return "windowed_but_rejected";
    case MissKind::kShed:
      return "shed";
  }
  return "unknown";
}

size_t MissDiagnosis::CountKind(MissKind kind) const {
  size_t count = 0;
  for (const MissedPair& miss : misses) count += miss.kind == kind ? 1 : 0;
  return count;
}

std::string MissDiagnosis::ToString() const {
  std::ostringstream os;
  os << "candidate '" << candidate << "': " << gold_pairs << " gold pair(s), "
     << detected_pairs << " detected, " << true_positives
     << " true positive(s), " << misses.size() << " miss(es), "
     << false_positives.size() << " false positive(s)\n";
  if (!misses.empty()) {
    os << "  misses: " << CountKind(MissKind::kNeverWindowed)
       << " never windowed, " << CountKind(MissKind::kWindowedButRejected)
       << " windowed but rejected, " << CountKind(MissKind::kShed)
       << " shed\n";
  }
  for (const MissedPair& miss : misses) {
    os << "  (" << miss.pair.first << ", " << miss.pair.second << ") "
       << MissKindName(miss.kind);
    switch (miss.kind) {
      case MissKind::kNeverWindowed:
        if (!miss.rank_gaps.empty()) {
          os << ": min rank gap " << miss.min_rank_gap;
        }
        break;
      case MissKind::kWindowedButRejected:
        os << ": pass " << miss.pass + 1;
        if (miss.has_explain) {
          os << ", score " << miss.explain.score << " < threshold "
             << miss.explain.threshold;
        }
        break;
      case MissKind::kShed:
        if (miss.pass >= 0) os << ": pass " << miss.pass + 1;
        break;
    }
    os << "\n";
  }
  return os.str();
}

util::Result<MissDiagnosis> DiagnoseMisses(const core::Config& config,
                                           const xml::Document& doc,
                                           const core::DetectionResult& result,
                                           const std::string& candidate,
                                           const std::string& gold_attribute) {
  const core::CandidateConfig* cand = config.Find(candidate);
  if (cand == nullptr) {
    return util::Status::InvalidArgument("miss diagnosis: unknown candidate '" +
                                         candidate + "'");
  }
  const core::CandidateResult* cand_result = result.Find(candidate);
  if (cand_result == nullptr) {
    return util::Status::InvalidArgument("miss diagnosis: candidate '" +
                                         candidate +
                                         "' absent from the detection result");
  }

  util::Result<core::ClusterSet> gold =
      GoldClusterSet(doc, cand->absolute_path_str, gold_attribute);
  if (!gold.ok()) return gold.status();
  if (gold->num_instances() != cand_result->num_instances) {
    return util::Status::InvalidArgument(
        "miss diagnosis: gold standard covers " +
        std::to_string(gold->num_instances()) +
        " instance(s) but the detection result has " +
        std::to_string(cand_result->num_instances) +
        " — document/config mismatch?");
  }

  MissDiagnosis diag;
  diag.candidate = candidate;
  diag.num_instances = cand_result->num_instances;

  const std::vector<core::OrdinalPair> gold_pairs = gold->DuplicatePairs();
  const std::vector<core::OrdinalPair> detected =
      cand_result->clusters.DuplicatePairs();
  diag.gold_pairs = gold_pairs.size();
  diag.detected_pairs = detected.size();

  std::unordered_set<uint64_t> gold_set;
  gold_set.reserve(gold_pairs.size());
  for (const core::OrdinalPair& pair : gold_pairs) {
    gold_set.insert(PackPair(pair));
  }
  std::unordered_set<uint64_t> dup_set;
  dup_set.reserve(cand_result->duplicate_pairs.size());
  for (const core::OrdinalPair& pair : cand_result->duplicate_pairs) {
    dup_set.insert(PackPair(pair));
  }

  std::vector<core::OrdinalPair> fp_pairs;
  for (const core::OrdinalPair& pair : detected) {
    if (gold->cid(pair.first) == gold->cid(pair.second)) {
      ++diag.true_positives;
    } else {
      fp_pairs.push_back(pair);
    }
  }
  std::vector<core::OrdinalPair> fns;
  std::unordered_map<uint64_t, size_t> fn_index;
  for (const core::OrdinalPair& pair : gold_pairs) {
    if (cand_result->clusters.cid(pair.first) !=
        cand_result->clusters.cid(pair.second)) {
      fn_index.emplace(PackPair(pair), fns.size());
      fns.push_back(pair);
    }
  }

  // Windowing replay. The result carries the run's own GK relation; an
  // empty table (against a non-empty candidate) means key generation
  // itself was shed and no pass saw any pair.
  const core::GkTable& gk = cand_result->gk;
  const size_t num_keys = cand->keys.size();
  const bool have_rows =
      diag.num_instances > 0 && gk.rows.size() == diag.num_instances;

  std::vector<std::vector<size_t>> orders(num_keys);
  std::vector<std::vector<size_t>> inv_rank(num_keys);
  if (have_rows) {
    for (size_t k = 0; k < num_keys; ++k) {
      orders[k] = gk.SortedOrder(k);
      inv_rank[k].resize(diag.num_instances);
      for (size_t r = 0; r < orders[k].size(); ++r) {
        inv_rank[k][orders[k][r]] = r;
      }
    }
  }

  std::unordered_map<size_t, const core::PassDegradation*> degraded;
  for (const core::PassDegradation& entry : result.degradation.passes) {
    if (entry.candidate == candidate) degraded.emplace(entry.key_index, &entry);
  }
  // Executed-prefix lengths: exact per-pass counts from the report when
  // metrics were on, else reconstructed from the degradation entry
  // (pairs_planned - pairs_elided).
  std::vector<size_t> executed(num_keys, kNoLimit);
  for (const core::DetectionReport::Row& row : result.report.rows) {
    if (row.candidate == candidate && row.key_index < num_keys) {
      executed[row.key_index] = row.stats.pairs_windowed;
    }
  }

  std::vector<int> fn_windowed_pass(fns.size(), -1);
  std::vector<int> fn_shed_pass(fns.size(), -1);

  diag.attribution.reserve(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    core::PassAttribution attr;
    attr.candidate = candidate;
    attr.key_index = k;
    attr.gold_pairs = gold_pairs.size();

    auto it = degraded.find(k);
    const core::PassDegradation* entry =
        it == degraded.end() ? nullptr : it->second;
    const bool ran = have_rows && (entry == nullptr || !entry->skipped);
    if (ran) {
      const bool shrunk =
          entry != nullptr && entry->window_used < cand->window_size;
      const size_t window = entry != nullptr ? entry->window_used
                                             : cand->window_size;
      // A shrunk boundary pass runs the plain fixed window (the engine
      // disables adaptive extension to honor the shrunk budget).
      const bool adaptive =
          cand->window_policy == core::WindowPolicy::kAdaptivePrefix &&
          !shrunk;
      size_t limit = executed[k];
      if (limit == kNoLimit && entry != nullptr) {
        limit = entry->pairs_planned > entry->pairs_elided
                    ? entry->pairs_planned - entry->pairs_elided
                    : 0;
      }
      EnumeratePass(gk, k, orders[k], *cand, window, adaptive, limit,
                    [&](size_t a, size_t b) {
                      uint64_t packed = PackPair(std::minmax(a, b));
                      const bool is_gold = gold_set.count(packed) != 0;
                      if (is_gold) ++attr.gold_windowed;
                      if (dup_set.count(packed) != 0) {
                        ++attr.accepted;
                        if (is_gold) ++attr.accepted_gold;
                      }
                      auto fn = fn_index.find(packed);
                      if (fn != fn_index.end() &&
                          fn_windowed_pass[fn->second] < 0) {
                        fn_windowed_pass[fn->second] =
                            static_cast<int>(k);
                      }
                    });
    }
    // Shed probe: which false negatives the *configured* plan of a
    // degraded pass would have windowed. Final classification prefers
    // windowed-but-rejected, so over-marking an actually-windowed pair
    // here is harmless.
    if (have_rows && entry != nullptr && !fns.empty()) {
      const bool adaptive_full =
          cand->window_policy == core::WindowPolicy::kAdaptivePrefix;
      EnumeratePass(gk, k, orders[k], *cand, cand->window_size, adaptive_full,
                    kNoLimit, [&](size_t a, size_t b) {
                      auto fn = fn_index.find(PackPair(std::minmax(a, b)));
                      if (fn != fn_index.end() &&
                          fn_shed_pass[fn->second] < 0) {
                        fn_shed_pass[fn->second] = static_cast<int>(k);
                      }
                    });
    }
    attr.precision =
        attr.accepted > 0
            ? static_cast<double>(attr.accepted_gold) / attr.accepted
            : 1.0;
    attr.recall = attr.gold_pairs > 0 ? static_cast<double>(attr.accepted_gold) /
                                            attr.gold_pairs
                                      : 0.0;
    diag.attribution.push_back(std::move(attr));
  }

  // Rebuild the similarity measure the run used, to score rejected pairs
  // and false positives exactly (child cluster sets come from the run's
  // own bottom-up results).
  util::Result<core::CandidateForest> forest =
      core::CandidateForest::Build(config, doc);
  if (!forest.ok()) return forest.status();
  int forest_index = forest->IndexOf(candidate);
  if (forest_index < 0 ||
      forest->candidates()[forest_index].NumInstances() !=
          diag.num_instances) {
    return util::Status::InvalidArgument(
        "miss diagnosis: candidate forest of the given document does not "
        "match the detection result for '" +
        candidate + "'");
  }
  const core::CandidateInstances& instances =
      forest->candidates()[forest_index];
  std::unique_ptr<core::SimilarityMeasure> measure;
  if (have_rows) {
    std::vector<const core::ClusterSet*> child_sets;
    bool children_ok = true;
    if (cand->use_descendants && !instances.child_types.empty()) {
      child_sets.reserve(instances.child_types.size());
      for (size_t child : instances.child_types) {
        const core::CandidateResult* child_result =
            result.Find(forest->candidates()[child].config->name);
        if (child_result == nullptr) {
          children_ok = false;
          break;
        }
        child_sets.push_back(&child_result->clusters);
      }
    }
    if (children_ok) {
      measure = std::make_unique<core::SimilarityMeasure>(
          *instances.config, instances, std::move(child_sets), &gk.od_pool);
    }
  }

  const bool any_degradation = !degraded.empty();
  diag.misses.reserve(fns.size());
  for (size_t i = 0; i < fns.size(); ++i) {
    MissedPair miss;
    miss.pair = fns[i];
    if (have_rows) {
      miss.rank_gaps.reserve(num_keys);
      miss.min_rank_gap = kNoLimit;
      for (size_t k = 0; k < num_keys; ++k) {
        size_t ra = inv_rank[k][miss.pair.first];
        size_t rb = inv_rank[k][miss.pair.second];
        size_t gap = ra > rb ? ra - rb : rb - ra;
        miss.rank_gaps.push_back(gap);
        miss.min_rank_gap = std::min(miss.min_rank_gap, gap);
      }
      if (miss.rank_gaps.empty()) miss.min_rank_gap = 0;
    }
    if (fn_windowed_pass[i] >= 0) {
      miss.kind = MissKind::kWindowedButRejected;
      miss.pass = fn_windowed_pass[i];
      if (measure != nullptr) {
        miss.explain = measure->Explain(gk.rows[miss.pair.first],
                                        gk.rows[miss.pair.second]);
        miss.has_explain = true;
      }
    } else if (fn_shed_pass[i] >= 0 || (!have_rows && any_degradation)) {
      miss.kind = MissKind::kShed;
      miss.pass = fn_shed_pass[i];
    } else {
      miss.kind = MissKind::kNeverWindowed;
    }
    diag.misses.push_back(std::move(miss));
  }

  diag.false_positives.reserve(fp_pairs.size());
  for (const core::OrdinalPair& pair : fp_pairs) {
    FalsePositivePair fp;
    fp.pair = pair;
    if (measure != nullptr) {
      fp.explain = measure->Explain(gk.rows[pair.first], gk.rows[pair.second]);
      fp.has_explain = true;
    }
    diag.false_positives.push_back(std::move(fp));
  }

  return diag;
}

void AttachAttribution(const MissDiagnosis& diagnosis,
                       core::DetectionReport& report) {
  std::vector<core::PassAttribution> kept;
  kept.reserve(report.attribution.size() + diagnosis.attribution.size());
  for (core::PassAttribution& row : report.attribution) {
    if (row.candidate != diagnosis.candidate) kept.push_back(std::move(row));
  }
  for (const core::PassAttribution& row : diagnosis.attribution) {
    kept.push_back(row);
  }
  report.attribution = std::move(kept);
}

}  // namespace sxnm::eval
