#include "eval/window_advisor.h"

#include <algorithm>

#include "sxnm/candidate_tree.h"
#include "sxnm/key_generation.h"
#include "sxnm/similarity_measure.h"
#include "util/rng.h"

namespace sxnm::eval {

using util::Result;
using util::Status;

util::Result<WindowAdvice> AdviseWindow(const core::Config& config,
                                        const xml::Document& doc,
                                        const std::string& candidate_name,
                                        const WindowAdviceOptions& options) {
  if (options.coverage <= 0.0 || options.coverage > 1.0) {
    return Status::InvalidArgument("coverage must be in (0, 1]");
  }
  if (options.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be positive");
  }
  const core::CandidateConfig* cand = config.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }
  if (options.key_index >= cand->keys.size()) {
    return Status::InvalidArgument("key index out of range");
  }

  auto forest = core::CandidateForest::Build(config, doc);
  if (!forest.ok()) return forest.status();
  int index = forest->IndexOf(candidate_name);
  const core::CandidateInstances& instances =
      forest->candidates()[static_cast<size_t>(index)];
  core::GkTable gk = core::GenerateKeys(*cand, instances);

  size_t n = gk.rows.size();
  WindowAdvice advice;
  if (n < 2) return advice;

  // Rank of each ordinal in the key-sorted order.
  std::vector<size_t> order = gk.SortedOrder(options.key_index);
  std::vector<size_t> rank(n);
  for (size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;

  // Sample instances without replacement.
  util::Rng rng(options.seed);
  std::vector<size_t> population(n);
  for (size_t i = 0; i < n; ++i) population[i] = i;
  rng.Shuffle(population);
  size_t sample = std::min(options.sample_size, n);

  // OD-only similarity as the duplicate proxy (descendant clusters do not
  // exist yet when one tunes the window).
  core::SimilarityMeasure measure(*cand, instances, {}, &gk.od_pool);
  for (size_t s = 0; s < sample; ++s) {
    size_t a = population[s];
    for (size_t b = 0; b < n; ++b) {
      if (b == a) continue;
      double sim = measure.OdSimilarity(gk.rows[a], gk.rows[b]);
      if (sim < cand->classifier.od_threshold) continue;
      size_t distance = rank[a] > rank[b] ? rank[a] - rank[b]
                                          : rank[b] - rank[a];
      advice.rank_distances.push_back(distance);
    }
  }

  std::sort(advice.rank_distances.begin(), advice.rank_distances.end());
  advice.similar_pairs = advice.rank_distances.size();
  if (advice.similar_pairs == 0) return advice;

  advice.max_distance = advice.rank_distances.back();
  size_t idx = static_cast<size_t>(
      options.coverage * static_cast<double>(advice.similar_pairs));
  if (idx >= advice.similar_pairs) idx = advice.similar_pairs - 1;
  // The window must exceed the covered rank distance.
  advice.recommended_window =
      std::max<size_t>(2, advice.rank_distances[idx] + 1);
  return advice;
}

}  // namespace sxnm::eval
