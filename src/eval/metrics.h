// Pairwise duplicate-detection quality metrics: recall, precision and
// f-measure over duplicate pairs, computed against a gold clustering.
//
// A pair counts as a true positive when both a detected cluster and a
// gold cluster contain it. Counts are computed from the cluster-overlap
// contingency table, so giant clusters do not require materializing
// quadratically many pairs.

#ifndef SXNM_EVAL_METRICS_H_
#define SXNM_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sxnm/cluster_set.h"

namespace sxnm::eval {

struct PairMetrics {
  size_t gold_pairs = 0;      // duplicate pairs in the gold clustering
  size_t detected_pairs = 0;  // duplicate pairs in the detected clustering
  size_t true_positives = 0;  // pairs present in both

  double precision = 0.0;  // TP / detected  (1.0 when nothing detected)
  double recall = 0.0;     // TP / gold      (1.0 when gold has no pairs)
  double f1 = 0.0;         // harmonic mean; 0 when P + R == 0

  std::string ToString() const;
};

/// Pairwise metrics of `detected` against `gold`. Both cluster sets must
/// cover the same number of instances.
PairMetrics PairwiseMetrics(const core::ClusterSet& gold,
                            const core::ClusterSet& detected);

/// Metrics when only a duplicate-pair list is available (pre-closure):
/// precision counts a detected pair correct when its members share a gold
/// cluster.
PairMetrics PairwiseMetricsFromPairs(
    const core::ClusterSet& gold,
    const std::vector<core::OrdinalPair>& detected_pairs);

/// F-measure from precision and recall (harmonic mean, 0 when both 0).
double FMeasure(double precision, double recall);

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_METRICS_H_
