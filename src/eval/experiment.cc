#include "eval/experiment.h"

#include "eval/gold.h"

namespace sxnm::eval {

using util::Result;
using util::Status;

util::Result<core::Config> WithSingleKey(const core::Config& config,
                                         const std::string& candidate_name,
                                         size_t key_index) {
  core::Config copy = config;
  core::CandidateConfig* cand = copy.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }
  if (key_index >= cand->keys.size()) {
    return Status::InvalidArgument(
        "candidate '" + candidate_name + "' has only " +
        std::to_string(cand->keys.size()) + " keys, requested index " +
        std::to_string(key_index));
  }
  cand->keys = {cand->keys[key_index]};
  return copy;
}

core::Config WithWindow(const core::Config& config, size_t window) {
  core::Config copy = config;
  for (core::CandidateConfig& cand : copy.mutable_candidates()) {
    cand.window_size = window;
  }
  return copy;
}

util::Result<core::Config> WithWindowFor(const core::Config& config,
                                         const std::string& candidate_name,
                                         size_t window) {
  core::Config copy = config;
  core::CandidateConfig* cand = copy.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }
  cand->window_size = window;
  return copy;
}

util::Result<core::Config> WithClassifier(const core::Config& config,
                                          const std::string& candidate_name,
                                          const core::ClassifierConfig& cls) {
  core::Config copy = config;
  core::CandidateConfig* cand = copy.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }
  cand->classifier = cls;
  return copy;
}

util::Result<CandidateEvaluation> RunAndEvaluate(
    const core::Config& config, const xml::Document& doc,
    const std::string& candidate_name) {
  const core::CandidateConfig* cand = config.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }

  auto gold = GoldClusterSet(doc, cand->absolute_path_str);
  if (!gold.ok()) return gold.status();

  core::Detector detector(config);
  auto result = detector.Run(doc);
  if (!result.ok()) return result.status();

  const core::CandidateResult* cand_result = result->Find(candidate_name);
  if (cand_result == nullptr) {
    return Status::Internal("detector produced no result for candidate '" +
                            candidate_name + "'");
  }
  if (gold->num_instances() != cand_result->clusters.num_instances()) {
    return Status::Internal(
        "gold/detected instance count mismatch for candidate '" +
        candidate_name + "'");
  }

  CandidateEvaluation eval;
  eval.metrics = PairwiseMetrics(gold.value(), cand_result->clusters);
  eval.instances = cand_result->num_instances;
  eval.comparisons = cand_result->comparisons;
  eval.detected_pair_count = cand_result->duplicate_pairs.size();
  eval.detected_clusters = cand_result->clusters.NonTrivialClusters().size();
  eval.kg_seconds = result->KeyGenerationSeconds();
  eval.sw_seconds = result->SlidingWindowSeconds();
  eval.tc_seconds = result->TransitiveClosureSeconds();
  return eval;
}

util::Result<std::vector<SweepPoint>> WindowSweep(
    const core::Config& config, const xml::Document& doc,
    const std::string& candidate_name, const std::vector<size_t>& windows,
    bool include_single_keys, bool include_multipass) {
  const core::CandidateConfig* cand = config.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }

  std::vector<SweepPoint> points;
  for (size_t window : windows) {
    // Only the focal candidate's window is swept; other candidates keep
    // their configured (per-element) window sizes.
    auto windowed_or = WithWindowFor(config, candidate_name, window);
    if (!windowed_or.ok()) return windowed_or.status();
    core::Config windowed = std::move(windowed_or).value();
    if (include_single_keys) {
      for (size_t k = 0; k < cand->keys.size(); ++k) {
        auto single = WithSingleKey(windowed, candidate_name, k);
        if (!single.ok()) return single.status();
        auto eval = RunAndEvaluate(single.value(), doc, candidate_name);
        if (!eval.ok()) return eval.status();
        points.push_back(
            {window, "Key " + std::to_string(k + 1), std::move(eval).value()});
      }
    }
    if (include_multipass) {
      auto eval = RunAndEvaluate(windowed, doc, candidate_name);
      if (!eval.ok()) return eval.status();
      points.push_back({window, "MP", std::move(eval).value()});
    }
  }
  return points;
}

}  // namespace sxnm::eval
