#include "eval/gold.h"

#include <map>

#include "xml/xpath.h"

namespace sxnm::eval {

util::Result<std::vector<std::string>> GoldLabels(
    const xml::Document& doc, const std::string& abs_path,
    const std::string& attribute) {
  auto path = xml::XPath::Parse(abs_path);
  if (!path.ok()) return path.status();
  auto elements = path->SelectFromRoot(doc);
  if (!elements.ok()) return elements.status();

  std::vector<std::string> labels;
  labels.reserve(elements->size());
  size_t synthetic = 0;
  for (const xml::Element* e : elements.value()) {
    const std::string* label = e->FindAttribute(attribute);
    if (label != nullptr) {
      labels.push_back(*label);
    } else {
      labels.push_back("__unlabeled_" + std::to_string(synthetic++));
    }
  }
  return labels;
}

util::Result<core::ClusterSet> GoldClusterSet(const xml::Document& doc,
                                              const std::string& abs_path,
                                              const std::string& attribute) {
  auto labels = GoldLabels(doc, abs_path, attribute);
  if (!labels.ok()) return labels.status();

  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < labels->size(); ++i) {
    groups[(*labels)[i]].push_back(i);
  }
  std::vector<std::vector<size_t>> clusters;
  clusters.reserve(groups.size());
  for (auto& [label, members] : groups) {
    (void)label;
    clusters.push_back(std::move(members));
  }
  return core::ClusterSet::FromClusters(std::move(clusters), labels->size());
}

}  // namespace sxnm::eval
