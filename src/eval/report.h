// Human-readable detection reports: turns a DetectionResult (plus
// optional gold data) into a plain-text summary — per-candidate counts,
// cluster-size histogram, phase timings, and quality metrics when ground
// truth is available. Used by the sxnm_cli tool and handy in notebooks /
// logs.

#ifndef SXNM_EVAL_REPORT_H_
#define SXNM_EVAL_REPORT_H_

#include <map>
#include <string>

#include "eval/metrics.h"
#include "sxnm/detector.h"
#include "xml/node.h"

namespace sxnm::eval {

struct ReportOptions {
  /// Compute recall/precision/f1 against `_gold` labels in the document.
  bool with_gold = false;

  /// Show the N largest clusters with their member element IDs.
  size_t show_largest_clusters = 3;
};

/// Per-candidate cluster-size histogram: size -> number of clusters.
std::map<size_t, size_t> ClusterSizeHistogram(const core::ClusterSet& cs);

/// Renders the full report. `doc` is the document the detector ran on
/// (needed for gold extraction and element lookups); `config` supplies
/// the candidates' absolute paths.
util::Result<std::string> RenderReport(const core::Config& config,
                                       const xml::Document& doc,
                                       const core::DetectionResult& result,
                                       const ReportOptions& options = {});

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_REPORT_H_
