// Ground-truth extraction: reads the `_gold` identity attributes written
// by the data generators and turns them into gold cluster sets, aligned
// with SXNM's candidate instance ordinals (both use the same
// XPath-from-root document order).

#ifndef SXNM_EVAL_GOLD_H_
#define SXNM_EVAL_GOLD_H_

#include <string>
#include <vector>

#include "sxnm/cluster_set.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::eval {

/// Gold labels of the elements matched by the absolute path `abs_path`,
/// in document order (== candidate instance ordinal order). Elements
/// without the attribute get a unique synthetic label (they are their own
/// real-world object).
util::Result<std::vector<std::string>> GoldLabels(
    const xml::Document& doc, const std::string& abs_path,
    const std::string& attribute = "_gold");

/// Gold cluster set over the instances of `abs_path`: instances sharing a
/// label form one cluster.
util::Result<core::ClusterSet> GoldClusterSet(
    const xml::Document& doc, const std::string& abs_path,
    const std::string& attribute = "_gold");

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_GOLD_H_
