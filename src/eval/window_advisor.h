// Sampling-based window-size advisor — the paper's closing outlook: "We
// plan to examine how sampling techniques can help determine an
// appropriate window size for each data set."
//
// Idea: the window must be at least as large as the *rank distance* (in
// the key-sorted order) between members of a duplicate pair, or the pair
// is never compared. Without ground truth we proxy "duplicate" by the
// candidate's own OD similarity threshold: a random sample of instances
// is compared against the whole candidate population, the rank distances
// of the similar pairs are collected, and the advised window covers a
// chosen percentile of them.

#ifndef SXNM_EVAL_WINDOW_ADVISOR_H_
#define SXNM_EVAL_WINDOW_ADVISOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "sxnm/config.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::eval {

struct WindowAdviceOptions {
  /// How many candidate instances to sample (each is compared against the
  /// whole population — cost O(sample_size * n)).
  size_t sample_size = 50;

  /// Fraction of observed similar-pair rank distances the advised window
  /// must cover.
  double coverage = 0.95;

  uint64_t seed = 1;

  /// Key (pass) whose sort order is analyzed.
  size_t key_index = 0;
};

struct WindowAdvice {
  /// Advised window size: covers `coverage` of observed rank distances
  /// (>= 2 always). When the sample contains no similar pairs, this is 2
  /// and `similar_pairs` is 0 — treat as "no evidence".
  size_t recommended_window = 2;

  /// Similar pairs observed in the sample.
  size_t similar_pairs = 0;

  /// Sorted rank distances of those pairs (diagnostics; distance 1 =
  /// adjacent in sort order).
  std::vector<size_t> rank_distances;

  /// The largest observed distance (what full coverage would need).
  size_t max_distance = 0;
};

/// Analyzes candidate `candidate_name` of `config` over `doc`.
util::Result<WindowAdvice> AdviseWindow(
    const core::Config& config, const xml::Document& doc,
    const std::string& candidate_name,
    const WindowAdviceOptions& options = {});

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_WINDOW_ADVISOR_H_
