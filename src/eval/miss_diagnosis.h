// Gold-joined miss diagnosis: explains every pairwise false negative of
// a detection run. Each gold duplicate pair the run did not cluster
// together is classified into exactly one of
//   * never windowed   — no pass brought the two instances within window
//                        distance (the paper's poorly-sorted-key failure
//                        mode, Fig. 4); the per-pass sort-rank gaps say
//                        how far each key ordering missed,
//   * windowed but rejected — some pass compared the pair and the
//                        similarity measure said no; the exact scoring
//                        breakdown (obs::PairExplain) is attached,
//   * shed             — the configured plan would have windowed the pair
//                        but governance skipped/shrunk/cut the pass.
// False positives are joined back the same way, and each window pass
// gets a precision/recall attribution row (how many gold pairs it
// windowed and accepted on its own) that can be attached to the run's
// DetectionReport.
//
// The engine itself never sees gold labels: diagnosis replays windowing
// from the run's GK relation and degradation report after the fact.

#ifndef SXNM_EVAL_MISS_DIAGNOSIS_H_
#define SXNM_EVAL_MISS_DIAGNOSIS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/explain.h"
#include "sxnm/cluster_set.h"
#include "sxnm/config.h"
#include "sxnm/detection_report.h"
#include "sxnm/detector.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::eval {

/// Why a gold duplicate pair was missed.
enum class MissKind {
  kNeverWindowed,
  kWindowedButRejected,
  kShed,
};

std::string_view MissKindName(MissKind kind);

/// One pairwise false negative.
struct MissedPair {
  core::OrdinalPair pair;
  MissKind kind = MissKind::kNeverWindowed;

  /// Sort-rank distance |rank(a) - rank(b)| under every pass's key order
  /// (empty when key generation was shed). A pass windows the pair only
  /// when this gap is below its window, so min_rank_gap says how close
  /// the best key came.
  std::vector<size_t> rank_gaps;
  size_t min_rank_gap = 0;

  /// kWindowedButRejected: the first pass (0-based, merge order) that
  /// actually windowed the pair. kShed: the first degraded pass whose
  /// configured plan would have windowed it. -1 for kNeverWindowed.
  int pass = -1;

  /// Exact scoring breakdown (kWindowedButRejected, when the run's GK
  /// relation is available): why the measure said no.
  bool has_explain = false;
  obs::PairExplain explain;
};

/// One pairwise false positive: detected intra-cluster, gold says
/// distinct objects. The breakdown shows what scored high (or, for pairs
/// merged only transitively, that the direct score was itself low).
struct FalsePositivePair {
  core::OrdinalPair pair;
  bool has_explain = false;
  obs::PairExplain explain;
};

/// Full diagnosis of one candidate's run against the gold standard.
struct MissDiagnosis {
  std::string candidate;
  size_t num_instances = 0;
  size_t gold_pairs = 0;      // gold intra-cluster pairs
  size_t detected_pairs = 0;  // detected intra-cluster pairs
  size_t true_positives = 0;

  /// Every false negative, each classified into exactly one MissKind
  /// (misses.size() + true_positives == gold_pairs).
  std::vector<MissedPair> misses;

  std::vector<FalsePositivePair> false_positives;

  /// One row per window pass (AttachAttribution copies these into a
  /// DetectionReport).
  std::vector<core::PassAttribution> attribution;

  size_t CountKind(MissKind kind) const;

  /// Human-readable summary: headline counts, the kind partition, then
  /// one line per miss.
  std::string ToString() const;
};

/// Diagnoses `candidate`'s result in `result` against the `_gold`
/// labels of `doc`. `config` and `doc` must be the ones the run used
/// (the candidate forest is rebuilt to score rejected pairs exactly as
/// the run did). Fails when the candidate is unknown, absent from the
/// result, or the gold instance count disagrees with the run.
util::Result<MissDiagnosis> DiagnoseMisses(
    const core::Config& config, const xml::Document& doc,
    const core::DetectionResult& result, const std::string& candidate,
    const std::string& gold_attribute = "_gold");

/// Copies the diagnosis's per-pass attribution rows into the report
/// (rows of other candidates are kept).
void AttachAttribution(const MissDiagnosis& diagnosis,
                       core::DetectionReport& report);

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_MISS_DIAGNOSIS_H_
