#include "eval/metrics.h"

#include <cassert>
#include <map>

#include "util/string_util.h"

namespace sxnm::eval {

namespace {

size_t PairsOf(size_t n) { return n * (n - 1) / 2; }

void Finalize(PairMetrics& m) {
  m.precision = m.detected_pairs == 0
                    ? 1.0
                    : static_cast<double>(m.true_positives) /
                          static_cast<double>(m.detected_pairs);
  m.recall = m.gold_pairs == 0 ? 1.0
                               : static_cast<double>(m.true_positives) /
                                     static_cast<double>(m.gold_pairs);
  m.f1 = FMeasure(m.precision, m.recall);
}

}  // namespace

std::string PairMetrics::ToString() const {
  return "P=" + util::FormatDouble(precision, 4) +
         " R=" + util::FormatDouble(recall, 4) +
         " F1=" + util::FormatDouble(f1, 4) +
         " (gold=" + std::to_string(gold_pairs) +
         ", detected=" + std::to_string(detected_pairs) +
         ", correct=" + std::to_string(true_positives) + ")";
}

double FMeasure(double precision, double recall) {
  double sum = precision + recall;
  if (sum <= 0.0) return 0.0;
  return 2.0 * precision * recall / sum;
}

PairMetrics PairwiseMetrics(const core::ClusterSet& gold,
                            const core::ClusterSet& detected) {
  assert(gold.num_instances() == detected.num_instances());
  PairMetrics m;
  m.gold_pairs = gold.NumDuplicatePairs();
  m.detected_pairs = detected.NumDuplicatePairs();

  // Contingency: for every detected cluster, count members per gold
  // cluster; pairs inside an overlap cell are true positives.
  for (const auto& cluster : detected.clusters()) {
    if (cluster.size() < 2) continue;
    std::map<int, size_t> per_gold;
    for (size_t ordinal : cluster) ++per_gold[gold.cid(ordinal)];
    for (const auto& [gold_cid, count] : per_gold) {
      (void)gold_cid;
      m.true_positives += PairsOf(count);
    }
  }
  Finalize(m);
  return m;
}

PairMetrics PairwiseMetricsFromPairs(
    const core::ClusterSet& gold,
    const std::vector<core::OrdinalPair>& detected_pairs) {
  PairMetrics m;
  m.gold_pairs = gold.NumDuplicatePairs();
  m.detected_pairs = detected_pairs.size();
  for (const auto& [a, b] : detected_pairs) {
    if (gold.cid(a) == gold.cid(b)) ++m.true_positives;
  }
  Finalize(m);
  return m;
}

}  // namespace sxnm::eval
