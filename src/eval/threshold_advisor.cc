#include "eval/threshold_advisor.h"

#include <algorithm>

#include "eval/gold.h"
#include "sxnm/detector.h"

namespace sxnm::eval {

using util::Result;
using util::Status;

util::Result<ThresholdAdvice> CalibrateOdThreshold(
    const core::Config& config, const xml::Document& sample_doc,
    const std::string& candidate_name,
    const ThresholdAdviceOptions& options) {
  if (options.step <= 0.0) {
    return Status::InvalidArgument("step must be positive");
  }
  if (options.min_threshold > options.max_threshold ||
      options.min_threshold < 0.0 || options.max_threshold > 1.0) {
    return Status::InvalidArgument("threshold range must be within [0,1]");
  }
  const core::CandidateConfig* cand = config.Find(candidate_name);
  if (cand == nullptr) {
    return Status::NotFound("no candidate named '" + candidate_name + "'");
  }

  auto gold = GoldClusterSet(sample_doc, cand->absolute_path_str,
                             options.gold_attribute);
  if (!gold.ok()) return gold.status();
  if (gold->NumDuplicatePairs() == 0) {
    return Status::FailedPrecondition(
        "sample has no labeled duplicate pairs for candidate '" +
        candidate_name + "' — calibration needs positives");
  }

  ThresholdAdvice advice;
  for (double threshold = options.min_threshold;
       threshold <= options.max_threshold + 1e-9;
       threshold += options.step) {
    core::Config swept = config;
    swept.Find(candidate_name)->classifier.od_threshold =
        std::min(threshold, 1.0);

    core::Detector detector(swept);
    auto result = detector.Run(sample_doc);
    if (!result.ok()) return result.status();
    const core::CandidateResult* cand_result =
        result->Find(candidate_name);
    if (cand_result == nullptr) {
      return Status::Internal("no result for candidate");
    }

    ThresholdPoint point;
    point.threshold = std::min(threshold, 1.0);
    point.metrics = PairwiseMetrics(gold.value(), cand_result->clusters);
    // >= so that ties pick the higher (more conservative) threshold.
    if (point.metrics.f1 >= advice.best_f1) {
      advice.best_f1 = point.metrics.f1;
      advice.recommended = point.threshold;
    }
    advice.sweep.push_back(point);
  }
  return advice;
}

}  // namespace sxnm::eval
