// Threshold calibration from a labeled sample — the outlook's "the choice
// of the thresholds yet remains an open issue. In [5] the authors propose
// a corresponding learning technique".
//
// The paper's own methodology (Sec. 3.4): "performing duplicate detection
// both manually and automatically on a small sample can help determine
// suitable parameter values". This module automates exactly that: given a
// document whose candidate instances carry ground-truth labels (a
// manually deduplicated sample, or generator gold), it sweeps the OD
// threshold, evaluates pairwise f-measure per setting, and returns the
// best one.

#ifndef SXNM_EVAL_THRESHOLD_ADVISOR_H_
#define SXNM_EVAL_THRESHOLD_ADVISOR_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "sxnm/config.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::eval {

struct ThresholdAdviceOptions {
  double min_threshold = 0.5;
  double max_threshold = 0.95;
  double step = 0.05;

  /// Attribute carrying the ground-truth labels on the sample document.
  std::string gold_attribute = "_gold";
};

struct ThresholdPoint {
  double threshold = 0.0;
  PairMetrics metrics;
};

struct ThresholdAdvice {
  /// Threshold with the best f-measure on the sample (ties: the higher
  /// threshold, which generalizes more conservatively).
  double recommended = 0.0;
  double best_f1 = 0.0;

  /// The whole sweep for inspection / plotting.
  std::vector<ThresholdPoint> sweep;
};

/// Sweeps candidate `candidate_name`'s OD threshold over the labeled
/// sample `sample_doc` and returns the f-optimal setting. The candidate's
/// other parameters (keys, window, combine mode) are used as configured.
util::Result<ThresholdAdvice> CalibrateOdThreshold(
    const core::Config& config, const xml::Document& sample_doc,
    const std::string& candidate_name,
    const ThresholdAdviceOptions& options = {});

}  // namespace sxnm::eval

#endif  // SXNM_EVAL_THRESHOLD_ADVISOR_H_
