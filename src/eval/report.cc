#include "eval/report.h"

#include <algorithm>

#include "eval/gold.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace sxnm::eval {

std::map<size_t, size_t> ClusterSizeHistogram(const core::ClusterSet& cs) {
  std::map<size_t, size_t> histogram;
  for (const auto& cluster : cs.clusters()) {
    ++histogram[cluster.size()];
  }
  return histogram;
}

util::Result<std::string> RenderReport(const core::Config& config,
                                       const xml::Document& doc,
                                       const core::DetectionResult& result,
                                       const ReportOptions& options) {
  std::string out;
  out += "SXNM detection report\n";
  out += "=====================\n\n";

  // Phase timing summary.
  out += "phases: KG=" +
         util::FormatDouble(result.KeyGenerationSeconds(), 4) + "s  SW=" +
         util::FormatDouble(result.SlidingWindowSeconds(), 4) + "s  TC=" +
         util::FormatDouble(result.TransitiveClosureSeconds(), 4) +
         "s  DD=" +
         util::FormatDouble(result.DuplicateDetectionSeconds(), 4) + "s\n";
  out += "total comparisons: " + std::to_string(result.TotalComparisons()) +
         "\n\n";

  for (const core::CandidateResult& cand : result.candidates) {
    const core::CandidateConfig* cand_config = config.Find(cand.name);
    out += "candidate '" + cand.name + "'";
    if (cand_config != nullptr) {
      out += "  (" + cand_config->absolute_path.ToString() + ")";
    }
    out += "\n";
    out += "  instances:       " + std::to_string(cand.num_instances) + "\n";
    out += "  comparisons:     " + std::to_string(cand.comparisons) + "\n";
    out += "  duplicate pairs: " +
           std::to_string(cand.duplicate_pairs.size()) + "\n";
    auto nontrivial = cand.clusters.NonTrivialClusters();
    out += "  clusters (>1):   " + std::to_string(nontrivial.size()) + "\n";

    // Cluster-size histogram, sizes >= 2.
    auto histogram = ClusterSizeHistogram(cand.clusters);
    std::string histo_line = "  cluster sizes:  ";
    bool any = false;
    for (const auto& [size, count] : histogram) {
      if (size < 2) continue;
      histo_line += " " + std::to_string(size) + "x" + std::to_string(count);
      any = true;
    }
    if (any) out += histo_line + "\n";

    // Largest clusters.
    if (options.show_largest_clusters > 0 && !nontrivial.empty()) {
      std::sort(nontrivial.begin(), nontrivial.end(),
                [](const auto& a, const auto& b) {
                  return a.size() > b.size();
                });
      size_t show = std::min(options.show_largest_clusters,
                             nontrivial.size());
      for (size_t c = 0; c < show; ++c) {
        out += "  largest #" + std::to_string(c + 1) + " (" +
               std::to_string(nontrivial[c].size()) + " members): eids";
        for (size_t ordinal : nontrivial[c]) {
          out += " " + std::to_string(cand.gk.rows[ordinal].eid);
        }
        out += "\n";
      }
    }

    // Quality against gold labels, when requested and resolvable.
    if (options.with_gold && cand_config != nullptr) {
      auto gold = GoldClusterSet(doc, cand_config->absolute_path_str);
      if (!gold.ok()) return gold.status();
      if (gold->num_instances() != cand.clusters.num_instances()) {
        return util::Status::FailedPrecondition(
            "gold/instances mismatch for candidate '" + cand.name + "'");
      }
      PairMetrics metrics = PairwiseMetrics(gold.value(), cand.clusters);
      out += "  quality:         " + metrics.ToString() + "\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace sxnm::eval
