#include "obs/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace sxnm::obs {

namespace {

void WriteJsonName(std::ostream& os, std::string_view name) {
  os << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void WriteJsonDouble(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  os << buf;
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

const char* RunPhaseName(int phase) {
  switch (static_cast<RunPhase>(phase)) {
    case RunPhase::kSetup:
      return "setup";
    case RunPhase::kKeyGeneration:
      return "key_generation";
    case RunPhase::kSlidingWindow:
      return "sliding_window";
    case RunPhase::kTransitiveClosure:
      return "transitive_closure";
    case RunPhase::kDone:
      return "done";
    case RunPhase::kExternalSort:
      return "external_sort";
  }
  return "unknown";
}

void DeriveProgress(const MetricsSnapshot& snapshot, double t_ms,
                    TelemetrySample* sample) {
  sample->phase = static_cast<int>(snapshot.GaugeOr("progress.phase", 0.0));
  sample->fraction = -1.0;
  sample->eta_s = -1.0;

  // Completion is keyed off the phase whose planned total is known.
  // The sliding window dominates run time, so once pair totals exist
  // they drive the estimate; before that, KG row progress does.
  const double pairs_total = snapshot.GaugeOr("sw.pairs_planned_total", 0.0);
  const double pairs_done =
      static_cast<double>(snapshot.CounterOr("sw.pairs_done", 0));
  const double rows_total = snapshot.GaugeOr("kg.rows_total", 0.0);
  const double rows_done =
      static_cast<double>(snapshot.CounterOr("kg.rows_done", 0));

  double done = 0.0;
  double total = 0.0;
  if (pairs_total > 0.0) {
    done = pairs_done;
    total = pairs_total;
  } else if (rows_total > 0.0) {
    done = rows_done;
    total = rows_total;
  }
  if (total <= 0.0) {
    if (sample->phase == static_cast<int>(RunPhase::kDone)) {
      sample->fraction = 1.0;
      sample->eta_s = 0.0;
    }
    return;
  }

  sample->fraction = std::min(1.0, done / total);
  if (sample->phase == static_cast<int>(RunPhase::kDone)) {
    sample->fraction = 1.0;
    sample->eta_s = 0.0;
    return;
  }
  // Extrapolate from the cumulative rate since Start(). Budget-shed
  // passes can finish "early", so this is an estimate, not a promise.
  if (done > 0.0 && t_ms > 0.0) {
    const double rate_per_ms = done / t_ms;
    sample->eta_s = (total - done) / rate_per_ms / 1000.0;
  }
}

void TelemetrySample::WriteJson(std::ostream& os) const {
  os << "{\"type\": \"sample\", \"seq\": " << seq << ", \"t_ms\": ";
  WriteJsonDouble(os, t_ms);
  os << ", \"final\": " << (final_sample ? "true" : "false");
  os << ", \"phase\": " << phase << ", \"phase_name\": \""
     << RunPhaseName(phase) << "\"";
  os << ", \"progress\": ";
  WriteJsonDouble(os, fraction);
  os << ", \"eta_s\": ";
  WriteJsonDouble(os, eta_s);

  os << ", \"cpu_user_pct\": ";
  WriteJsonDouble(os, cpu_user_pct);
  os << ", \"cpu_sys_pct\": ";
  WriteJsonDouble(os, cpu_sys_pct);
  os << ", \"threads\": " << threads;
  os << ", \"cpu_sampled\": " << (cpu_sampled ? "true" : "false");

  os << ", \"mem\": {\"sampled\": " << (memory.sampled ? "true" : "false")
     << ", \"rss_bytes\": " << memory.rss_bytes
     << ", \"peak_rss_bytes\": " << memory.peak_rss_bytes
     << ", \"vm_bytes\": " << memory.vm_bytes << "}";

  os << ", \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonName(os, snapshot.counters[i].name);
    os << ": " << snapshot.counters[i].value;
  }
  os << "}, \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonName(os, snapshot.gauges[i].name);
    os << ": ";
    WriteJsonDouble(os, snapshot.gauges[i].value);
  }
  os << "}, \"rates\": {";
  for (size_t i = 0; i < rates.size(); ++i) {
    if (i > 0) os << ", ";
    WriteJsonName(os, rates[i].first);
    os << ": ";
    WriteJsonDouble(os, rates[i].second);
  }
  os << "}, \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) os << ", ";
    WriteJsonName(os, h.name);
    os << ": {\"count\": " << h.total_count << ", \"sum\": ";
    WriteJsonDouble(os, h.sum);
    os << "}";
  }
  os << "}}";
}

TelemetrySampler::TelemetrySampler(const MetricsRegistry* registry,
                                   TelemetryOptions options)
    : registry_(registry), options_(std::move(options)) {
  options_.interval_ms = std::max(1.0, options_.interval_ms);
  options_.ring_capacity = std::max<size_t>(1, options_.ring_capacity);
}

TelemetrySampler::~TelemetrySampler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

util::Status TelemetrySampler::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_ || worker_.joinable()) {
    return util::Status::FailedPrecondition("telemetry sampler already started");
  }
  if (!options_.path.empty()) {
    out_.open(options_.path, std::ios::out | std::ios::trunc);
    if (!out_) {
      return util::Status::InvalidArgument("cannot open telemetry stream: " +
                                           options_.path);
    }
    out_ << "{\"type\": \"header\", \"version\": 1, \"interval_ms\": ";
    WriteJsonDouble(out_, options_.interval_ms);
    // The producer pid lets a live follower (sxnm_top --follow) detect a
    // producer that died without writing its final sample.
    out_ << ", \"pid\": " << ::getpid();
    out_ << ", \"clock\": \"steady\", \"deterministic\": false}\n";
    out_.flush();
    if (!out_) {
      return util::Status::Internal("telemetry stream write failed: " +
                                    options_.path);
    }
  }
  stop_requested_ = false;
  stopped_ = false;
  running_ = true;
  start_time_ = std::chrono::steady_clock::now();
  prev_t_ms_ = 0.0;
  prev_counters_.clear();
  prev_cpu_ = util::ReadProcCpu();  // CPU% baseline for the first sample
  worker_ = std::thread([this] { WorkerLoop(); });
  return util::Status::Ok();
}

void TelemetrySampler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.interval_ms);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    TakeSampleLocked(/*final_sample=*/false, lock);
  }
}

void TelemetrySampler::TakeSampleLocked(bool final_sample,
                                        std::unique_lock<std::mutex>& lock) {
  // The registry snapshot does not need mu_ (the registry has its own
  // synchronization) but dropping and re-taking the lock around it
  // would let Stop() interleave with a periodic sample; holding it
  // keeps sample order strict and the critical section is short.
  (void)lock;
  TelemetrySample sample;
  sample.seq = total_samples_;
  sample.t_ms = ElapsedMs(start_time_);
  sample.final_sample = final_sample;
  sample.snapshot = registry_->Snapshot();
  sample.memory = util::ReadProcMemory();

  const util::ProcCpu cpu = util::ReadProcCpu();
  sample.cpu_sampled = cpu.sampled;
  sample.threads = cpu.threads;
  {
    const double dt_s = (sample.t_ms - prev_t_ms_) / 1000.0;
    if (cpu.sampled && dt_s > 0.0) {
      // Monotonic-clamped: a rusage hiccup can never yield a negative
      // utilization.
      const double du = std::max(0.0, cpu.user_seconds - prev_cpu_.user_seconds);
      const double ds = std::max(0.0, cpu.sys_seconds - prev_cpu_.sys_seconds);
      sample.cpu_user_pct = du / dt_s * 100.0;
      sample.cpu_sys_pct = ds / dt_s * 100.0;
    }
    prev_cpu_ = cpu;
  }

  const double dt_ms = sample.t_ms - prev_t_ms_;
  if (dt_ms > 0.0) {
    // Both counter lists are sorted by name: one linear merge pass.
    size_t j = 0;
    for (const auto& c : sample.snapshot.counters) {
      while (j < prev_counters_.size() && prev_counters_[j].first < c.name) {
        ++j;
      }
      uint64_t prev = 0;
      if (j < prev_counters_.size() && prev_counters_[j].first == c.name) {
        prev = prev_counters_[j].second;
      }
      if (c.value > prev) {
        sample.rates.emplace_back(
            c.name, static_cast<double>(c.value - prev) / dt_ms * 1000.0);
      }
    }
  }
  prev_counters_.clear();
  prev_counters_.reserve(sample.snapshot.counters.size());
  for (const auto& c : sample.snapshot.counters) {
    prev_counters_.emplace_back(c.name, c.value);
  }
  prev_t_ms_ = sample.t_ms;

  DeriveProgress(sample.snapshot, sample.t_ms, &sample);

  if (out_.is_open()) {
    sample.WriteJson(out_);
    out_ << "\n";
    out_.flush();  // live tailing: every sample is a complete line
    if (!out_ && io_status_.ok()) {
      io_status_ = util::Status::Internal("telemetry stream write failed: " +
                                          options_.path);
    }
  }

  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  ++total_samples_;
}

util::Status TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return io_status_;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();

  std::unique_lock<std::mutex> lock(mu_);
  if (!stopped_) {
    if (running_) {
      // Worker is joined: engine writers quiesced before Stop() was
      // called, so this sample equals the end-of-run snapshot.
      TakeSampleLocked(/*final_sample=*/true, lock);
    }
    if (out_.is_open()) {
      out_.close();
      if (!out_ && io_status_.ok()) {
        io_status_ = util::Status::Internal("telemetry stream close failed: " +
                                            options_.path);
      }
    }
    running_ = false;
    stopped_ = true;
  }
  return io_status_;
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stopped_;
}

std::vector<TelemetrySample> TelemetrySampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TelemetrySample>(ring_.begin(), ring_.end());
}

uint64_t TelemetrySampler::TotalSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

}  // namespace sxnm::obs
