// Decision-provenance log: one NDJSON record per pair classification,
// plus candidate/instance headers, shed notices, and transitive-closure
// lineage. The log answers *why* the engine decided anything — which
// key pass surfaced a pair, which OD components and descendant clusters
// drove the score, and which union-find merges built each cluster.
//
// Determinism contract: records are appended only from the serial merge
// points of the detector (pass merge, degradation accounting, transitive
// closure), never from pool workers. Workers buffer raw events; the
// merge replays them in key order, so the emitted byte stream is
// identical for any Config::num_threads — the same guarantee the
// counters already give. Because every append runs on one thread, the
// log needs no locking.
//
// The obs layer stays below sxnm_core, so the records speak in
// primitives (ordinals, strings, component indices); the detector and
// the SimilarityMeasure fill them in.

#ifndef SXNM_OBS_EXPLAIN_H_
#define SXNM_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sxnm::obs {

/// Who actually computed a pair's verdict. `kOwned` is a real kernel
/// invocation; `kVerdictCache` replays an owned verdict from another
/// pass; `kPrepass` is the exact-OD prepass accepting byte-identical
/// tuples before any window runs; `kDagEqual` is the DAG shortcut
/// replaying the memoized self-comparison of two structurally identical
/// subtrees; `kBatchFilter` is the SoA pre-filter proving the pair below
/// threshold without running the kernel. Canonicalized at the serial
/// merge: with a verdict cache, the first merge-order occurrence of a
/// kernel-scored pair is owned and repeats are cache replays, while dag
/// and filter pairs keep their tag on every occurrence (those paths
/// bypass the cache). The per-tag record counts then reconcile with
/// sw.comparisons / sw.verdict_cache_hits / sw.prepass_pairs /
/// sw.dag_equal / sw.batch_rejects exactly.
enum class PairProvenance {
  kOwned,
  kVerdictCache,
  kPrepass,
  kDagEqual,
  kBatchFilter,
};

std::string_view PairProvenanceName(PairProvenance provenance);

/// One OD component of a pair comparison, as scored.
struct ExplainOdComponent {
  size_t index = 0;          // position in CandidateConfig::od
  double weight = 0.0;       // configured weight (pre-renormalization)
  std::string value_a;       // normalized OD text, side a
  std::string value_b;
  uint32_t ref_a = 0;        // interned OdPool ids
  uint32_t ref_b = 0;
  bool comparable = false;   // both sides non-empty
  bool interned_equal = false;  // equal pool ids: sim 1.0, bytes untouched
  bool bailout = false;      // bounded edit distance pruned out
  int64_t edit_distance = -1;   // -1 when never computed (interned/bailout)
  double sim = 0.0;
};

/// One child-candidate slot of the descendant Jaccard.
struct ExplainDescSlot {
  size_t child = 0;          // child slot index (candidate order)
  size_t size_a = 0;         // descendant cluster-id multiset sizes
  size_t size_b = 0;
  size_t intersection = 0;
  size_t union_size = 0;
  double jaccard = 0.0;
};

/// Full scoring breakdown of one pair comparison, produced by
/// SimilarityMeasure::Explain. Mirrors the fast kernel's decision but
/// keeps every intermediate the kernel is allowed to skip.
struct PairExplain {
  std::vector<ExplainOdComponent> components;
  std::vector<ExplainDescSlot> descendants;
  bool theory_equal = false;  // equational theory decided the pair
  bool od_valid = false;      // at least one comparable component
  double od_sim = 0.0;
  bool desc_valid = false;    // descendant similarity was defined
  double desc_sim = 0.0;
  double score = 0.0;         // combined, what faces the threshold
  double threshold = 0.0;
};

/// Append-only NDJSON buffer for one detector run. Disabled logs are
/// inert: every Append* returns immediately, so the classification hot
/// path pays one branch and zero allocations when explain is off.
class ExplainLog {
 public:
  explicit ExplainLog(bool enabled) : enabled_(enabled) {}
  ExplainLog(const ExplainLog&) = delete;
  ExplainLog& operator=(const ExplainLog&) = delete;

  bool enabled() const { return enabled_; }

  /// Candidate header: emitted once per candidate before its records.
  void AppendCandidate(std::string_view candidate, size_t depth,
                       size_t num_instances, size_t num_keys,
                       size_t window, std::string_view window_policy,
                       double threshold);

  /// One instance row: ordinal, element id, key strings, and the
  /// instance's sorted rank under every pass (what the miss-diagnosis
  /// and `sxnm_explain why` replay windowing from).
  void AppendInstance(std::string_view candidate, size_t ordinal,
                      size_t eid, const std::vector<std::string>& keys,
                      const std::vector<size_t>& ranks);

  /// One pair classification. `pass` is 0-based; -1 marks the exact-OD
  /// prepass. `detail` may be null (prepass and cache replays carry the
  /// verdict only).
  void AppendPair(std::string_view candidate, int pass, size_t a, size_t b,
                  size_t eid_a, size_t eid_b, size_t window_distance,
                  PairProvenance provenance, const PairExplain* detail,
                  bool verdict);

  /// Degradation notice for one shed (skipped or shrunk) pass.
  void AppendShed(std::string_view candidate, int pass, bool skipped,
                  size_t window_configured, size_t window_used, size_t rows,
                  size_t pairs_planned, size_t pairs_elided);

  /// Transitive-closure lineage: duplicate pair (a, b) arrived with
  /// union-find roots root_a/root_b; `root` is the surviving root and
  /// `merged` is false when the pair was already intra-cluster.
  void AppendMerge(std::string_view candidate, size_t a, size_t b,
                   size_t root_a, size_t root_b, size_t root, bool merged);

  /// Final non-trivial cluster membership.
  void AppendCluster(std::string_view candidate, size_t cluster,
                     const std::vector<size_t>& members);

  /// Per-provenance pair-record tallies; reconcile with sw.comparisons
  /// (owned + verdict_cache + dag_equal + batch_rejects),
  /// sw.verdict_cache_hits, sw.prepass_pairs, sw.dag_equal,
  /// sw.batch_rejects.
  uint64_t owned_pairs() const { return owned_pairs_; }
  uint64_t cache_pairs() const { return cache_pairs_; }
  uint64_t prepass_pairs() const { return prepass_pairs_; }
  uint64_t dag_pairs() const { return dag_pairs_; }
  uint64_t filter_pairs() const { return filter_pairs_; }
  uint64_t pair_records() const {
    return owned_pairs_ + cache_pairs_ + prepass_pairs_ + dag_pairs_ +
           filter_pairs_;
  }

  /// The NDJSON bytes accumulated so far.
  const std::string& text() const { return text_; }

  /// Replaces the buffered byte stream and tallies with previously
  /// captured state (checkpoint resume): later appends continue the
  /// stream, so a resumed run reproduces the uninterrupted byte stream
  /// exactly. No-op on a disabled log.
  void Restore(std::string text, uint64_t owned_pairs, uint64_t cache_pairs,
               uint64_t prepass_pairs, uint64_t dag_pairs,
               uint64_t filter_pairs);

  util::Status WriteFile(const std::string& path) const;

 private:
  bool enabled_;
  std::string text_;
  uint64_t owned_pairs_ = 0;
  uint64_t cache_pairs_ = 0;
  uint64_t prepass_pairs_ = 0;
  uint64_t dag_pairs_ = 0;
  uint64_t filter_pairs_ = 0;
};

}  // namespace sxnm::obs

#endif  // SXNM_OBS_EXPLAIN_H_
