// Span tracer for the detection pipeline: RAII spans opened anywhere in
// the engine (document run → depth level → candidate → window pass) are
// buffered per thread shard and exported as Chrome `trace_event` JSON —
// the file loads directly in chrome://tracing and Perfetto, with one
// track per worker shard, so pool utilization and per-pass costs are
// visible at a glance.
//
// Spans record steady-clock microseconds relative to the tracer's
// construction. A disabled tracer hands out inert spans whose
// construction and destruction cost one branch.

#ifndef SXNM_OBS_TRACE_H_
#define SXNM_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"  // kNumShards / ThisThreadShard
#include "util/status.h"

namespace sxnm::obs {

class Tracer {
 public:
  /// One complete ("ph":"X") trace event.
  struct Event {
    std::string name;
    std::string args_json;  // pre-rendered JSON object ("{...}") or empty
    uint64_t tid = 0;       // thread shard the span ran on
    double ts_us = 0.0;     // start, microseconds since tracer epoch
    double dur_us = 0.0;
  };

  /// RAII span: records one Event covering its lifetime. Inert when
  /// default-constructed or handed out by a disabled tracer.
  class Span {
   public:
    Span() = default;
    ~Span() { End(); }

    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Ends the span now (idempotent; the destructor calls it too).
    void End();

    /// Ends the span and attaches a pre-rendered JSON object as the
    /// event's "args" (e.g. R"({"pairs": 12})").
    void EndWithArgs(std::string args_json);

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name)
        : tracer_(tracer),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}

    Tracer* tracer_ = nullptr;  // nullptr = inert / already ended
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  explicit Tracer(bool enabled = true);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Opens a span on the calling thread. Thread-safe.
  Span StartSpan(std::string name);

  /// Records a fully specified event (tests and callers that measure
  /// time themselves). Thread-safe; ignored when disabled.
  void Record(Event event);

  /// All recorded events, sorted by (ts_us, tid, name).
  std::vector<Event> Events() const;

  /// Writes the Chrome trace_event JSON ({"traceEvents": [...]}).
  void WriteChromeTrace(std::ostream& os) const;

  /// WriteChromeTrace to a file; fails when the path is unwritable.
  util::Status WriteChromeTraceFile(const std::string& path) const;

  void Clear();

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<Event> events;
  };

  bool enabled_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::array<Buffer, kNumShards> buffers_;
};

}  // namespace sxnm::obs

#endif  // SXNM_OBS_TRACE_H_
