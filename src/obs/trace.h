// Span tracer for the detection pipeline: RAII spans opened anywhere in
// the engine (document run → depth level → candidate → window pass) are
// buffered per thread shard and exported as Chrome `trace_event` JSON —
// the file loads directly in chrome://tracing and Perfetto, with one
// track per worker shard, so pool utilization and per-pass costs are
// visible at a glance.
//
// Spans record steady-clock microseconds relative to the tracer's
// construction. A disabled tracer hands out inert spans whose
// construction and destruction cost one branch.

#ifndef SXNM_OBS_TRACE_H_
#define SXNM_OBS_TRACE_H_

#include <pthread.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"  // kNumShards / ThisThreadShard
#include "util/status.h"

namespace sxnm::obs {

// ---------------------------------------------------------------------------
// Span-path tracking for the sampling profiler (obs/profiler.h).
//
// Every thread that opens a path-tracked span maintains a small lock-free
// stack of interned span-name ids. The stack is designed so that an
// async-signal handler running ON the same thread (SIGPROF sampling), or a
// sampler thread reading ANOTHER thread's stack (portable fallback), can
// snapshot the current span path without taking locks or allocating.
//
// Writer protocol (owning thread only):
//   push: frames[d].store(id, relaxed); depth.store(d + 1, release);
//   pop:  depth.store(d - 1, release);
// The release store on depth orders the frame write before the depth bump,
// so any reader that observes depth == d + 1 also observes frames[d].
// Same-thread signal handlers additionally get program-order guarantees.
// Cross-thread readers may race with a concurrent push/pop and snapshot a
// path that is one frame stale — acceptable for a sampling profiler.
// ---------------------------------------------------------------------------
namespace spanpath {

/// Maximum tracked span nesting. Deeper pushes are counted (truncated)
/// and dropped; the engine's real nesting is ~5 deep.
inline constexpr size_t kMaxDepth = 16;

/// Per-thread lock-free span-path stack. Allocated once per thread on
/// first use and pooled for the process lifetime (never freed), so a
/// late async signal can never dereference freed memory.
struct ThreadStack {
  std::array<std::atomic<uint32_t>, kMaxDepth> frames{};
  std::atomic<uint32_t> depth{0};
  /// Pushes dropped because the stack was full.
  std::atomic<uint64_t> truncated{0};
  /// Kernel thread id (gettid) of the owning thread; 0 if unknown.
  uint64_t tid = 0;
  /// pthread handle of the owning thread (for pthread_getcpuclockid).
  pthread_t pthread_handle{};
  /// Opaque per-thread profiler state (owned by the active profiler).
  std::atomic<void*> profiler_state{nullptr};

  /// Owning-thread push. Returns true when the frame was recorded (the
  /// matching End must then Pop).
  bool Push(uint32_t name_id) {
    uint32_t d = depth.load(std::memory_order_relaxed);
    if (d >= kMaxDepth) {
      truncated.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    frames[d].store(name_id, std::memory_order_relaxed);
    depth.store(d + 1, std::memory_order_release);
    return true;
  }

  /// Owning-thread pop (no-op on an empty stack).
  void Pop() {
    uint32_t d = depth.load(std::memory_order_relaxed);
    if (d > 0) depth.store(d - 1, std::memory_order_release);
  }

  /// Snapshot into `out[0..kMaxDepth)`; returns the captured depth.
  /// Safe from the owning thread's signal handler; cross-thread callers
  /// get a best-effort (possibly one-frame-stale) path.
  uint32_t Snapshot(uint32_t* out) const {
    uint32_t d = depth.load(std::memory_order_acquire);
    if (d > kMaxDepth) d = kMaxDepth;
    for (uint32_t i = 0; i < d; ++i) {
      out[i] = frames[i].load(std::memory_order_relaxed);
    }
    return d;
  }
};

/// Interns a span name, returning a stable process-wide id. Never call
/// from a signal handler (takes a lock, may allocate).
uint32_t InternName(const std::string& name);

/// Name for an interned id ("?" for unknown ids). Thread-safe.
std::string NameOf(uint32_t id);

/// The calling thread's stack; registers the thread (and fires the
/// active registration hook, if any) on first use. Thread-safe.
ThreadStack* ThisThreadStack();

/// Registration hooks: an active profiler installs these to learn about
/// span-pushing threads. `on_thread` is true when the callback runs on
/// the thread being registered (lazy first-use registration) and false
/// when it runs from InstallThreadHooks/RemoveThreadHooks for threads
/// that were already registered. Callbacks run under the registry lock:
/// they must not re-enter spanpath registration.
struct ThreadHooks {
  void (*on_register)(void* ctx, ThreadStack* stack, bool on_thread) = nullptr;
  void (*on_unregister)(void* ctx, ThreadStack* stack, bool on_thread) =
      nullptr;
  void* ctx = nullptr;
};

/// Installs hooks and invokes on_register for every already-registered
/// thread before returning. Fails (returns false) if hooks are already
/// installed — at most one profiler can be active.
bool InstallThreadHooks(const ThreadHooks& hooks);

/// Invokes on_unregister for every still-registered thread, then clears
/// the hooks. No-op when `ctx` does not match the installed hooks.
void RemoveThreadHooks(void* ctx);

/// Visits every registered thread stack under the registry lock.
void ForEachThreadStack(const std::function<void(ThreadStack*)>& fn);

}  // namespace spanpath

class Tracer {
 public:
  /// One complete ("ph":"X") trace event.
  struct Event {
    std::string name;
    std::string args_json;  // pre-rendered JSON object ("{...}") or empty
    uint64_t tid = 0;       // thread shard the span ran on
    double ts_us = 0.0;     // start, microseconds since tracer epoch
    double dur_us = 0.0;
  };

  /// RAII span: records one Event covering its lifetime. Inert when
  /// default-constructed or handed out by a disabled tracer.
  class Span {
   public:
    Span() = default;
    ~Span() { End(); }

    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Ends the span now (idempotent; the destructor calls it too).
    void End();

    /// Ends the span and attaches a pre-rendered JSON object as the
    /// event's "args" (e.g. R"({"pairs": 12})").
    void EndWithArgs(std::string args_json);

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, bool record,
         spanpath::ThreadStack* pushed)
        : tracer_(tracer),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()),
          record_(record),
          pushed_(pushed) {}

    Tracer* tracer_ = nullptr;  // nullptr = inert / already ended
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    bool record_ = false;  // emit a Chrome trace event on End
    // Span-path stack this span pushed a frame onto (nullptr = none).
    // Spans must End on the thread that started them.
    spanpath::ThreadStack* pushed_ = nullptr;
  };

  /// `enabled` buffers Chrome trace events; `track_paths` additionally
  /// maintains the per-thread span-path stacks the sampling profiler
  /// snapshots. With both off, StartSpan hands out inert spans whose
  /// whole lifecycle costs one branch.
  explicit Tracer(bool enabled = true, bool track_paths = false);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  bool track_paths() const { return track_paths_; }

  /// Opens a span on the calling thread. Thread-safe.
  Span StartSpan(std::string name);

  /// Records a fully specified event (tests and callers that measure
  /// time themselves). Thread-safe; ignored when disabled.
  void Record(Event event);

  /// All recorded events, sorted by (ts_us, tid, name).
  std::vector<Event> Events() const;

  /// Writes the Chrome trace_event JSON ({"traceEvents": [...]}).
  void WriteChromeTrace(std::ostream& os) const;

  /// WriteChromeTrace to a file; fails when the path is unwritable.
  util::Status WriteChromeTraceFile(const std::string& path) const;

  void Clear();

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<Event> events;
  };

  bool enabled_;
  bool track_paths_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::array<Buffer, kNumShards> buffers_;
};

}  // namespace sxnm::obs

#endif  // SXNM_OBS_TRACE_H_
