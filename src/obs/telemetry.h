// Live telemetry: a background sampler that periodically snapshots a
// MetricsRegistry while a run executes, derives per-interval counter
// rates and phase progress, attaches process memory accounting, and
// streams each sample as one NDJSON line (plus a bounded in-memory
// ring for embedders such as the future sxnm_server).
//
// The sampler only ever *reads* the registry — registry reads are
// safe-but-racy by design — so enabling telemetry cannot perturb
// detection output. The time series itself is wall-clock-driven and
// therefore explicitly non-deterministic: the number of mid-run
// samples and the values they catch in flight vary run to run. Only
// the stream's *final* sample is deterministic content-wise: Stop()
// takes it after the worker thread has joined, so once the engine's
// writers have quiesced it equals the end-of-run MetricsSnapshot.

#ifndef SXNM_OBS_TELEMETRY_H_
#define SXNM_OBS_TELEMETRY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/proc_stat.h"
#include "util/status.h"

namespace sxnm::obs {

/// Engine phases published through the `progress.phase` gauge. The
/// detector sets the gauge at serial points only; SW and TC interleave
/// per depth level, so the gauge oscillates between kSlidingWindow and
/// kTransitiveClosure until the last level finishes.
enum class RunPhase : int {
  kSetup = 0,
  kKeyGeneration = 1,
  kSlidingWindow = 2,
  kTransitiveClosure = 3,
  kDone = 4,
  // Out-of-core order stage: GK rows spilling through the external
  // sorter before a level's window passes. Appended after kDone so
  // existing recorded streams keep their phase numbering.
  kExternalSort = 5,
};

/// Human-readable name for a `progress.phase` gauge value ("unknown"
/// for anything outside the enum).
const char* RunPhaseName(int phase);

struct TelemetryOptions {
  /// NDJSON output path. Empty keeps the stream in memory only (ring
  /// buffer), which is what a long-lived server embedding would use.
  std::string path;
  /// Sampling period. Clamped to >= 1ms at Start().
  double interval_ms = 250.0;
  /// Ring buffer capacity; oldest samples are dropped beyond this.
  size_t ring_capacity = 256;
};

/// One timestamped observation of the registry.
struct TelemetrySample {
  uint64_t seq = 0;     // 0-based sample index
  double t_ms = 0.0;    // steady-clock ms since Start()
  bool final_sample = false;

  MetricsSnapshot snapshot;
  util::ProcMemory memory;

  /// Process CPU utilization over the interval since the previous
  /// sample (or since Start() for the first): user/system CPU seconds
  /// per wall second, as a percentage. 100% == one saturated core, so
  /// a parallel phase legitimately exceeds 100. Monotonic-clamped to
  /// >= 0. `threads` is the live thread count at sample time (0 where
  /// /proc is unavailable); `cpu_sampled` is false when the platform
  /// has no CPU-time source at all.
  double cpu_user_pct = 0.0;
  double cpu_sys_pct = 0.0;
  int threads = 0;
  bool cpu_sampled = false;

  /// Per-second rates for counters that advanced since the previous
  /// sample, (name, delta/dt). Sorted by name.
  std::vector<std::pair<std::string, double>> rates;

  /// Derived progress. `phase` mirrors the `progress.phase` gauge;
  /// `fraction` is the completion estimate of the dominant running
  /// phase in [0,1], or -1 when unknown; `eta_s` extrapolates the
  /// remaining work from the cumulative rate, or -1 when unknown.
  int phase = 0;
  double fraction = -1.0;
  double eta_s = -1.0;

  /// One NDJSON record (single line, no trailing newline):
  /// {"type":"sample","seq":..,"t_ms":..,"final":..,"phase":..,
  ///  "phase_name":..,"progress":..,"eta_s":..,
  ///  "cpu_user_pct":..,"cpu_sys_pct":..,"threads":..,"mem":{...},
  ///  "counters":{...},"gauges":{...},"rates":{...},
  ///  "histograms":{name:{count,sum}}}
  void WriteJson(std::ostream& os) const;
};

/// Computes progress fraction and ETA for one sample from the
/// detector's monotonic progress counters/gauges (kg.rows_done/total,
/// sw.pairs_done / sw.pairs_planned_total, progress.phase). Exposed
/// for tests and for offline consumers replaying a snapshot.
void DeriveProgress(const MetricsSnapshot& snapshot, double t_ms,
                    TelemetrySample* sample);

/// Background sampler over one registry. Thread-safe; Start/Stop may
/// be called from any thread but not concurrently with each other.
/// The registry must outlive the sampler.
class TelemetrySampler {
 public:
  TelemetrySampler(const MetricsRegistry* registry, TelemetryOptions options);
  /// Joins the worker if still running (without taking the final
  /// sample — a clean shutdown goes through Stop()).
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Opens the stream (if a path is set), writes the header record,
  /// and spawns the sampling thread. Fails if already running or if
  /// the output file cannot be created.
  util::Status Start();

  /// Signals the worker, joins it, then takes one last sample marked
  /// `"final":true` and flushes + closes the stream. Safe to call if
  /// never started (no-op) or twice. Returns the first I/O error seen
  /// on the stream, if any.
  util::Status Stop();

  bool running() const;

  /// Copy of the retained ring (oldest first). The final sample, once
  /// taken, is always the last entry.
  std::vector<TelemetrySample> Samples() const;

  /// Total samples taken, including those evicted from the ring.
  uint64_t TotalSamples() const;

  const TelemetryOptions& options() const { return options_; }

 private:
  void WorkerLoop();
  /// Snapshots the registry and appends one sample (under mu_).
  void TakeSampleLocked(bool final_sample, std::unique_lock<std::mutex>& lock);

  const MetricsRegistry* registry_;
  TelemetryOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  bool stopped_ = false;  // Stop() completed; final sample taken
  std::thread worker_;

  std::ofstream out_;
  util::Status io_status_;

  std::deque<TelemetrySample> ring_;
  uint64_t total_samples_ = 0;
  // Previous sample's counters (name -> value) for delta/rate math.
  std::vector<std::pair<std::string, uint64_t>> prev_counters_;
  double prev_t_ms_ = 0.0;
  // Previous CPU reading (baseline taken at Start()) for the per-sample
  // cpu_user_pct / cpu_sys_pct utilization deltas.
  util::ProcCpu prev_cpu_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace sxnm::obs

#endif  // SXNM_OBS_TELEMETRY_H_
