#include "obs/explain.h"

#include <cstdio>

#include "persist/io.h"

namespace sxnm::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Same %.9g rendering the metrics JSON uses, so scores round-trip the
// identical way across every export surface.
void AppendDouble(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void AppendSizeList(std::string& out, const std::vector<size_t>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace

std::string_view PairProvenanceName(PairProvenance provenance) {
  switch (provenance) {
    case PairProvenance::kOwned:
      return "owned";
    case PairProvenance::kVerdictCache:
      return "verdict_cache";
    case PairProvenance::kPrepass:
      return "prepass";
    case PairProvenance::kDagEqual:
      return "dag_equal";
    case PairProvenance::kBatchFilter:
      return "batch_filter";
  }
  return "unknown";
}

void ExplainLog::AppendCandidate(std::string_view candidate, size_t depth,
                                 size_t num_instances, size_t num_keys,
                                 size_t window, std::string_view window_policy,
                                 double threshold) {
  if (!enabled_) return;
  text_ += "{\"type\":\"candidate\",\"candidate\":";
  AppendEscaped(text_, candidate);
  text_ += ",\"depth\":" + std::to_string(depth);
  text_ += ",\"instances\":" + std::to_string(num_instances);
  text_ += ",\"keys\":" + std::to_string(num_keys);
  text_ += ",\"window\":" + std::to_string(window);
  text_ += ",\"window_policy\":";
  AppendEscaped(text_, window_policy);
  text_ += ",\"threshold\":";
  AppendDouble(text_, threshold);
  text_ += "}\n";
}

void ExplainLog::AppendInstance(std::string_view candidate, size_t ordinal,
                                size_t eid,
                                const std::vector<std::string>& keys,
                                const std::vector<size_t>& ranks) {
  if (!enabled_) return;
  text_ += "{\"type\":\"instance\",\"candidate\":";
  AppendEscaped(text_, candidate);
  text_ += ",\"ordinal\":" + std::to_string(ordinal);
  text_ += ",\"eid\":" + std::to_string(eid);
  text_ += ",\"keys\":[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) text_ += ',';
    AppendEscaped(text_, keys[i]);
  }
  text_ += "],\"ranks\":";
  AppendSizeList(text_, ranks);
  text_ += "}\n";
}

void ExplainLog::AppendPair(std::string_view candidate, int pass, size_t a,
                            size_t b, size_t eid_a, size_t eid_b,
                            size_t window_distance, PairProvenance provenance,
                            const PairExplain* detail, bool verdict) {
  if (!enabled_) return;
  switch (provenance) {
    case PairProvenance::kOwned:
      ++owned_pairs_;
      break;
    case PairProvenance::kVerdictCache:
      ++cache_pairs_;
      break;
    case PairProvenance::kPrepass:
      ++prepass_pairs_;
      break;
    case PairProvenance::kDagEqual:
      ++dag_pairs_;
      break;
    case PairProvenance::kBatchFilter:
      ++filter_pairs_;
      break;
  }
  text_ += "{\"type\":\"pair\",\"candidate\":";
  AppendEscaped(text_, candidate);
  text_ += ",\"pass\":" + std::to_string(pass);
  text_ += ",\"a\":" + std::to_string(a);
  text_ += ",\"b\":" + std::to_string(b);
  text_ += ",\"eid_a\":" + std::to_string(eid_a);
  text_ += ",\"eid_b\":" + std::to_string(eid_b);
  text_ += ",\"window_distance\":" + std::to_string(window_distance);
  text_ += ",\"provenance\":";
  AppendEscaped(text_, PairProvenanceName(provenance));
  if (detail != nullptr) {
    text_ += ",\"components\":[";
    for (size_t i = 0; i < detail->components.size(); ++i) {
      const ExplainOdComponent& c = detail->components[i];
      if (i > 0) text_ += ',';
      text_ += "{\"index\":" + std::to_string(c.index);
      text_ += ",\"weight\":";
      AppendDouble(text_, c.weight);
      text_ += ",\"value_a\":";
      AppendEscaped(text_, c.value_a);
      text_ += ",\"value_b\":";
      AppendEscaped(text_, c.value_b);
      text_ += ",\"ref_a\":" + std::to_string(c.ref_a);
      text_ += ",\"ref_b\":" + std::to_string(c.ref_b);
      text_ += ",\"comparable\":";
      text_ += c.comparable ? "true" : "false";
      text_ += ",\"interned_equal\":";
      text_ += c.interned_equal ? "true" : "false";
      text_ += ",\"bailout\":";
      text_ += c.bailout ? "true" : "false";
      text_ += ",\"edit_distance\":" + std::to_string(c.edit_distance);
      text_ += ",\"sim\":";
      AppendDouble(text_, c.sim);
      text_ += '}';
    }
    text_ += "],\"descendants\":[";
    for (size_t i = 0; i < detail->descendants.size(); ++i) {
      const ExplainDescSlot& d = detail->descendants[i];
      if (i > 0) text_ += ',';
      text_ += "{\"child\":" + std::to_string(d.child);
      text_ += ",\"size_a\":" + std::to_string(d.size_a);
      text_ += ",\"size_b\":" + std::to_string(d.size_b);
      text_ += ",\"intersection\":" + std::to_string(d.intersection);
      text_ += ",\"union\":" + std::to_string(d.union_size);
      text_ += ",\"jaccard\":";
      AppendDouble(text_, d.jaccard);
      text_ += '}';
    }
    text_ += "],\"theory_equal\":";
    text_ += detail->theory_equal ? "true" : "false";
    text_ += ",\"od_valid\":";
    text_ += detail->od_valid ? "true" : "false";
    text_ += ",\"od_sim\":";
    AppendDouble(text_, detail->od_sim);
    text_ += ",\"desc_valid\":";
    text_ += detail->desc_valid ? "true" : "false";
    text_ += ",\"desc_sim\":";
    AppendDouble(text_, detail->desc_sim);
    text_ += ",\"score\":";
    AppendDouble(text_, detail->score);
    text_ += ",\"threshold\":";
    AppendDouble(text_, detail->threshold);
  }
  text_ += ",\"verdict\":";
  text_ += verdict ? "true" : "false";
  text_ += "}\n";
}

void ExplainLog::AppendShed(std::string_view candidate, int pass, bool skipped,
                            size_t window_configured, size_t window_used,
                            size_t rows, size_t pairs_planned,
                            size_t pairs_elided) {
  if (!enabled_) return;
  text_ += "{\"type\":\"shed\",\"candidate\":";
  AppendEscaped(text_, candidate);
  text_ += ",\"pass\":" + std::to_string(pass);
  text_ += ",\"provenance\":\"shed\"";
  text_ += ",\"skipped\":";
  text_ += skipped ? "true" : "false";
  text_ += ",\"window_configured\":" + std::to_string(window_configured);
  text_ += ",\"window_used\":" + std::to_string(window_used);
  text_ += ",\"rows\":" + std::to_string(rows);
  text_ += ",\"pairs_planned\":" + std::to_string(pairs_planned);
  text_ += ",\"pairs_elided\":" + std::to_string(pairs_elided);
  text_ += "}\n";
}

void ExplainLog::AppendMerge(std::string_view candidate, size_t a, size_t b,
                             size_t root_a, size_t root_b, size_t root,
                             bool merged) {
  if (!enabled_) return;
  text_ += "{\"type\":\"merge\",\"candidate\":";
  AppendEscaped(text_, candidate);
  text_ += ",\"a\":" + std::to_string(a);
  text_ += ",\"b\":" + std::to_string(b);
  text_ += ",\"root_a\":" + std::to_string(root_a);
  text_ += ",\"root_b\":" + std::to_string(root_b);
  text_ += ",\"root\":" + std::to_string(root);
  text_ += ",\"merged\":";
  text_ += merged ? "true" : "false";
  text_ += "}\n";
}

void ExplainLog::AppendCluster(std::string_view candidate, size_t cluster,
                               const std::vector<size_t>& members) {
  if (!enabled_) return;
  text_ += "{\"type\":\"cluster\",\"candidate\":";
  AppendEscaped(text_, candidate);
  text_ += ",\"cluster\":" + std::to_string(cluster);
  text_ += ",\"members\":";
  AppendSizeList(text_, members);
  text_ += "}\n";
}

void ExplainLog::Restore(std::string text, uint64_t owned_pairs,
                         uint64_t cache_pairs, uint64_t prepass_pairs,
                         uint64_t dag_pairs, uint64_t filter_pairs) {
  if (!enabled_) return;
  text_ = std::move(text);
  owned_pairs_ = owned_pairs;
  cache_pairs_ = cache_pairs;
  prepass_pairs_ = prepass_pairs;
  dag_pairs_ = dag_pairs;
  filter_pairs_ = filter_pairs;
}

util::Status ExplainLog::WriteFile(const std::string& path) const {
  // End-of-run artifact: committed atomically so a crash mid-export never
  // leaves a half-written NDJSON file that diff-based tooling would trust.
  // (A future live streaming mode would append instead — see persist/io.h.)
  return persist::AtomicWriteFile(path, text_);
}

}  // namespace sxnm::obs
