#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "persist/io.h"

namespace sxnm::obs {

namespace {

void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void WriteMicros(std::ostream& os, double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  os << buf;
}

}  // namespace

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::End() { EndWithArgs(std::string()); }

void Tracer::Span::EndWithArgs(std::string args_json) {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;

  auto now = std::chrono::steady_clock::now();
  Event event;
  event.name = std::move(name_);
  event.args_json = std::move(args_json);
  event.tid = ThisThreadShard();
  event.ts_us =
      std::chrono::duration<double, std::micro>(start_ - tracer->epoch_)
          .count();
  event.dur_us = std::chrono::duration<double, std::micro>(now - start_).count();
  tracer->Record(std::move(event));
}

Tracer::Tracer(bool enabled)
    : enabled_(enabled), epoch_(std::chrono::steady_clock::now()) {}

Tracer::Span Tracer::StartSpan(std::string name) {
  if (!enabled_) return Span();
  return Span(this, std::move(name));
}

void Tracer::Record(Event event) {
  if (!enabled_) return;
  Buffer& buffer = buffers_[ThisThreadShard()];
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

std::vector<Tracer::Event> Tracer::Events() const {
  std::vector<Event> all;
  for (Buffer& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer.mu);
    all.insert(all.end(), buffer.events.begin(), buffer.events.end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return std::tie(a.ts_us, a.tid, a.name) < std::tie(b.ts_us, b.tid, b.name);
  });
  return all;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& event : Events()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": ";
    WriteJsonString(os, event.name);
    os << ", \"cat\": \"sxnm\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << event.tid << ", \"ts\": ";
    WriteMicros(os, event.ts_us);
    os << ", \"dur\": ";
    WriteMicros(os, event.dur_us);
    if (!event.args_json.empty()) {
      os << ", \"args\": " << event.args_json;
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

util::Status Tracer::WriteChromeTraceFile(const std::string& path) const {
  // Atomic commit: a crash mid-export leaves the previous trace (or no
  // file), never JSON that chrome://tracing rejects as truncated.
  std::ostringstream os;
  WriteChromeTrace(os);
  return persist::AtomicWriteFile(path, os.str());
}

void Tracer::Clear() {
  for (Buffer& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer.mu);
    buffer.events.clear();
  }
}

}  // namespace sxnm::obs
