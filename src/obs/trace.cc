#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <sstream>
#include <tuple>
#include <unordered_map>

#ifdef __linux__
#include <sys/syscall.h>
#endif

#include "persist/io.h"

namespace sxnm::obs {

namespace spanpath {

namespace {

uint64_t CurrentTid() {
#ifdef __linux__
  return static_cast<uint64_t>(syscall(SYS_gettid));
#else
  return 0;
#endif
}

// Interned span names. A deque keeps element addresses stable across
// growth; ids are indices. Bounded by the number of distinct span names
// ever started (a handful per run), so it is never trimmed.
struct NameTable {
  std::mutex mu;
  std::deque<std::string> names;
  std::unordered_map<std::string, uint32_t> ids;
};

NameTable& Names() {
  static NameTable* table = new NameTable();
  return *table;
}

// Registered thread stacks plus the (single) profiler hook set. Stacks
// are pooled for the process lifetime: a ThreadStack handed to a thread
// is returned to `pool` when the thread exits and recycled for the next
// thread, but its memory is never freed — a late async signal aimed at
// an exiting thread can therefore never touch freed memory.
struct Registry {
  std::mutex mu;
  std::vector<ThreadStack*> stacks;  // currently registered threads
  std::vector<ThreadStack*> pool;    // retired, reusable
  ThreadHooks hooks;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

void UnregisterThread(ThreadStack* stack) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.hooks.on_unregister != nullptr) {
    reg.hooks.on_unregister(reg.hooks.ctx, stack, /*on_thread=*/true);
  }
  auto it = std::find(reg.stacks.begin(), reg.stacks.end(), stack);
  if (it != reg.stacks.end()) reg.stacks.erase(it);
  reg.pool.push_back(stack);
}

// Thread-local registration handle: registers on construction (first
// ThisThreadStack call), unregisters when the thread exits.
struct ThreadSlot {
  ThreadStack* stack = nullptr;

  ThreadSlot() {
    Registry& reg = TheRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.pool.empty()) {
      stack = reg.pool.back();
      reg.pool.pop_back();
      stack->depth.store(0, std::memory_order_relaxed);
      stack->truncated.store(0, std::memory_order_relaxed);
      stack->profiler_state.store(nullptr, std::memory_order_relaxed);
    } else {
      stack = new ThreadStack();
    }
    stack->tid = CurrentTid();
    stack->pthread_handle = pthread_self();
    reg.stacks.push_back(stack);
    if (reg.hooks.on_register != nullptr) {
      reg.hooks.on_register(reg.hooks.ctx, stack, /*on_thread=*/true);
    }
  }

  ~ThreadSlot() { UnregisterThread(stack); }
};

}  // namespace

uint32_t InternName(const std::string& name) {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  auto it = table.ids.find(name);
  if (it != table.ids.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(table.names.size());
  table.names.push_back(name);
  table.ids.emplace(name, id);
  return id;
}

std::string NameOf(uint32_t id) {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  if (id >= table.names.size()) return "?";
  return table.names[id];
}

ThreadStack* ThisThreadStack() {
  static thread_local ThreadSlot slot;
  return slot.stack;
}

bool InstallThreadHooks(const ThreadHooks& hooks) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.hooks.on_register != nullptr || reg.hooks.on_unregister != nullptr) {
    return false;
  }
  reg.hooks = hooks;
  if (reg.hooks.on_register != nullptr) {
    for (ThreadStack* stack : reg.stacks) {
      reg.hooks.on_register(reg.hooks.ctx, stack, /*on_thread=*/false);
    }
  }
  return true;
}

void RemoveThreadHooks(void* ctx) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.hooks.ctx != ctx) return;
  if (reg.hooks.on_unregister != nullptr) {
    for (ThreadStack* stack : reg.stacks) {
      reg.hooks.on_unregister(reg.hooks.ctx, stack, /*on_thread=*/false);
    }
  }
  reg.hooks = ThreadHooks();
}

void ForEachThreadStack(const std::function<void(ThreadStack*)>& fn) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadStack* stack : reg.stacks) fn(stack);
}

}  // namespace spanpath

namespace {

void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void WriteMicros(std::ostream& os, double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  os << buf;
}

}  // namespace

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    start_ = other.start_;
    record_ = other.record_;
    pushed_ = other.pushed_;
    other.tracer_ = nullptr;
    other.pushed_ = nullptr;
  }
  return *this;
}

void Tracer::Span::End() { EndWithArgs(std::string()); }

void Tracer::Span::EndWithArgs(std::string args_json) {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;

  if (pushed_ != nullptr) {
    pushed_->Pop();
    pushed_ = nullptr;
  }
  if (!record_) return;

  auto now = std::chrono::steady_clock::now();
  Event event;
  event.name = std::move(name_);
  event.args_json = std::move(args_json);
  event.tid = ThisThreadShard();
  event.ts_us =
      std::chrono::duration<double, std::micro>(start_ - tracer->epoch_)
          .count();
  event.dur_us = std::chrono::duration<double, std::micro>(now - start_).count();
  tracer->Record(std::move(event));
}

Tracer::Tracer(bool enabled, bool track_paths)
    : enabled_(enabled),
      track_paths_(track_paths),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::Span Tracer::StartSpan(std::string name) {
  if (!enabled_ && !track_paths_) return Span();
  spanpath::ThreadStack* pushed = nullptr;
  if (track_paths_) {
    spanpath::ThreadStack* stack = spanpath::ThisThreadStack();
    if (stack->Push(spanpath::InternName(name))) pushed = stack;
  }
  return Span(this, std::move(name), enabled_, pushed);
}

void Tracer::Record(Event event) {
  if (!enabled_) return;
  Buffer& buffer = buffers_[ThisThreadShard()];
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

std::vector<Tracer::Event> Tracer::Events() const {
  std::vector<Event> all;
  for (Buffer& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer.mu);
    all.insert(all.end(), buffer.events.begin(), buffer.events.end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return std::tie(a.ts_us, a.tid, a.name) < std::tie(b.ts_us, b.tid, b.name);
  });
  return all;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& event : Events()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": ";
    WriteJsonString(os, event.name);
    os << ", \"cat\": \"sxnm\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << event.tid << ", \"ts\": ";
    WriteMicros(os, event.ts_us);
    os << ", \"dur\": ";
    WriteMicros(os, event.dur_us);
    if (!event.args_json.empty()) {
      os << ", \"args\": " << event.args_json;
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

util::Status Tracer::WriteChromeTraceFile(const std::string& path) const {
  // Atomic commit: a crash mid-export leaves the previous trace (or no
  // file), never JSON that chrome://tracing rejects as truncated.
  std::ostringstream os;
  WriteChromeTrace(os);
  return persist::AtomicWriteFile(path, os.str());
}

void Tracer::Clear() {
  for (Buffer& buffer : buffers_) {
    std::lock_guard<std::mutex> lock(buffer.mu);
    buffer.events.clear();
  }
}

}  // namespace sxnm::obs
