#include "obs/profiler.h"

#include <errno.h>
#include <signal.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "persist/io.h"

// The signal backend needs Linux-only timer plumbing: per-thread CPU
// clocks attached to POSIX timers that deliver SIGPROF to a specific
// thread (SIGEV_THREAD_ID). Everything else falls back to the portable
// polling backend.
#if defined(__linux__) && defined(SIGEV_THREAD_ID)
#define SXNM_PROFILER_HAVE_SIGPROF 1
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#else
#define SXNM_PROFILER_HAVE_SIGPROF 0
#endif

namespace sxnm::obs {

namespace {

constexpr char kUnattributed[] = "(unattributed)";

struct Slot {
  uint32_t depth = 0;
  uint32_t frames[spanpath::kMaxDepth];
};

// Per-thread sampling state for the signal backend. Reached from the
// SIGPROF handler via siginfo's sival_ptr (no TLS lookup in the
// handler). Instances live forever in a process-wide pool: a stale
// timer signal racing thread teardown can touch a recycled state (at
// worst corrupting one sample slot) but never freed memory.
struct ThreadState {
  std::atomic<bool> armed{false};
  spanpath::ThreadStack* stack = nullptr;
  size_t capacity = 0;
  Slot* slots = nullptr;
  std::atomic<uint64_t> head{0};  // producer: signal handler
  std::atomic<uint64_t> tail{0};  // consumer: drainer (registry-lock serialized)
  std::atomic<uint64_t> dropped{0};
  uint64_t trunc_base = 0;
#if SXNM_PROFILER_HAVE_SIGPROF
  timer_t timer{};
  bool timer_ok = false;
#endif
};

struct StatePool {
  std::mutex mu;
  std::vector<ThreadState*> free_states;
};

StatePool& ThePool() {
  static StatePool* pool = new StatePool();
  return *pool;
}

ThreadState* AcquireState(size_t capacity) {
  StatePool& pool = ThePool();
  std::lock_guard<std::mutex> lock(pool.mu);
  for (size_t i = 0; i < pool.free_states.size(); ++i) {
    if (pool.free_states[i]->capacity == capacity) {
      ThreadState* st = pool.free_states[i];
      pool.free_states.erase(pool.free_states.begin() +
                             static_cast<ptrdiff_t>(i));
      return st;
    }
  }
  ThreadState* st = new ThreadState();
  st->capacity = capacity;
  st->slots = new Slot[capacity];
  return st;
}

void ReleaseState(ThreadState* st) {
  StatePool& pool = ThePool();
  std::lock_guard<std::mutex> lock(pool.mu);
  pool.free_states.push_back(st);
}

#if SXNM_PROFILER_HAVE_SIGPROF
// Async-signal-safe: only relaxed/acquire/release atomics and plain
// stores into the preallocated ring; errno preserved.
void SigprofHandler(int /*signo*/, siginfo_t* info, void* /*uctx*/) {
  if (info == nullptr || info->si_code != SI_TIMER) return;
  auto* st = static_cast<ThreadState*>(info->si_value.sival_ptr);
  if (st == nullptr || !st->armed.load(std::memory_order_acquire)) return;
  int saved_errno = errno;
  uint64_t head = st->head.load(std::memory_order_relaxed);
  uint64_t tail = st->tail.load(std::memory_order_acquire);
  if (head - tail >= st->capacity) {
    st->dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    Slot& slot = st->slots[head % st->capacity];
    slot.depth = st->stack->Snapshot(slot.frames);
    st->head.store(head + 1, std::memory_order_release);
  }
  errno = saved_errno;
}

// Installed on first profiler start and left in place for the process
// lifetime: restoring SIG_DFL while a deleted timer's signal is still
// pending would terminate the process. With no profiler running every
// state is disarmed and the handler is a no-op.
void InstallSigprofHandlerOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &SigprofHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
  });
}
#endif  // SXNM_PROFILER_HAVE_SIGPROF

std::string SanitizeFrame(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  if (out.empty()) out = "_";
  return out;
}

void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void WriteSeconds(std::ostream& os, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  os << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// CpuProfile
// ---------------------------------------------------------------------------

const CpuProfile::Entry* CpuProfile::TopSelf() const {
  // Entries are sorted self-descending, so the first with self samples
  // (if any) leads the vector.
  if (entries.empty() || entries.front().self_samples == 0) return nullptr;
  return &entries.front();
}

void CpuProfile::WriteFolded(std::ostream& os) const {
  // One line per leaf-sampled path. Sorted by path for a stable diff.
  std::vector<const Entry*> leaves;
  for (const Entry& e : entries) {
    if (e.self_samples > 0) leaves.push_back(&e);
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const Entry* a, const Entry* b) { return a->path < b->path; });
  for (const Entry* e : leaves) {
    os << e->path << ' ' << e->self_samples << '\n';
  }
}

util::Status CpuProfile::WriteFoldedFile(const std::string& path) const {
  std::ostringstream os;
  WriteFolded(os);
  return persist::AtomicWriteFile(path, os.str());
}

void CpuProfile::WriteJson(std::ostream& os) const {
  os << "{\"enabled\": " << (enabled ? "true" : "false");
  if (!enabled) {
    os << "}";
    return;
  }
  os << ", \"backend\": ";
  WriteJsonString(os, backend);
  os << ", \"hz\": ";
  WriteSeconds(os, hz);
  os << ", \"samples\": " << total_samples
     << ", \"dropped\": " << dropped_samples
     << ", \"truncated\": " << truncated_frames << ", \"spans\": [";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) os << ", ";
    first = false;
    os << "{\"path\": ";
    WriteJsonString(os, e.path);
    os << ", \"self_samples\": " << e.self_samples
       << ", \"total_samples\": " << e.total_samples << ", \"self_s\": ";
    WriteSeconds(os, SecondsOf(e.self_samples));
    os << ", \"total_s\": ";
    WriteSeconds(os, SecondsOf(e.total_samples));
    os << "}";
  }
  os << "]}";
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

struct Profiler::Impl {
  explicit Impl(ProfilerOptions opts) : options(opts) {
    options.hz = std::min(1000.0, std::max(1.0, options.hz));
    if (options.ring_capacity < 16) options.ring_capacity = 16;
    period_ns = static_cast<uint64_t>(1e9 / options.hz);
    unattributed_id = spanpath::InternName(kUnattributed);
  }

  ProfilerOptions options;
  uint64_t period_ns = 0;
  uint32_t unattributed_id = 0;

  std::mutex run_mu;
  bool running = false;
  bool use_sigprof = false;

  // Aggregated leaf counts keyed by interned span path; guarded by
  // agg_mu. Lock order: spanpath registry lock -> agg_mu.
  std::mutex agg_mu;
  std::map<std::vector<uint32_t>, uint64_t> leaf_counts;
  uint64_t dropped = 0;
  uint64_t truncated = 0;

  // Drainer (signal backend) or sampler (fallback backend) thread.
  std::thread worker;
  std::mutex worker_mu;
  std::condition_variable worker_cv;
  bool worker_stop = false;

  // Fallback-backend bookkeeping, touched only by the sampler thread.
  std::map<spanpath::ThreadStack*, uint64_t> last_cpu_ns;
  std::map<spanpath::ThreadStack*, uint64_t> carry_ns;

  void AddSamples(const uint32_t* frames, uint32_t depth, uint64_t count) {
    std::vector<uint32_t> path;
    if (depth == 0) {
      path.push_back(unattributed_id);
    } else {
      path.assign(frames, frames + depth);
    }
    std::lock_guard<std::mutex> lock(agg_mu);
    leaf_counts[path] += count;
  }

  // Consumes every complete sample in `st`'s ring. Callers hold the
  // spanpath registry lock (drainer via ForEachThreadStack, detach via
  // the unregister hook), which serializes the consumer side.
  void DrainState(ThreadState* st) {
    uint64_t head = st->head.load(std::memory_order_acquire);
    uint64_t tail = st->tail.load(std::memory_order_relaxed);
    while (tail != head) {
      const Slot& slot = st->slots[tail % st->capacity];
      AddSamples(slot.frames, std::min<uint32_t>(slot.depth, spanpath::kMaxDepth),
                 1);
      ++tail;
    }
    st->tail.store(tail, std::memory_order_release);
  }

  void Attach(spanpath::ThreadStack* stack, bool on_thread) {
#if SXNM_PROFILER_HAVE_SIGPROF
    ThreadState* st = AcquireState(options.ring_capacity);
    st->stack = stack;
    st->head.store(0, std::memory_order_relaxed);
    st->tail.store(0, std::memory_order_relaxed);
    st->dropped.store(0, std::memory_order_relaxed);
    st->trunc_base = stack->truncated.load(std::memory_order_relaxed);

    clockid_t clock{};
    bool have_clock = false;
    if (on_thread) {
      clock = CLOCK_THREAD_CPUTIME_ID;
      have_clock = true;
    } else {
      have_clock = pthread_getcpuclockid(stack->pthread_handle, &clock) == 0;
    }
    st->timer_ok = false;
    if (have_clock) {
      struct sigevent sev;
      std::memset(&sev, 0, sizeof(sev));
      sev.sigev_notify = SIGEV_THREAD_ID;
      sev.sigev_signo = SIGPROF;
      sev.sigev_value.sival_ptr = st;
      sev.sigev_notify_thread_id = static_cast<pid_t>(stack->tid);
      if (timer_create(clock, &sev, &st->timer) == 0) {
        struct itimerspec spec;
        std::memset(&spec, 0, sizeof(spec));
        spec.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000);
        spec.it_interval.tv_nsec = static_cast<long>(period_ns % 1000000000);
        spec.it_value = spec.it_interval;
        if (timer_settime(st->timer, 0, &spec, nullptr) == 0) {
          st->timer_ok = true;
        } else {
          timer_delete(st->timer);
        }
      }
    }
    st->armed.store(true, std::memory_order_release);
    stack->profiler_state.store(st, std::memory_order_release);
#else
    (void)stack;
    (void)on_thread;
#endif
  }

  void Detach(spanpath::ThreadStack* stack) {
    auto* st = static_cast<ThreadState*>(
        stack->profiler_state.load(std::memory_order_acquire));
    if (st == nullptr) return;
    stack->profiler_state.store(nullptr, std::memory_order_release);
#if SXNM_PROFILER_HAVE_SIGPROF
    if (st->timer_ok) {
      timer_delete(st->timer);
      st->timer_ok = false;
    }
#endif
    st->armed.store(false, std::memory_order_release);
    DrainState(st);
    {
      std::lock_guard<std::mutex> lock(agg_mu);
      dropped += st->dropped.load(std::memory_order_relaxed);
      uint64_t trunc_now = stack->truncated.load(std::memory_order_relaxed);
      if (trunc_now > st->trunc_base) truncated += trunc_now - st->trunc_base;
    }
    ReleaseState(st);
  }

  void DrainerLoop() {
    auto interval = std::chrono::duration<double, std::milli>(
        std::max(1.0, options.drain_interval_ms));
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(worker_mu);
        worker_cv.wait_for(lock, interval, [this] { return worker_stop; });
        if (worker_stop) return;
      }
      spanpath::ForEachThreadStack([this](spanpath::ThreadStack* stack) {
        auto* st = static_cast<ThreadState*>(
            stack->profiler_state.load(std::memory_order_acquire));
        if (st != nullptr) DrainState(st);
      });
    }
  }

  void SamplerLoop() {
    auto interval =
        std::chrono::nanoseconds(static_cast<int64_t>(period_ns));
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(worker_mu);
        worker_cv.wait_for(lock, interval, [this] { return worker_stop; });
        if (worker_stop) return;
      }
      spanpath::ForEachThreadStack([this](spanpath::ThreadStack* stack) {
        clockid_t clock{};
        if (pthread_getcpuclockid(stack->pthread_handle, &clock) != 0) return;
        struct timespec ts;
        if (clock_gettime(clock, &ts) != 0) return;
        uint64_t now_ns = static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
                          static_cast<uint64_t>(ts.tv_nsec);
        auto [it, first_seen] = last_cpu_ns.try_emplace(stack, now_ns);
        if (first_seen) return;  // baseline only; pre-start CPU not charged
        uint64_t prev = it->second;
        it->second = now_ns;
        if (now_ns <= prev) {
          // Stack recycled to a fresh thread: its CPU clock restarted.
          carry_ns[stack] = 0;
          return;
        }
        uint64_t delta = now_ns - prev + carry_ns[stack];
        uint64_t samples = delta / period_ns;
        carry_ns[stack] = delta % period_ns;
        if (samples == 0) return;
        // Bound the per-tick cost of a thread that burned CPU faster
        // than we polled; the undercount only flattens bursts.
        samples = std::min<uint64_t>(samples, 4);
        uint32_t frames[spanpath::kMaxDepth];
        uint32_t depth = stack->Snapshot(frames);
        AddSamples(frames, depth, samples);
      });
    }
  }

  CpuProfile BuildProfile() {
    CpuProfile profile;
    profile.enabled = true;
    profile.backend = use_sigprof ? "sigprof" : "cputime-poll";
    profile.hz = options.hz;
    std::lock_guard<std::mutex> lock(agg_mu);
    profile.dropped_samples = dropped;
    profile.truncated_frames = truncated;
    // self/total per path: a leaf count contributes self to its exact
    // path and total to every prefix (itself included).
    std::map<std::vector<uint32_t>, std::pair<uint64_t, uint64_t>> agg;
    for (const auto& [path, count] : leaf_counts) {
      profile.total_samples += count;
      agg[path].first += count;
      std::vector<uint32_t> prefix;
      prefix.reserve(path.size());
      for (uint32_t id : path) {
        prefix.push_back(id);
        agg[prefix].second += count;
      }
    }
    profile.entries.reserve(agg.size());
    for (const auto& [path, self_total] : agg) {
      CpuProfile::Entry entry;
      std::string joined;
      for (size_t i = 0; i < path.size(); ++i) {
        if (i > 0) joined += ';';
        joined += SanitizeFrame(spanpath::NameOf(path[i]));
      }
      entry.path = std::move(joined);
      entry.self_samples = self_total.first;
      entry.total_samples = self_total.second;
      profile.entries.push_back(std::move(entry));
    }
    std::sort(profile.entries.begin(), profile.entries.end(),
              [](const CpuProfile::Entry& a, const CpuProfile::Entry& b) {
                if (a.self_samples != b.self_samples) {
                  return a.self_samples > b.self_samples;
                }
                return a.path < b.path;
              });
    return profile;
  }

  static void HookRegister(void* ctx, spanpath::ThreadStack* stack,
                           bool on_thread) {
    auto* impl = static_cast<Impl*>(ctx);
    if (impl->use_sigprof) impl->Attach(stack, on_thread);
  }

  static void HookUnregister(void* ctx, spanpath::ThreadStack* stack,
                             bool /*on_thread*/) {
    auto* impl = static_cast<Impl*>(ctx);
    if (impl->use_sigprof) impl->Detach(stack);
  }
};

Profiler::Profiler(ProfilerOptions options)
    : impl_(new Impl(std::move(options))) {}

Profiler::~Profiler() {
  if (running()) Stop();
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(impl_->run_mu);
  return impl_->running;
}

util::Status Profiler::Start() {
  std::lock_guard<std::mutex> lock(impl_->run_mu);
  if (impl_->running) {
    return util::Status::FailedPrecondition("profiler already running");
  }
  impl_->use_sigprof =
      SXNM_PROFILER_HAVE_SIGPROF != 0 && !impl_->options.force_fallback;
#if SXNM_PROFILER_HAVE_SIGPROF
  if (impl_->use_sigprof) InstallSigprofHandlerOnce();
#endif
  {
    std::lock_guard<std::mutex> agg_lock(impl_->agg_mu);
    impl_->leaf_counts.clear();
    impl_->dropped = 0;
    impl_->truncated = 0;
  }
  impl_->last_cpu_ns.clear();
  impl_->carry_ns.clear();

  spanpath::ThreadHooks hooks;
  hooks.on_register = &Impl::HookRegister;
  hooks.on_unregister = &Impl::HookUnregister;
  hooks.ctx = impl_.get();
  if (!spanpath::InstallThreadHooks(hooks)) {
    return util::Status::FailedPrecondition(
        "another profiler is already running in this process");
  }

  impl_->worker_stop = false;
  if (impl_->use_sigprof) {
    impl_->worker = std::thread([impl = impl_.get()] { impl->DrainerLoop(); });
  } else {
    impl_->worker = std::thread([impl = impl_.get()] { impl->SamplerLoop(); });
  }
  impl_->running = true;
  return util::Status::Ok();
}

CpuProfile Profiler::Stop() {
  std::lock_guard<std::mutex> lock(impl_->run_mu);
  if (!impl_->running) return CpuProfile();
  {
    std::lock_guard<std::mutex> worker_lock(impl_->worker_mu);
    impl_->worker_stop = true;
  }
  impl_->worker_cv.notify_all();
  impl_->worker.join();
  // Removing the hooks detaches (disarms, deletes timer, final-drains)
  // every still-registered thread; threads that exited mid-run already
  // detached through their unregister hook.
  spanpath::RemoveThreadHooks(impl_.get());
  impl_->running = false;
  return impl_->BuildProfile();
}

}  // namespace sxnm::obs
