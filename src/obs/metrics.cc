#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

namespace sxnm::obs {

namespace {

// Relaxed double accumulation via CAS (atomic<double>::fetch_add is
// C++20 but not yet universal across the toolchains this builds on).
void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void WriteJsonName(std::ostream& os, std::string_view name) {
  os << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void WriteJsonDouble(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  os << buf;
}

}  // namespace

size_t ThisThreadShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

// --- Counter ---------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds,
                     bool enabled)
    : name_(std::move(name)), enabled_(enabled), bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  if (!enabled_) return;
  // Bucket i holds value <= bounds[i]; past the last bound -> overflow.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = shards_[ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(shard.sum, value);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& count : shard.counts) {
      total += count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  return BucketQuantile(bounds_, BucketCounts(), q);
}

double BucketQuantile(const std::vector<double>& bounds,
                      const std::vector<uint64_t>& counts, double q) {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;

  // The observation with (0-based) rank `target` answers the quantile;
  // interpolate its position inside the bucket's value range.
  double target = q * static_cast<double>(total - 1);
  uint64_t below = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double first = static_cast<double>(below);
    double last = static_cast<double>(below + counts[i] - 1);
    if (target <= last) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      // Clamped: a target rank that falls in the gap between two
      // occupied buckets belongs to this bucket's lower edge, not an
      // extrapolation below it (which would break monotonicity in q).
      double frac =
          counts[i] == 1
              ? 1.0
              : std::clamp((target - first) / (last - first), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    below += counts[i];
  }
  return bounds.back();
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& count : shard.counts) {
      count.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> DefaultTimeBounds() {
  return {64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0, 4.0};
}

std::vector<double> DefaultSizeBounds() {
  return {2, 3, 4, 6, 8, 12, 16, 32, 64, 128};
}

std::vector<double> DefaultSimilarityBounds() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

// --- MetricsSnapshot -------------------------------------------------------

uint64_t MetricsSnapshot::CounterOr(std::string_view name,
                                    uint64_t fallback) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

double MetricsSnapshot::GaugeOr(std::string_view name, double fallback) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::WriteJson(std::ostream& os) const {
  os << "{";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n  ";
  };
  for (const CounterSample& c : counters) {
    sep();
    WriteJsonName(os, c.name);
    os << ": " << c.value;
  }
  for (const GaugeSample& g : gauges) {
    sep();
    WriteJsonName(os, g.name);
    os << ": ";
    WriteJsonDouble(os, g.value);
  }
  for (const HistogramSample& h : histograms) {
    sep();
    WriteJsonName(os, h.name);
    os << ": {\"count\": " << h.total_count << ", \"sum\": ";
    WriteJsonDouble(os, h.sum);
    os << ", \"buckets\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < h.bounds.size()) {
        WriteJsonDouble(os, h.bounds[i]);
      } else {
        os << "\"+inf\"";
      }
      os << ", \"count\": " << h.counts[i] << "}";
    }
    os << "]}";
  }
  os << "\n}";
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// paths map onto that by replacing everything else with '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "sxnm_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::mutex& HelpMutex() {
  static std::mutex mu;
  return mu;
}

// Dotted name -> HELP text. Seeded with the engine's own metrics;
// SetPrometheusHelp adds or overrides entries under HelpMutex().
std::map<std::string, std::string, std::less<>>& HelpRegistry() {
  static auto* registry = new std::map<std::string, std::string, std::less<>>{
      {"cache.verdict_occupancy",
       "Fill fraction of the cross-pass verdict caches, cumulative over the "
       "candidates processed so far"},
      {"engine.num_candidates", "Duplicate candidate definitions in the run"},
      {"engine.num_threads", "Worker threads configured for the run"},
      {"kg.keys_emitted", "Object keys emitted during key generation"},
      {"kg.rows", "Generated key rows (candidate instances x keys)"},
      {"kg.rows_done", "Key rows fully generated so far (live progress)"},
      {"kg.rows_total", "Key rows the run plans to generate"},
      {"progress.phase",
       "Current engine phase: 0 setup, 1 key generation, 2 sliding window, "
       "3 transitive closure, 4 done"},
      {"robust.degraded", "Runs degraded by budget or deadline"},
      {"robust.pairs_elided", "Window pairs shed by governance"},
      {"sw.batch_rejects", "Pairs rejected by the vectorized batch filter"},
      {"sw.comparisons", "Pair similarity evaluations (owned + cache replays)"},
      {"sw.dag_equal", "Pairs short-circuited by DAG subtree identity"},
      {"sw.hits", "Pair classifications above the duplicate threshold"},
      {"sw.pairs_done",
       "Window pairs processed across all passes so far (live progress)"},
      {"sw.pairs_planned_total",
       "Window pairs the run plans to enumerate across all passes"},
      {"sw.pairs_windowed", "Window pairs enumerated by the pass machinery"},
      {"sw.prepass_skips", "Pairs resolved by the exact-OD prepass"},
      {"sw.verdict_cache_hits", "Pairs replayed from the cross-pass cache"},
      {"tc.clusters", "Duplicate clusters after transitive closure"},
      {"tc.edges_done",
       "Accepted pair edges folded into the closure so far (live progress)"},
      {"tc.pairs", "Accepted pairs fed to transitive closure"},
      {"tc.union_ops", "Union-find merges performed"},
  };
  return *registry;
}

// HELP text is emitted raw except for the two escapes the exposition
// format requires.
void WritePrometheusHelpText(std::ostream& os, std::string_view help) {
  for (char c : help) {
    if (c == '\\') {
      os << "\\\\";
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
}

// Label values escape backslash, double-quote, and newline (exposition
// format 0.0.4). Bucket bounds are numeric today, but the helper keeps
// any future label emission correct by construction.
void WritePrometheusLabelValue(std::ostream& os, std::string_view value) {
  for (char c : value) {
    if (c == '\\') {
      os << "\\\\";
    } else if (c == '"') {
      os << "\\\"";
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
}

// Sample values use Prometheus spellings for the specials ("+Inf",
// "-Inf", "NaN"), which %g alone would render as inf/nan.
void WritePrometheusDouble(std::ostream& os, double value) {
  if (std::isnan(value)) {
    os << "NaN";
  } else if (std::isinf(value)) {
    os << (value > 0 ? "+Inf" : "-Inf");
  } else {
    WriteJsonDouble(os, value);
  }
}

}  // namespace

void SetPrometheusHelp(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(HelpMutex());
  HelpRegistry()[std::string(name)] = std::string(help);
}

std::string PrometheusHelp(std::string_view name) {
  std::lock_guard<std::mutex> lock(HelpMutex());
  const auto& registry = HelpRegistry();
  auto it = registry.find(name);
  return it == registry.end() ? std::string() : it->second;
}

void MetricsSnapshot::ToPrometheusText(std::ostream& os) const {
  // Distinct dotted names can collide after sanitization ("sw.pairs_done"
  // vs "sw.pairs.done" both become sxnm_sw_pairs_done). Suffix later
  // arrivals so every emitted family is unique and each # TYPE header
  // appears exactly once; iteration order (counters, gauges, histograms,
  // each sorted by name) makes the suffix assignment deterministic.
  std::map<std::string, int> family_uses;
  auto family = [&family_uses](const std::string& raw) {
    std::string base = PrometheusName(raw);
    int uses = ++family_uses[base];
    if (uses > 1) base += "_" + std::to_string(uses);
    return base;
  };
  auto headers = [&os](const std::string& raw, const std::string& fam,
                       const char* type) {
    std::string help = PrometheusHelp(raw);
    if (!help.empty()) {
      os << "# HELP " << fam << " ";
      WritePrometheusHelpText(os, help);
      os << "\n";
    }
    os << "# TYPE " << fam << " " << type << "\n";
  };

  for (const CounterSample& c : counters) {
    std::string name = family(c.name);
    headers(c.name, name, "counter");
    os << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : gauges) {
    std::string name = family(g.name);
    headers(g.name, name, "gauge");
    os << name << " ";
    WritePrometheusDouble(os, g.value);
    os << "\n";
  }
  for (const HistogramSample& h : histograms) {
    std::string name = family(h.name);
    headers(h.name, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      os << name << "_bucket{le=\"";
      if (i < h.bounds.size()) {
        std::ostringstream bound;
        WritePrometheusDouble(bound, h.bounds[i]);
        WritePrometheusLabelValue(os, bound.str());
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << name << "_sum ";
    WritePrometheusDouble(os, h.sum);
    os << "\n";
    os << name << "_count " << h.total_count << "\n";
  }
}

// --- MetricsRegistry -------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_by_name_.find(name);
  if (it != counter_by_name_.end()) return *it->second;
  Counter& created = counters_.emplace_back(std::string(name), enabled_);
  counter_by_name_.emplace(created.name(), &created);
  return created;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_by_name_.find(name);
  if (it != gauge_by_name_.end()) return *it->second;
  Gauge& created = gauges_.emplace_back(std::string(name), enabled_);
  gauge_by_name_.emplace(created.name(), &created);
  return created;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_by_name_.find(name);
  if (it != histogram_by_name_.end()) return *it->second;
  Histogram& created =
      histograms_.emplace_back(std::string(name), std::move(bounds), enabled_);
  histogram_by_name_.emplace(created.name(), &created);
  return created;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counter_by_name_.size());
  for (const auto& [name, counter] : counter_by_name_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauge_by_name_.size());
  for (const auto& [name, gauge] : gauge_by_name_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histogram_by_name_.size());
  for (const auto& [name, histogram] : histogram_by_name_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.counts = histogram->BucketCounts();
    sample.sum = histogram->Sum();
    for (uint64_t c : sample.counts) sample.total_count += c;
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::MergeFrom(const MetricsSnapshot& snapshot) {
  if (!enabled_) return;
  for (const auto& sample : snapshot.counters) {
    counter(sample.name).Add(sample.value);
  }
  for (const auto& sample : snapshot.gauges) {
    gauge(sample.name).Set(sample.value);
  }
  for (const auto& sample : snapshot.histograms) {
    Histogram& hist = histogram(sample.name, sample.bounds);
    if (hist.bounds().size() + 1 != sample.counts.size()) continue;
    // All restored weight lands on shard 0; reads only ever sum shards.
    Histogram::Shard& shard = hist.shards_[0];
    for (size_t i = 0; i < sample.counts.size(); ++i) {
      shard.counts[i].fetch_add(sample.counts[i], std::memory_order_relaxed);
    }
    AtomicAddDouble(shard.sum, sample.sum);
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& counter : counters_) counter.Reset();
  for (Gauge& gauge : gauges_) gauge.Reset();
  for (Histogram& histogram : histograms_) histogram.Reset();
}

}  // namespace sxnm::obs
