// Engine-wide metrics layer (`sxnm_obs`): counters, gauges, and
// fixed-bucket histograms behind a registry, designed for the parallel
// sliding-window engine.
//
// Writes are sharded: every metric keeps one cache-line-padded slot per
// thread shard, and a writer only touches its own shard with a relaxed
// atomic add — hot-path increments stay wait-free no matter how many
// pool workers flush pass statistics concurrently. Reads (`Value`,
// `Snapshot`) sum the shards and may race with writers; they are meant
// for the quiescent points between pipeline phases or after a run.
//
// A registry constructed disabled is the no-op registry: handles are
// still handed out (callers keep unconditional pointers) but every write
// is a single predictable branch, so observability-off costs nothing
// measurable.

#ifndef SXNM_OBS_METRICS_H_
#define SXNM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sxnm::obs {

/// Number of write shards per metric. Threads beyond this many share
/// shards (correctness is unaffected; only contention grows).
inline constexpr size_t kNumShards = 16;

/// Stable shard index of the calling thread in [0, kNumShards). The first
/// kNumShards distinct threads get distinct shards; later threads wrap.
/// Also used by the tracer as the exported thread id.
size_t ThisThreadShard();

/// A monotonically increasing sum. Create through MetricsRegistry.
class Counter {
 public:
  /// Wait-free: relaxed add on the calling thread's shard.
  void Add(uint64_t delta = 1) {
    if (!enabled_) return;
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  /// Sum over all shards. Racy while writers run; exact once they stop.
  uint64_t Value() const;

  const std::string& name() const { return name_; }

  Counter(std::string name, bool enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  void Reset();

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  bool enabled_;
  std::array<Shard, kNumShards> shards_;
};

/// A last-write-wins scalar (thread counts, dataset sizes, ratios).
class Gauge {
 public:
  void Set(double value) {
    if (!enabled_) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

  Gauge(std::string name, bool enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  bool enabled_;
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram. Bucket i counts observations with
/// value <= bounds[i] (first matching bound); one implicit overflow
/// bucket catches everything above bounds.back(). Like the counters,
/// bucket increments are sharded and wait-free.
class Histogram {
 public:
  void Observe(double value);

  /// Total number of observations across all buckets.
  uint64_t TotalCount() const;

  /// Sum of all observed values.
  double Sum() const;

  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  /// Quantile estimate from the bucket counts, q in [0, 1]: linear
  /// interpolation inside the bucket holding the rank, with the first
  /// bucket spanning [0, bounds[0]] and the overflow bucket collapsing
  /// to bounds.back(). Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

  Histogram(std::string name, std::vector<double> bounds, bool enabled);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  void Reset();

  struct alignas(64) Shard {
    // counts[kMaxBuckets]; allocated to bounds.size() + 1 entries.
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };
  std::string name_;
  bool enabled_;
  std::vector<double> bounds_;  // ascending upper bounds
  std::array<Shard, kNumShards> shards_;
};

/// Quantile estimate from explicit bucket data (the math behind
/// Histogram::Quantile; also usable on snapshot samples). `counts` has
/// bounds.size() + 1 entries, the last being the overflow bucket.
double BucketQuantile(const std::vector<double>& bounds,
                      const std::vector<uint64_t>& counts, double q);

/// Default histogram bounds for per-task wall times, in seconds
/// (64 us .. ~4 s, roughly ×4 per bucket).
std::vector<double> DefaultTimeBounds();

/// Default histogram bounds for small integral sizes (cluster sizes,
/// window lengths): 2, 3, 4, 6, 8, 12, 16, 32, 64, 128.
std::vector<double> DefaultSizeBounds();

/// Default histogram bounds for similarity scores: deciles over [0, 1].
/// The overflow bucket stays empty for well-formed scores, so a nonzero
/// overflow count flags a kernel emitting out-of-range values.
std::vector<double> DefaultSimilarityBounds();

/// One read-only, copyable view of a registry at a point in time.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
    double sum = 0.0;
    uint64_t total_count = 0;

    /// Same estimate as Histogram::Quantile, from the sampled buckets.
    double Quantile(double q) const { return BucketQuantile(bounds, counts, q); }
  };

  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Counter value by name; `fallback` when absent.
  uint64_t CounterOr(std::string_view name, uint64_t fallback = 0) const;
  double GaugeOr(std::string_view name, double fallback = 0.0) const;
  const HistogramSample* FindHistogram(std::string_view name) const;

  /// Flat JSON object: counters as integers, gauges as doubles,
  /// histograms as {count, sum, buckets: [{le, count}]}.
  void WriteJson(std::ostream& os) const;

  /// Prometheus text exposition format (version 0.0.4): counters and
  /// gauges as plain samples, histograms as cumulative `_bucket{le=...}`
  /// series plus `_sum` and `_count`. Dotted metric names are sanitized
  /// to underscores and prefixed with `sxnm_`. Each family is emitted
  /// with one `# HELP` line (when help text is registered — see
  /// SetPrometheusHelp) and exactly one `# TYPE` line; distinct dotted
  /// names that sanitize to the same family get a deterministic `_2`,
  /// `_3`, ... suffix (in counters→gauges→histograms, then sorted-name
  /// order) so no family is ever emitted twice.
  void ToPrometheusText(std::ostream& os) const;
};

/// HELP text for a metric's Prometheus family. The engine's own
/// metrics are pre-registered; embedders can add or override entries
/// for their metrics before exporting. Thread-safe. `name` is the
/// registry's dotted name, not the sanitized family name.
void SetPrometheusHelp(std::string_view name, std::string_view help);

/// Registered HELP text for a dotted metric name; empty when unknown.
std::string PrometheusHelp(std::string_view name);

/// Owns the metrics of one engine run (or one process, if long-lived).
/// Metric creation takes a mutex; returned references stay valid for the
/// registry's lifetime, so hot paths resolve names once and then only
/// touch their handles.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Finds or creates. Names are dotted paths ("sw.comparisons").
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be ascending and non-empty; only the first call for a
  /// name sets the bounds, later calls return the existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Folds a previously taken snapshot back into this registry: counter
  /// values are added, gauges set (last write wins), histogram bucket
  /// counts and sums added (metrics are created on demand, histograms
  /// with the snapshot's bounds). Used by checkpoint resume to restore
  /// the counters of completed work so a resumed run's final snapshot
  /// matches an uninterrupted one. Not safe against concurrent writers;
  /// a no-op on a disabled registry.
  void MergeFrom(const MetricsSnapshot& snapshot);

  /// Zeroes every metric (keeps registrations). Not safe against
  /// concurrent writers.
  void Reset();

 private:
  bool enabled_;
  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_by_name_;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name_;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name_;
};

}  // namespace sxnm::obs

#endif  // SXNM_OBS_METRICS_H_
