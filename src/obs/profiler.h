// In-process sampling CPU profiler, attributing CPU time to the span
// paths maintained by obs::Tracer (see spanpath in obs/trace.h).
//
// Two backends:
//   - "sigprof" (Linux): one POSIX CPU-time timer per span-pushing
//     thread (`timer_create` on the thread's CPU clock, SIGEV_THREAD_ID
//     delivery of SIGPROF). The async-signal-safe handler snapshots the
//     thread's span-path stack into a per-thread bounded ring buffer —
//     no locks, no allocation, only relaxed/release atomics. A drainer
//     thread empties the rings off the hot path into the aggregate.
//   - "cputime-poll" (portable fallback, also used when
//     ProfilerOptions::force_fallback is set): a sampler thread polls
//     every registered thread's CPU clock (`pthread_getcpuclockid`) at
//     the sampling period and charges elapsed CPU to a cross-thread
//     snapshot of that thread's span stack.
//
// Both backends sample *CPU* time, not wall time: blocked threads are
// never charged. The profiler is an observer — detection output is
// bit-identical with profiling on or off, for any thread count.
//
// At most one profiler can be running per process (it owns the global
// span-path thread hooks). Overhead at the default 97 Hz is within the
// bench gate's 3% ceiling; with no profiler running and no trace/profile
// configured, span bookkeeping costs a single branch.

#ifndef SXNM_OBS_PROFILER_H_
#define SXNM_OBS_PROFILER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace sxnm::obs {

/// Aggregated CPU profile keyed by span path. Produced by
/// Profiler::Stop; a default-constructed profile has enabled == false.
struct CpuProfile {
  struct Entry {
    /// Semicolon-joined span path, root first (frame names sanitized so
    /// they contain no ';' or whitespace). CPU burned on a profiled
    /// thread outside any span appears under "(unattributed)".
    std::string path;
    /// Samples whose deepest frame was exactly this path.
    uint64_t self_samples = 0;
    /// Samples landing on this path or any descendant.
    uint64_t total_samples = 0;
  };

  bool enabled = false;
  std::string backend;  // "sigprof" or "cputime-poll"
  double hz = 0.0;
  uint64_t total_samples = 0;
  /// Samples lost to full ring buffers (signal backend only).
  uint64_t dropped_samples = 0;
  /// Span pushes dropped because a thread's stack was deeper than
  /// spanpath::kMaxDepth while the profiler ran.
  uint64_t truncated_frames = 0;
  /// Entries sorted by self_samples descending, then path ascending.
  std::vector<Entry> entries;

  double period_seconds() const { return hz > 0.0 ? 1.0 / hz : 0.0; }
  double SecondsOf(uint64_t samples) const {
    return static_cast<double>(samples) * period_seconds();
  }

  /// First entry with self samples, or nullptr (entries are top-first).
  const Entry* TopSelf() const;

  /// flamegraph.pl-compatible folded stacks: one "a;b;c N" line per
  /// path with self samples.
  void WriteFolded(std::ostream& os) const;

  /// WriteFolded through an atomic tmp+fsync+rename commit: a crash
  /// leaves the previous file (or none), never a torn profile.
  util::Status WriteFoldedFile(const std::string& path) const;

  /// The DetectionReport "profile" block (a JSON object, no trailing
  /// newline): metadata plus per-path self/total samples and seconds.
  void WriteJson(std::ostream& os) const;
};

struct ProfilerOptions {
  /// Sampling frequency per thread-CPU-second. Clamped to [1, 1000].
  double hz = 97.0;
  /// Use the portable polling backend even where SIGPROF timers are
  /// available (tests; keeps sanitizer runs signal-free).
  bool force_fallback = false;
  /// Per-thread ring capacity, signal backend. Drained every
  /// drain_interval_ms, so the default survives > 2500 Hz bursts.
  size_t ring_capacity = 512;
  double drain_interval_ms = 50.0;
};

/// Timer-driven sampling profiler. Start installs the span-path thread
/// hooks (and, on the signal backend, per-thread CPU timers); Stop
/// tears everything down and returns the aggregated profile.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});
  ~Profiler();  // stops (discarding the profile) if still running

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Begins sampling. Fails if this or another profiler is already
  /// running (the span-path hooks are a process-wide singleton).
  util::Status Start();

  /// Ends sampling and returns the aggregate. Idempotent: a second
  /// Stop (or Stop without Start) returns a disabled profile.
  CpuProfile Stop();

  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sxnm::obs

#endif  // SXNM_OBS_PROFILER_H_
