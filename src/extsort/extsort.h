// Budget-bounded external sorter for GK rows (or any (key, payload)
// records).
//
// Records are buffered in memory until the buffer crosses the
// configured budget, then sorted by (key, insertion seq) and spilled as
// one run file (run_file.h). Finish() sorts the resident tail and
// returns a stream that k-way merges every run with a loser tree
// (loser_tree.h). Because seq is a globally unique insertion ordinal
// and both the in-run sort and the merge order by (key, seq), the
// merged sequence is the *stable* sort of the input by key — exactly
// what std::stable_sort produces in the in-memory path — for any
// budget, so detection output is bit-identical whether or not the sort
// spilled.
//
// budget 0 means "unbounded": everything stays in one resident run and
// nothing touches disk. The "extsort.spill" fault site fires at spill
// time (chaos tests); spill files live under `temp_dir` and are
// removed by the destructor.

#ifndef SXNM_EXTSORT_EXTSORT_H_
#define SXNM_EXTSORT_EXTSORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "extsort/run_file.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace sxnm::extsort {

/// Fault site armed by chaos tests to fail a spill write.
inline constexpr std::string_view kSpillFaultSite = "extsort.spill";

struct ExtSortOptions {
  /// In-memory buffer bound in bytes (keys + payloads + per-record
  /// overhead). 0 = never spill.
  uint64_t memory_budget_bytes = 0;

  /// Directory for spill files. Empty = the process temp directory.
  std::string temp_dir;

  /// Spill file name prefix, e.g. "movie.pass2"; files become
  /// "<temp_dir>/<name>.<pid>.<counter>.run". Keep it unique per
  /// concurrent sorter.
  std::string name = "extsort";

  /// Optional: receives extsort.* counters (rows, runs, spilled_runs,
  /// spill_bytes, merge_fanin). May be null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Run-shape statistics of one sort. Excluded from determinism digests:
/// they describe *how* the sort executed (budget-dependent), not what
/// it produced.
struct ExtSortStats {
  uint64_t rows = 0;          // records added
  uint64_t runs = 0;          // merge fan-in (spilled runs + resident tail)
  uint64_t spilled_runs = 0;  // runs written to disk
  uint64_t spill_bytes = 0;   // encoded bytes written to disk
};

/// Output record view; valid until the next Next() call on the stream.
struct SortedRecord {
  std::string_view key;
  uint64_t seq = 0;
  std::string_view payload;
};

/// Merge stream over all runs. Obtained from ExternalSorter::Finish();
/// the sorter must outlive it.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  /// True with the next record in sorted order, false at a clean end.
  /// Spill-file corruption surfaces as kDataLoss.
  virtual util::Result<bool> Next(SortedRecord* record) = 0;
};

class ExternalSorter {
 public:
  explicit ExternalSorter(ExtSortOptions options);
  ~ExternalSorter();  // removes remaining spill files

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Buffers one record; spills a sorted run when the buffer crosses
  /// the budget. Spill failures (ENOSPC, injected faults) surface here.
  util::Status Add(std::string_view key, std::string_view payload);

  /// Sorts the resident tail and returns the merge stream. Call once,
  /// after the last Add.
  util::Result<std::unique_ptr<SortedStream>> Finish();

  /// Valid after Finish (counters are also published to
  /// options.metrics, when given).
  const ExtSortStats& stats() const { return stats_; }

 private:
  friend class MergeStream;

  struct Buffered {
    std::string key;
    uint64_t seq = 0;
    std::string payload;
  };

  util::Status SpillRun();
  std::string RunPath(uint64_t run_index) const;

  ExtSortOptions options_;
  std::vector<Buffered> buffer_;
  uint64_t buffered_bytes_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t spilled_runs_ = 0;
  bool finished_ = false;
  ExtSortStats stats_;
};

}  // namespace sxnm::extsort

#endif  // SXNM_EXTSORT_EXTSORT_H_
