// Classic loser-tree k-way merge for external sort.
//
// A tournament tree over k sources where each internal node remembers
// the *loser* of its match and the overall winner sits at the root.
// Replacing the winner re-plays exactly one root-to-leaf path, so each
// of the N merged records costs ceil(log2 k) comparisons — the textbook
// bound — versus the 2·log2 k of a binary heap's sift-down.
//
// Sources are compared by (key, seq). Seq values are unique across the
// whole sort (global insertion ordinals), so the merge order is a total
// order independent of how records were partitioned into runs — the
// root of the external sorter's determinism guarantee.

#ifndef SXNM_EXTSORT_LOSER_TREE_H_
#define SXNM_EXTSORT_LOSER_TREE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace sxnm::extsort {

/// One merge input. `key`/`seq` mirror the current head record of the
/// source; `exhausted` marks a drained source (compares greater than
/// everything, so it sinks and stays out of the way).
struct MergeHead {
  std::string_view key;
  uint64_t seq = 0;
  bool exhausted = true;
};

/// Loser tree over an externally owned array of MergeHead slots. The
/// caller advances the winning source, refreshes its slot, and calls
/// Replay to restore the tree invariant.
class LoserTree {
 public:
  /// Builds the tree over `heads` (size >= 1). The slots must already
  /// describe each source's first record (or be exhausted).
  explicit LoserTree(std::vector<MergeHead>* heads) : heads_(heads) {
    size_t k = heads_->size();
    tree_.assign(k, kNone);
    // Seed by replaying every leaf; O(k log k) once, irrelevant next to
    // the per-record cost.
    winner_ = 0;
    for (size_t i = 0; i < k; ++i) Replay(i);
  }

  /// Index of the source holding the smallest head, or kNone when every
  /// source is exhausted.
  size_t winner() const {
    return (*heads_)[winner_].exhausted ? kNone : winner_;
  }

  /// Re-establishes the invariant after the caller refreshed the head
  /// of `source` (the previous winner, typically).
  void Replay(size_t source) {
    size_t k = heads_->size();
    if (k == 1) {
      winner_ = 0;
      return;
    }
    size_t candidate = source;
    // Walk from the leaf's parent to the root, keeping the winner in
    // `candidate` and the loser in the node.
    for (size_t node = (source + k) / 2; node >= 1; node /= 2) {
      size_t& held = tree_[node];
      if (held != kNone && Less(held, candidate)) {
        std::swap(held, candidate);
      } else if (held == kNone) {
        held = candidate;
        return;  // first seeding pass: tree not full yet, no winner change
      }
    }
    winner_ = candidate;
  }

  static constexpr size_t kNone = static_cast<size_t>(-1);

 private:
  bool Less(size_t a, size_t b) const {
    const MergeHead& ha = (*heads_)[a];
    const MergeHead& hb = (*heads_)[b];
    if (ha.exhausted != hb.exhausted) return !ha.exhausted;
    if (ha.exhausted) return a < b;  // stable order among drained sources
    if (ha.key != hb.key) return ha.key < hb.key;
    return ha.seq < hb.seq;
  }

  std::vector<MergeHead>* heads_;
  std::vector<size_t> tree_;  // tree_[i]: loser held at internal node i
  size_t winner_ = 0;
};

}  // namespace sxnm::extsort

#endif  // SXNM_EXTSORT_LOSER_TREE_H_
