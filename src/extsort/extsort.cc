#include "extsort/extsort.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "extsort/loser_tree.h"
#include "extsort/run_file.h"
#include "persist/io.h"
#include "util/fault_injection.h"

namespace sxnm::extsort {

using util::Result;
using util::Status;

namespace {

// Accounting charge per buffered record on top of its bytes: two
// std::string headers, the seq, and vector slack. Keeps tiny-record
// workloads from blowing past the budget on invisible overhead.
constexpr uint64_t kRecordOverhead = 2 * sizeof(std::string) + 16;

}  // namespace

// Merges the spilled runs and the sorted resident tail. Views returned
// from Next stay valid until the following Next call: only the winning
// source is advanced, so every other source's block buffer is
// untouched.
class MergeStream final : public SortedStream {
 public:
  explicit MergeStream(ExternalSorter* sorter) : sorter_(sorter) {}

  Status Init() {
    size_t spilled = static_cast<size_t>(sorter_->spilled_runs_);
    bool has_tail = !sorter_->buffer_.empty();
    size_t k = spilled + (has_tail ? 1 : 0);
    if (k == 0) {
      done_ = true;
      return Status::Ok();
    }
    readers_.resize(spilled);
    current_.resize(k);
    heads_.assign(k, MergeHead{});
    for (size_t i = 0; i < spilled; ++i) {
      Status s = readers_[i].Open(sorter_->RunPath(i));
      if (!s.ok()) return s;
      s = AdvanceSource(i);
      if (!s.ok()) return s;
    }
    if (has_tail) {
      Status s = AdvanceSource(spilled);
      if (!s.ok()) return s;
    }
    tree_.emplace(&heads_);
    return Status::Ok();
  }

  Result<bool> Next(SortedRecord* record) override {
    if (done_) return false;
    if (last_winner_ != LoserTree::kNone) {
      Status s = AdvanceSource(last_winner_);
      if (!s.ok()) return s;
      tree_->Replay(last_winner_);
    }
    size_t w = tree_->winner();
    if (w == LoserTree::kNone) {
      done_ = true;
      return false;
    }
    *record = current_[w];
    last_winner_ = w;
    return true;
  }

 private:
  // Pulls the next record of `source` into current_/heads_.
  Status AdvanceSource(size_t source) {
    if (source < readers_.size()) {
      RunRecord r;
      Result<bool> more = readers_[source].Next(&r);
      if (!more.ok()) return more.status();
      if (*more) {
        current_[source] = {r.key, r.seq, r.payload};
        heads_[source] = {r.key, r.seq, false};
      } else {
        heads_[source].exhausted = true;
      }
      return Status::Ok();
    }
    const auto& buffer = sorter_->buffer_;
    if (tail_pos_ < buffer.size()) {
      const ExternalSorter::Buffered& b = buffer[tail_pos_++];
      current_[source] = {b.key, b.seq, b.payload};
      heads_[source] = {b.key, b.seq, false};
    } else {
      heads_[source].exhausted = true;
    }
    return Status::Ok();
  }

  ExternalSorter* sorter_;
  std::vector<RunReader> readers_;
  std::vector<SortedRecord> current_;
  std::vector<MergeHead> heads_;
  std::optional<LoserTree> tree_;
  size_t tail_pos_ = 0;
  size_t last_winner_ = LoserTree::kNone;
  bool done_ = false;
};

ExternalSorter::ExternalSorter(ExtSortOptions options)
    : options_(std::move(options)) {
  if (options_.temp_dir.empty()) {
    std::error_code ec;
    auto tmp = std::filesystem::temp_directory_path(ec);
    options_.temp_dir = ec ? "." : tmp.string();
  }
}

ExternalSorter::~ExternalSorter() {
  for (uint64_t i = 0; i < spilled_runs_; ++i) {
    persist::RemoveFile(RunPath(i));
  }
}

std::string ExternalSorter::RunPath(uint64_t run_index) const {
  return options_.temp_dir + "/" + options_.name + "." +
         std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(run_index) + ".run";
}

Status ExternalSorter::Add(std::string_view key, std::string_view payload) {
  buffer_.push_back(
      {std::string(key), next_seq_++, std::string(payload)});
  buffered_bytes_ += key.size() + payload.size() + kRecordOverhead;
  if (options_.memory_budget_bytes > 0 &&
      buffered_bytes_ >= options_.memory_budget_bytes) {
    return SpillRun();
  }
  return Status::Ok();
}

namespace {
// Sort key: (key, insertion seq). Seq values are unique, so this is a
// strict total order and the merge is deterministic for any budget.
constexpr auto kRecordLess = [](const auto& a, const auto& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.seq < b.seq;
};
}  // namespace

Status ExternalSorter::SpillRun() {
  if (util::FaultInjector::Instance().ShouldFail(kSpillFaultSite)) {
    return Status::ResourceExhausted(
        "injected fault: external-sort spill (" + options_.name + ")");
  }
  std::sort(buffer_.begin(), buffer_.end(), kRecordLess);
  std::vector<RunRecord> records;
  records.reserve(buffer_.size());
  for (const Buffered& b : buffer_) {
    records.push_back({b.key, b.seq, b.payload});
  }
  uint64_t bytes = 0;
  Status s = WriteRunFile(RunPath(spilled_runs_), records, &bytes);
  if (!s.ok()) return s;
  ++spilled_runs_;
  stats_.spilled_runs = spilled_runs_;
  stats_.spill_bytes += bytes;
  buffer_.clear();
  buffered_bytes_ = 0;
  return Status::Ok();
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("ExternalSorter::Finish called twice");
  }
  finished_ = true;
  std::sort(buffer_.begin(), buffer_.end(), kRecordLess);
  stats_.rows = next_seq_;
  stats_.runs = spilled_runs_ + (buffer_.empty() ? 0 : 1);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    m.counter("extsort.rows").Add(stats_.rows);
    m.counter("extsort.runs").Add(stats_.runs);
    m.counter("extsort.spilled_runs").Add(stats_.spilled_runs);
    m.counter("extsort.spill_bytes").Add(stats_.spill_bytes);
    m.counter("extsort.merge_fanin").Add(stats_.runs);
  }
  auto stream = std::make_unique<MergeStream>(this);
  Status s = stream->Init();
  if (!s.ok()) return s;
  return std::unique_ptr<SortedStream>(std::move(stream));
}

}  // namespace sxnm::extsort
