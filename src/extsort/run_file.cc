#include "extsort/run_file.h"

#include <utility>

#include "persist/crc32.h"
#include "persist/io.h"
#include "persist/snapshot.h"

namespace sxnm::extsort {

using util::Result;
using util::Status;

namespace {

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::DataLoss("corrupt spill run " + path + ": " + what);
}

// Header is fixed-width: magic + u32 version + u64 total records.
constexpr size_t kHeaderBytes = 8 + 4 + 8;

}  // namespace

Status WriteRunFile(const std::string& path,
                    const std::vector<RunRecord>& records,
                    uint64_t* out_bytes) {
  std::string file;
  {
    persist::Encoder header;
    header.PutU32(kRunFormatVersion);
    header.PutU64(records.size());
    file.append(kRunMagic);
    file.append(header.bytes());
  }

  size_t i = 0;
  while (i < records.size()) {
    // Pack records into one block until it crosses the target size; a
    // single oversized record still becomes a (large) block of its own.
    persist::Encoder block;
    block.PutU64(0);  // record count, patched below
    uint64_t in_block = 0;
    while (i < records.size() &&
           (in_block == 0 || block.bytes().size() < kRunBlockBytes)) {
      const RunRecord& r = records[i];
      block.PutString(r.key);
      block.PutU64(r.seq);
      block.PutString(r.payload);
      ++in_block;
      ++i;
    }
    std::string payload = block.TakeBytes();
    {
      persist::Encoder count;
      count.PutU64(in_block);
      payload.replace(0, 8, count.bytes());
    }
    persist::Encoder frame;
    frame.PutU32(static_cast<uint32_t>(payload.size()));
    file.append(frame.bytes());
    uint32_t crc = persist::Crc32c(payload);
    file.append(payload);
    persist::Encoder tail;
    tail.PutU32(crc);
    file.append(tail.bytes());
  }

  if (out_bytes != nullptr) *out_bytes = file.size();
  return persist::AtomicWriteFile(path, file);
}

Status RunReader::Open(const std::string& path) {
  path_ = path;
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    return Status::NotFound("spill run not found: " + path);
  }
  char header[kHeaderBytes];
  in_.read(header, sizeof header);
  if (in_.gcount() != static_cast<std::streamsize>(sizeof header)) {
    return Corrupt(path_, "truncated header");
  }
  if (std::string_view(header, 8) != kRunMagic) {
    return Corrupt(path_, "bad magic");
  }
  persist::Decoder dec(std::string_view(header + 8, sizeof header - 8));
  uint32_t version = 0;
  if (auto v = dec.GetU32(); v.ok()) {
    version = *v;
  } else {
    return Corrupt(path_, "truncated header");
  }
  if (version != kRunFormatVersion) {
    return Corrupt(path_, "unknown format version");
  }
  if (auto t = dec.GetU64(); t.ok()) {
    total_records_ = *t;
  } else {
    return Corrupt(path_, "truncated header");
  }
  return Status::Ok();
}

Status RunReader::ReadNextBlock() {
  char len_bytes[4];
  in_.read(len_bytes, sizeof len_bytes);
  if (in_.gcount() != static_cast<std::streamsize>(sizeof len_bytes)) {
    return Corrupt(path_, "truncated block frame");
  }
  uint32_t payload_len = 0;
  {
    persist::Decoder dec(std::string_view(len_bytes, sizeof len_bytes));
    auto v = dec.GetU32();
    if (!v.ok()) return Corrupt(path_, "truncated block frame");
    payload_len = *v;
  }
  if (payload_len < 8) return Corrupt(path_, "block shorter than its count");
  block_.resize(payload_len);
  in_.read(block_.data(), static_cast<std::streamsize>(payload_len));
  if (in_.gcount() != static_cast<std::streamsize>(payload_len)) {
    return Corrupt(path_, "truncated block payload");
  }
  char crc_bytes[4];
  in_.read(crc_bytes, sizeof crc_bytes);
  if (in_.gcount() != static_cast<std::streamsize>(sizeof crc_bytes)) {
    return Corrupt(path_, "truncated block checksum");
  }
  uint32_t stored_crc = 0;
  {
    persist::Decoder dec(std::string_view(crc_bytes, sizeof crc_bytes));
    auto v = dec.GetU32();
    if (!v.ok()) return Corrupt(path_, "truncated block checksum");
    stored_crc = *v;
  }
  if (persist::Crc32c(block_) != stored_crc) {
    return Corrupt(path_, "block checksum mismatch");
  }
  persist::Decoder dec(block_);
  auto count = dec.GetU64();
  if (!count.ok()) return Corrupt(path_, "truncated block count");
  if (*count == 0 || *count > total_records_ - records_seen_) {
    return Corrupt(path_, "block record count disagrees with header total");
  }
  block_remaining_ = *count;
  block_pos_ = block_.size() - dec.remaining();
  return Status::Ok();
}

Result<bool> RunReader::Next(RunRecord* record) {
  if (block_remaining_ == 0) {
    if (records_seen_ == total_records_) {
      // Clean end: the file must hold nothing past the last block.
      if (in_.peek() != std::ifstream::traits_type::eof()) {
        return Corrupt(path_, "trailing bytes after final block");
      }
      return false;
    }
    Status s = ReadNextBlock();
    if (!s.ok()) return s;
  }
  persist::Decoder dec(std::string_view(block_).substr(block_pos_));
  auto key = dec.GetString();
  if (!key.ok()) return Corrupt(path_, "truncated record key");
  auto seq = dec.GetU64();
  if (!seq.ok()) return Corrupt(path_, "truncated record seq");
  auto payload = dec.GetString();
  if (!payload.ok()) return Corrupt(path_, "truncated record payload");
  record->key = *key;
  record->seq = *seq;
  record->payload = *payload;
  block_pos_ = block_.size() - dec.remaining();
  --block_remaining_;
  ++records_seen_;
  return true;
}

}  // namespace sxnm::extsort
