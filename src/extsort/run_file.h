// On-disk format for external-sort spill runs.
//
// A run is one sorted batch of (key, seq, payload) records that no
// longer fits in the sorter's memory budget. Because a run is entirely
// resident at the moment it spills, the writer serializes it in memory
// and commits the file through persist::AtomicWriteFile — a run path
// either holds a complete run or nothing, and the persist fault sites
// ("persist.write", "persist.fsync", "persist.rename") cover spill
// writes for free.
//
// Layout (all integers little-endian, via persist::Encoder):
//
//   header  := magic "SXNMERUN" | u32 version | u64 total_records
//   block*  := u32 payload_len | payload | u32 crc32c(payload)
//   payload := u64 record_count | record{record_count}
//   record  := PutString(key) | u64 seq | PutString(payload)
//
// Blocks target kRunBlockBytes so the merge reader holds one decoded
// block per run — merge memory is O(fan-in × block size), not O(run
// size). Any mismatch — bad magic, unknown version, CRC failure, a
// truncated block, or a record count that does not add up to the header
// total — surfaces as kDataLoss, mirroring the snapshot layer.

#ifndef SXNM_EXTSORT_RUN_FILE_H_
#define SXNM_EXTSORT_RUN_FILE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sxnm::extsort {

inline constexpr std::string_view kRunMagic = "SXNMERUN";
inline constexpr uint32_t kRunFormatVersion = 1;

/// Target encoded-payload size of one block. Small enough that a wide
/// merge stays cheap, large enough that framing overhead disappears.
inline constexpr size_t kRunBlockBytes = 256 * 1024;

/// One record of a run, viewing into the writer's buffers (writer side)
/// or the reader's current block (reader side).
struct RunRecord {
  std::string_view key;
  uint64_t seq = 0;  // global insertion ordinal; total-order tie-break
  std::string_view payload;
};

/// Serializes `records` (already sorted by (key, seq)) and atomically
/// commits them to `path`. ENOSPC maps to kResourceExhausted, other IO
/// failures to kDataLoss (persist::AtomicWriteFile semantics).
/// `out_bytes`, when non-null, receives the encoded file size.
util::Status WriteRunFile(const std::string& path,
                          const std::vector<RunRecord>& records,
                          uint64_t* out_bytes = nullptr);

/// Streaming reader: decodes one block at a time, so peak memory is one
/// block regardless of run size.
class RunReader {
 public:
  /// Opens `path` and validates the header. kNotFound when the file is
  /// missing, kDataLoss on a bad magic/version or truncated header.
  util::Status Open(const std::string& path);

  /// Advances to the next record. Returns true with `*record` viewing
  /// into the current block, false at a clean end of the run. Corrupt or
  /// truncated blocks, and a record total that disagrees with the
  /// header, fail with kDataLoss. The views stay valid until the next
  /// Next() call.
  util::Result<bool> Next(RunRecord* record);

  uint64_t total_records() const { return total_records_; }

 private:
  util::Status ReadNextBlock();

  std::string path_;
  std::ifstream in_;
  uint64_t total_records_ = 0;
  uint64_t records_seen_ = 0;
  std::string block_;           // current decoded payload
  size_t block_pos_ = 0;        // decode cursor within block_
  uint64_t block_remaining_ = 0;  // records left in the current block
};

}  // namespace sxnm::extsort

#endif  // SXNM_EXTSORT_RUN_FILE_H_
