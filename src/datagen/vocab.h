// Vocabularies used by the synthetic data generators (our ToXGene /
// FreeDB substitutes). All lists are embedded constants so that data
// generation is hermetic and reproducible.

#ifndef SXNM_DATAGEN_VOCAB_H_
#define SXNM_DATAGEN_VOCAB_H_

#include <span>
#include <string>

#include "util/rng.h"

namespace sxnm::datagen {

std::span<const char* const> FirstNames();
std::span<const char* const> LastNames();
std::span<const char* const> TitleWords();   // movie/CD title vocabulary
std::span<const char* const> MovieGenres();
std::span<const char* const> MusicGenres();
std::span<const char* const> BandWords();    // artist/band name vocabulary
std::span<const char* const> TrackWords();   // track title vocabulary
std::span<const char* const> ReviewWords();  // review text filler

/// "Keanu Reeves"-style person name; Zipf-skewed so popular names recur.
std::string RandomPersonName(util::Rng& rng);

/// A 1-4 word title ("The Silent Harbor"); word choice is Zipf-skewed so
/// that similar-but-distinct titles occur naturally.
std::string RandomTitle(util::Rng& rng);

/// Band/artist name ("The Velvet Giants", "Anna Sterling").
std::string RandomArtist(util::Rng& rng);

/// Track title, 1-3 words.
std::string RandomTrackTitle(util::Rng& rng);

/// A short sentence of review filler.
std::string RandomReviewSentence(util::Rng& rng);

/// An 8-character lowercase hex string (FreeDB disc ID shape).
std::string RandomDiscId(util::Rng& rng);

}  // namespace sxnm::datagen

#endif  // SXNM_DATAGEN_VOCAB_H_
