#include "datagen/template_gen.h"

#include <map>

namespace sxnm::datagen {

TemplateNode& TemplateNode::Occurs(int min_count, int max_count) {
  min_occurs = min_count;
  max_occurs = max_count;
  return *this;
}

TemplateNode& TemplateNode::Text(ValueGenerator generator) {
  text = std::move(generator);
  return *this;
}

TemplateNode& TemplateNode::Attr(std::string attr_name,
                                 ValueGenerator generator, double presence) {
  attributes.push_back({std::move(attr_name), std::move(generator), presence});
  return *this;
}

TemplateNode& TemplateNode::Child(TemplateNode child) {
  children.push_back(std::move(child));
  return *this;
}

TemplateNode& TemplateNode::Gold() {
  mark_gold = true;
  return *this;
}

ValueGenerator Fixed(std::string value) {
  return [value = std::move(value)](util::Rng&) { return value; };
}

namespace {

void Expand(const TemplateNode& node, xml::Element* element, util::Rng& rng,
            std::map<std::string, size_t>& gold_counters) {
  if (node.mark_gold) {
    size_t id = gold_counters[node.name]++;
    element->SetAttribute(kGoldAttribute,
                          node.name + "-" + std::to_string(id));
  }
  for (const AttributeTemplate& attr : node.attributes) {
    if (rng.NextBool(attr.presence)) {
      element->SetAttribute(attr.name, attr.value(rng));
    }
  }
  if (node.text) {
    element->AddText(node.text(rng));
  }
  for (const TemplateNode& child : node.children) {
    int count = rng.NextInt(child.min_occurs, child.max_occurs);
    for (int i = 0; i < count; ++i) {
      Expand(child, element->AddElement(child.name), rng, gold_counters);
    }
  }
}

}  // namespace

xml::Document TemplateGenerator::Generate(util::Rng& rng) const {
  auto root = std::make_unique<xml::Element>(root_.name);
  std::map<std::string, size_t> gold_counters;
  Expand(root_, root.get(), rng, gold_counters);

  xml::Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

namespace {

size_t StripGoldRecursive(xml::Element* element) {
  size_t removed = element->RemoveAttribute(kGoldAttribute) ? 1 : 0;
  for (xml::Element* child : element->ChildElements()) {
    removed += StripGoldRecursive(child);
  }
  return removed;
}

}  // namespace

size_t StripGoldAttributes(xml::Document& doc) {
  if (doc.root() == nullptr) return 0;
  return StripGoldRecursive(doc.root());
}

}  // namespace sxnm::datagen
