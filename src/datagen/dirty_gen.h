// Dirty-data generation — our substitute for the HU-Berlin "Dirty XML
// Data Generator" the paper uses.
//
// Given a clean document whose candidate elements carry `_gold` identity
// attributes, the generator duplicates elements according to per-path
// duplication rules (duplication probability, duplicate count — exactly
// the tool's parameters named in Sec. 4.1) and pollutes the duplicates'
// text with character-level errors (delete / insert / swap, the error
// types named in Experiment set 2), plus optional word swaps, dropped
// optional fields, and rare severe corruption (the "5% of titles polluted
// such that their keys sort far apart" effect of Fig. 4(b)).
//
// Duplicates inherit the original's `_gold` value, so ground-truth
// clusters are exactly the groups of equal `_gold` values.

#ifndef SXNM_DATAGEN_DIRTY_GEN_H_
#define SXNM_DATAGEN_DIRTY_GEN_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::datagen {

/// Character-level error model applied to duplicates' text values.
struct ErrorModel {
  /// Probability that a given text value receives errors at all.
  double field_error_probability = 0.5;

  /// Number of character edits applied to a polluted value, uniform in
  /// [min_edits, max_edits]. Each edit is delete / insert / swap with
  /// equal probability.
  int min_edits = 1;
  int max_edits = 3;

  /// Probability of swapping two adjacent words in a polluted multi-word
  /// value.
  double word_swap_probability = 0.1;

  /// Probability that an *optional* child element of a duplicate is
  /// dropped entirely (missing data).
  double field_drop_probability = 0.0;

  /// Probability of severe corruption of a polluted value: the first
  /// characters are replaced so that generated keys sort far away
  /// (the paper's "titles polluted in such a way that their keys are
  /// sorted far apart").
  double severe_probability = 0.05;
};

/// One duplication rule: which elements to duplicate and how many copies.
struct DuplicationRule {
  /// Absolute path of the elements to duplicate,
  /// e.g. "movie_database/movies/movie" or "movies/movie/title".
  std::string path;

  /// Probability that a given element is duplicated at all
  /// (the tool's dupProb).
  double dup_probability = 0.2;

  /// Number of duplicates for a selected element, uniform in
  /// [min_duplicates, max_duplicates].
  int min_duplicates = 1;
  int max_duplicates = 1;

  /// Probability that a created duplicate is an *exact* copy — no error
  /// model applied, the subtree byte-identical to the original. Models
  /// copy-paste replication (repeated subtrees) and drives the
  /// DAG-compression fast path; 0 keeps the historical behaviour (and
  /// the historical RNG stream, so existing corpora are unchanged).
  double exact_copy_probability = 0.0;
};

struct DirtyOptions {
  std::vector<DuplicationRule> rules;
  ErrorModel errors;
  uint64_t seed = 42;
};

struct DirtyStats {
  size_t elements_considered = 0;
  size_t elements_duplicated = 0;
  size_t duplicates_created = 0;
  size_t values_polluted = 0;
};

/// Produces a polluted copy of `clean`. Rules are applied in order; a rule
/// duplicating an ancestor (e.g. movie) runs before rules on its
/// descendants (e.g. title) see the document, so descendant rules also
/// apply inside freshly created ancestor duplicates — matching the tool's
/// behaviour of polluting the final document. Element IDs of the result
/// are freshly assigned.
util::Result<xml::Document> MakeDirty(const xml::Document& clean,
                                      const DirtyOptions& options,
                                      DirtyStats* stats = nullptr);

/// Applies the character-level error model to a single string (exposed for
/// tests and the FreeDB generator).
std::string PolluteValue(const std::string& value, const ErrorModel& errors,
                         util::Rng& rng, bool* polluted = nullptr);

}  // namespace sxnm::datagen

#endif  // SXNM_DATAGEN_DIRTY_GEN_H_
