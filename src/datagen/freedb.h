// Synthetic FreeDB CD catalog — the substitute for the FreeDB dump used
// by Data sets 2 and 3.
//
// Schema (Sec. 4.1): <disc> with at least one <artist> and <dtitle>,
// optional <year>, <did> (FreeDB disc id) and <genre>, and several track
// <title>s nested under <tracks>.
//
// The generator reproduces the three phenomena the paper identifies as
// the dominant false-positive sources in real FreeDB data (Fig. 4(d)
// discussion):
//   * series discs:    "Christmas Songs (CD1)" vs "(CD2)" — same artist,
//                      near-identical titles, distinct real objects;
//   * various-artists samplers (often correlated with series);
//   * "unreadable" entries whose title/artist carry no Latin characters,
//     so keys collapse and comparisons degrade to year+genre.

#ifndef SXNM_DATAGEN_FREEDB_H_
#define SXNM_DATAGEN_FREEDB_H_

#include <cstdint>

#include "sxnm/config.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::datagen {

struct FreeDbOptions {
  size_t num_discs = 500;
  uint64_t seed = 7;

  /// Fraction of discs generated as 2-3 part series ("... (CD1)").
  double series_fraction = 0.05;
  /// Fraction of discs by "Various Artists".
  double various_artists_fraction = 0.06;
  /// Fraction of discs with unreadable (non-Latin) title and artist.
  double unreadable_fraction = 0.03;

  double year_presence = 0.85;
  double did_presence = 0.90;
  double genre_presence = 0.80;

  int min_tracks = 3;
  int max_tracks = 12;
};

/// Clean catalog <freedb> with `num_discs` gold-marked <disc> children
/// (series members count toward num_discs). <dtitle>, <artist> and track
/// <title> elements are gold-marked as well (candidates of Data set 3).
xml::Document GenerateFreeDbCatalog(const FreeDbOptions& options);

/// Data set 2: `num_discs` clean discs + one polluted duplicate for each
/// (1000 discs total for the paper's 500), via the dirty generator.
util::Result<xml::Document> GenerateDataSet2(size_t num_discs, uint64_t seed);

/// Data set 3: a large catalog (the paper uses 10,000 discs) with the
/// confuser phenomena dialed up and a small `dup_fraction` of true
/// polluted duplicates so that precision is measurable against gold.
util::Result<xml::Document> GenerateDataSet3(size_t num_discs, uint64_t seed,
                                             double dup_fraction = 0.03);

/// Configuration for Data set 2 (Tab. 3(b)): candidates disc and
/// disc/tracks/title; disc OD = did (0.4), artist (0.3), dtitle (0.3).
///   Key 1: artist[1] K1-K4, year D3,D4
///   Key 2: did C1-C4, dtitle[1] C1-C4
///   Key 3: genre C1,C2, year D3,D4, artist[1] K1,K2
util::Result<core::Config> CdConfig(size_t window);

/// Configuration for Data set 3 (Tab. 3(c)): candidates disc, disc/dtitle,
/// disc/artist and disc/tracks/title.
///   Key 1: dtitle[1] K1-K6, artist[1] K1-K4
///   Key 2: did C1-C4, dtitle[1] C1-C4
util::Result<core::Config> Ds3Config(size_t window);

}  // namespace sxnm::datagen

#endif  // SXNM_DATAGEN_FREEDB_H_
