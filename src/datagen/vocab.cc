#include "datagen/vocab.h"

namespace sxnm::datagen {

namespace {

constexpr const char* kFirstNames[] = {
    "James",    "Mary",      "Robert",   "Patricia", "John",     "Jennifer",
    "Michael",  "Linda",     "David",    "Elizabeth", "William", "Barbara",
    "Richard",  "Susan",     "Joseph",   "Jessica",  "Thomas",   "Sarah",
    "Charles",  "Karen",     "Keanu",    "Carrie",   "Laurence", "Hugo",
    "Daniel",   "Nancy",     "Matthew",  "Lisa",     "Anthony",  "Betty",
    "Mark",     "Margaret",  "Donald",   "Sandra",   "Steven",   "Ashley",
    "Paul",     "Kimberly",  "Andrew",   "Emily",    "Joshua",   "Donna",
    "Kenneth",  "Michelle",  "Kevin",    "Dorothy",  "Brian",    "Carol",
    "George",   "Amanda",    "Edward",   "Melissa",  "Ronald",   "Deborah",
    "Timothy",  "Stephanie", "Jason",    "Rebecca",  "Jeffrey",  "Sharon",
    "Ryan",     "Laura",     "Jacob",    "Cynthia",  "Gary",     "Kathleen",
    "Nicholas", "Amy",       "Eric",     "Angela",   "Jonathan", "Shirley",
    "Stephen",  "Anna",      "Larry",    "Brenda",   "Justin",   "Pamela",
    "Scott",    "Emma",      "Brandon",  "Nicole",   "Benjamin", "Helen",
    "Samuel",   "Samantha",  "Gregory",  "Katherine", "Frank",   "Christine",
    "Alexander", "Debra",    "Raymond",  "Rachel",   "Patrick",  "Carolyn",
    "Jack",     "Janet",     "Dennis",   "Catherine", "Jerry",   "Maria",
    "Tyler",    "Heather",   "Aaron",    "Diane",    "Jose",     "Ruth",
    "Adam",     "Julie",     "Nathan",   "Olivia",   "Henry",    "Joyce",
    "Douglas",  "Virginia",  "Zachary",  "Victoria", "Peter",    "Kelly",
    "Kyle",     "Lauren",    "Ethan",    "Christina", "Walter",  "Joan",
    "Noah",     "Evelyn",    "Jeremy",   "Judith",   "Christian", "Megan",
    "Don",      "Sofia",     "Sven",     "Greta",    "Felix",    "Melanie",
};

constexpr const char* kLastNames[] = {
    "Smith",     "Johnson",   "Williams",  "Brown",     "Jones",
    "Garcia",    "Miller",    "Davis",     "Rodriguez", "Martinez",
    "Hernandez", "Lopez",     "Gonzalez",  "Wilson",    "Anderson",
    "Thomas",    "Taylor",    "Moore",     "Jackson",   "Martin",
    "Lee",       "Perez",     "Thompson",  "White",     "Harris",
    "Sanchez",   "Clark",     "Ramirez",   "Lewis",     "Robinson",
    "Walker",    "Young",     "Allen",     "King",      "Wright",
    "Scott",     "Torres",    "Nguyen",    "Hill",      "Flores",
    "Green",     "Adams",     "Nelson",    "Baker",     "Hall",
    "Rivera",    "Campbell",  "Mitchell",  "Carter",    "Roberts",
    "Reeves",    "Fishburne", "Weaving",   "Moss",      "Davies",
    "Gomez",     "Phillips",  "Evans",     "Turner",    "Diaz",
    "Parker",    "Cruz",      "Edwards",   "Collins",   "Reyes",
    "Stewart",   "Morris",    "Morales",   "Murphy",    "Cook",
    "Rogers",    "Gutierrez", "Ortiz",     "Morgan",    "Cooper",
    "Peterson",  "Bailey",    "Reed",      "Kelly",     "Howard",
    "Ramos",     "Kim",       "Cox",       "Ward",      "Richardson",
    "Watson",    "Brooks",    "Chavez",    "Wood",      "James",
    "Bennett",   "Gray",      "Mendoza",   "Ruiz",      "Hughes",
    "Price",     "Alvarez",   "Castillo",  "Sanders",   "Patel",
    "Myers",     "Long",      "Ross",      "Foster",    "Jimenez",
    "Sterling",  "Naumann",   "Weis",      "Puhlmann",  "Stolfo",
};

constexpr const char* kTitleWords[] = {
    "The",      "Matrix",   "Dark",     "Silent",   "Harbor",   "Night",
    "Shadow",   "Golden",   "River",    "Storm",    "Broken",   "Crystal",
    "Empire",   "Falling",  "Garden",   "Hidden",   "Iron",     "Journey",
    "Kingdom",  "Last",     "Lost",     "Midnight", "Mountain", "Ocean",
    "Phantom",  "Quiet",    "Rising",   "Secret",   "Thunder",  "Twilight",
    "Velvet",   "Winter",   "Ancient",  "Burning",  "Crimson",  "Distant",
    "Eternal",  "Frozen",   "Glass",    "Hollow",   "Infinite", "Jade",
    "Lonely",   "Mystic",   "Northern", "Obsidian", "Pale",     "Radiant",
    "Sacred",   "Tide",     "Uncharted", "Violet",  "Wandering", "Zero",
    "Mask",     "Zorro",    "Return",   "Revenge",  "Dawn",     "Dusk",
    "Fire",     "Water",    "Earth",    "Wind",     "Star",     "Moon",
    "Sun",      "Sky",      "Dream",    "Memory",   "Echo",     "Whisper",
    "Code",     "Cipher",   "Signal",   "Mirror",   "Labyrinth", "Horizon",
    "Voyage",   "Odyssey",  "Legacy",   "Destiny",  "Fortune",  "Glory",
    "Honor",    "Justice",  "Liberty",  "Paradise", "Serpent",  "Tiger",
    "Wolf",     "Raven",    "Falcon",   "Dragon",   "Lion",     "Eagle",
};

constexpr const char* kMovieGenres[] = {
    "Action",    "Adventure", "Animation", "Comedy",   "Crime",
    "Documentary", "Drama",   "Family",    "Fantasy",  "Horror",
    "Musical",   "Mystery",   "Romance",   "SciFi",    "Thriller",
    "War",       "Western",
};

constexpr const char* kMusicGenres[] = {
    "Rock",    "Pop",      "Jazz",    "Blues",     "Classical", "Country",
    "Folk",    "Metal",    "Punk",    "Reggae",    "Soul",      "Funk",
    "Electronic", "House", "Techno",  "Ambient",   "HipHop",    "Rap",
    "Latin",   "World",    "Gospel",  "Soundtrack", "Indie",    "Alternative",
};

constexpr const char* kBandWords[] = {
    "Velvet",   "Giants",   "Electric", "Monkeys",  "Stone",    "Roses",
    "Midnight", "Riders",   "Neon",     "Tigers",   "Paper",    "Planes",
    "Glass",    "Animals",  "Arctic",   "Foxes",    "Royal",    "Otters",
    "Crimson",  "Kings",    "Silver",   "Arrows",   "Wild",     "Hearts",
    "Broken",   "Strings",  "Golden",   "Echoes",   "Savage",   "Poets",
    "Lunar",    "Drifters", "Cosmic",   "Pilots",   "Rusty",    "Nails",
    "Phantom",  "Limbs",    "Hollow",   "Suns",     "Static",   "Waves",
    "Iron",     "Sparrows", "Mystic",   "Rivers",   "Thunder",  "Birds",
};

constexpr const char* kTrackWords[] = {
    "Love",     "Heart",   "Night",   "Day",      "Dance",    "Fire",
    "Rain",     "Summer",  "Winter",  "Road",     "Home",     "Dream",
    "Light",    "Dark",    "Blue",    "Red",      "Gold",     "Silver",
    "Time",     "Memory",  "Story",   "Song",     "Melody",   "Rhythm",
    "Freedom",  "Highway", "City",    "Ocean",    "Mountain", "Valley",
    "Angel",    "Devil",   "Heaven",  "Stars",    "Moonlight", "Sunrise",
    "Goodbye",  "Hello",   "Forever", "Yesterday", "Tomorrow", "Tonight",
    "Crazy",    "Lonely",  "Happy",   "Sad",      "Young",    "Free",
    "Running",  "Falling", "Flying",  "Waiting",  "Dreaming", "Burning",
    "Christmas", "Holiday", "Party",  "Radio",    "Guitar",   "Piano",
};

constexpr const char* kReviewWords[] = {
    "a",        "masterful", "stunning",  "dull",     "gripping",
    "film",     "story",     "plot",      "visually", "remarkable",
    "the",      "acting",    "direction", "score",    "pacing",
    "is",       "was",       "feels",     "seems",    "remains",
    "brilliant", "tedious",  "moving",    "shallow",  "unforgettable",
    "with",     "without",   "despite",   "beyond",   "unlike",
    "performance", "ending", "dialogue",  "camera",   "atmosphere",
    "breathtaking", "predictable", "original", "haunting", "charming",
};

template <size_t N>
std::span<const char* const> AsSpan(const char* const (&arr)[N]) {
  return std::span<const char* const>(arr, N);
}

std::string PickZipf(util::Rng& rng, std::span<const char* const> words,
                     double s = 0.8) {
  return words[rng.NextZipf(words.size(), s)];
}

}  // namespace

std::span<const char* const> FirstNames() { return AsSpan(kFirstNames); }
std::span<const char* const> LastNames() { return AsSpan(kLastNames); }
std::span<const char* const> TitleWords() { return AsSpan(kTitleWords); }
std::span<const char* const> MovieGenres() { return AsSpan(kMovieGenres); }
std::span<const char* const> MusicGenres() { return AsSpan(kMusicGenres); }
std::span<const char* const> BandWords() { return AsSpan(kBandWords); }
std::span<const char* const> TrackWords() { return AsSpan(kTrackWords); }
std::span<const char* const> ReviewWords() { return AsSpan(kReviewWords); }

std::string RandomPersonName(util::Rng& rng) {
  return PickZipf(rng, FirstNames()) + " " + PickZipf(rng, LastNames());
}

std::string RandomTitle(util::Rng& rng) {
  int words = rng.NextInt(2, 4);
  std::string title;
  for (int i = 0; i < words; ++i) {
    if (i > 0) title += ' ';
    title += PickZipf(rng, TitleWords(), 0.6);
  }
  return title;
}

std::string RandomArtist(util::Rng& rng) {
  if (rng.NextBool(0.4)) {
    // Solo artist: a person name.
    return RandomPersonName(rng);
  }
  std::string name;
  if (rng.NextBool(0.5)) name = "The ";
  name += PickZipf(rng, BandWords(), 0.5);
  name += ' ';
  name += PickZipf(rng, BandWords(), 0.5);
  return name;
}

std::string RandomTrackTitle(util::Rng& rng) {
  int words = rng.NextInt(2, 3);
  std::string title;
  for (int i = 0; i < words; ++i) {
    if (i > 0) title += ' ';
    title += PickZipf(rng, TrackWords(), 0.5);
  }
  return title;
}

std::string RandomReviewSentence(util::Rng& rng) {
  int words = rng.NextInt(5, 12);
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kReviewWords[rng.NextBelow(std::size(kReviewWords))];
  }
  out += '.';
  return out;
}

std::string RandomDiscId(util::Rng& rng) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string id;
  id.reserve(8);
  for (int i = 0; i < 8; ++i) id.push_back(kHex[rng.NextBelow(16)]);
  return id;
}

}  // namespace sxnm::datagen
