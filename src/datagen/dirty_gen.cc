#include "datagen/dirty_gen.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"
#include "xml/xpath.h"

namespace sxnm::datagen {

namespace {

// One random character edit in place. `value` may be empty (insert still
// possible).
void ApplyCharEdit(std::string& value, util::Rng& rng) {
  enum { kDelete, kInsert, kSwap };
  int op = rng.NextInt(0, 2);
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
  switch (op) {
    case kDelete:
      if (!value.empty()) {
        value.erase(rng.NextBelow(value.size()), 1);
      }
      break;
    case kInsert: {
      char c = kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)];
      value.insert(value.begin() + static_cast<long>(
                                        rng.NextBelow(value.size() + 1)),
                   c);
      break;
    }
    case kSwap:
      if (value.size() >= 2) {
        size_t i = rng.NextBelow(value.size() - 1);
        std::swap(value[i], value[i + 1]);
      }
      break;
  }
}

void ApplyWordSwap(std::string& value, util::Rng& rng) {
  std::vector<std::string> words = util::SplitWhitespace(value);
  if (words.size() < 2) return;
  size_t i = rng.NextBelow(words.size() - 1);
  std::swap(words[i], words[i + 1]);
  value = util::Join(words, " ");
}

// Replaces the leading characters so that class-based keys (consonants,
// characters, digits) sort far from the original.
void ApplySevere(std::string& value, util::Rng& rng) {
  static constexpr const char* kPrefixes[] = {"zz", "qx", "zq", "xz"};
  value = std::string(kPrefixes[rng.NextBelow(4)]) + value;
  // Also damage what was the first character to break K1/C1/D1 selectors.
  if (value.size() > 2) value[2] = 'z';
}

// Recursively pollutes every text node and attribute value of `element`
// (excluding the _gold attribute).
void PolluteSubtree(xml::Element* element, const ErrorModel& errors,
                    util::Rng& rng, DirtyStats* stats) {
  // Attributes.
  std::vector<std::pair<std::string, std::string>> updates;
  for (const xml::Attribute& attr : element->attributes()) {
    if (attr.name == "_gold") continue;
    bool polluted = false;
    std::string next = PolluteValue(attr.value, errors, rng, &polluted);
    if (polluted) {
      updates.emplace_back(attr.name, std::move(next));
      if (stats != nullptr) ++stats->values_polluted;
    }
  }
  for (const auto& [name, value] : updates) {
    element->SetAttribute(name, value);
  }

  // Children: optional field drops and recursion. Iterate by index since
  // children may be removed.
  for (size_t i = element->NumChildren(); i > 0; --i) {
    xml::Node* child = element->children()[i - 1].get();
    if (xml::Element* e = child->AsElement()) {
      // Only leaf elements can go missing (a missing <year> or <artist>;
      // never a structural container like <tracks> or <people>).
      bool is_leaf = e->ChildElements().empty();
      if (is_leaf && errors.field_drop_probability > 0 &&
          rng.NextBool(errors.field_drop_probability)) {
        element->RemoveChild(i - 1);
        continue;
      }
      PolluteSubtree(e, errors, rng, stats);
    } else if (child->IsText()) {
      auto* text = static_cast<xml::TextNode*>(child);
      bool polluted = false;
      std::string next = PolluteValue(text->text(), errors, rng, &polluted);
      if (polluted) {
        text->set_text(std::move(next));
        if (stats != nullptr) ++stats->values_polluted;
      }
    }
  }
}

}  // namespace

std::string PolluteValue(const std::string& value, const ErrorModel& errors,
                         util::Rng& rng, bool* polluted) {
  if (polluted != nullptr) *polluted = false;
  if (!rng.NextBool(errors.field_error_probability)) return value;

  std::string out = value;
  if (rng.NextBool(errors.severe_probability)) {
    ApplySevere(out, rng);
  } else {
    int edits = rng.NextInt(errors.min_edits, errors.max_edits);
    for (int e = 0; e < edits; ++e) ApplyCharEdit(out, rng);
    if (rng.NextBool(errors.word_swap_probability)) ApplyWordSwap(out, rng);
  }
  if (polluted != nullptr) *polluted = (out != value);
  return out;
}

util::Result<xml::Document> MakeDirty(const xml::Document& clean,
                                      const DirtyOptions& options,
                                      DirtyStats* stats) {
  if (clean.root() == nullptr) {
    return util::Status::FailedPrecondition("clean document has no root");
  }

  DirtyStats local;
  util::Rng rng(options.seed);
  xml::Document dirty = clean.Clone();

  for (const DuplicationRule& rule : options.rules) {
    auto path = xml::XPath::Parse(rule.path);
    if (!path.ok()) return path.status();
    if (path->SelectsValue()) {
      return util::Status::InvalidArgument(
          "duplication rule path must select elements: " + rule.path);
    }

    dirty.AssignElementIds();
    auto targets = path->SelectFromRoot(dirty);
    if (!targets.ok()) return targets.status();

    for (xml::Element* target : targets.value()) {
      ++local.elements_considered;
      if (!rng.NextBool(rule.dup_probability)) continue;
      ++local.elements_duplicated;

      xml::Element* parent = target->parent();
      if (parent == nullptr) {
        return util::Status::InvalidArgument(
            "cannot duplicate the document root (rule path '" + rule.path +
            "')");
      }
      int copies = rng.NextInt(rule.min_duplicates, rule.max_duplicates);
      for (int c = 0; c < copies; ++c) {
        std::unique_ptr<xml::Element> copy = target->Clone();
        // The > 0 guard keeps the RNG stream of rules without the knob
        // byte-identical to the historical one.
        bool exact = rule.exact_copy_probability > 0 &&
                     rng.NextBool(rule.exact_copy_probability);
        if (!exact) PolluteSubtree(copy.get(), options.errors, rng, &local);
        parent->AddChild(std::move(copy));
        ++local.duplicates_created;
      }
    }
  }

  dirty.AssignElementIds();
  if (stats != nullptr) *stats = local;
  return dirty;
}

}  // namespace sxnm::datagen
