// Template-driven clean XML generation — our ToXGene substitute.
//
// A template is a tree of TemplateNode: each node describes an element
// name, how many instances to emit under its parent (uniform in
// [min_occurs, max_occurs]), attribute/text value generators, and child
// templates. Nodes flagged `mark_gold` receive a fresh `_gold` attribute
// identifying the generated real-world object, which the evaluation layer
// uses as ground truth (and which is never visible to SXNM's configured
// paths).

#ifndef SXNM_DATAGEN_TEMPLATE_GEN_H_
#define SXNM_DATAGEN_TEMPLATE_GEN_H_

#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "xml/node.h"

namespace sxnm::datagen {

/// Attribute name carrying ground-truth object identity.
inline constexpr char kGoldAttribute[] = "_gold";

/// Generates one value (text content or attribute value).
using ValueGenerator = std::function<std::string(util::Rng&)>;

struct AttributeTemplate {
  std::string name;
  ValueGenerator value;
  /// Probability that the attribute is present at all (missing data).
  double presence = 1.0;
};

struct TemplateNode {
  TemplateNode() = default;
  explicit TemplateNode(std::string element_name)
      : name(std::move(element_name)) {}

  std::string name;

  /// Number of instances emitted under the parent, uniform in
  /// [min_occurs, max_occurs]. Ignored for the root (always 1).
  int min_occurs = 1;
  int max_occurs = 1;

  /// Optional text content generator (emitted as a single text child).
  ValueGenerator text;

  std::vector<AttributeTemplate> attributes;
  std::vector<TemplateNode> children;

  /// Assign a `_gold` identity to every generated instance.
  bool mark_gold = false;

  // Fluent helpers for template construction.
  TemplateNode& Occurs(int min_count, int max_count);
  TemplateNode& Text(ValueGenerator generator);
  TemplateNode& Attr(std::string attr_name, ValueGenerator generator,
                     double presence = 1.0);
  TemplateNode& Child(TemplateNode child);
  TemplateNode& Gold();
};

/// Convenience: a generator returning a fixed string.
ValueGenerator Fixed(std::string value);

class TemplateGenerator {
 public:
  explicit TemplateGenerator(TemplateNode root) : root_(std::move(root)) {}

  /// Expands the template into a document; element IDs are assigned.
  /// Gold IDs are sequential per element name ("movie-0", "movie-1", ...),
  /// unique across the document.
  xml::Document Generate(util::Rng& rng) const;

 private:
  TemplateNode root_;
};

/// Removes every `_gold` attribute from the document (used before handing
/// data to code that must not see ground truth).
size_t StripGoldAttributes(xml::Document& doc);

}  // namespace sxnm::datagen

#endif  // SXNM_DATAGEN_TEMPLATE_GEN_H_
