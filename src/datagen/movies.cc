#include "datagen/movies.h"

#include <memory>
#include <set>

#include "datagen/template_gen.h"
#include "datagen/vocab.h"

namespace sxnm::datagen {

namespace {

// Clean data must not contain accidental duplicates (ToXGene data is
// duplicate-free by construction): movie titles are drawn until unique,
// with a numeric suffix as a last resort.
ValueGenerator UniqueTitleGenerator() {
  auto used = std::make_shared<std::set<std::string>>();
  return [used](util::Rng& rng) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      std::string title = RandomTitle(rng);
      if (used->insert(title).second) return title;
    }
    std::string title = RandomTitle(rng);
    title += " " + std::to_string(used->size());
    used->insert(title);
    return title;
  };
}

}  // namespace

xml::Document GenerateCleanMovies(const MovieDataOptions& options) {
  TemplateNode person{"person"};
  person.Occurs(0, 4).Gold().Child(
      TemplateNode{"lastname"}.Text([](util::Rng& rng) {
        return std::string(
            LastNames()[rng.NextZipf(LastNames().size(), 0.8)]);
      }));
  person.Child(TemplateNode{"firstname"}.Occurs(1, 2).Text(
      [](util::Rng& rng) {
        return std::string(
            FirstNames()[rng.NextZipf(FirstNames().size(), 0.8)]);
      }));

  TemplateNode movie{"movie"};
  movie.Gold()
      .Attr("year",
            [](util::Rng& rng) { return std::to_string(rng.NextInt(1950, 2005)); },
            /*presence=*/0.92)
      .Attr("length",
            [](util::Rng& rng) { return std::to_string(rng.NextInt(60, 240)); })
      .Child(TemplateNode{"title"}.Occurs(1, 2).Gold().Text(
          UniqueTitleGenerator()))
      .Child(TemplateNode{"people"}.Child(std::move(person)))
      .Child(TemplateNode{"review"}.Occurs(0, 2).Text(RandomReviewSentence));

  TemplateNode root{"movie_database"};
  root.Child(TemplateNode{"movies"}.Child(
      std::move(movie.Occurs(static_cast<int>(options.num_movies),
                             static_cast<int>(options.num_movies)))));

  util::Rng rng(options.seed);
  return TemplateGenerator(std::move(root)).Generate(rng);
}

xml::Document GenerateSharedCastMovies(const SharedCastOptions& options) {
  util::Rng rng(options.seed);

  // The actor pool: distinct names (retry on collision so two pool
  // members are never confusable by name alone).
  std::vector<std::pair<std::string, std::string>> pool;  // (last, first)
  std::set<std::string> used;
  while (pool.size() < options.pool_size) {
    std::string last(LastNames()[rng.NextZipf(LastNames().size(), 0.5)]);
    std::string first(FirstNames()[rng.NextZipf(FirstNames().size(), 0.5)]);
    if (used.insert(first + " " + last).second) {
      pool.emplace_back(std::move(last), std::move(first));
    }
  }

  auto root = std::make_unique<xml::Element>("movie_database");
  xml::Element* movies = root->AddElement("movies");
  std::set<std::string> used_titles;

  for (size_t m = 0; m < options.num_movies; ++m) {
    xml::Element* movie = movies->AddElement("movie");
    movie->SetAttribute(kGoldAttribute, "movie-" + std::to_string(m));
    movie->SetAttribute("year", std::to_string(rng.NextInt(1950, 2005)));
    movie->SetAttribute("length", std::to_string(rng.NextInt(60, 240)));

    std::string title;
    do {
      title = RandomTitle(rng);
    } while (!used_titles.insert(title).second);
    xml::Element* title_elem = movie->AddElement("title");
    title_elem->SetAttribute(kGoldAttribute, "title-" + std::to_string(m));
    title_elem->AddText(title);

    xml::Element* people = movie->AddElement("people");
    int cast = rng.NextInt(options.min_cast, options.max_cast);
    std::set<size_t> picked;
    for (int c = 0; c < cast; ++c) {
      size_t k = rng.NextZipf(pool.size(), 0.6);  // stars recur more often
      if (!picked.insert(k).second) continue;     // no repeats per movie
      xml::Element* person = people->AddElement("person");
      person->SetAttribute(kGoldAttribute, "cast-" + std::to_string(k));
      person->AddElement("lastname")->AddText(pool[k].first);
      person->AddElement("firstname")->AddText(pool[k].second);
    }
  }

  xml::Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

DirtyOptions DataSet1DirtyPreset(uint64_t seed) {
  DirtyOptions options;
  options.seed = seed;
  options.rules.push_back(
      {"movie_database/movies/movie", /*dup_probability=*/0.4,
       /*min_duplicates=*/1, /*max_duplicates=*/1});
  options.errors.field_error_probability = 0.45;
  options.errors.min_edits = 1;
  options.errors.max_edits = 2;
  options.errors.word_swap_probability = 0.05;
  options.errors.severe_probability = 0.05;
  return options;
}

DirtyOptions FewDuplicatesPreset(uint64_t seed) {
  DirtyOptions options;
  options.seed = seed;
  options.rules.push_back({"movie_database/movies/movie", 0.2, 1, 1});
  options.rules.push_back({"movie_database/movies/movie/title", 0.2, 1, 1});
  options.rules.push_back(
      {"movie_database/movies/movie/people/person", 0.2, 1, 1});
  options.errors.field_error_probability = 0.5;
  options.errors.min_edits = 1;
  options.errors.max_edits = 3;
  return options;
}

DirtyOptions ManyDuplicatesPreset(uint64_t seed) {
  DirtyOptions options;
  options.seed = seed;
  options.rules.push_back({"movie_database/movies/movie", 1.0, 1, 2});
  options.rules.push_back({"movie_database/movies/movie/title", 0.2, 1, 1});
  options.rules.push_back(
      {"movie_database/movies/movie/people/person", 1.0, 1, 2});
  options.errors.field_error_probability = 0.5;
  options.errors.min_edits = 1;
  options.errors.max_edits = 3;
  return options;
}

DirtyOptions RepeatedSubtreePreset(uint64_t seed) {
  DirtyOptions options;
  options.seed = seed;
  DuplicationRule rule;
  rule.path = "movie_database/movies/movie";
  rule.dup_probability = 1.0;
  rule.min_duplicates = 1;
  rule.max_duplicates = 3;
  rule.exact_copy_probability = 0.7;
  options.rules.push_back(rule);
  options.errors.field_error_probability = 0.5;
  options.errors.min_edits = 1;
  options.errors.max_edits = 3;
  return options;
}

util::Result<core::Config> MovieConfig(size_t window) {
  auto movie =
      core::CandidateBuilder("movie", "movie_database/movies/movie")
          .Path(1, "title/text()")
          .Path(2, "@year")
          .Path(3, "@length")
          .Od(1, 0.8)
          .Od(3, 0.2, "numeric:60")
          .Key({{1, "K1-K5"}, {2, "D3,D4"}})   // Key 1
          .Key({{2, "D3,D4"}, {1, "K1,K2"}})   // Key 2
          .Key({{3, "D1,D2"}, {1, "K1,K2"}})   // Key 3
          .Window(window)
          .OdThreshold(0.75)
          .Mode(core::CombineMode::kOdOnly)
          .Build();
  if (!movie.ok()) return movie.status();

  core::Config config;
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(movie).value()));
  return config;
}

util::Result<core::Config> MovieScalabilityConfig(size_t window) {
  auto title =
      core::CandidateBuilder("title", "movie_database/movies/movie/title")
          .Path(1, "text()")
          .Od(1, 1.0)
          .Key({{1, "K1-K4"}})
          .Window(window)
          .OdThreshold(0.8)
          .Build();
  if (!title.ok()) return title.status();

  auto person = core::CandidateBuilder(
                    "person", "movie_database/movies/movie/people/person")
                    .Path(1, "lastname/text()")
                    .Path(2, "firstname[1]/text()")
                    .Od(1, 0.6)
                    .Od(2, 0.4)
                    .Key({{1, "K1-K4"}, {2, "C1,C2"}})
                    .Window(window)
                    .OdThreshold(0.8)
                    .Build();
  if (!person.ok()) return person.status();

  auto movie =
      core::CandidateBuilder("movie", "movie_database/movies/movie")
          .Path(1, "title/text()")
          .Path(2, "@year")
          .Path(3, "@length")
          .Od(1, 0.8)
          .Od(3, 0.2, "numeric:60")
          .Key({{1, "K1-K5"}, {2, "D3,D4"}})
          .Window(window)
          .OdThreshold(0.7)
          .Mode(core::CombineMode::kAverage)
          .Build();
  if (!movie.ok()) return movie.status();

  core::Config config;
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(title).value()));
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(person).value()));
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(movie).value()));
  return config;
}

}  // namespace sxnm::datagen
