// Data set 1 of the paper: artificial movie data.
//
// Schema (Sec. 4.1): <movie> elements with several <title>, <person> and
// <review> descendants; <person> has one <lastname> and several
// <firstname>; <movie> carries @year and @length. The document root is
// movie_database/movies, matching Fig. 3(a).

#ifndef SXNM_DATAGEN_MOVIES_H_
#define SXNM_DATAGEN_MOVIES_H_

#include <cstdint>

#include "datagen/dirty_gen.h"
#include "sxnm/config.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::datagen {

struct MovieDataOptions {
  size_t num_movies = 1000;
  uint64_t seed = 1;
};

/// Clean movie database, gold-marked on <movie>, <title> and <person>.
xml::Document GenerateCleanMovies(const MovieDataOptions& options);

struct SharedCastOptions {
  size_t num_movies = 500;
  /// Size of the shared actor pool; each movie's cast is drawn from it,
  /// so the same real-world actor appears in several movies — the M:N
  /// parent/child relationship of Sec. 2.
  size_t pool_size = 120;
  int min_cast = 1;
  int max_cast = 4;
  uint64_t seed = 1;
};

/// Movie database where <person> elements reference a shared actor pool:
/// all appearances of pool actor k carry the same gold id ("cast-k"), so
/// the ground truth contains duplicate persons *across different movies*.
/// This is the scenario where top-down pruning (DELPHI-style) must lose
/// against bottom-up SXNM (the paper's Sec. 2 argument).
xml::Document GenerateSharedCastMovies(const SharedCastOptions& options);

/// Dirty preset for effectiveness experiments (Experiment set 1, Data set
/// 1): 40% of movies receive one duplicate with the standard error model
/// including 5% severe title corruption.
DirtyOptions DataSet1DirtyPreset(uint64_t seed);

/// Scalability presets (Experiment set 2):
/// "few duplicates": 20% dupProb for movie, title, and person, exactly
/// one duplicate each.
DirtyOptions FewDuplicatesPreset(uint64_t seed);

/// "many duplicates": 100% dupProb for movie and person with up to two
/// duplicates, 20% for title with exactly one.
DirtyOptions ManyDuplicatesPreset(uint64_t seed);

/// "repeated subtrees": copy-paste-heavy corpus exercising the
/// DAG-compression fast path — every movie duplicated (one to three
/// copies), 70% of the copies byte-exact
/// (DuplicationRule::exact_copy_probability), the rest with the standard
/// error model.
DirtyOptions RepeatedSubtreePreset(uint64_t seed);

/// SXNM configuration for Data set 1 (Tab. 3(a)): candidate movie only,
/// OD = title/text() (0.8) + @length (0.2), three keys:
///   Key 1: title K1-K5, @year D3,D4      (title-led, most distinctive)
///   Key 2: @year D3,D4, title K1,K2      (year-led, weak when year bad)
///   Key 3: @length D1,D2, title K1,K2    (length-led, likewise weak)
util::Result<core::Config> MovieConfig(size_t window);

/// Configuration for the scalability runs: candidates movie, title and
/// person (bottom-up: person & title, then movie with descendants).
util::Result<core::Config> MovieScalabilityConfig(size_t window);

}  // namespace sxnm::datagen

#endif  // SXNM_DATAGEN_MOVIES_H_
