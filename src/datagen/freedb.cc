#include "datagen/freedb.h"

#include <memory>
#include <set>

#include "datagen/dirty_gen.h"
#include "datagen/template_gen.h"
#include "datagen/vocab.h"

namespace sxnm::datagen {

namespace {

// A string with no Latin letters or digits: key patterns extract nothing,
// and edit-distance comparisons are dominated by the remaining fields —
// the paper's "format that failed to enter the database".
std::string UnreadableString(util::Rng& rng) {
  static constexpr const char* kGlyphs[] = {
      "\xE3\x82\xAB", "\xE3\x83\xA9", "\xE3\x82\xAA", "\xE3\x82\xB1",
      "\xD0\x96",     "\xD0\xA9",     "\xD0\xAE",     "\xD0\xAF",
      "?",            "#",            "*",            "~",
  };
  int len = rng.NextInt(4, 10);
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kGlyphs[rng.NextBelow(std::size(kGlyphs))];
    if (i == len / 2) out += ' ';
  }
  return out;
}

struct DiscSpec {
  std::string artist;
  std::string dtitle;
  std::string year;   // empty = absent
  std::string did;    // empty = absent
  std::string genre;  // empty = absent
  int num_tracks = 0;
};

void EmitDisc(xml::Element* parent, const DiscSpec& spec, size_t gold_id,
              util::Rng& rng, size_t* title_gold, size_t* artist_gold,
              size_t* dtitle_gold) {
  xml::Element* disc = parent->AddElement("disc");
  disc->SetAttribute(kGoldAttribute, "disc-" + std::to_string(gold_id));

  xml::Element* artist = disc->AddElement("artist");
  artist->SetAttribute(kGoldAttribute,
                       "artist-" + std::to_string((*artist_gold)++));
  artist->AddText(spec.artist);

  xml::Element* dtitle = disc->AddElement("dtitle");
  dtitle->SetAttribute(kGoldAttribute,
                       "dtitle-" + std::to_string((*dtitle_gold)++));
  dtitle->AddText(spec.dtitle);

  if (!spec.year.empty()) disc->AddElement("year")->AddText(spec.year);
  if (!spec.did.empty()) disc->AddElement("did")->AddText(spec.did);
  if (!spec.genre.empty()) disc->AddElement("genre")->AddText(spec.genre);

  xml::Element* tracks = disc->AddElement("tracks");
  for (int t = 0; t < spec.num_tracks; ++t) {
    xml::Element* title = tracks->AddElement("title");
    title->SetAttribute(kGoldAttribute,
                        "track-" + std::to_string((*title_gold)++));
    title->AddText(RandomTrackTitle(rng));
  }
}

}  // namespace

xml::Document GenerateFreeDbCatalog(const FreeDbOptions& options) {
  util::Rng rng(options.seed);
  auto root = std::make_unique<xml::Element>("freedb");

  size_t disc_gold = 0, title_gold = 0, artist_gold = 0, dtitle_gold = 0;

  std::set<std::string> used_titles;
  while (disc_gold < options.num_discs) {
    DiscSpec spec;
    spec.artist = RandomArtist(rng);
    // Distinct real-world discs get distinct titles (the clean catalog is
    // duplicate-free by construction).
    do {
      spec.dtitle = RandomTitle(rng);
    } while (!used_titles.insert(spec.dtitle).second);
    if (rng.NextBool(options.year_presence)) {
      spec.year = std::to_string(rng.NextInt(1960, 2005));
    }
    if (rng.NextBool(options.genre_presence)) {
      spec.genre = MusicGenres()[rng.NextZipf(MusicGenres().size(), 0.7)];
    }
    spec.num_tracks = rng.NextInt(options.min_tracks, options.max_tracks);

    bool various = rng.NextBool(options.various_artists_fraction);
    bool unreadable = !various && rng.NextBool(options.unreadable_fraction);
    bool series = rng.NextBool(options.series_fraction) ||
                  (various && rng.NextBool(0.5));

    if (various) spec.artist = rng.NextBool(0.5) ? "Various Artists" : "Various";
    if (unreadable) {
      spec.artist = UnreadableString(rng);
      spec.dtitle = UnreadableString(rng);
    }

    int parts = series ? rng.NextInt(2, 3) : 1;
    std::string base_title = spec.dtitle;
    for (int p = 0; p < parts && disc_gold < options.num_discs; ++p) {
      DiscSpec part = spec;
      if (series) {
        part.dtitle = base_title + " (CD" + std::to_string(p + 1) + ")";
      }
      if (rng.NextBool(options.did_presence)) part.did = RandomDiscId(rng);
      part.num_tracks = rng.NextInt(options.min_tracks, options.max_tracks);
      EmitDisc(root.get(), part, disc_gold++, rng, &title_gold, &artist_gold,
               &dtitle_gold);
    }
  }

  xml::Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

util::Result<xml::Document> GenerateDataSet2(size_t num_discs,
                                             uint64_t seed) {
  FreeDbOptions options;
  options.num_discs = num_discs;
  options.seed = seed;
  xml::Document clean = GenerateFreeDbCatalog(options);

  DirtyOptions dirty;
  dirty.seed = seed + 1;
  dirty.rules.push_back({"freedb/disc", /*dup_probability=*/1.0,
                         /*min_duplicates=*/1, /*max_duplicates=*/1});
  dirty.errors.field_error_probability = 0.3;
  dirty.errors.min_edits = 1;
  dirty.errors.max_edits = 2;
  dirty.errors.word_swap_probability = 0.05;
  dirty.errors.field_drop_probability = 0.03;
  dirty.errors.severe_probability = 0.03;
  return MakeDirty(clean, dirty);
}

util::Result<xml::Document> GenerateDataSet3(size_t num_discs, uint64_t seed,
                                             double dup_fraction) {
  FreeDbOptions options;
  options.num_discs = num_discs;
  options.seed = seed;
  options.series_fraction = 0.06;
  options.various_artists_fraction = 0.07;
  options.unreadable_fraction = 0.04;
  xml::Document clean = GenerateFreeDbCatalog(options);
  if (dup_fraction <= 0.0) return clean;

  DirtyOptions dirty;
  dirty.seed = seed + 1;
  dirty.rules.push_back({"freedb/disc", dup_fraction, 1, 1});
  dirty.errors.field_error_probability = 0.4;
  dirty.errors.min_edits = 1;
  dirty.errors.max_edits = 2;
  dirty.errors.field_drop_probability = 0.03;
  auto doc = MakeDirty(clean, dirty);
  if (!doc.ok()) return doc;

  // FreeDB disc IDs are computed from track offsets, so a re-submitted
  // duplicate usually carries a *different* did. Give most duplicates a
  // fresh did: the did-led Key 2 then finds few but near-certain
  // duplicates, exactly the Fig. 4(d) behaviour.
  util::Rng rng(seed + 2);
  auto discs = xml::XPath::Parse("freedb/disc")->SelectFromRoot(doc.value());
  if (!discs.ok()) return discs.status();
  std::set<std::string> seen_gold;
  for (xml::Element* disc : discs.value()) {
    const std::string* gold = disc->FindAttribute(kGoldAttribute);
    if (gold == nullptr) continue;
    bool is_duplicate = !seen_gold.insert(*gold).second;
    if (!is_duplicate || !rng.NextBool(0.7)) continue;
    if (xml::Element* did = disc->FirstChildElement("did")) {
      if (did->NumChildren() > 0) did->RemoveChild(0);
      did->AddText(RandomDiscId(rng));
    }
  }
  return doc;
}

util::Result<core::Config> CdConfig(size_t window) {
  auto track_title =
      core::CandidateBuilder("track_title", "freedb/disc/tracks/title")
          .Path(1, "text()")
          .Od(1, 1.0)
          .Key({{1, "C1-C6"}})
          .ExactOdPrepass(true)
          .Window(10)  // per-element window, independent of the disc sweep
          .OdThreshold(0.8)
          .Build();
  if (!track_title.ok()) return track_title.status();

  auto disc = core::CandidateBuilder("disc", "freedb/disc")
                  .Path(1, "did/text()")
                  .Path(2, "artist[1]/text()")
                  .Path(3, "dtitle[1]/text()")
                  .Path(4, "year/text()")
                  .Path(5, "genre/text()")
                  .Od(1, 0.4)
                  .Od(2, 0.3)
                  .Od(3, 0.3)
                  .Key({{2, "K1-K4"}, {4, "D3,D4"}})              // Key 1
                  .Key({{1, "C1-C4"}, {3, "C1-C4"}})              // Key 2
                  .Key({{5, "C1,C2"}, {4, "D3,D4"}, {2, "K1,K2"}})  // Key 3
                  .Window(window)
                  .OdThreshold(0.65)
                  .DescThreshold(0.3)
                  .Mode(core::CombineMode::kOdOnly)
                  .Build();
  if (!disc.ok()) return disc.status();

  core::Config config;
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(track_title).value()));
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(disc).value()));
  return config;
}

util::Result<core::Config> Ds3Config(size_t window) {
  auto dtitle = core::CandidateBuilder("dtitle", "freedb/disc/dtitle")
                    .Path(1, "text()")
                    .Od(1, 1.0)
                    .Key({{1, "C1-C6"}})
                    .ExactOdPrepass(true)
                    .Window(10)
                    .OdThreshold(0.8)
                    .Build();
  if (!dtitle.ok()) return dtitle.status();

  auto artist = core::CandidateBuilder("artist", "freedb/disc/artist")
                    .Path(1, "text()")
                    .Od(1, 1.0)
                    .Key({{1, "C1-C6"}})
                    .ExactOdPrepass(true)
                    .Window(10)
                    .OdThreshold(0.8)
                    .Build();
  if (!artist.ok()) return artist.status();

  auto track_title =
      core::CandidateBuilder("track_title", "freedb/disc/tracks/title")
          .Path(1, "text()")
          .Od(1, 1.0)
          .Key({{1, "C1-C6"}})
          .ExactOdPrepass(true)
          .Window(10)
          .OdThreshold(0.8)
          .Build();
  if (!track_title.ok()) return track_title.status();

  auto disc = core::CandidateBuilder("disc", "freedb/disc")
                  .Path(1, "did/text()")
                  .Path(2, "artist[1]/text()")
                  .Path(3, "dtitle[1]/text()")
                  .Od(1, 0.4)
                  .Od(2, 0.3)
                  .Od(3, 0.3)
                  .Key({{3, "K1-K6"}, {2, "K1-K4"}})  // Key 1
                  .Key({{1, "C1-C4"}, {3, "C1-C4"}})  // Key 2
                  .Window(window)
                  .OdThreshold(0.7)
                  .DescThreshold(0.3)
                  .Mode(core::CombineMode::kDescGate)
                  .Build();
  if (!disc.ok()) return disc.status();

  core::Config config;
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(dtitle).value()));
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(artist).value()));
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(track_title).value()));
  SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(disc).value()));
  return config;
}

}  // namespace sxnm::datagen
