// Structural identity of XML subtrees.
//
// Two subtrees are *structurally identical* when they have the same shape
// and content: equal element names, equal attribute lists (names and
// values, in document order), equal text/CDATA/comment payloads, and
// pairwise structurally identical children in the same order. Element IDs
// and parent links are ignored — identity is a property of the subtree
// alone, so a clone is always structurally identical to its original.
//
// This is the reference relation the SubtreePool hash-consing
// (sxnm/subtree_pool.h) must agree with: equal SubtreeRef ids if and only
// if StructurallyEqual. The differential tests and the fuzz_subtree_hash
// target check exactly that equivalence.

#ifndef SXNM_XML_STRUCTURE_H_
#define SXNM_XML_STRUCTURE_H_

#include "xml/node.h"

namespace sxnm::xml {

/// True iff the two subtrees are structurally identical. Iterative (no
/// recursion), so arbitrarily deep documents are safe.
bool StructurallyEqual(const Element& a, const Element& b);

}  // namespace sxnm::xml

#endif  // SXNM_XML_STRUCTURE_H_
