// In-memory XML document model (DOM) for SXNM.
//
// The model is deliberately small but complete for the paper's needs:
// elements with attributes, text nodes, comments and CDATA sections, with
// parent links and stable document-order element IDs. Element IDs are the
// `eid` of the paper's GK relation (Sec. 3.3): the position of the element
// in the data source.

#ifndef SXNM_XML_NODE_H_
#define SXNM_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sxnm::xml {

class Element;

/// Stable identifier of an element within its document: the element's
/// 0-based position in pre-order (document order). -1 until assigned.
using ElementId = int64_t;
inline constexpr ElementId kInvalidElementId = -1;

enum class NodeKind {
  kElement,
  kText,
  kCdata,    // behaves like text, serialized as <![CDATA[...]]>
  kComment,  // preserved for faithful round-tripping
};

/// Base class of all DOM nodes. Nodes are owned by their parent element
/// (or by the Document for the root) via unique_ptr; raw pointers returned
/// by accessors are non-owning and valid while the owner lives.
class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  bool IsElement() const { return kind_ == NodeKind::kElement; }
  bool IsText() const {
    return kind_ == NodeKind::kText || kind_ == NodeKind::kCdata;
  }

  /// Parent element; nullptr for the document root element.
  Element* parent() const { return parent_; }

  /// Downcasts; return nullptr when the node is of a different kind.
  Element* AsElement();
  const Element* AsElement() const;

 protected:
  explicit Node(NodeKind kind) : kind_(kind) {}

 private:
  friend class Element;
  friend class Document;
  NodeKind kind_;
  Element* parent_ = nullptr;
};

/// A text (or CDATA) node.
class TextNode : public Node {
 public:
  explicit TextNode(std::string text, bool cdata = false)
      : Node(cdata ? NodeKind::kCdata : NodeKind::kText),
        text_(std::move(text)) {}

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

 private:
  std::string text_;
};

/// A comment node (content between <!-- and -->).
class CommentNode : public Node {
 public:
  explicit CommentNode(std::string text)
      : Node(NodeKind::kComment), text_(std::move(text)) {}

  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

/// A name="value" attribute. Order of attributes is preserved.
struct Attribute {
  std::string name;
  std::string value;
};

/// An XML element: name, ordered attributes, ordered children.
class Element : public Node {
 public:
  explicit Element(std::string name)
      : Node(NodeKind::kElement), name_(std::move(name)) {}

  /// Iterative teardown: deeply nested documents (bounded only by
  /// ParseOptions::max_depth) must not recurse ~unique_ptr chains.
  ~Element() override;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  ElementId id() const { return id_; }

  // --- Attributes ---------------------------------------------------------

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// Returns the attribute value or `fallback` if absent.
  std::string AttributeOr(std::string_view name, std::string fallback) const;

  bool HasAttribute(std::string_view name) const {
    return FindAttribute(name) != nullptr;
  }

  /// Sets (replacing if present) an attribute.
  void SetAttribute(std::string_view name, std::string_view value);

  /// Removes the attribute if present; returns true when it existed.
  bool RemoveAttribute(std::string_view name);

  // --- Children ------------------------------------------------------------

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t NumChildren() const { return children_.size(); }

  /// Appends a child node and takes ownership; returns a non-owning pointer.
  Node* AddChild(std::unique_ptr<Node> child);

  /// Convenience: appends a child element with `name` and returns it.
  Element* AddElement(std::string name);

  /// Convenience: appends a text node.
  TextNode* AddText(std::string text);

  /// Removes (and destroys) the child at `index`; index must be valid.
  void RemoveChild(size_t index);

  /// Releases ownership of the child at `index` (it keeps its subtree but
  /// its parent pointer is cleared). Used by the dirty-data generator to
  /// move subtrees around.
  std::unique_ptr<Node> TakeChild(size_t index);

  /// Child elements, in document order, optionally filtered by name.
  std::vector<Element*> ChildElements();
  std::vector<const Element*> ChildElements() const;
  std::vector<Element*> ChildElements(std::string_view name);
  std::vector<const Element*> ChildElements(std::string_view name) const;

  /// First child element with the given name, or nullptr.
  Element* FirstChildElement(std::string_view name);
  const Element* FirstChildElement(std::string_view name) const;

  /// Concatenation of the direct text/CDATA children, whitespace-normalized.
  /// <title>The  Matrix</title> -> "The Matrix".
  std::string DirectText() const;

  /// Concatenation of all descendant text, whitespace-normalized.
  std::string DeepText() const;

  /// Recursively clones this element (children, attributes; IDs are reset
  /// to kInvalidElementId in the clone).
  std::unique_ptr<Element> Clone() const;

  /// Number of elements in this subtree including this element.
  size_t SubtreeElementCount() const;

 private:
  friend class Document;
  std::string name_;
  ElementId id_ = kInvalidElementId;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// An XML document: optional declaration plus exactly one root element.
class Document {
 public:
  Document() = default;

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// The root element; nullptr for an empty (default-constructed) document.
  Element* root() { return root_.get(); }
  const Element* root() const { return root_.get(); }

  /// Installs a root element (replacing any existing one) and assigns IDs.
  Element* SetRoot(std::unique_ptr<Element> root);

  /// Re-assigns document-order element IDs over the whole tree. Must be
  /// called after structural mutation if IDs are subsequently used.
  /// Returns the number of elements.
  size_t AssignElementIds();

  /// Elements indexed by ID after AssignElementIds(); element_count() slots.
  size_t element_count() const { return elements_by_id_.size(); }

  /// Element for an ID assigned by AssignElementIds(); nullptr if out of
  /// range.
  Element* ElementById(ElementId id);
  const Element* ElementById(ElementId id) const;

  /// Deep copy of the whole document (IDs re-assigned in the copy).
  Document Clone() const;

  /// Standalone XML declaration flags captured by the parser.
  const std::string& version() const { return version_; }
  const std::string& encoding() const { return encoding_; }
  void set_declaration(std::string version, std::string encoding) {
    version_ = std::move(version);
    encoding_ = std::move(encoding);
  }

 private:
  std::unique_ptr<Element> root_;
  std::vector<Element*> elements_by_id_;
  std::string version_;
  std::string encoding_;
};

}  // namespace sxnm::xml

#endif  // SXNM_XML_NODE_H_
