#include "xml/structure.h"

#include <vector>

namespace sxnm::xml {

namespace {

// Local (non-recursive) equality of two nodes: kind plus own payload,
// child count included so the worklist below can pair children 1:1.
bool LocallyEqual(const Node& a, const Node& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case NodeKind::kElement: {
      const auto& ea = static_cast<const Element&>(a);
      const auto& eb = static_cast<const Element&>(b);
      if (ea.name() != eb.name()) return false;
      if (ea.NumChildren() != eb.NumChildren()) return false;
      const auto& attrs_a = ea.attributes();
      const auto& attrs_b = eb.attributes();
      if (attrs_a.size() != attrs_b.size()) return false;
      for (size_t i = 0; i < attrs_a.size(); ++i) {
        if (attrs_a[i].name != attrs_b[i].name ||
            attrs_a[i].value != attrs_b[i].value) {
          return false;
        }
      }
      return true;
    }
    case NodeKind::kText:
    case NodeKind::kCdata:
      return static_cast<const TextNode&>(a).text() ==
             static_cast<const TextNode&>(b).text();
    case NodeKind::kComment:
      return static_cast<const CommentNode&>(a).text() ==
             static_cast<const CommentNode&>(b).text();
  }
  return false;
}

}  // namespace

bool StructurallyEqual(const Element& a, const Element& b) {
  std::vector<std::pair<const Node*, const Node*>> work;
  work.emplace_back(&a, &b);
  while (!work.empty()) {
    auto [na, nb] = work.back();
    work.pop_back();
    if (na == nb) continue;  // shared node: trivially identical
    if (!LocallyEqual(*na, *nb)) return false;
    if (const Element* ea = na->AsElement()) {
      const Element* eb = nb->AsElement();
      for (size_t i = 0; i < ea->NumChildren(); ++i) {
        work.emplace_back(ea->children()[i].get(), eb->children()[i].get());
      }
    }
  }
  return true;
}

}  // namespace sxnm::xml
