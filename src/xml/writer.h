// XML serialization: Document / Element back to text, with optional
// pretty-printing. Inverse of xml::Parse for the supported subset
// (whitespace-only text nodes excepted when pretty-printing).

#ifndef SXNM_XML_WRITER_H_
#define SXNM_XML_WRITER_H_

#include <string>

#include "xml/node.h"

namespace sxnm::xml {

struct WriteOptions {
  /// Pretty-print with this many spaces per nesting level; 0 writes the
  /// document on a single line with no inter-element whitespace.
  int indent = 2;

  /// Emit an <?xml version="1.0" encoding="UTF-8"?> declaration.
  bool declaration = true;
};

/// Escapes `s` for use as XML character data (&, <, >).
std::string EscapeText(std::string_view s);

/// Escapes `s` for use inside a double-quoted attribute value
/// (&, <, >, ").
std::string EscapeAttribute(std::string_view s);

/// Serializes a subtree rooted at `element`.
std::string WriteElement(const Element& element, const WriteOptions& options = {});

/// Serializes a whole document.
std::string WriteDocument(const Document& doc, const WriteOptions& options = {});

/// Writes the serialized document to a file. Returns false on I/O error.
bool WriteDocumentToFile(const Document& doc, const std::string& path,
                         const WriteOptions& options = {});

}  // namespace sxnm::xml

#endif  // SXNM_XML_WRITER_H_
