#include "xml/parser.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace sxnm::xml {

namespace {

using util::Result;
using util::Status;
using util::StatusCode;

bool IsNameStartChar(char c) {
  return util::IsAsciiAlpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || util::IsAsciiDigit(c) || c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options, bool recover,
         std::vector<Diagnostic>* diagnostics)
      : input_(input),
        options_(options),
        recover_(recover),
        diagnostics_(diagnostics) {}

  Result<Document> Run() {
    if (options_.max_input_bytes != 0 &&
        input_.size() > options_.max_input_bytes) {
      return LimitError("input of " + std::to_string(input_.size()) +
                        " bytes exceeds max_input_bytes=" +
                        std::to_string(options_.max_input_bytes));
    }

    Document doc;
    SkipProlog(doc);

    for (;;) {
      if (AtEnd()) return Error("document has no root element");
      if (Peek() != '<') {
        if (!recover_) return Error("expected '<' at document start");
        SXNM_RETURN_IF_ERROR(
            Report(StatusCode::kParseError,
                   "unexpected content before root element"));
        while (!AtEnd() && Peek() != '<') Advance();
        SkipMisc();
        continue;
      }
      auto root = ParseTree();
      if (root.ok()) {
        doc.SetRoot(std::move(root).value());
        break;
      }
      // ParseTree recovers internally; an error here is a hard limit, the
      // diagnostics cap, or (in recovering mode) a malformed root start
      // tag worth retrying past.
      if (!recover_ || IsHard(root.status())) return root.status();
      SXNM_RETURN_IF_ERROR(Report(root.status()));
      SkipMalformedTag();
      SkipMisc();
    }

    // Trailing misc: whitespace, comments, PIs.
    SkipMisc();
    if (!AtEnd()) {
      if (!recover_) return Error("content after root element");
      SXNM_RETURN_IF_ERROR(Report(StatusCode::kParseError,
                                  "content after root element ignored"));
    }
    return doc;
  }

 private:
  // --- Character-level helpers -------------------------------------------

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < input_.size() ? input_[i] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && util::IsAsciiSpace(Peek())) Advance();
  }

  std::string PosSuffix() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " at line %zu, column %zu", line_,
                  column_);
    return buf;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + PosSuffix());
  }

  /// Hard resource-limit violation; never recovered from.
  Status LimitError(const std::string& message) const {
    return Status::ResourceExhausted(message + PosSuffix());
  }

  static bool IsHard(const Status& status) {
    return status.code() == StatusCode::kResourceExhausted;
  }

  /// Records a diagnostic at the current position. Fails (hard) once the
  /// diagnostics cap is reached — a document drowning in errors is
  /// rejected rather than scanned to the end.
  Status Report(StatusCode code, std::string message) {
    if (diagnostics_->size() >= options_.max_diagnostics) {
      return LimitError("too many parse diagnostics (max_diagnostics=" +
                        std::to_string(options_.max_diagnostics) + ")");
    }
    diagnostics_->push_back({line_, column_, code, std::move(message)});
    return Status::Ok();
  }

  Status Report(const Status& failure) {
    return Report(failure.code(), failure.message());
  }

  /// Counts one DOM node against max_nodes. Also the "xml.node"
  /// fault-injection site used by chaos tests.
  Status CountNode() {
    if (util::FaultInjector::Instance().ShouldFail("xml.node")) {
      return Status::ResourceExhausted(
          "injected fault: xml.node allocation " +
          std::to_string(nodes_created_ + 1) + PosSuffix());
    }
    ++nodes_created_;
    if (options_.max_nodes != 0 && nodes_created_ > options_.max_nodes) {
      return LimitError("node limit exceeded (max_nodes=" +
                        std::to_string(options_.max_nodes) + ")");
    }
    return Status::Ok();
  }

  Status CheckDepth(size_t depth) const {
    if (options_.max_depth != 0 && depth > options_.max_depth) {
      return LimitError("element nesting exceeds max_depth=" +
                        std::to_string(options_.max_depth));
    }
    return Status::Ok();
  }

  // --- Recovery resynchronization ----------------------------------------

  /// Skips the remainder of a malformed tag: everything up to and
  /// including the next '>', stopping early at a '<' (the next construct).
  void SkipMalformedTag() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == '>') {
        Advance();
        return;
      }
      if (c == '<') return;
      Advance();
    }
  }

  /// True when `name` occurs at byte offset `at` followed by a non-name
  /// character (so "<movie" does not match "<movies").
  bool MatchesNameAt(size_t at, const std::string& name) const {
    if (input_.compare(at, name.size(), name) != 0) return false;
    size_t after = at + name.size();
    return after >= input_.size() || !IsNameChar(input_[after]);
  }

  /// Textually skips the subtree of an element named `name` whose start
  /// tag was malformed: scans forward balancing <name>/</name> pairs
  /// until the matching end tag closes (or input ends). Self-closing
  /// occurrences do not change the balance. This is the
  /// next-sibling resynchronization point of recovering mode.
  void SkipSubtree(const std::string& name) {
    size_t depth = 1;
    while (!AtEnd()) {
      if (Peek() != '<') {
        Advance();
        continue;
      }
      if (PeekAt(1) == '/' && MatchesNameAt(pos_ + 2, name)) {
        while (!AtEnd() && Peek() != '>') Advance();
        if (!AtEnd()) Advance();
        if (--depth == 0) return;
        continue;
      }
      if (MatchesNameAt(pos_ + 1, name)) {
        // A nested same-name start tag; self-closing ones don't nest.
        size_t scan = pos_ + 1 + name.size();
        while (scan < input_.size() && input_[scan] != '>' &&
               input_[scan] != '<') {
          ++scan;
        }
        bool self_closing =
            scan < input_.size() && input_[scan] == '>' && scan > pos_ &&
            input_[scan - 1] == '/';
        if (!self_closing) ++depth;
      }
      Advance();
    }
  }

  // --- Prolog / misc -------------------------------------------------------

  void SkipProlog(Document& doc) {
    SkipWhitespace();
    // Optional XML declaration.
    if (input_.substr(pos_, 5) == "<?xml" &&
        (util::IsAsciiSpace(PeekAt(5)) || PeekAt(5) == '?')) {
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) {
        // Malformed declaration; leave it for the element parser to report.
        return;
      }
      std::string decl(input_.substr(pos_, end - pos_));
      doc.set_declaration(ExtractPseudoAttr(decl, "version"),
                          ExtractPseudoAttr(decl, "encoding"));
      while (pos_ <= end + 1) Advance();
      SkipWhitespace();
    }
    SkipMisc();
  }

  static std::string ExtractPseudoAttr(const std::string& decl,
                                       std::string_view name) {
    size_t at = decl.find(name);
    if (at == std::string::npos) return "";
    size_t eq = decl.find('=', at);
    if (eq == std::string::npos) return "";
    size_t q1 = decl.find_first_of("\"'", eq);
    if (q1 == std::string::npos) return "";
    size_t q2 = decl.find(decl[q1], q1 + 1);
    if (q2 == std::string::npos) return "";
    return decl.substr(q1 + 1, q2 - q1 - 1);
  }

  // Skips whitespace, comments, PIs, and DOCTYPE between top-level items.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (input_.substr(pos_, 4) == "<!--") {
        size_t end = input_.find("-->", pos_ + 4);
        size_t stop = (end == std::string_view::npos) ? input_.size() : end + 3;
        while (pos_ < stop) Advance();
      } else if (input_.substr(pos_, 2) == "<?") {
        size_t end = input_.find("?>", pos_ + 2);
        size_t stop = (end == std::string_view::npos) ? input_.size() : end + 2;
        while (pos_ < stop) Advance();
      } else if (input_.substr(pos_, 9) == "<!DOCTYPE") {
        // Skip to the matching '>' accounting for an optional internal
        // subset in brackets.
        int depth = 0;
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  // --- Names, references, attributes --------------------------------------

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  // Decodes one entity/character reference after the '&' was consumed.
  Result<std::string> ParseReference() {
    size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 10) {
      return Error("unterminated entity reference");
    }
    std::string name(input_.substr(pos_, semi - pos_));
    while (pos_ <= semi) Advance();

    if (name == "amp") return std::string("&");
    if (name == "lt") return std::string("<");
    if (name == "gt") return std::string(">");
    if (name == "apos") return std::string("'");
    if (name == "quot") return std::string("\"");
    if (!name.empty() && name[0] == '#') {
      long code = -1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        code = 0;
        for (size_t i = 2; i < name.size(); ++i) {
          char c = util::AsciiToLower(name[i]);
          int digit;
          if (util::IsAsciiDigit(c)) {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else {
            return Error("malformed hex character reference");
          }
          code = code * 16 + digit;
          if (code > 0x10FFFF) break;
        }
      } else {
        int parsed = util::ParseNonNegativeInt(
            std::string_view(name).substr(1));
        if (parsed < 0) return Error("malformed character reference");
        code = parsed;
      }
      if (code <= 0 || code > 0x10FFFF) {
        return Error("character reference out of range");
      }
      return EncodeUtf8(static_cast<uint32_t>(code));
    }
    return Error("unknown entity '&" + name + ";'");
  }

  static std::string EncodeUtf8(uint32_t cp) {
    std::string out;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return out;
  }

  Result<Attribute> ParseAttribute() {
    auto name = ParseName();
    if (!name.ok()) return name.status();
    SkipWhitespace();
    if (!Consume('=')) return Error("expected '=' after attribute name");
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Peek();
      if (c == '<') return Error("'<' not allowed in attribute value");
      if (c == '&') {
        Advance();
        auto ref = ParseReference();
        if (!ref.ok()) return ref.status();
        value += ref.value();
      } else {
        value.push_back(c);
        Advance();
      }
    }
    if (!Consume(quote)) return Error("unterminated attribute value");
    return Attribute{std::move(name).value(), std::move(value)};
  }

  // --- Start tags -----------------------------------------------------------

  struct StartTag {
    std::unique_ptr<Element> element;
    bool self_closing = false;
  };

  /// Parses "<name attr=... (/)>" from the leading '<'. On failure
  /// `name_out` still holds the element name if one was parsed — recovery
  /// uses it to skip the whole subtree.
  Result<StartTag> ParseStartTag(std::string* name_out) {
    if (!Consume('<')) return Error("expected '<'");
    auto name = ParseName();
    if (!name.ok()) return name.status();
    if (name_out != nullptr) *name_out = name.value();
    SXNM_RETURN_IF_ERROR(CountNode());
    auto element = std::make_unique<Element>(std::move(name).value());

    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      char c = Peek();
      if (c == '>' || c == '/') break;
      auto attr = ParseAttribute();
      if (!attr.ok()) return attr.status();
      if (element->HasAttribute(attr->name)) {
        return Error("duplicate attribute '" + attr->name + "'");
      }
      if (options_.max_attr_count != 0 &&
          element->attributes().size() >= options_.max_attr_count) {
        return LimitError("attribute count on <" + element->name() +
                          "> exceeds max_attr_count=" +
                          std::to_string(options_.max_attr_count));
      }
      element->SetAttribute(attr->name, attr->value);
    }

    StartTag out;
    if (Consume('/')) {
      if (!Consume('>')) return Error("expected '>' after '/'");
      out.self_closing = true;
    } else if (!Consume('>')) {
      return Error("expected '>' to close start tag");
    }
    out.element = std::move(element);
    return out;
  }

  // --- The iterative element-tree parser -----------------------------------

  /// Parses one element subtree starting at '<'. Maintains an explicit
  /// open-element stack — nesting depth never consumes machine stack. In
  /// recovering mode, malformed constructs inside the tree are reported
  /// and skipped; an error return is then either a malformed *root* start
  /// tag (the caller resynchronizes and retries) or a hard limit.
  Result<std::unique_ptr<Element>> ParseTree() {
    auto root_tag = ParseStartTag(nullptr);
    if (!root_tag.ok()) return root_tag.status();
    std::unique_ptr<Element> root = std::move(root_tag->element);
    if (root_tag->self_closing) return root;

    std::vector<Element*> open = {root.get()};
    SXNM_RETURN_IF_ERROR(CheckDepth(open.size()));
    std::string text;

    // Flushes accumulated character data into the innermost open element.
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::Ok();
      if (!options_.skip_whitespace_text || !util::TrimView(text).empty()) {
        SXNM_RETURN_IF_ERROR(CountNode());
        open.back()->AddChild(std::make_unique<TextNode>(text));
      }
      text.clear();
      return Status::Ok();
    };

    while (!open.empty()) {
      if (AtEnd()) {
        if (!recover_) {
          return Error("unterminated element <" + open.back()->name() + ">");
        }
        SXNM_RETURN_IF_ERROR(flush_text());
        for (auto it = open.rbegin(); it != open.rend(); ++it) {
          SXNM_RETURN_IF_ERROR(
              Report(StatusCode::kParseError, "unterminated element <" +
                                                  (*it)->name() +
                                                  ">, closed at end of input"));
        }
        open.clear();
        return root;
      }

      char c = Peek();
      if (c != '<') {
        if (c == '&') {
          Advance();
          auto ref = ParseReference();
          if (ref.ok()) {
            text += ref.value();
          } else if (!recover_) {
            return ref.status();
          } else {
            SXNM_RETURN_IF_ERROR(Report(ref.status()));
            text += '&';  // keep the raw ampersand as character data
          }
        } else {
          text.push_back(c);
          Advance();
        }
        continue;
      }

      // --- End tag ---------------------------------------------------------
      if (PeekAt(1) == '/') {
        SXNM_RETURN_IF_ERROR(flush_text());
        Advance();  // '<'
        Advance();  // '/'
        auto end_name = ParseName();
        if (!end_name.ok()) {
          if (!recover_) return end_name.status();
          SXNM_RETURN_IF_ERROR(Report(end_name.status()));
          SkipMalformedTag();
          continue;
        }
        SkipWhitespace();
        if (!Consume('>')) {
          if (!recover_) return Error("expected '>' in end tag");
          SXNM_RETURN_IF_ERROR(
              Report(StatusCode::kParseError, "expected '>' in end tag"));
          SkipMalformedTag();
        }
        if (end_name.value() == open.back()->name()) {
          open.pop_back();
          if (open.empty()) return root;
          continue;
        }
        if (!recover_) {
          return Error("mismatched end tag </" + end_name.value() +
                       ">, expected </" + open.back()->name() + ">");
        }
        // Recovering: an end tag matching an outer open element implicitly
        // closes everything inside it; a match-nothing end tag is stray.
        size_t match = open.size();
        for (size_t i = open.size(); i-- > 0;) {
          if (open[i]->name() == end_name.value()) {
            match = i;
            break;
          }
        }
        if (match == open.size()) {
          SXNM_RETURN_IF_ERROR(
              Report(StatusCode::kParseError,
                     "stray end tag </" + end_name.value() + ">"));
          continue;
        }
        while (open.size() > match) {
          if (open.size() > match + 1) {
            SXNM_RETURN_IF_ERROR(Report(
                StatusCode::kParseError,
                "unterminated element <" + open.back()->name() +
                    ">, implicitly closed by </" + end_name.value() + ">"));
          }
          open.pop_back();
        }
        if (open.empty()) return root;
        continue;
      }

      // --- Comments, CDATA, processing instructions ------------------------
      if (input_.substr(pos_, 4) == "<!--") {
        SXNM_RETURN_IF_ERROR(flush_text());
        size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          if (!recover_) return Error("unterminated comment");
          SXNM_RETURN_IF_ERROR(
              Report(StatusCode::kParseError, "unterminated comment"));
          while (!AtEnd()) Advance();
          continue;
        }
        if (options_.keep_comments) {
          SXNM_RETURN_IF_ERROR(CountNode());
          open.back()->AddChild(std::make_unique<CommentNode>(
              std::string(input_.substr(pos_ + 4, end - pos_ - 4))));
        }
        while (pos_ < end + 3) Advance();
        continue;
      }
      if (input_.substr(pos_, 9) == "<![CDATA[") {
        SXNM_RETURN_IF_ERROR(flush_text());
        size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          if (!recover_) return Error("unterminated CDATA section");
          SXNM_RETURN_IF_ERROR(
              Report(StatusCode::kParseError, "unterminated CDATA section"));
          while (!AtEnd()) Advance();
          continue;
        }
        SXNM_RETURN_IF_ERROR(CountNode());
        open.back()->AddChild(std::make_unique<TextNode>(
            std::string(input_.substr(pos_ + 9, end - pos_ - 9)),
            /*cdata=*/true));
        while (pos_ < end + 3) Advance();
        continue;
      }
      if (PeekAt(1) == '?') {
        SXNM_RETURN_IF_ERROR(flush_text());
        size_t end = input_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) {
          if (!recover_) return Error("unterminated processing instruction");
          SXNM_RETURN_IF_ERROR(Report(StatusCode::kParseError,
                                      "unterminated processing instruction"));
          while (!AtEnd()) Advance();
          continue;
        }
        while (pos_ < end + 2) Advance();
        continue;
      }

      // --- Child start tag -------------------------------------------------
      SXNM_RETURN_IF_ERROR(flush_text());
      std::string child_name;
      auto child = ParseStartTag(&child_name);
      if (!child.ok()) {
        if (!recover_ || IsHard(child.status())) return child.status();
        SXNM_RETURN_IF_ERROR(Report(child.status()));
        SkipMalformedTag();
        // If the element's name is known, drop its whole subtree and
        // resynchronize at the next sibling.
        if (!child_name.empty()) SkipSubtree(child_name);
        continue;
      }
      Element* raw = child->element.get();
      open.back()->AddChild(std::move(child->element));
      if (!child->self_closing) {
        open.push_back(raw);
        SXNM_RETURN_IF_ERROR(CheckDepth(open.size()));
      }
    }
    return root;
  }

  std::string_view input_;
  ParseOptions options_;
  bool recover_ = false;
  std::vector<Diagnostic>* diagnostics_;  // null in strict mode
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
  size_t nodes_created_ = 0;
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::string out = "line " + std::to_string(line) + ", column " +
                    std::to_string(column) + ": ";
  out += util::StatusCodeName(code);
  out += ": ";
  out += message;
  return out;
}

util::Result<Document> Parse(std::string_view input,
                             const ParseOptions& options) {
  return Parser(input, options, /*recover=*/false, nullptr).Run();
}

util::Result<RecoveredParse> ParseRecovering(std::string_view input,
                                             const ParseOptions& options) {
  RecoveredParse out;
  auto doc = Parser(input, options, /*recover=*/true, &out.diagnostics).Run();
  if (!doc.ok()) return doc.status();
  out.doc = std::move(doc).value();
  return out;
}

util::Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open file: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return util::Status::Internal("error reading file: " + path);
  }
  return data;
}

util::Result<Document> ParseFile(const std::string& path,
                                 const ParseOptions& options) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  return Parse(data.value(), options);
}

util::Result<RecoveredParse> ParseFileRecovering(const std::string& path,
                                                 const ParseOptions& options) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  return ParseRecovering(data.value(), options);
}

}  // namespace sxnm::xml
