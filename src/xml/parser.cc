#include "xml/parser.h"

#include <cstdio>
#include <memory>

#include "util/string_util.h"

namespace sxnm::xml {

namespace {

using util::Result;
using util::Status;

bool IsNameStartChar(char c) {
  return util::IsAsciiAlpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || util::IsAsciiDigit(c) || c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> Run() {
    Document doc;
    SkipProlog(doc);

    if (AtEnd()) return Error("document has no root element");
    if (Peek() != '<') return Error("expected '<' at document start");

    auto root = ParseElement();
    if (!root.ok()) return root.status();
    doc.SetRoot(std::move(root).value());

    // Trailing misc: whitespace, comments, PIs.
    SkipMisc();
    if (!AtEnd()) return Error("content after root element");
    return doc;
  }

 private:
  // --- Character-level helpers -------------------------------------------

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < input_.size() ? input_[i] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (input_.substr(pos_, literal.size()) != literal) return false;
    for (size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && util::IsAsciiSpace(Peek())) Advance();
  }

  Status Error(const std::string& message) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " at line %zu, column %zu", line_,
                  column_);
    return Status::ParseError(message + buf);
  }

  // --- Prolog / misc -------------------------------------------------------

  void SkipProlog(Document& doc) {
    SkipWhitespace();
    // Optional XML declaration.
    if (input_.substr(pos_, 5) == "<?xml" &&
        (util::IsAsciiSpace(PeekAt(5)) || PeekAt(5) == '?')) {
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) {
        // Malformed declaration; leave it for ParseElement to report.
        return;
      }
      std::string decl(input_.substr(pos_, end - pos_));
      doc.set_declaration(ExtractPseudoAttr(decl, "version"),
                          ExtractPseudoAttr(decl, "encoding"));
      while (pos_ <= end + 1) Advance();
      SkipWhitespace();
    }
    SkipMisc();
  }

  static std::string ExtractPseudoAttr(const std::string& decl,
                                       std::string_view name) {
    size_t at = decl.find(name);
    if (at == std::string::npos) return "";
    size_t eq = decl.find('=', at);
    if (eq == std::string::npos) return "";
    size_t q1 = decl.find_first_of("\"'", eq);
    if (q1 == std::string::npos) return "";
    size_t q2 = decl.find(decl[q1], q1 + 1);
    if (q2 == std::string::npos) return "";
    return decl.substr(q1 + 1, q2 - q1 - 1);
  }

  // Skips whitespace, comments, PIs, and DOCTYPE between top-level items.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (input_.substr(pos_, 4) == "<!--") {
        size_t end = input_.find("-->", pos_ + 4);
        size_t stop = (end == std::string_view::npos) ? input_.size() : end + 3;
        while (pos_ < stop) Advance();
      } else if (input_.substr(pos_, 2) == "<?") {
        size_t end = input_.find("?>", pos_ + 2);
        size_t stop = (end == std::string_view::npos) ? input_.size() : end + 2;
        while (pos_ < stop) Advance();
      } else if (input_.substr(pos_, 9) == "<!DOCTYPE") {
        // Skip to the matching '>' accounting for an optional internal
        // subset in brackets.
        int depth = 0;
        while (!AtEnd()) {
          char c = Peek();
          Advance();
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth <= 0) break;
        }
      } else {
        return;
      }
    }
  }

  // --- Names, references, attributes --------------------------------------

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  // Decodes one entity/character reference after the '&' was consumed.
  Result<std::string> ParseReference() {
    size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 10) {
      return Error("unterminated entity reference");
    }
    std::string name(input_.substr(pos_, semi - pos_));
    while (pos_ <= semi) Advance();

    if (name == "amp") return std::string("&");
    if (name == "lt") return std::string("<");
    if (name == "gt") return std::string(">");
    if (name == "apos") return std::string("'");
    if (name == "quot") return std::string("\"");
    if (!name.empty() && name[0] == '#') {
      long code = -1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        code = 0;
        for (size_t i = 2; i < name.size(); ++i) {
          char c = util::AsciiToLower(name[i]);
          int digit;
          if (util::IsAsciiDigit(c)) {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else {
            return Error("malformed hex character reference");
          }
          code = code * 16 + digit;
          if (code > 0x10FFFF) break;
        }
      } else {
        int parsed = util::ParseNonNegativeInt(
            std::string_view(name).substr(1));
        if (parsed < 0) return Error("malformed character reference");
        code = parsed;
      }
      if (code <= 0 || code > 0x10FFFF) {
        return Error("character reference out of range");
      }
      return EncodeUtf8(static_cast<uint32_t>(code));
    }
    return Error("unknown entity '&" + name + ";'");
  }

  static std::string EncodeUtf8(uint32_t cp) {
    std::string out;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return out;
  }

  Result<Attribute> ParseAttribute() {
    auto name = ParseName();
    if (!name.ok()) return name.status();
    SkipWhitespace();
    if (!Consume('=')) return Error("expected '=' after attribute name");
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Peek();
      if (c == '<') return Error("'<' not allowed in attribute value");
      if (c == '&') {
        Advance();
        auto ref = ParseReference();
        if (!ref.ok()) return ref.status();
        value += ref.value();
      } else {
        value.push_back(c);
        Advance();
      }
    }
    if (!Consume(quote)) return Error("unterminated attribute value");
    return Attribute{std::move(name).value(), std::move(value)};
  }

  // --- Elements and content ------------------------------------------------

  Result<std::unique_ptr<Element>> ParseElement() {
    if (!Consume('<')) return Error("expected '<'");
    auto name = ParseName();
    if (!name.ok()) return name.status();
    auto element = std::make_unique<Element>(std::move(name).value());

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      char c = Peek();
      if (c == '>' || c == '/') break;
      auto attr = ParseAttribute();
      if (!attr.ok()) return attr.status();
      if (element->HasAttribute(attr->name)) {
        return Error("duplicate attribute '" + attr->name + "'");
      }
      element->SetAttribute(attr->name, attr->value);
    }

    if (Consume('/')) {
      if (!Consume('>')) return Error("expected '>' after '/'");
      return element;  // empty-element tag
    }
    if (!Consume('>')) return Error("expected '>' to close start tag");

    SXNM_RETURN_IF_ERROR(ParseContent(element.get()));

    // End tag: "</name>" — '<' and '/' already consumed by ParseContent.
    auto end_name = ParseName();
    if (!end_name.ok()) return end_name.status();
    if (end_name.value() != element->name()) {
      return Error("mismatched end tag </" + end_name.value() +
                   ">, expected </" + element->name() + ">");
    }
    SkipWhitespace();
    if (!Consume('>')) return Error("expected '>' in end tag");
    return element;
  }

  // Parses children of `parent` until the matching end tag's "</" was
  // consumed.
  Status ParseContent(Element* parent) {
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (!options_.skip_whitespace_text ||
          !util::TrimView(text).empty()) {
        parent->AddChild(std::make_unique<TextNode>(text));
      }
      text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + parent->name() + ">");
      char c = Peek();
      if (c == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          Advance();  // '<'
          Advance();  // '/'
          return Status::Ok();
        }
        if (input_.substr(pos_, 4) == "<!--") {
          flush_text();
          size_t end = input_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) {
            return Error("unterminated comment");
          }
          if (options_.keep_comments) {
            parent->AddChild(std::make_unique<CommentNode>(
                std::string(input_.substr(pos_ + 4, end - pos_ - 4))));
          }
          while (pos_ < end + 3) Advance();
          continue;
        }
        if (input_.substr(pos_, 9) == "<![CDATA[") {
          flush_text();
          size_t end = input_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          parent->AddChild(std::make_unique<TextNode>(
              std::string(input_.substr(pos_ + 9, end - pos_ - 9)),
              /*cdata=*/true));
          while (pos_ < end + 3) Advance();
          continue;
        }
        if (PeekAt(1) == '?') {
          flush_text();
          size_t end = input_.find("?>", pos_ + 2);
          if (end == std::string_view::npos) {
            return Error("unterminated processing instruction");
          }
          while (pos_ < end + 2) Advance();
          continue;
        }
        flush_text();
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        parent->AddChild(std::move(child).value());
      } else if (c == '&') {
        Advance();
        auto ref = ParseReference();
        if (!ref.ok()) return ref.status();
        text += ref.value();
      } else {
        text.push_back(c);
        Advance();
      }
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

util::Result<Document> Parse(std::string_view input,
                             const ParseOptions& options) {
  return Parser(input, options).Run();
}

util::Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open file: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return util::Status::Internal("error reading file: " + path);
  }
  return data;
}

util::Result<Document> ParseFile(const std::string& path,
                                 const ParseOptions& options) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  return Parse(data.value(), options);
}

}  // namespace sxnm::xml
