// XPath-subset engine for SXNM configuration paths.
//
// The paper addresses XML data via two kinds of paths (Sec. 3.2):
//   * absolute candidate paths, e.g.  movie_database/movies/movie
//   * relative paths inside a candidate, e.g.  title/text(),
//     people/person[1]/text(), @year, tracks/title
//
// This module implements exactly that subset plus a few natural
// extensions:
//   step        := name | '*' | '@' name | 'text()'
//   predicate   := '[' positive-integer ']'        (1-based position)
//   path        := ['/'] step ('[' n ']')? ('/' step ('[' n ']')?)*
//   descendant  := '//' before a step selects descendants at any depth
//
// '@name' and 'text()' may only appear as the final step. A leading '/'
// is accepted and ignored (candidate paths in the paper are written
// without it). Paths are parsed once into an `XPath` and evaluated many
// times.

#ifndef SXNM_XML_XPATH_H_
#define SXNM_XML_XPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/node.h"

namespace sxnm::xml {

/// One location step of a parsed path.
struct XPathStep {
  enum class Axis {
    kChild,       // name            — child elements with this name
    kDescendant,  // //name          — descendant elements at any depth
    kAttribute,   // @name           — attribute of the context element
    kText,        // text()          — direct text content
  };

  Axis axis = Axis::kChild;
  std::string name;   // element or attribute name; "*" matches any element
  int position = 0;   // 1-based positional predicate; 0 = all matches

  bool operator==(const XPathStep&) const = default;
};

class XPath {
 public:
  /// A default-constructed XPath has no steps and selects the context
  /// element itself. Mainly useful as a placeholder before assignment
  /// from Parse().
  XPath() = default;

  /// Parses `path`. Fails with INVALID_ARGUMENT on malformed syntax,
  /// on '@'/'text()' in a non-final position, or on a zero/negative
  /// positional predicate.
  static util::Result<XPath> Parse(std::string_view path);

  const std::vector<XPathStep>& steps() const { return steps_; }

  /// True when the final step is @attr or text() (i.e. the path selects
  /// string values rather than elements).
  bool SelectsValue() const;

  /// Canonical string form (normalizes away a leading '/').
  std::string ToString() const;

  /// Evaluates against `context` and returns matching *elements* in
  /// document order. Fails when the path ends in @attr or text().
  util::Result<std::vector<const Element*>> SelectElements(
      const Element& context) const;
  util::Result<std::vector<Element*>> SelectElements(Element& context) const;

  /// Evaluates against `context` and returns the selected string values in
  /// document order:
  ///   * a final text() step yields the whitespace-normalized direct text
  ///     of each matched element,
  ///   * a final @attr step yields the attribute values of matched
  ///     elements that carry the attribute,
  ///   * a final element step yields each element's whitespace-normalized
  ///     deep text (convenient shorthand used by Tab. 3, where key paths
  ///     like `artist[1]/text()` and plain `genre/text()` both address
  ///     leaf content).
  std::vector<std::string> SelectValues(const Element& context) const;

  /// First selected value, or empty string when nothing matches.
  std::string SelectFirstValue(const Element& context) const;

  /// Evaluates an *absolute* path against a document root: the first step
  /// must match the root element itself (standard XPath semantics for
  /// `/a/b/c`). Returns matched elements.
  util::Result<std::vector<const Element*>> SelectFromRoot(
      const Document& doc) const;
  util::Result<std::vector<Element*>> SelectFromRoot(Document& doc) const;

  bool operator==(const XPath&) const = default;

 private:
  // Shared element-walk producing all element matches of the leading
  // element steps (i.e. excluding a final @attr/text() step).
  // `skip_first_as_root`: treat the first step as matching `start` itself.
  std::vector<const Element*> WalkElements(const Element& start,
                                           bool first_step_is_root) const;

  std::vector<XPathStep> steps_;
};

}  // namespace sxnm::xml

#endif  // SXNM_XML_XPATH_H_
