#include "xml/node.h"

#include <cassert>

#include "util/string_util.h"

namespace sxnm::xml {

Element* Node::AsElement() {
  return IsElement() ? static_cast<Element*>(this) : nullptr;
}

Element::~Element() {
  // Detach the subtree into a flat worklist before any child is
  // destroyed, so destruction never recurses element-per-stack-frame on
  // deeply nested documents.
  std::vector<std::unique_ptr<Node>> pending;
  pending.swap(children_);
  while (!pending.empty()) {
    std::unique_ptr<Node> node = std::move(pending.back());
    pending.pop_back();
    if (Element* e = node == nullptr ? nullptr : node->AsElement()) {
      for (auto& child : e->children_) pending.push_back(std::move(child));
      e->children_.clear();
    }
  }
}

const Element* Node::AsElement() const {
  return IsElement() ? static_cast<const Element*>(this) : nullptr;
}

const std::string* Element::FindAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

std::string Element::AttributeOr(std::string_view name,
                                 std::string fallback) const {
  const std::string* value = FindAttribute(name);
  return value != nullptr ? *value : std::move(fallback);
}

void Element::SetAttribute(std::string_view name, std::string_view value) {
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

bool Element::RemoveAttribute(std::string_view name) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) {
      attributes_.erase(attributes_.begin() + i);
      return true;
    }
  }
  return false;
}

Node* Element::AddChild(std::unique_ptr<Node> child) {
  assert(child != nullptr);
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Element* Element::AddElement(std::string name) {
  return static_cast<Element*>(
      AddChild(std::make_unique<Element>(std::move(name))));
}

TextNode* Element::AddText(std::string text) {
  return static_cast<TextNode*>(
      AddChild(std::make_unique<TextNode>(std::move(text))));
}

void Element::RemoveChild(size_t index) {
  assert(index < children_.size());
  children_.erase(children_.begin() + index);
}

std::unique_ptr<Node> Element::TakeChild(size_t index) {
  assert(index < children_.size());
  std::unique_ptr<Node> node = std::move(children_[index]);
  children_.erase(children_.begin() + index);
  node->parent_ = nullptr;
  return node;
}

std::vector<Element*> Element::ChildElements() {
  std::vector<Element*> out;
  for (const auto& child : children_) {
    if (Element* e = child->AsElement()) out.push_back(e);
  }
  return out;
}

std::vector<const Element*> Element::ChildElements() const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (const Element* e = child->AsElement()) out.push_back(e);
  }
  return out;
}

std::vector<Element*> Element::ChildElements(std::string_view name) {
  std::vector<Element*> out;
  for (const auto& child : children_) {
    if (Element* e = child->AsElement(); e != nullptr && e->name() == name) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<const Element*> Element::ChildElements(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (const Element* e = child->AsElement();
        e != nullptr && e->name() == name) {
      out.push_back(e);
    }
  }
  return out;
}

Element* Element::FirstChildElement(std::string_view name) {
  for (const auto& child : children_) {
    if (Element* e = child->AsElement(); e != nullptr && e->name() == name) {
      return e;
    }
  }
  return nullptr;
}

const Element* Element::FirstChildElement(std::string_view name) const {
  return const_cast<Element*>(this)->FirstChildElement(name);
}

std::string Element::DirectText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->IsText()) {
      out += static_cast<const TextNode*>(child.get())->text();
    }
  }
  return util::NormalizeWhitespace(out);
}

namespace {

void CollectDeepText(const Element& element, std::string& out) {
  for (const auto& child : element.children()) {
    if (child->IsText()) {
      out += static_cast<const TextNode*>(child.get())->text();
      out += ' ';
    } else if (const Element* e = child->AsElement()) {
      CollectDeepText(*e, out);
    }
  }
}

}  // namespace

std::string Element::DeepText() const {
  std::string out;
  CollectDeepText(*this, out);
  return util::NormalizeWhitespace(out);
}

std::unique_ptr<Element> Element::Clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->attributes_ = attributes_;
  for (const auto& child : children_) {
    switch (child->kind()) {
      case NodeKind::kElement:
        copy->AddChild(static_cast<const Element*>(child.get())->Clone());
        break;
      case NodeKind::kText:
      case NodeKind::kCdata: {
        const auto* t = static_cast<const TextNode*>(child.get());
        copy->AddChild(std::make_unique<TextNode>(
            t->text(), t->kind() == NodeKind::kCdata));
        break;
      }
      case NodeKind::kComment:
        copy->AddChild(std::make_unique<CommentNode>(
            static_cast<const CommentNode*>(child.get())->text()));
        break;
    }
  }
  return copy;
}

size_t Element::SubtreeElementCount() const {
  size_t count = 1;
  for (const auto& child : children_) {
    if (const Element* e = child->AsElement()) {
      count += e->SubtreeElementCount();
    }
  }
  return count;
}

Element* Document::SetRoot(std::unique_ptr<Element> root) {
  root_ = std::move(root);
  if (root_ != nullptr) root_->parent_ = nullptr;
  AssignElementIds();
  return root_.get();
}

size_t Document::AssignElementIds() {
  elements_by_id_.clear();
  if (root_ == nullptr) return 0;
  // Iterative pre-order traversal (documents can be deep; avoid recursion).
  std::vector<Element*> stack = {root_.get()};
  while (!stack.empty()) {
    Element* e = stack.back();
    stack.pop_back();
    e->id_ = static_cast<ElementId>(elements_by_id_.size());
    elements_by_id_.push_back(e);
    // Push children in reverse so they pop in document order.
    const auto& children = e->children_;
    for (size_t i = children.size(); i > 0; --i) {
      if (Element* child = children[i - 1]->AsElement()) {
        stack.push_back(child);
      }
    }
  }
  return elements_by_id_.size();
}

Element* Document::ElementById(ElementId id) {
  if (id < 0 || static_cast<size_t>(id) >= elements_by_id_.size()) {
    return nullptr;
  }
  return elements_by_id_[static_cast<size_t>(id)];
}

const Element* Document::ElementById(ElementId id) const {
  return const_cast<Document*>(this)->ElementById(id);
}

Document Document::Clone() const {
  Document copy;
  copy.version_ = version_;
  copy.encoding_ = encoding_;
  if (root_ != nullptr) copy.SetRoot(root_->Clone());
  return copy;
}

}  // namespace sxnm::xml
