#include "xml/xpath.h"

#include <cassert>

#include "util/string_util.h"

namespace sxnm::xml {

namespace {

using util::Result;
using util::Status;

// Collects, in document order, descendants of `root` (excluding `root`)
// whose name matches `name` ("*" matches all).
void CollectDescendants(const Element& root, const std::string& name,
                        std::vector<const Element*>& out) {
  for (const auto& child : root.children()) {
    if (const Element* e = child->AsElement()) {
      if (name == "*" || e->name() == name) out.push_back(e);
      CollectDescendants(*e, name, out);
    }
  }
}

}  // namespace

util::Result<XPath> XPath::Parse(std::string_view path) {
  std::string_view p = util::TrimView(path);
  if (p.empty()) return Status::InvalidArgument("empty XPath");

  XPath result;
  size_t i = 0;
  if (p[0] == '/') ++i;  // accept and ignore one leading slash

  bool expect_step = true;
  while (i < p.size()) {
    XPathStep step;
    if (p[i] == '/') {
      // A second slash marks the descendant axis for the next step.
      ++i;
      step.axis = XPathStep::Axis::kDescendant;
      if (i >= p.size()) {
        return Status::InvalidArgument("XPath ends with '//': " +
                                       std::string(path));
      }
    }

    // Step body.
    if (p[i] == '@') {
      ++i;
      size_t start = i;
      while (i < p.size() && p[i] != '/' && p[i] != '[') ++i;
      step.name = std::string(p.substr(start, i - start));
      if (step.name.empty()) {
        return Status::InvalidArgument("'@' without attribute name: " +
                                       std::string(path));
      }
      if (step.axis == XPathStep::Axis::kDescendant) {
        return Status::InvalidArgument("'//@attr' is not supported: " +
                                       std::string(path));
      }
      step.axis = XPathStep::Axis::kAttribute;
    } else {
      size_t start = i;
      while (i < p.size() && p[i] != '/' && p[i] != '[') ++i;
      std::string body(p.substr(start, i - start));
      if (body == "text()") {
        if (step.axis == XPathStep::Axis::kDescendant) {
          return Status::InvalidArgument("'//text()' is not supported: " +
                                         std::string(path));
        }
        step.axis = XPathStep::Axis::kText;
      } else if (!body.empty()) {
        step.name = std::move(body);
        if (step.name.find('(') != std::string::npos) {
          return Status::InvalidArgument("unsupported XPath function in: " +
                                         std::string(path));
        }
      } else {
        return Status::InvalidArgument("empty step in XPath: " +
                                       std::string(path));
      }
    }

    // Optional positional predicate.
    if (i < p.size() && p[i] == '[') {
      if (step.axis == XPathStep::Axis::kAttribute ||
          step.axis == XPathStep::Axis::kText) {
        return Status::InvalidArgument(
            "positional predicate not allowed on @attr/text(): " +
            std::string(path));
      }
      size_t close = p.find(']', i);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated '[' in XPath: " +
                                       std::string(path));
      }
      int pos = util::ParseNonNegativeInt(p.substr(i + 1, close - i - 1));
      if (pos <= 0) {
        return Status::InvalidArgument(
            "positional predicate must be a positive integer: " +
            std::string(path));
      }
      step.position = pos;
      i = close + 1;
    }

    result.steps_.push_back(std::move(step));
    expect_step = false;

    if (i < p.size()) {
      if (p[i] != '/') {
        return Status::InvalidArgument("expected '/' in XPath: " +
                                       std::string(path));
      }
      ++i;
      expect_step = true;
    }
  }

  if (expect_step) {
    return Status::InvalidArgument("XPath ends with '/': " +
                                   std::string(path));
  }

  // @attr / text() only in final position.
  for (size_t s = 0; s + 1 < result.steps_.size(); ++s) {
    auto axis = result.steps_[s].axis;
    if (axis == XPathStep::Axis::kAttribute ||
        axis == XPathStep::Axis::kText) {
      return Status::InvalidArgument(
          "@attr/text() must be the final step: " + std::string(path));
    }
  }
  return result;
}

bool XPath::SelectsValue() const {
  if (steps_.empty()) return false;
  auto axis = steps_.back().axis;
  return axis == XPathStep::Axis::kAttribute || axis == XPathStep::Axis::kText;
}

std::string XPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const XPathStep& step = steps_[i];
    if (i > 0) out += '/';
    switch (step.axis) {
      case XPathStep::Axis::kDescendant:
        // "//name": the separator above provides the first slash except in
        // leading position.
        out += (i == 0) ? "//" : "/";
        out += step.name;
        break;
      case XPathStep::Axis::kChild:
        out += step.name;
        break;
      case XPathStep::Axis::kAttribute:
        out += '@';
        out += step.name;
        break;
      case XPathStep::Axis::kText:
        out += "text()";
        break;
    }
    if (step.position > 0) {
      out += '[';
      out += std::to_string(step.position);
      out += ']';
    }
  }
  return out;
}

std::vector<const Element*> XPath::WalkElements(const Element& start,
                                                bool first_step_is_root) const {
  std::vector<const Element*> frontier = {&start};
  size_t element_steps = steps_.size();
  if (SelectsValue()) --element_steps;

  for (size_t s = 0; s < element_steps; ++s) {
    const XPathStep& step = steps_[s];
    std::vector<const Element*> next;

    if (s == 0 && first_step_is_root) {
      // Absolute path: the first step names the root element itself.
      if (step.axis == XPathStep::Axis::kDescendant) {
        // "//x" from the document: any descendant-or-self match.
        if (step.name == "*" || start.name() == step.name) {
          next.push_back(&start);
        }
        CollectDescendants(start, step.name, next);
      } else if (step.name == "*" || start.name() == step.name) {
        next.push_back(&start);
      }
      if (step.position > 0 &&
          static_cast<size_t>(step.position) <= next.size()) {
        next = {next[size_t(step.position) - 1]};
      } else if (step.position > 0) {
        next.clear();
      }
      frontier = std::move(next);
      continue;
    }

    for (const Element* context : frontier) {
      std::vector<const Element*> matched;
      if (step.axis == XPathStep::Axis::kDescendant) {
        CollectDescendants(*context, step.name, matched);
      } else {
        for (const auto& child : context->children()) {
          if (const Element* e = child->AsElement()) {
            if (step.name == "*" || e->name() == step.name) {
              matched.push_back(e);
            }
          }
        }
      }
      if (step.position > 0) {
        if (static_cast<size_t>(step.position) <= matched.size()) {
          next.push_back(matched[size_t(step.position) - 1]);
        }
      } else {
        next.insert(next.end(), matched.begin(), matched.end());
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

util::Result<std::vector<const Element*>> XPath::SelectElements(
    const Element& context) const {
  if (SelectsValue()) {
    return Status::FailedPrecondition(
        "path selects values, not elements: " + ToString());
  }
  return WalkElements(context, /*first_step_is_root=*/false);
}

util::Result<std::vector<Element*>> XPath::SelectElements(
    Element& context) const {
  auto result = SelectElements(static_cast<const Element&>(context));
  if (!result.ok()) return result.status();
  std::vector<Element*> out;
  out.reserve(result->size());
  for (const Element* e : *result) out.push_back(const_cast<Element*>(e));
  return out;
}

std::vector<std::string> XPath::SelectValues(const Element& context) const {
  std::vector<const Element*> elements =
      WalkElements(context, /*first_step_is_root=*/false);
  std::vector<std::string> out;

  if (!SelectsValue()) {
    out.reserve(elements.size());
    for (const Element* e : elements) out.push_back(e->DeepText());
    return out;
  }

  const XPathStep& last = steps_.back();
  if (last.axis == XPathStep::Axis::kAttribute) {
    for (const Element* e : elements) {
      if (const std::string* value = e->FindAttribute(last.name)) {
        out.push_back(util::NormalizeWhitespace(*value));
      }
    }
  } else {  // text()
    for (const Element* e : elements) {
      out.push_back(e->DirectText());
    }
  }
  return out;
}

std::string XPath::SelectFirstValue(const Element& context) const {
  std::vector<std::string> values = SelectValues(context);
  return values.empty() ? std::string() : std::move(values.front());
}

util::Result<std::vector<const Element*>> XPath::SelectFromRoot(
    const Document& doc) const {
  if (SelectsValue()) {
    return Status::FailedPrecondition(
        "candidate path must select elements: " + ToString());
  }
  if (doc.root() == nullptr) return std::vector<const Element*>{};
  return WalkElements(*doc.root(), /*first_step_is_root=*/true);
}

util::Result<std::vector<Element*>> XPath::SelectFromRoot(
    Document& doc) const {
  auto result = SelectFromRoot(static_cast<const Document&>(doc));
  if (!result.ok()) return result.status();
  std::vector<Element*> out;
  out.reserve(result->size());
  for (const Element* e : *result) out.push_back(const_cast<Element*>(e));
  return out;
}

}  // namespace sxnm::xml
