// Recursive-descent XML parser.
//
// Supports the subset of XML 1.0 needed for the paper's data sets and
// configuration documents:
//   * one root element, arbitrarily nested elements
//   * attributes in single or double quotes
//   * character data, CDATA sections, comments
//   * the five predefined entities plus decimal/hex character references
//   * an optional XML declaration; processing instructions are skipped
//   * DOCTYPE declarations are skipped verbatim (no DTD processing)
//
// Errors are reported with line/column positions via util::Result.

#ifndef SXNM_XML_PARSER_H_
#define SXNM_XML_PARSER_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/node.h"

namespace sxnm::xml {

struct ParseOptions {
  /// Drop text nodes that consist solely of whitespace (typical for
  /// pretty-printed documents). Defaults to true: the paper's data is
  /// element-structured and inter-element whitespace is insignificant.
  bool skip_whitespace_text = true;

  /// Keep comment nodes in the DOM (needed for faithful round-trips).
  bool keep_comments = false;
};

/// Parses an XML document from a string. On success the returned document
/// has document-order element IDs already assigned.
util::Result<Document> Parse(std::string_view input,
                             const ParseOptions& options = {});

/// Reads and parses a file.
util::Result<Document> ParseFile(const std::string& path,
                                 const ParseOptions& options = {});

/// Reads a whole file into a string.
util::Result<std::string> ReadFileToString(const std::string& path);

}  // namespace sxnm::xml

#endif  // SXNM_XML_PARSER_H_
