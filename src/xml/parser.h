// Hardened XML parser (iterative descent, resource limits, recovery).
//
// Supports the subset of XML 1.0 needed for the paper's data sets and
// configuration documents:
//   * one root element, arbitrarily nested elements
//   * attributes in single or double quotes
//   * character data, CDATA sections, comments
//   * the five predefined entities plus decimal/hex character references
//   * an optional XML declaration; processing instructions are skipped
//   * DOCTYPE declarations are skipped verbatim (no DTD processing)
//
// The element tree is built with an explicit open-element stack — never
// by recursion — so nesting depth is bounded only by the configured
// `max_depth` limit, not by the machine stack. All resource limits
// (depth, input bytes, node count, attributes per element) are hard:
// exceeding one fails the parse with kResourceExhausted even in
// recovering mode.
//
// Errors are reported with line/column positions via util::Result; the
// recovering entry points additionally skip malformed subtrees,
// resynchronize at the next sibling, and report each problem as a
// structured Diagnostic instead of failing the whole document.

#ifndef SXNM_XML_PARSER_H_
#define SXNM_XML_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/node.h"

namespace sxnm::xml {

struct ParseOptions {
  /// Drop text nodes that consist solely of whitespace (typical for
  /// pretty-printed documents). Defaults to true: the paper's data is
  /// element-structured and inter-element whitespace is insignificant.
  bool skip_whitespace_text = true;

  /// Keep comment nodes in the DOM (needed for faithful round-trips).
  bool keep_comments = false;

  // --- Hard resource limits (0 = unlimited) -------------------------------
  // Hostile or runaway input hits these as kResourceExhausted errors, in
  // strict and recovering mode alike; they bound the memory and work one
  // document may consume.

  /// Maximum element nesting depth. The parser itself is iterative, so
  /// this bounds downstream consumers (writer, XPath walks) and memory,
  /// not the parse stack. The default admits any sane document while
  /// rejecting nesting bombs.
  size_t max_depth = 10'000;

  /// Maximum input size in bytes, checked before parsing starts.
  size_t max_input_bytes = 0;

  /// Maximum number of DOM nodes (elements, text, comments) created.
  size_t max_nodes = 0;

  /// Maximum attributes on a single element.
  size_t max_attr_count = 1'000;

  /// Recovering mode: maximum diagnostics recorded before the parse is
  /// abandoned as hopeless (kResourceExhausted). Ignored in strict mode.
  size_t max_diagnostics = 256;
};

/// One structured problem found while parsing. `code` is kParseError for
/// malformed input; messages do not repeat the position (it is carried in
/// `line`/`column`).
struct Diagnostic {
  size_t line = 0;
  size_t column = 0;
  util::StatusCode code = util::StatusCode::kParseError;
  std::string message;

  /// "line L, column C: <CODE>: message" — the form tools print.
  std::string ToString() const;
};

/// Result of a recovering parse: the document that could be salvaged plus
/// every problem encountered along the way. An empty diagnostics list
/// means the input was well-formed.
struct RecoveredParse {
  Document doc;
  std::vector<Diagnostic> diagnostics;

  bool clean() const { return diagnostics.empty(); }
};

/// Parses an XML document from a string. On success the returned document
/// has document-order element IDs already assigned. Strict: the first
/// problem fails the parse.
util::Result<Document> Parse(std::string_view input,
                             const ParseOptions& options = {});

/// Reads and parses a file (strict).
util::Result<Document> ParseFile(const std::string& path,
                                 const ParseOptions& options = {});

/// Recovering parse: malformed subtrees are skipped with the parse
/// resynchronizing at the next sibling, stray/mismatched end tags are
/// repaired, and each problem is reported as a Diagnostic. Fails only
/// when no root element can be salvaged at all or a hard resource limit
/// is exceeded.
util::Result<RecoveredParse> ParseRecovering(std::string_view input,
                                             const ParseOptions& options = {});

/// Reads and recovering-parses a file.
util::Result<RecoveredParse> ParseFileRecovering(
    const std::string& path, const ParseOptions& options = {});

/// Reads a whole file into a string.
util::Result<std::string> ReadFileToString(const std::string& path);

}  // namespace sxnm::xml

#endif  // SXNM_XML_PARSER_H_
