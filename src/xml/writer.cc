#include "xml/writer.h"

#include "persist/io.h"

namespace sxnm::xml {

namespace {

void AppendEscaped(std::string_view s, bool attribute, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (attribute) {
          out += "&quot;";
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
}

// True when the element has any text child. Such elements (pure-text like
// <title>The Matrix</title> and mixed content like <p>a <b>x</b> b</p>)
// are rendered inline even when pretty-printing: inserting indentation
// whitespace into mixed content would change the text on re-parse.
bool HasTextChild(const Element& element) {
  for (const auto& child : element.children()) {
    if (child->IsText()) return true;
  }
  return false;
}

void WriteNode(const Node& node, const WriteOptions& options, int depth,
               std::string& out);

void WriteElementImpl(const Element& element, const WriteOptions& options,
                      int depth, std::string& out) {
  std::string pad(options.indent > 0 ? size_t(depth) * size_t(options.indent)
                                     : 0,
                  ' ');
  out += pad;
  out += '<';
  out += element.name();
  for (const auto& attr : element.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    AppendEscaped(attr.value, /*attribute=*/true, out);
    out += '"';
  }

  if (element.children().empty()) {
    out += "/>";
    if (options.indent > 0) out += '\n';
    return;
  }

  out += '>';
  if (HasTextChild(element) || options.indent <= 0) {
    // Inline rendering: children written without added whitespace.
    WriteOptions inline_options = options;
    inline_options.indent = 0;
    for (const auto& child : element.children()) {
      WriteNode(*child, inline_options, 0, out);
    }
  } else {
    out += '\n';
    for (const auto& child : element.children()) {
      WriteNode(*child, options, depth + 1, out);
    }
    out += pad;
  }
  out += "</";
  out += element.name();
  out += '>';
  if (options.indent > 0) out += '\n';
}

void WriteNode(const Node& node, const WriteOptions& options, int depth,
               std::string& out) {
  switch (node.kind()) {
    case NodeKind::kElement:
      WriteElementImpl(static_cast<const Element&>(node), options, depth, out);
      break;
    case NodeKind::kText:
      AppendEscaped(static_cast<const TextNode&>(node).text(),
                    /*attribute=*/false, out);
      break;
    case NodeKind::kCdata:
      out += "<![CDATA[";
      out += static_cast<const TextNode&>(node).text();
      out += "]]>";
      break;
    case NodeKind::kComment:
      out += "<!--";
      out += static_cast<const CommentNode&>(node).text();
      out += "-->";
      break;
  }
}

}  // namespace

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(s, /*attribute=*/false, out);
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(s, /*attribute=*/true, out);
  return out;
}

std::string WriteElement(const Element& element, const WriteOptions& options) {
  std::string out;
  WriteElementImpl(element, options, 0, out);
  // Trim the trailing newline the pretty-printer leaves on the root.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string WriteDocument(const Document& doc, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"";
    out += doc.version().empty() ? "1.0" : doc.version();
    out += "\" encoding=\"";
    out += doc.encoding().empty() ? "UTF-8" : doc.encoding();
    out += "\"?>";
    out += options.indent > 0 ? "\n" : "";
  }
  if (doc.root() != nullptr) {
    out += WriteElement(*doc.root(), options);
    if (options.indent > 0) out += '\n';
  }
  return out;
}

bool WriteDocumentToFile(const Document& doc, const std::string& path,
                         const WriteOptions& options) {
  // Atomic commit: dedup output is either the complete document or the
  // previous file, never a truncated XML prefix.
  return persist::AtomicWriteFile(path, WriteDocument(doc, options)).ok();
}

}  // namespace sxnm::xml
