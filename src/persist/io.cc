#include "persist/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fault_injection.h"

namespace sxnm::persist {

using util::Result;
using util::Status;

namespace {

std::string ErrnoText(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

// Write failures split by class: a full disk is an operational resource
// problem (retryable after cleanup), everything else means the bytes on
// disk cannot be trusted.
Status WriteError(const std::string& what, const std::string& path, int err) {
  std::string msg = what + " '" + path + "': " + ErrnoText(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::DataLoss(std::move(msg));
}

// Parent directory of `path` ("." when the path has no slash), for the
// directory fsync that makes the rename itself durable.
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes eagerly; true on success. Destructor then does nothing.
  bool Close() {
    int rc = ::close(fd_);
    fd_ = -1;
    return rc == 0;
  }

 private:
  int fd_;
};

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";

  Fd fd(::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644));
  if (!fd.valid()) {
    return WriteError("cannot open temp file", tmp_path, errno);
  }

  // The injected "persist.write" fault models ENOSPC mid-write: the tmp
  // file is left torn, exactly like a real short write, and the caller
  // sees kResourceExhausted. The destination is untouched either way.
  if (util::FaultInjector::Instance().ShouldFail("persist.write")) {
    return Status::ResourceExhausted(
        "injected fault: short write (ENOSPC) on '" + tmp_path + "'");
  }

  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd.get(), contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return WriteError("write failed on", tmp_path, errno);
    }
    off += static_cast<size_t>(n);
  }

  if (util::FaultInjector::Instance().ShouldFail("persist.fsync")) {
    return Status::DataLoss("injected fault: fsync failed on '" + tmp_path +
                            "'");
  }
  if (::fsync(fd.get()) != 0) {
    return WriteError("fsync failed on", tmp_path, errno);
  }
  if (!fd.Close()) {
    return WriteError("close failed on", tmp_path, errno);
  }

  if (util::FaultInjector::Instance().ShouldFail("persist.rename")) {
    return Status::DataLoss("injected fault: rename '" + tmp_path +
                            "' -> '" + path + "' failed");
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return WriteError("rename failed for", path, errno);
  }

  // Make the rename durable: without the directory fsync a crash can
  // roll the directory entry back to the old file. The old file is a
  // consistent state too, so a failure here is reported but nothing is
  // torn.
  Fd dir(::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (dir.valid()) {
    if (::fsync(dir.get()) != 0 && errno != EINVAL && errno != EROFS) {
      return WriteError("directory fsync failed for", path, errno);
    }
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::DataLoss("cannot open '" + path + "': " +
                            ErrnoText(errno));
  }

  struct stat st;
  if (::fstat(fd.get(), &st) != 0) {
    return Status::DataLoss("cannot stat '" + path + "': " + ErrnoText(errno));
  }

  // The injected "persist.read" fault models a short read / IO error
  // mid-load: the caller sees kDataLoss, never a half-parsed snapshot.
  if (util::FaultInjector::Instance().ShouldFail("persist.read")) {
    return Status::DataLoss("injected fault: short read on '" + path + "'");
  }

  std::string out;
  out.resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::read(fd.get(), out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::DataLoss("read failed on '" + path + "': " +
                              ErrnoText(errno));
    }
    if (n == 0) {
      return Status::DataLoss("short read on '" + path + "': got " +
                              std::to_string(off) + " of " +
                              std::to_string(out.size()) + " bytes");
    }
    off += static_cast<size_t>(n);
  }
  return out;
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool RemoveFile(const std::string& path) {
  return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

}  // namespace sxnm::persist
