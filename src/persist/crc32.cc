#include "persist/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define SXNM_CRC32_X86 1
#endif

namespace sxnm::persist {

namespace {

// Table for the reflected CRC-32C polynomial, generated once at startup.
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

uint32_t Crc32cSoftware(std::string_view data, uint32_t crc) {
  static const std::array<uint32_t, 256> table = BuildTable();
  for (unsigned char byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  }
  return crc;
}

#ifdef SXNM_CRC32_X86
// SSE4.2 implements this exact polynomial in hardware (CRC-32C is the
// iSCSI CRC the instruction was added for), ~20x the table walk on the
// multi-megabyte GK frames. Bit-identical to the software path — the
// dispatch below is a speed choice, never a format choice.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    std::string_view data, uint32_t crc) {
  const char* p = data.data();
  size_t n = data.size();
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, static_cast<unsigned char>(*p));
    ++p;
    --n;
  }
  return crc;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2"); }
#endif

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
#ifdef SXNM_CRC32_X86
  static const bool hw = HaveSse42();
  if (hw) return ~Crc32cHardware(data, crc);
#endif
  return ~Crc32cSoftware(data, crc);
}

}  // namespace sxnm::persist
