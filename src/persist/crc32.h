// CRC-32C (Castagnoli) for the snapshot layer's per-frame checksums.
//
// Runtime-dispatched: the SSE4.2 CRC32 instruction when the CPU has it
// (it implements this exact polynomial), a slice-by-one table walk
// otherwise — bit-identical either way, so checksums computed on any
// host verify on any other. The polynomial is the iSCSI/ext4 one
// (0x1EDC6F41, reflected 0x82F63B78) — better burst error detection
// than the zip CRC at identical cost, and the choice is baked into the
// snapshot format version so it can never drift silently.

#ifndef SXNM_PERSIST_CRC32_H_
#define SXNM_PERSIST_CRC32_H_

#include <cstdint>
#include <string_view>

namespace sxnm::persist {

/// CRC-32C of `data`, continuing from `seed` (pass the previous return
/// value to checksum a logical stream in pieces; 0 starts fresh).
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace sxnm::persist

#endif  // SXNM_PERSIST_CRC32_H_
