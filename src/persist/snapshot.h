// The snapshot container format: a versioned sequence of typed,
// length-prefixed, individually checksummed binary frames.
//
//   file   := header frame* end-frame
//   header := magic "SXNMSNAP" (8 bytes) | u32 version
//   frame  := u32 type | u64 payload_len | payload | u32 crc32c
//   crc    := CRC-32C over (type | payload_len | payload)
//
// The end frame (type kEndFrame) carries the total frame count
// (including itself) as its payload, so a file that merely *looks*
// complete — right magic, every frame intact — but lost its tail to a
// torn write is still rejected: without a verifiable end frame the
// snapshot never existed. Combined with the atomic commit protocol in
// io.h this gives crash consistency: the committed path always decodes
// or cleanly fails with kDataLoss, never half-parses.
//
// Payload contents are encoded with Encoder/Decoder: fixed-width
// little-endian integers and length-prefixed strings, every read
// bounds-checked. Decoder never throws and never reads out of bounds —
// arbitrary bytes (fuzz_snapshot) decode to a Status, not UB.

#ifndef SXNM_PERSIST_SNAPSHOT_H_
#define SXNM_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sxnm::persist {

/// Format identity. Version bumps whenever frame payload encodings
/// change incompatibly; readers refuse other versions (kDataLoss would
/// lie — an old snapshot is not corrupt, just unusable — so version
/// mismatch reports kFailedPrecondition).
inline constexpr char kSnapshotMagic[8] = {'S', 'X', 'N', 'M',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Frame types. Values are part of the on-disk format — append only.
enum class FrameType : uint32_t {
  kFingerprint = 1,     // config/corpus identity + engine flags
  kCursor = 2,          // pass cursor + governor state + timers
  kGkTable = 3,         // one candidate's GK relation (+ OdPool)
  kCandidateResult = 4, // one completed candidate's pairs + clusters
  kDegradation = 5,     // shed-pass entries accumulated so far
  kReportRows = 6,      // per-pass report rows accumulated so far
  kMetrics = 7,         // metrics registry snapshot
  kExplain = 8,         // explain-log byte stream + tallies
  kVerdictCache = 9,    // serialized verdict-cache contents
  kEndFrame = 0xE0F0,   // commit marker: payload = total frame count
};

/// Little-endian binary builder for frame payloads.
class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  /// Length-prefixed (u64) byte string.
  void PutString(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over one frame payload. Every getter fails with
/// kDataLoss instead of reading past the end.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  util::Result<uint8_t> GetU8();
  util::Result<bool> GetBool();
  util::Result<uint32_t> GetU32();
  util::Result<uint64_t> GetU64();
  util::Result<int64_t> GetI64();
  util::Result<double> GetDouble();
  util::Result<std::string_view> GetString();

  /// Like GetU64 but additionally rejects values above `max` — the guard
  /// every collection-count read uses so corrupt lengths cannot drive
  /// multi-gigabyte allocations before the next bounds check fails.
  util::Result<uint64_t> GetCount(uint64_t max);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  util::Status Need(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// One decoded frame: a view into the reader's buffer.
struct Frame {
  FrameType type = FrameType::kEndFrame;
  std::string_view payload;
};

/// Accumulates frames and serializes the container. Writing is a pure
/// in-memory transform; durability comes from committing the bytes via
/// AtomicWriteFile (WriteFile below).
class SnapshotWriter {
 public:
  /// Appends one frame; the payload is copied.
  void AddFrame(FrameType type, std::string_view payload);
  void AddFrame(FrameType type, Encoder&& payload) {
    AddFrame(type, payload.TakeBytes());
  }

  size_t num_frames() const { return frames_.size(); }

  /// Serializes header + frames + end frame.
  std::string Serialize() const;

  /// Serialize + atomic commit to `path`.
  util::Status WriteFile(const std::string& path) const;

 private:
  struct Pending {
    FrameType type;
    std::string payload;
  };
  std::vector<Pending> frames_;
};

/// Parses and verifies a serialized snapshot. All structural damage —
/// bad magic, truncated frame, checksum mismatch, missing or wrong end
/// frame, trailing garbage — surfaces as kDataLoss; an unsupported
/// version as kFailedPrecondition. The returned reader views into
/// `bytes`, which must outlive it.
class SnapshotReader {
 public:
  static util::Result<SnapshotReader> Parse(std::string_view bytes);

  uint32_t version() const { return version_; }
  const std::vector<Frame>& frames() const { return frames_; }

  /// First frame of `type`; nullptr when absent.
  const Frame* Find(FrameType type) const;

  /// All frames of `type`, in file order.
  std::vector<const Frame*> FindAll(FrameType type) const;

 private:
  SnapshotReader() = default;

  uint32_t version_ = 0;
  std::vector<Frame> frames_;
};

}  // namespace sxnm::persist

#endif  // SXNM_PERSIST_SNAPSHOT_H_
