// Durable file IO for the persistence layer.
//
// The one rule every artifact writer in SXNM follows: a path either
// holds the previous complete file or the new complete file, never a
// torn mixture. AtomicWriteFile implements the classic commit protocol
//
//   write <path>.tmp  ->  fsync(<path>.tmp)  ->  rename onto <path>
//                     ->  fsync(parent directory)
//
// so a crash at any instant leaves the destination untouched (the .tmp
// may survive as garbage; writers ignore and overwrite it). Readers of
// checkpoint snapshots therefore never need to cope with partial files —
// only with external corruption, which the frame checksums catch.
//
// Fault sites ("persist.write", "persist.fsync", "persist.rename",
// "persist.read") let the chaos tests simulate ENOSPC, failed syncs,
// rename failures, and short reads; each surfaces as a clean
// kResourceExhausted / kDataLoss status through the normal error path.
//
// Live-tailed NDJSON streams (telemetry, and any future explain
// streaming mode) intentionally do NOT use this helper: their value is
// being readable *while* the run executes, so they are append-mode by
// design and their readers (sxnm_top, tail -f) treat a truncated final
// line as "stream still growing". Every end-of-run artifact — trace
// JSON, DetectionReport JSON, explain NDJSON, metrics text, dedup
// documents, snapshots — goes through AtomicWriteFile.

#ifndef SXNM_PERSIST_IO_H_
#define SXNM_PERSIST_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace sxnm::persist {

/// Atomically replaces `path` with `contents`. On any failure the
/// destination is left as it was (a stale `path + ".tmp"` may remain and
/// is harmless). ENOSPC maps to kResourceExhausted; every other write /
/// fsync / rename failure maps to kDataLoss.
util::Status AtomicWriteFile(const std::string& path,
                             std::string_view contents);

/// Reads a whole file. kNotFound when the path does not exist,
/// kDataLoss on short reads or read errors (including the injected
/// "persist.read" fault).
util::Result<std::string> ReadFileToString(const std::string& path);

/// True when `path` exists (any file type).
bool PathExists(const std::string& path);

/// Best-effort removal of `path`; false when it existed but could not
/// be removed.
bool RemoveFile(const std::string& path);

}  // namespace sxnm::persist

#endif  // SXNM_PERSIST_IO_H_
