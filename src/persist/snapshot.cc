#include "persist/snapshot.h"

#include <cstring>

#include "persist/crc32.h"
#include "persist/io.h"

namespace sxnm::persist {

using util::Result;
using util::Status;

namespace {

// Encoded sizes of the fixed fields.
constexpr size_t kHeaderSize = sizeof(kSnapshotMagic) + 4;  // magic + version
constexpr size_t kFramePrefixSize = 4 + 8;                  // type + len
constexpr size_t kFrameCrcSize = 4;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("corrupt snapshot: " + what);
}

}  // namespace

// --- Encoder ---------------------------------------------------------------

void Encoder::PutU32(uint32_t v) { AppendU32(out_, v); }

void Encoder::PutU64(uint64_t v) { AppendU64(out_, v); }

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU64(s.size());
  out_.append(s.data(), s.size());
}

// --- Decoder ---------------------------------------------------------------

Status Decoder::Need(size_t n) {
  if (remaining() < n) {
    return Corrupt("payload truncated: need " + std::to_string(n) +
                   " bytes, have " + std::to_string(remaining()));
  }
  return Status::Ok();
}

Result<uint8_t> Decoder::GetU8() {
  SXNM_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<bool> Decoder::GetBool() {
  auto v = GetU8();
  if (!v.ok()) return v.status();
  if (*v > 1) return Corrupt("bool field out of range");
  return *v == 1;
}

Result<uint32_t> Decoder::GetU32() {
  SXNM_RETURN_IF_ERROR(Need(4));
  uint32_t v = LoadU32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  SXNM_RETURN_IF_ERROR(Need(8));
  uint64_t v = LoadU64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<int64_t> Decoder::GetI64() {
  auto v = GetU64();
  if (!v.ok()) return v.status();
  return static_cast<int64_t>(*v);
}

Result<double> Decoder::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<std::string_view> Decoder::GetString() {
  auto len = GetU64();
  if (!len.ok()) return len.status();
  if (*len > remaining()) {
    return Corrupt("string length " + std::to_string(*len) +
                   " exceeds remaining payload " +
                   std::to_string(remaining()));
  }
  std::string_view s = bytes_.substr(pos_, static_cast<size_t>(*len));
  pos_ += static_cast<size_t>(*len);
  return s;
}

Result<uint64_t> Decoder::GetCount(uint64_t max) {
  auto v = GetU64();
  if (!v.ok()) return v.status();
  if (*v > max) {
    return Corrupt("count " + std::to_string(*v) + " exceeds limit " +
                   std::to_string(max));
  }
  return *v;
}

// --- SnapshotWriter --------------------------------------------------------

void SnapshotWriter::AddFrame(FrameType type, std::string_view payload) {
  frames_.push_back({type, std::string(payload)});
}

std::string SnapshotWriter::Serialize() const {
  std::string out;
  size_t total = kHeaderSize;
  for (const Pending& f : frames_) {
    total += kFramePrefixSize + f.payload.size() + kFrameCrcSize;
  }
  total += kFramePrefixSize + 8 + kFrameCrcSize;  // end frame
  out.reserve(total);

  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(out, kSnapshotVersion);

  auto append_frame = [&out](FrameType type, std::string_view payload) {
    size_t start = out.size();
    AppendU32(out, static_cast<uint32_t>(type));
    AppendU64(out, payload.size());
    out.append(payload.data(), payload.size());
    uint32_t crc =
        Crc32c(std::string_view(out.data() + start, out.size() - start));
    AppendU32(out, crc);
  };

  for (const Pending& f : frames_) append_frame(f.type, f.payload);

  // Commit marker: frame count including this frame.
  std::string end_payload;
  AppendU64(end_payload, frames_.size() + 1);
  append_frame(FrameType::kEndFrame, end_payload);
  return out;
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  return AtomicWriteFile(path, Serialize());
}

// --- SnapshotReader --------------------------------------------------------

Result<SnapshotReader> SnapshotReader::Parse(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Corrupt("file shorter than header (" +
                   std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt("bad magic");
  }
  uint32_t version = LoadU32(bytes.data() + sizeof(kSnapshotMagic));
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }

  SnapshotReader reader;
  reader.version_ = version;

  size_t pos = kHeaderSize;
  bool saw_end = false;
  while (pos < bytes.size()) {
    if (saw_end) return Corrupt("trailing data after end frame");
    if (bytes.size() - pos < kFramePrefixSize + kFrameCrcSize) {
      return Corrupt("truncated frame header at offset " +
                     std::to_string(pos));
    }
    uint32_t raw_type = LoadU32(bytes.data() + pos);
    uint64_t len = LoadU64(bytes.data() + pos + 4);
    if (len > bytes.size() - pos - kFramePrefixSize - kFrameCrcSize) {
      return Corrupt("frame at offset " + std::to_string(pos) +
                     " claims " + std::to_string(len) +
                     " payload bytes past end of file");
    }
    size_t payload_pos = pos + kFramePrefixSize;
    std::string_view checksummed(bytes.data() + pos,
                                 kFramePrefixSize + static_cast<size_t>(len));
    uint32_t stored_crc =
        LoadU32(bytes.data() + payload_pos + static_cast<size_t>(len));
    uint32_t computed_crc = Crc32c(checksummed);
    if (stored_crc != computed_crc) {
      return Corrupt("checksum mismatch on frame at offset " +
                     std::to_string(pos));
    }
    Frame frame;
    frame.type = static_cast<FrameType>(raw_type);
    frame.payload = bytes.substr(payload_pos, static_cast<size_t>(len));
    if (frame.type == FrameType::kEndFrame) {
      Decoder d(frame.payload);
      auto count = d.GetU64();
      if (!count.ok()) return count.status();
      if (*count != reader.frames_.size() + 1) {
        return Corrupt("end frame counts " + std::to_string(*count) +
                       " frames, file has " +
                       std::to_string(reader.frames_.size() + 1));
      }
      saw_end = true;
    } else {
      reader.frames_.push_back(frame);
    }
    pos = payload_pos + static_cast<size_t>(len) + kFrameCrcSize;
  }
  if (!saw_end) return Corrupt("missing end frame (torn write?)");
  return reader;
}

const Frame* SnapshotReader::Find(FrameType type) const {
  for (const Frame& f : frames_) {
    if (f.type == type) return &f;
  }
  return nullptr;
}

std::vector<const Frame*> SnapshotReader::FindAll(FrameType type) const {
  std::vector<const Frame*> out;
  for (const Frame& f : frames_) {
    if (f.type == type) out.push_back(&f);
  }
  return out;
}

}  // namespace sxnm::persist
