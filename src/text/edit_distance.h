// Edit-distance based string similarity — the paper's default φ^OD
// function (Def. 2 cites the classic dynamic-programming string distance).
//
// All similarity functions in sxnm::text map two strings to [0, 1], where
// 1 means identical. The shared convention for missing data: two empty
// strings are perfectly similar (1.0); an empty vs a non-empty string has
// similarity 0.0.

#ifndef SXNM_TEXT_EDIT_DISTANCE_H_
#define SXNM_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace sxnm::text {

/// Levenshtein distance (unit-cost insert/delete/substitute).
/// O(|a|*|b|) time, O(min(|a|,|b|)) space. This is the classic row DP,
/// kept as the reference implementation the bit-parallel kernels
/// (text/myers.h) are differentially tested against.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns `limit + 1` as soon as the
/// distance provably exceeds `limit`. Used by filters and benchmarks.
/// Backed by Myers' bit-parallel kernel (text/myers.h), so callers of the
/// bounded path — notably BoundedEditSimilarity and through it the
/// sliding-window classifier — get the fast kernel transparently.
size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                  size_t limit);

/// Optimal-string-alignment (restricted Damerau-Levenshtein) distance:
/// like Levenshtein plus transposition of two adjacent characters as a
/// single operation. A good match for the dirty-data generator's
/// "swap characters" error.
size_t OsaDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(|a|, |b|), i.e. normalized Levenshtein similarity.
/// Returns 1.0 for two empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// Normalized OSA similarity (transposition-aware).
double OsaSimilarity(std::string_view a, std::string_view b);

/// Case-insensitive, whitespace-normalized edit similarity: both inputs
/// are lowercased and whitespace-collapsed before comparison. This is the
/// φ^OD default used throughout the experiments.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Edit similarity with upper-bound pruning: returns the exact
/// EditSimilarity(a, b) whenever it is >= `min_sim`; otherwise returns an
/// *upper bound* of the true similarity that is itself < `min_sim`, at a
/// fraction of the DP cost (the bounded Levenshtein bails out as soon as
/// the distance budget implied by `min_sim` is provably exceeded).
/// Callers that only need to know whether the similarity clears `min_sim`
/// can therefore test the returned value against `min_sim` directly.
/// `min_sim <= 0` degenerates to the exact computation. When `pruned_out`
/// is non-null it is set to true iff the DP bailed out (the result is an
/// upper bound rather than the exact similarity).
double BoundedEditSimilarity(std::string_view a, std::string_view b,
                             double min_sim, bool* pruned_out = nullptr);

}  // namespace sxnm::text

#endif  // SXNM_TEXT_EDIT_DISTANCE_H_
