// Myers' bit-parallel Levenshtein distance (Myers, JACM 1999) in the
// carry-based formulation of Hyyrö (2003), which extends cleanly to
// patterns longer than one machine word.
//
// The shorter input is encoded as per-byte match bitmasks (Peq); one
// column of the classic DP matrix then advances in a handful of 64-bit
// word operations instead of one cell update per pattern character.
// Distances are exact for arbitrary bytes — embedded NULs and high-bit
// characters are ordinary alphabet symbols (Peq indexes unsigned chars).
//
// Two kernels:
//   * single-word: pattern length <= 64, the hot case for OD values;
//   * blocked: ceil(m/64) words per column with horizontal-delta carries
//     threaded between blocks, for longer strings.
//
// The classic row DP (text/edit_distance.h: LevenshteinDistance) stays as
// the reference implementation; differential tests and the fuzz target
// assert these kernels agree with it on arbitrary inputs.

#ifndef SXNM_TEXT_MYERS_H_
#define SXNM_TEXT_MYERS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sxnm::text {

/// Exact Levenshtein distance via the bit-parallel kernels.
/// O(ceil(min(|a|,|b|)/64) * max(|a|,|b|)) time.
size_t MyersDistance(std::string_view a, std::string_view b);

/// Bounded variant: returns min(distance, limit + 1), bailing out of the
/// column loop as soon as the running score minus the remaining columns
/// proves the distance exceeds `limit` (each column changes the score by
/// at most one, so D(a, b) >= score_j - remaining_j is a valid lower
/// bound).
size_t MyersBoundedDistance(std::string_view a, std::string_view b,
                            size_t limit);

/// Per-thread kernel tallies, maintained unconditionally (three integer
/// bumps per call). The detector snapshots the deltas around each window
/// pass and publishes them as the text.myers_words counter.
struct MyersStats {
  uint64_t words = 0;          // bit-vector words processed (columns ×
                               // blocks actually advanced)
  uint64_t single_calls = 0;   // single-word kernel invocations
  uint64_t blocked_calls = 0;  // blocked kernel invocations
};

/// The calling thread's tallies; never shared across threads.
MyersStats& ThreadMyersStats();

}  // namespace sxnm::text

#endif  // SXNM_TEXT_MYERS_H_
