#include "text/myers.h"

#include <algorithm>
#include <vector>

namespace sxnm::text {

namespace {

thread_local MyersStats tls_stats;

// Match-bitmask scratch for the single-word kernel. Thread-local and
// zero outside of kernel calls: building it sets one bit per pattern
// character and the epilogue clears exactly those entries, so each call
// touches O(m) slots instead of memsetting all 256.
thread_local uint64_t tls_peq[256];

// Single-word kernel (pattern length 1..64), Hyyrö's formulation of
// Myers' recurrences. Returns the exact distance, or limit + 1 once the
// score minus the remaining columns proves the distance exceeds `limit`.
size_t SingleWord(std::string_view pattern, std::string_view text,
                  size_t limit) {
  const size_t m = pattern.size();
  const size_t n = text.size();
  ++tls_stats.single_calls;

  for (size_t i = 0; i < m; ++i) {
    tls_peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }

  const uint64_t top = uint64_t{1} << (m - 1);
  uint64_t vp = ~uint64_t{0};
  uint64_t vn = 0;
  size_t score = m;
  size_t processed = n;
  bool bailed = false;

  for (size_t j = 0; j < n; ++j) {
    const uint64_t eq = tls_peq[static_cast<unsigned char>(text[j])];
    const uint64_t d0 = (((eq & vp) + vp) ^ vp) | eq | vn;
    uint64_t hp = vn | ~(d0 | vp);
    uint64_t hn = vp & d0;
    if (hp & top) {
      ++score;
    } else if (hn & top) {
      --score;
    }
    // The row-0 boundary always has horizontal delta +1 (D[0][j] = j),
    // hence the 1 shifted into HP.
    hp = (hp << 1) | 1;
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = d0 & hp;
    // Each remaining column changes the score by at most one, so
    // score - remaining lower-bounds the final distance.
    if (score > limit + (n - 1 - j)) {
      processed = j + 1;
      bailed = true;
      break;
    }
  }

  tls_stats.words += processed;
  for (size_t i = 0; i < m; ++i) {
    tls_peq[static_cast<unsigned char>(pattern[i])] = 0;
  }
  return bailed ? limit + 1 : score;
}

// Blocked kernel for patterns longer than 64 bytes: ceil(m/64) vertical
// words per column, with the horizontal delta at each block boundary
// (hin/hout in {-1, 0, +1}) threaded through the blocks exactly as in
// Hyyrö 2003. The score tracks row m, i.e. bit (m-1) % 64 of the last
// block; the unused high bits of a partial last block never feed back
// into lower rows (the addition only carries upward).
size_t Blocked(std::string_view pattern, std::string_view text,
               size_t limit) {
  const size_t m = pattern.size();
  const size_t n = text.size();
  const size_t blocks = (m + 63) / 64;
  ++tls_stats.blocked_calls;

  std::vector<uint64_t> peq(blocks * 256, 0);
  for (size_t i = 0; i < m; ++i) {
    peq[(i / 64) * 256 + static_cast<unsigned char>(pattern[i])] |=
        uint64_t{1} << (i % 64);
  }
  std::vector<uint64_t> vp(blocks, ~uint64_t{0});
  std::vector<uint64_t> vn(blocks, 0);
  const uint64_t score_bit = uint64_t{1} << ((m - 1) % 64);

  size_t score = m;
  size_t processed = n;
  bool bailed = false;

  for (size_t j = 0; j < n; ++j) {
    const unsigned char c = static_cast<unsigned char>(text[j]);
    int hin = 1;  // row-0 boundary: D[0][j] - D[0][j-1] = +1
    for (size_t b = 0; b < blocks; ++b) {
      uint64_t x = peq[b * 256 + c];
      if (hin < 0) x |= 1;  // a -1 entering the block acts like a match
      const uint64_t pv = vp[b];
      const uint64_t nv = vn[b];
      const uint64_t d0 = (((x & pv) + pv) ^ pv) | x | nv;
      uint64_t hp = nv | ~(d0 | pv);
      uint64_t hn = pv & d0;
      const uint64_t top =
          (b + 1 == blocks) ? score_bit : (uint64_t{1} << 63);
      int hout = 0;
      if (hp & top) {
        hout = 1;
      } else if (hn & top) {
        hout = -1;
      }
      hp <<= 1;
      hn <<= 1;
      if (hin > 0) {
        hp |= 1;
      } else if (hin < 0) {
        hn |= 1;
      }
      vp[b] = hn | ~(d0 | hp);
      vn[b] = d0 & hp;
      hin = hout;
    }
    score = static_cast<size_t>(static_cast<ptrdiff_t>(score) + hin);
    if (score > limit + (n - 1 - j)) {
      processed = j + 1;
      bailed = true;
      break;
    }
  }

  tls_stats.words += processed * blocks;
  return bailed ? limit + 1 : score;
}

// `limit` must already be clamped so limit + 1 and the bail-out
// arithmetic cannot overflow.
size_t Dispatch(std::string_view a, std::string_view b, size_t limit) {
  // The shorter string becomes the pattern: fewer bit-vector words per
  // column, and the single-word kernel applies whenever min <= 64.
  std::string_view pattern = a.size() <= b.size() ? a : b;
  std::string_view text = a.size() <= b.size() ? b : a;
  if (pattern.empty()) return std::min(text.size(), limit + 1);
  if (pattern.size() <= 64) return SingleWord(pattern, text, limit);
  return Blocked(pattern, text, limit);
}

}  // namespace

size_t MyersDistance(std::string_view a, std::string_view b) {
  // A limit the distance can never exceed disables the bail-out.
  return Dispatch(a, b, a.size() + b.size());
}

size_t MyersBoundedDistance(std::string_view a, std::string_view b,
                            size_t limit) {
  const size_t gap =
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  if (gap > limit) return limit + 1;
  // Clamping keeps the bail-out arithmetic overflow-free while
  // preserving min(distance, limit + 1): a limit at or above the length
  // sum can never bind.
  limit = std::min(limit, a.size() + b.size());
  return Dispatch(a, b, limit);
}

MyersStats& ThreadMyersStats() { return tls_stats; }

}  // namespace sxnm::text
