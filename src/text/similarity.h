// Similarity-function registry.
//
// The paper's Def. 2 allows a different φ^OD per object-description entry
// ("using domain-knowledge, more accurate φ functions can be used, e.g., a
// numeric distance function for numerical values"). Configurations refer
// to φ functions by name; this registry resolves the names.

#ifndef SXNM_TEXT_SIMILARITY_H_
#define SXNM_TEXT_SIMILARITY_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sxnm::text {

/// A φ^OD function: maps two field values to a similarity in [0, 1].
using SimilarityFn =
    std::function<double(std::string_view, std::string_view)>;

/// Numeric similarity: both inputs are parsed as doubles; similarity decays
/// linearly with the absolute difference, reaching 0 at `scale`:
///   sim = max(0, 1 - |a-b| / scale)
/// Unparsable inputs fall back to exact string comparison (1 or 0).
double NumericSimilarity(std::string_view a, std::string_view b, double scale);

/// Filtered edit similarity (the paper's outlook, citing [17]): returns
/// the exact normalized edit similarity when it is >= `threshold` and 0.0
/// otherwise, but computes cheaply:
///   * a length filter rejects pairs whose size difference alone implies
///     a similarity below the threshold, without any DP;
///   * otherwise a *bounded* Levenshtein computation stops as soon as the
///     distance provably exceeds the allowed budget.
/// Exact above the threshold; values below are clamped to 0 (fine for
/// classification, slightly pessimistic inside weighted sums).
double ThresholdedEditSimilarity(std::string_view a, std::string_view b,
                                 double threshold);

/// 1.0 when the strings are byte-identical, else 0.0.
double ExactSimilarity(std::string_view a, std::string_view b);

/// Case/whitespace-insensitive exact match.
double ExactNormalizedSimilarity(std::string_view a, std::string_view b);

/// Names understood by GetSimilarity:
///   "edit"            NormalizedEditSimilarity (default φ^OD)
///   "edit_raw"        EditSimilarity (case-sensitive)
///   "osa"             OsaSimilarity (transposition-aware)
///   "jaro"            JaroSimilarity
///   "jaro_winkler"    JaroWinklerSimilarity
///   "qgram2"/"qgram3" QGramSimilarity with q = 2 / 3
///   "word_jaccard"    WordJaccardSimilarity
///   "monge_elkan"     MongeElkanSimilarity (token best-match average)
///   "soundex"         SoundexSimilarity
///   "numeric"         NumericSimilarity with scale 10 (years etc.)
///   "numeric:<scale>" NumericSimilarity with a custom scale
///   "edit_filtered:<t>" ThresholdedEditSimilarity with threshold t
///   "exact"           ExactSimilarity
///   "exact_norm"      ExactNormalizedSimilarity
util::Result<SimilarityFn> GetSimilarity(std::string_view name);

/// All fixed registry names (excludes the parameterized "numeric:<scale>").
std::vector<std::string> SimilarityNames();

}  // namespace sxnm::text

#endif  // SXNM_TEXT_SIMILARITY_H_
