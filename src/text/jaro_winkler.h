// Jaro and Jaro-Winkler similarity — an alternative φ^OD for short,
// name-like strings (persons, artists). Used in the φ-function ablation
// bench (A3 in DESIGN.md).

#ifndef SXNM_TEXT_JARO_WINKLER_H_
#define SXNM_TEXT_JARO_WINKLER_H_

#include <string_view>

namespace sxnm::text {

/// Classic Jaro similarity in [0, 1]. Two empty strings score 1.0;
/// one empty string scores 0.0.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by a common-prefix bonus.
/// `prefix_scale` is Winkler's p (default 0.1, capped so that the result
/// stays within [0, 1] for prefixes up to 4 characters).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace sxnm::text

#endif  // SXNM_TEXT_JARO_WINKLER_H_
