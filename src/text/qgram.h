// Positional-free q-gram similarity — a token-level alternative φ^OD that
// is robust to word reorderings ("Reeves, Keanu" vs "Keanu Reeves").

#ifndef SXNM_TEXT_QGRAM_H_
#define SXNM_TEXT_QGRAM_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sxnm::text {

/// Produces the multiset of q-grams of `s` after padding with q-1 copies of
/// '#' on both sides (so short strings still produce grams).
/// Profile("ab", 2) == {"#a", "ab", "b#"}.
std::vector<std::string> QGramProfile(std::string_view s, size_t q);

/// Dice coefficient over q-gram multisets: 2*|A∩B| / (|A|+|B|).
/// Two empty strings score 1.0; one empty string scores 0.0.
double QGramSimilarity(std::string_view a, std::string_view b, size_t q);

/// Jaccard coefficient over *word* sets (whitespace tokens, lowercased):
/// |A∩B| / |A∪B|. Useful for multi-word titles.
double WordJaccardSimilarity(std::string_view a, std::string_view b);

/// Monge-Elkan similarity (the domain-independent matcher of Monge &
/// Elkan, [14] in the paper): tokenize both strings; for every token of
/// the shorter side take its best edit-similarity match on the other
/// side; return the average of those best matches. Robust to token
/// reordering and extra tokens ("Keanu Reeves" vs "Reeves, Keanu C.").
double MongeElkanSimilarity(std::string_view a, std::string_view b);

}  // namespace sxnm::text

#endif  // SXNM_TEXT_QGRAM_H_
