#include "text/similarity.h"

#include <algorithm>
#include <cmath>

#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/qgram.h"
#include "text/soundex.h"
#include "util/string_util.h"

namespace sxnm::text {

double NumericSimilarity(std::string_view a, std::string_view b,
                         double scale) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  double va = util::ParseDoubleOr(a, kNan);
  double vb = util::ParseDoubleOr(b, kNan);
  if (std::isnan(va) || std::isnan(vb)) {
    return ExactNormalizedSimilarity(a, b);
  }
  if (scale <= 0) return va == vb ? 1.0 : 0.0;
  double diff = std::fabs(va - vb);
  return diff >= scale ? 0.0 : 1.0 - diff / scale;
}

double ThresholdedEditSimilarity(std::string_view a, std::string_view b,
                                 double threshold) {
  std::string na = util::ToLower(util::NormalizeWhitespace(a));
  std::string nb = util::ToLower(util::NormalizeWhitespace(b));
  size_t longest = std::max(na.size(), nb.size());
  if (longest == 0) return 1.0;

  // sim >= threshold  <=>  distance <= (1 - threshold) * longest.
  // The epsilon keeps exact boundary cases (e.g. t=0.8, len=10, d=2) on
  // the inclusive side despite floating-point rounding.
  double budget_f = (1.0 - threshold) * static_cast<double>(longest);
  size_t budget = static_cast<size_t>(budget_f + 1e-9);

  // Length filter: |len_a - len_b| is a lower bound on the distance.
  size_t len_gap = na.size() > nb.size() ? na.size() - nb.size()
                                         : nb.size() - na.size();
  if (len_gap > budget) return 0.0;

  size_t distance = BoundedLevenshteinDistance(na, nb, budget);
  if (distance > budget) return 0.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

double ExactSimilarity(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

double ExactNormalizedSimilarity(std::string_view a, std::string_view b) {
  return util::ToLower(util::NormalizeWhitespace(a)) ==
                 util::ToLower(util::NormalizeWhitespace(b))
             ? 1.0
             : 0.0;
}

util::Result<SimilarityFn> GetSimilarity(std::string_view name) {
  std::string n = util::ToLower(util::Trim(name));
  if (n.empty() || n == "edit" || n == "levenshtein") {
    return SimilarityFn(NormalizedEditSimilarity);
  }
  if (n == "edit_raw") return SimilarityFn(EditSimilarity);
  if (n == "osa") return SimilarityFn(OsaSimilarity);
  if (n == "jaro") return SimilarityFn(JaroSimilarity);
  if (n == "jaro_winkler") {
    return SimilarityFn([](std::string_view a, std::string_view b) {
      return JaroWinklerSimilarity(a, b);
    });
  }
  if (n == "qgram2") {
    return SimilarityFn([](std::string_view a, std::string_view b) {
      return QGramSimilarity(a, b, 2);
    });
  }
  if (n == "qgram3") {
    return SimilarityFn([](std::string_view a, std::string_view b) {
      return QGramSimilarity(a, b, 3);
    });
  }
  if (n == "word_jaccard") return SimilarityFn(WordJaccardSimilarity);
  if (n == "monge_elkan") return SimilarityFn(MongeElkanSimilarity);
  if (n == "soundex") return SimilarityFn(SoundexSimilarity);
  if (n == "exact") return SimilarityFn(ExactSimilarity);
  if (n == "exact_norm") return SimilarityFn(ExactNormalizedSimilarity);
  if (n == "numeric") {
    return SimilarityFn([](std::string_view a, std::string_view b) {
      return NumericSimilarity(a, b, 10.0);
    });
  }
  if (util::StartsWith(n, "edit_filtered:")) {
    double threshold =
        util::ParseDoubleOr(std::string_view(n).substr(14), -1.0);
    if (threshold < 0.0 || threshold > 1.0) {
      return util::Status::InvalidArgument(
          "bad edit_filtered threshold in '" + std::string(name) + "'");
    }
    return SimilarityFn([threshold](std::string_view a, std::string_view b) {
      return ThresholdedEditSimilarity(a, b, threshold);
    });
  }
  if (util::StartsWith(n, "numeric:")) {
    double scale =
        util::ParseDoubleOr(std::string_view(n).substr(8), -1.0);
    if (scale <= 0) {
      return util::Status::InvalidArgument(
          "bad numeric similarity scale in '" + std::string(name) + "'");
    }
    return SimilarityFn([scale](std::string_view a, std::string_view b) {
      return NumericSimilarity(a, b, scale);
    });
  }
  return util::Status::NotFound("unknown similarity function '" +
                                std::string(name) + "'");
}

std::vector<std::string> SimilarityNames() {
  return {"edit",         "edit_raw", "osa",    "jaro",
          "jaro_winkler", "qgram2",   "qgram3", "word_jaccard",
          "monge_elkan",  "soundex",  "numeric", "exact",
          "exact_norm"};
}

}  // namespace sxnm::text
