#include "text/jaro_winkler.h"

#include <algorithm>
#include <vector>

namespace sxnm::text {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  // Match window: floor(max/2) - 1.
  size_t window = std::max(a.size(), b.size()) / 2;
  window = window > 0 ? window - 1 : 0;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  double m = static_cast<double>(matches);
  double t = static_cast<double>(transpositions) / 2.0;
  return (m / a.size() + m / b.size() + (m - t) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  // Common prefix, at most 4 characters per Winkler's formulation.
  size_t prefix = 0;
  size_t max_prefix = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  double scale = std::min(prefix_scale, 0.25);  // keep result <= 1
  return jaro + static_cast<double>(prefix) * scale * (1.0 - jaro);
}

}  // namespace sxnm::text
