#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

#include "text/myers.h"
#include "util/string_util.h"

namespace sxnm::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();

  // Single-row DP over the shorter string.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];  // D[i-1][j]
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                  size_t limit) {
  // Bit-parallel kernel (text/myers.h): exact, with the same
  // min(distance, limit + 1) contract the classic bounded row DP had,
  // but one column costs a handful of word operations instead of a cell
  // update per pattern character — and the bail-out fires after
  // O(limit) columns on dissimilar inputs.
  return MyersBoundedDistance(a, b, limit);
}

size_t OsaDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();

  // Three rolling rows: i-2, i-1, i.
  size_t width = b.size() + 1;
  std::vector<size_t> prev2(width), prev(width), cur(width);
  for (size_t j = 0; j < width; ++j) prev[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({cur[j - 1] + 1, prev[j] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

namespace {

double NormalizeDistance(size_t distance, size_t len_a, size_t len_b) {
  size_t longest = std::max(len_a, len_b);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(distance) / static_cast<double>(longest);
}

}  // namespace

double EditSimilarity(std::string_view a, std::string_view b) {
  return NormalizeDistance(LevenshteinDistance(a, b), a.size(), b.size());
}

double OsaSimilarity(std::string_view a, std::string_view b) {
  return NormalizeDistance(OsaDistance(a, b), a.size(), b.size());
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  std::string na = util::ToLower(util::NormalizeWhitespace(a));
  std::string nb = util::ToLower(util::NormalizeWhitespace(b));
  return EditSimilarity(na, nb);
}

double BoundedEditSimilarity(std::string_view a, std::string_view b,
                             double min_sim, bool* pruned_out) {
  if (pruned_out != nullptr) *pruned_out = false;
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  if (min_sim <= 0.0) return EditSimilarity(a, b);

  // sim >= min_sim  <=>  distance <= (1 - min_sim) * longest. The +1e-9
  // guards against the product rounding just below an integer budget,
  // which would wrongly shrink the limit by one.
  size_t limit = static_cast<size_t>(
      (1.0 - std::min(min_sim, 1.0)) * static_cast<double>(longest) + 1e-9);
  size_t distance = BoundedLevenshteinDistance(a, b, limit);
  if (distance > limit && pruned_out != nullptr) *pruned_out = true;
  // When bailed out, distance == limit + 1 <= true distance, so the
  // normalized value is an upper bound of the true similarity.
  return NormalizeDistance(distance, a.size(), b.size());
}

}  // namespace sxnm::text
