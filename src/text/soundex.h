// American Soundex phonetic encoding. Offered as an additional key
// transform for SXNM key generation (extension over the paper's K/C/D
// patterns): sorting by a phonetic code places differently-misspelled
// names adjacently.

#ifndef SXNM_TEXT_SOUNDEX_H_
#define SXNM_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace sxnm::text {

/// Classic 4-character Soundex code ("Robert" -> "R163"). Non-ASCII-alpha
/// characters are ignored; an input without letters encodes to "0000".
std::string Soundex(std::string_view s);

/// 1.0 when codes are equal, otherwise the fraction of matching code
/// positions — a coarse phonetic similarity.
double SoundexSimilarity(std::string_view a, std::string_view b);

}  // namespace sxnm::text

#endif  // SXNM_TEXT_SOUNDEX_H_
