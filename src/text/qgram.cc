#include "text/qgram.h"

#include <algorithm>
#include <map>
#include <set>

#include "text/edit_distance.h"
#include "util/string_util.h"

namespace sxnm::text {

std::vector<std::string> QGramProfile(std::string_view s, size_t q) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  std::string padded(q - 1, '#');
  padded += s;
  padded.append(q - 1, '#');
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

double QGramSimilarity(std::string_view a, std::string_view b, size_t q) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;

  std::map<std::string, size_t> counts;
  for (auto& g : QGramProfile(a, q)) ++counts[std::move(g)];
  size_t size_a = 0, size_b = 0, overlap = 0;
  for (const auto& [gram, count] : counts) size_a += count;

  for (auto& g : QGramProfile(b, q)) {
    ++size_b;
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>(size_a + size_b);
}

double WordJaccardSimilarity(std::string_view a, std::string_view b) {
  std::set<std::string> words_a, words_b;
  for (auto& w : util::SplitWhitespace(a)) words_a.insert(util::ToLower(w));
  for (auto& w : util::SplitWhitespace(b)) words_b.insert(util::ToLower(w));
  if (words_a.empty() && words_b.empty()) return 1.0;
  if (words_a.empty() || words_b.empty()) return 0.0;

  size_t overlap = 0;
  for (const auto& w : words_a) overlap += words_b.count(w);
  size_t unions = words_a.size() + words_b.size() - overlap;
  return static_cast<double>(overlap) / static_cast<double>(unions);
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> tokens_a = util::SplitWhitespace(util::ToLower(a));
  std::vector<std::string> tokens_b = util::SplitWhitespace(util::ToLower(b));
  if (tokens_a.empty() && tokens_b.empty()) return 1.0;
  if (tokens_a.empty() || tokens_b.empty()) return 0.0;

  // Iterate over the shorter token list so that supersets score well
  // symmetrically ("Keanu Reeves" ⊂ "Keanu Charles Reeves").
  const std::vector<std::string>* outer = &tokens_a;
  const std::vector<std::string>* inner = &tokens_b;
  if (outer->size() > inner->size()) std::swap(outer, inner);

  // Strip leading/trailing ASCII punctuation ("reeves," vs "reeves");
  // falls back to the raw token when stripping would empty it (non-Latin
  // tokens).
  auto strip = [](const std::string& s) -> std::string_view {
    auto is_word = [](char c) {
      return util::IsAsciiAlpha(c) || util::IsAsciiDigit(c) ||
             static_cast<unsigned char>(c) >= 0x80;
    };
    size_t b = 0, e = s.size();
    while (b < e && !is_word(s[b])) ++b;
    while (e > b && !is_word(s[e - 1])) --e;
    if (b >= e) return s;
    return std::string_view(s).substr(b, e - b);
  };

  double total = 0.0;
  for (const std::string& t : *outer) {
    double best = 0.0;
    for (const std::string& u : *inner) {
      best = std::max(best, EditSimilarity(strip(t), strip(u)));
      if (best >= 1.0) break;
    }
    total += best;
  }
  return total / static_cast<double>(outer->size());
}

}  // namespace sxnm::text
