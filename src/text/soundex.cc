#include "text/soundex.h"

#include "util/string_util.h"

namespace sxnm::text {

namespace {

// Soundex digit for a letter; '0' for vowels and h/w/y (non-coding).
char SoundexDigit(char c) {
  switch (util::AsciiToLower(c)) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

bool IsHW(char c) {
  char lower = util::AsciiToLower(c);
  return lower == 'h' || lower == 'w';
}

}  // namespace

std::string Soundex(std::string_view s) {
  // Find the first letter.
  size_t first = 0;
  while (first < s.size() && !util::IsAsciiAlpha(s[first])) ++first;
  if (first == s.size()) return "0000";

  std::string code(1, util::AsciiToUpper(s[first]));
  char last_digit = SoundexDigit(s[first]);

  for (size_t i = first + 1; i < s.size() && code.size() < 4; ++i) {
    char c = s[i];
    if (!util::IsAsciiAlpha(c)) {
      last_digit = '0';
      continue;
    }
    char digit = SoundexDigit(c);
    if (digit == '0') {
      // h/w do not reset the adjacency rule; vowels do.
      if (!IsHW(c)) last_digit = '0';
      continue;
    }
    if (digit != last_digit) code.push_back(digit);
    last_digit = digit;
  }
  code.resize(4, '0');
  return code;
}

double SoundexSimilarity(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a);
  std::string cb = Soundex(b);
  int matching = 0;
  for (size_t i = 0; i < 4; ++i) matching += (ca[i] == cb[i]) ? 1 : 0;
  return matching / 4.0;
}

}  // namespace sxnm::text
