#include "sxnm/shard_plan.h"

namespace sxnm::core {

std::vector<ShardSlice> ComputeShardPlan(size_t n, size_t shards,
                                         size_t window) {
  if (shards == 0) shards = 1;
  size_t overlap = window > 0 ? window - 1 : 0;
  std::vector<ShardSlice> plan;
  plan.reserve(shards);
  size_t base = n / shards;
  size_t remainder = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t size = base + (s < remainder ? 1 : 0);
    ShardSlice slice;
    slice.owned_begin = begin;
    slice.owned_end = begin + size;
    slice.context_begin =
        slice.owned_begin > overlap ? slice.owned_begin - overlap : 0;
    plan.push_back(slice);
    begin = slice.owned_end;
  }
  return plan;
}

size_t ShardOverlapRows(const std::vector<ShardSlice>& plan) {
  size_t total = 0;
  for (const ShardSlice& slice : plan) {
    total += slice.owned_begin - slice.context_begin;
  }
  return total;
}

}  // namespace sxnm::core
