// Candidate forest extraction (Fig. 3 of the paper).
//
// From the configured candidates' absolute paths and a concrete document,
// this module materializes
//   * the instances of every candidate (in document order), and
//   * the candidate *type* forest: candidate t is a child of candidate s
//     when instances of t have an instance of s as their nearest candidate
//     ancestor (intermediate non-candidate elements like <people> or
//     <tracks> are skipped, preserving ancestor-descendant relationships),
// together with, for every instance of s, the list of its nearest
// descendant instances per child type — the l_e lists of Def. 3.
//
// The processing order for bottom-up detection is a reverse topological
// order of the parent->child edges: leaves (largest depth δ) first, roots
// last, exactly as in Sec. 3.4.

#ifndef SXNM_SXNM_CANDIDATE_TREE_H_
#define SXNM_SXNM_CANDIDATE_TREE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "sxnm/config.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::core {

/// Instances and relations of one candidate within a document.
struct CandidateInstances {
  const CandidateConfig* config = nullptr;

  /// Instance ordinal -> element (document order).
  std::vector<const xml::Element*> elements;

  /// Instance ordinal -> document element ID (the paper's eid).
  std::vector<xml::ElementId> eids;

  /// Candidate indices (into CandidateForest::candidates()) of descendant
  /// candidate types observed under this candidate's instances.
  std::vector<size_t> child_types;

  /// desc_instances[slot][ordinal] = ordinals (within child type
  /// child_types[slot]) of the nearest candidate descendants of instance
  /// `ordinal`. Parallel to `child_types`.
  std::vector<std::vector<std::vector<size_t>>> desc_instances;

  /// Distance δ from the extracted forest's root level (roots have 0).
  int depth = 0;

  size_t NumInstances() const { return elements.size(); }
};

class CandidateForest {
 public:
  /// Builds the forest. The forest keeps its own copy of `config`
  /// (CandidateInstances::config points into that copy, so the caller's
  /// Config may be a temporary); `doc` must outlive the forest. Fails when
  ///   * two candidates' absolute paths select the same element, or
  ///   * candidate nesting is cyclic at the type level (e.g. recursive
  ///     elements), which bottom-up processing cannot order.
  static util::Result<CandidateForest> Build(const Config& config,
                                             const xml::Document& doc);

  CandidateForest(const CandidateForest&) = delete;
  CandidateForest& operator=(const CandidateForest&) = delete;
  CandidateForest(CandidateForest&&) = default;
  CandidateForest& operator=(CandidateForest&&) = default;

  const std::vector<CandidateInstances>& candidates() const {
    return candidates_;
  }

  /// Index of a candidate by name; -1 when absent.
  int IndexOf(std::string_view name) const;

  /// Candidate indices in bottom-up processing order (children strictly
  /// before parents).
  const std::vector<size_t>& ProcessingOrder() const {
    return processing_order_;
  }

  /// Total number of candidate instances across all types.
  size_t TotalInstances() const;

 private:
  CandidateForest() = default;

  // Owned copy of the configuration; CandidateInstances::config points
  // into it. Held by unique_ptr so moves do not invalidate the pointers.
  std::unique_ptr<Config> config_;
  std::vector<CandidateInstances> candidates_;
  std::vector<size_t> processing_order_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_CANDIDATE_TREE_H_
