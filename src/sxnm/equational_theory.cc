#include "sxnm/equational_theory.h"

#include <algorithm>

namespace sxnm::core {

namespace {

// Index of `pid` within `od_pids`, or -1.
int IndexOfPid(const std::vector<int>& od_pids, int pid) {
  for (size_t i = 0; i < od_pids.size(); ++i) {
    if (od_pids[i] == pid) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

bool EquationalTheory::UsesDescendants() const {
  for (const Rule& rule : rules_) {
    for (const RuleCondition& cond : rule.conditions) {
      if (cond.pid == RuleCondition::kDescendants) return true;
    }
  }
  return false;
}

bool EquationalTheory::Fires(const std::vector<double>& od_sims,
                             const std::vector<int>& od_pids,
                             double desc_sim) const {
  for (const Rule& rule : rules_) {
    bool all_hold = !rule.conditions.empty();
    for (const RuleCondition& cond : rule.conditions) {
      double sim;
      if (cond.pid == RuleCondition::kDescendants) {
        if (desc_sim < 0.0) {
          all_hold = false;
          break;
        }
        sim = desc_sim;
      } else {
        int index = IndexOfPid(od_pids, cond.pid);
        if (index < 0) {
          all_hold = false;
          break;
        }
        sim = od_sims[static_cast<size_t>(index)];
      }
      if (sim < cond.min_similarity) {
        all_hold = false;
        break;
      }
    }
    if (all_hold) return true;
  }
  return false;
}

util::Status EquationalTheory::Validate(
    const std::vector<int>& od_pids) const {
  for (size_t r = 0; r < rules_.size(); ++r) {
    const Rule& rule = rules_[r];
    if (rule.conditions.empty()) {
      return util::Status::InvalidArgument(
          "rule " + std::to_string(r + 1) + " has no conditions");
    }
    for (const RuleCondition& cond : rule.conditions) {
      if (cond.min_similarity < 0.0 || cond.min_similarity > 1.0) {
        return util::Status::InvalidArgument(
            "rule " + std::to_string(r + 1) +
            ": min similarity out of [0,1]");
      }
      if (cond.pid != RuleCondition::kDescendants &&
          IndexOfPid(od_pids, cond.pid) < 0) {
        return util::Status::InvalidArgument(
            "rule " + std::to_string(r + 1) + " references pid " +
            std::to_string(cond.pid) + " which is not an OD entry");
      }
    }
  }
  return util::Status::Ok();
}

}  // namespace sxnm::core
