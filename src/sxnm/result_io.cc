#include "sxnm/result_io.h"

#include <memory>

#include "util/string_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace sxnm::core {

using util::Result;
using util::Status;

const StoredCandidateResult* StoredDetectionResult::Find(
    std::string_view name) const {
  for (const StoredCandidateResult& c : candidates) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

xml::Document ResultToXml(const DetectionResult& result) {
  auto root = std::make_unique<xml::Element>("sxnm-result");
  for (const CandidateResult& cand : result.candidates) {
    xml::Element* celem = root->AddElement("candidate");
    celem->SetAttribute("name", cand.name);
    celem->SetAttribute("instances", std::to_string(cand.num_instances));
    for (const auto& cluster : cand.clusters.NonTrivialClusters()) {
      xml::Element* cl = celem->AddElement("cluster");
      cl->SetAttribute(
          "cid", std::to_string(cand.clusters.cid(cluster.front())));
      for (size_t ordinal : cluster) {
        xml::Element* member = cl->AddElement("member");
        member->SetAttribute("ordinal", std::to_string(ordinal));
        member->SetAttribute("eid",
                             std::to_string(cand.gk.rows[ordinal].eid));
      }
    }
  }
  xml::Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

std::string ResultToXmlString(const DetectionResult& result) {
  return xml::WriteDocument(ResultToXml(result));
}

util::Result<StoredDetectionResult> ResultFromXml(const xml::Document& doc) {
  if (doc.root() == nullptr || doc.root()->name() != "sxnm-result") {
    return Status::ParseError("expected root element <sxnm-result>");
  }

  StoredDetectionResult stored;
  for (const xml::Element* celem : doc.root()->ChildElements("candidate")) {
    StoredCandidateResult cand;
    cand.name = celem->AttributeOr("name", "");
    if (cand.name.empty()) {
      return Status::ParseError("<candidate> without name");
    }
    int instances = util::ParseNonNegativeInt(
        util::TrimView(celem->AttributeOr("instances", "")));
    if (instances < 0) {
      return Status::ParseError("candidate '" + cand.name +
                                "': bad instances attribute");
    }
    cand.num_instances = static_cast<size_t>(instances);
    cand.eids.assign(cand.num_instances, xml::kInvalidElementId);

    std::vector<std::vector<size_t>> clusters;
    for (const xml::Element* cl : celem->ChildElements("cluster")) {
      std::vector<size_t> members;
      for (const xml::Element* member : cl->ChildElements("member")) {
        int ordinal = util::ParseNonNegativeInt(
            util::TrimView(member->AttributeOr("ordinal", "")));
        if (ordinal < 0 ||
            static_cast<size_t>(ordinal) >= cand.num_instances) {
          return Status::ParseError("candidate '" + cand.name +
                                    "': member ordinal out of range");
        }
        int eid = util::ParseNonNegativeInt(
            util::TrimView(member->AttributeOr("eid", "")));
        if (eid >= 0) {
          cand.eids[static_cast<size_t>(ordinal)] =
              static_cast<xml::ElementId>(eid);
        }
        members.push_back(static_cast<size_t>(ordinal));
      }
      if (members.size() < 2) {
        return Status::ParseError("candidate '" + cand.name +
                                  "': cluster with fewer than 2 members");
      }
      clusters.push_back(std::move(members));
    }
    // FromClusters asserts disjointness in debug; verify here for release.
    std::vector<bool> seen(cand.num_instances, false);
    for (const auto& cluster : clusters) {
      for (size_t ordinal : cluster) {
        if (seen[ordinal]) {
          return Status::ParseError("candidate '" + cand.name +
                                    "': ordinal " + std::to_string(ordinal) +
                                    " appears in two clusters");
        }
        seen[ordinal] = true;
      }
    }
    cand.clusters =
        ClusterSet::FromClusters(std::move(clusters), cand.num_instances);
    stored.candidates.push_back(std::move(cand));
  }
  return stored;
}

util::Result<StoredDetectionResult> ResultFromXmlString(
    std::string_view text) {
  auto doc = xml::Parse(text);
  if (!doc.ok()) return doc.status();
  return ResultFromXml(doc.value());
}

}  // namespace sxnm::core
