#include "sxnm/subtree_pool.h"

#include <cstring>
#include <vector>

namespace sxnm::core {

namespace {

void AppendU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void AppendSized(std::string& out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

}  // namespace

uint32_t SubtreePool::InternEncoding() {
  ++nodes_seen_;
  auto it = index_.find(std::string_view(scratch_));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(index_.size());
  bytes_ += scratch_.size();
  index_.emplace(scratch_, id);
  return id;
}

SubtreeRef SubtreePool::Intern(const xml::Element& root) {
  // Explicit post-order: a frame per element with the index of the next
  // child to descend into; completed children leave their id on `ids`, so
  // when a frame finishes, the last NumChildren() entries of `ids` are
  // its children's ids in document order.
  struct Frame {
    const xml::Element* element;
    size_t next_child;
    size_t ids_base;  // size of `ids` when the frame was pushed
  };
  std::vector<Frame> stack;
  std::vector<uint32_t> ids;
  stack.push_back({&root, 0, 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const xml::Element* element = frame.element;
    if (frame.next_child < element->NumChildren()) {
      const xml::Node* child =
          element->children()[frame.next_child++].get();
      if (const xml::Element* e = child->AsElement()) {
        stack.push_back({e, 0, ids.size()});
        continue;
      }
      // Leaf node kinds are encoded and interned inline.
      scratch_.clear();
      switch (child->kind()) {
        case xml::NodeKind::kText:
          scratch_.push_back('T');
          scratch_.append(static_cast<const xml::TextNode*>(child)->text());
          break;
        case xml::NodeKind::kCdata:
          scratch_.push_back('D');
          scratch_.append(static_cast<const xml::TextNode*>(child)->text());
          break;
        case xml::NodeKind::kComment:
          scratch_.push_back('C');
          scratch_.append(
              static_cast<const xml::CommentNode*>(child)->text());
          break;
        case xml::NodeKind::kElement:
          break;  // unreachable: handled above
      }
      ids.push_back(InternEncoding());
      continue;
    }

    // All children interned: encode this element over their ids.
    scratch_.clear();
    scratch_.push_back('E');
    AppendSized(scratch_, element->name());
    AppendU32(scratch_, static_cast<uint32_t>(element->attributes().size()));
    for (const xml::Attribute& attr : element->attributes()) {
      AppendSized(scratch_, attr.name);
      AppendSized(scratch_, attr.value);
    }
    size_t num_children = ids.size() - frame.ids_base;
    AppendU32(scratch_, static_cast<uint32_t>(num_children));
    for (size_t i = frame.ids_base; i < ids.size(); ++i) {
      AppendU32(scratch_, ids[i]);
    }
    ids.resize(frame.ids_base);
    ids.push_back(InternEncoding());
    stack.pop_back();
  }

  return SubtreeRef{ids.back()};
}

}  // namespace sxnm::core
