// The SXNM detector: orchestrates the full workflow of Fig. 1 —
// key generation, then per-candidate multi-pass sorted-window duplicate
// detection in bottom-up order, with per-phase wall-clock accounting
// matching the paper's KG / SW / TC / DD breakdown (Experiment set 2).

#ifndef SXNM_SXNM_DETECTOR_H_
#define SXNM_SXNM_DETECTOR_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sxnm/candidate_tree.h"
#include "sxnm/cluster_set.h"
#include "sxnm/config.h"
#include "sxnm/detection_report.h"
#include "sxnm/key_generation.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "xml/node.h"

namespace sxnm::core {

/// Phase names used in DetectionResult::timer.
inline constexpr char kPhaseKeyGeneration[] = "key_generation";
inline constexpr char kPhaseSlidingWindow[] = "sliding_window";
inline constexpr char kPhaseTransitiveClosure[] = "transitive_closure";

/// Detection output for one candidate.
struct CandidateResult {
  std::string name;
  size_t num_instances = 0;

  /// Pairs accepted by the similarity measure, as instance ordinals and as
  /// document element IDs; deduplicated across passes, sorted.
  std::vector<OrdinalPair> duplicate_pairs;
  std::vector<std::pair<xml::ElementId, xml::ElementId>> duplicate_eid_pairs;

  /// The cluster set CS_s after transitive closure.
  ClusterSet clusters;

  /// Similarity-measure invocations (windowed pairs actually compared).
  size_t comparisons = 0;

  /// The GK relation (kept for diagnostics, examples, and tests).
  GkTable gk;
};

/// Per-run options orthogonal to the (reusable) configuration.
struct RunOptions {
  /// Cooperative cancellation: Run polls this token at phase boundaries
  /// and every few thousand windowed pairs. A cancelled run still returns
  /// an OK Result — a partial DetectionResult whose DegradationReport is
  /// flagged kCancelled — never a half-built error.
  util::CancellationToken cancellation;

  /// Non-empty overrides Config::checkpoint() for this run: durable
  /// snapshots are committed to / resumed from this path (see
  /// CheckpointConfig for the full contract).
  std::string checkpoint_path;

  /// Paired with checkpoint_path (ignored while that is empty): snapshot
  /// at every completed level (true) or only after key generation.
  bool checkpoint_every_pass = true;
};

struct DetectionResult {
  /// Per-candidate results in bottom-up processing order.
  std::vector<CandidateResult> candidates;

  /// Phase timings: kPhaseKeyGeneration / kPhaseSlidingWindow /
  /// kPhaseTransitiveClosure.
  util::PhaseTimer timer;

  /// Engine-wide metrics of this run (kg.*, sw.*, tc.* counters and
  /// histograms). Empty unless Config::observability().metrics is on.
  obs::MetricsSnapshot metrics;

  /// Per-candidate × per-pass statistics. Empty unless
  /// Config::observability().metrics is on. report.TotalComparisons()
  /// equals the "sw.comparisons" counter in `metrics`.
  DetectionReport report;

  /// What the governance layer shed (always populated, metrics or not).
  /// Not degraded whenever the run completed all planned work. Its totals
  /// equal the robust.* counters in `metrics` when metrics are on.
  DegradationReport degradation;

  /// Span-attributed CPU profile of the run. Disabled (enabled == false)
  /// unless Config::observability().profile_path was set; with metrics
  /// on it is also embedded in `report` as the "profile" block.
  obs::CpuProfile profile;

  /// True when RunLimits/cancellation cut work: the result is a valid but
  /// partial detection (see `degradation` for what was shed).
  bool degraded() const { return degradation.degraded; }

  const CandidateResult* Find(std::string_view name) const;

  double KeyGenerationSeconds() const;
  double SlidingWindowSeconds() const;
  double TransitiveClosureSeconds() const;
  /// DD = SW + TC, the paper's "overall duplicate detection".
  double DuplicateDetectionSeconds() const;

  size_t TotalComparisons() const;
};

class Detector {
 public:
  /// The configuration is validated on first Run().
  explicit Detector(Config config) : config_(std::move(config)) {}

  const Config& config() const { return config_; }

  /// Runs SXNM over `doc`. The document must have element IDs assigned
  /// (xml::Parse does this; call doc.AssignElementIds() after manual
  /// construction or mutation).
  ///
  /// Governance (Config::limits()): a comparison budget — max_comparisons
  /// and/or a deadline converted once at run start via
  /// comparisons_per_second — sheds window passes deterministically: the
  /// same passes are shrunk/skipped for any num_threads. A deadline with
  /// rate 0 is instead enforced cooperatively against the wall clock
  /// (machine-dependent cut, always well-formed results). Shed work is
  /// recorded in DetectionResult::degradation; the run itself stays OK.
  util::Result<DetectionResult> Run(const xml::Document& doc) const;
  util::Result<DetectionResult> Run(const xml::Document& doc,
                                    const RunOptions& options) const;

 private:
  Config config_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_DETECTOR_H_
