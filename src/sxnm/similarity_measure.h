// SXNM similarity measure: OD similarity (Def. 2), descendant similarity
// (Def. 3), and their combination into a duplicate classification.
//
// Two comparison entry points exist. `Compare` reports exact similarity
// values. `CompareFast` is the sliding-window kernel: it additionally
// prunes the OD computation with bounded edit distances as soon as the
// best achievable weighted sum can no longer reach the classifier
// threshold. Both classify identically (`is_duplicate` only differs on
// floating-point ties within ~1e-9 of the threshold), but a pruned
// verdict reports an *upper bound* in `od_sim`/`combined` instead of the
// exact value. Both entry points skip the descendant Jaccard whenever its
// value cannot change the verdict.

#ifndef SXNM_SXNM_SIMILARITY_MEASURE_H_
#define SXNM_SXNM_SIMILARITY_MEASURE_H_

#include <vector>

#include "obs/explain.h"
#include "sxnm/candidate_tree.h"
#include "sxnm/cluster_set.h"
#include "sxnm/config.h"
#include "sxnm/key_generation.h"

namespace sxnm::core {

/// Outcome of comparing two candidate instances.
struct SimilarityVerdict {
  double od_sim = 0.0;        // sim^OD (Def. 2); an upper bound when
                              // `pruned`
  double desc_sim = 0.0;      // sim^Desc (Def. 3); meaningful only when
                              // used_descendants
  double combined = 0.0;      // sim^comb; an upper bound when `pruned`
  bool used_descendants = false;
  bool is_duplicate = false;
  bool pruned = false;        // CompareFast bailed out early; od_sim and
                              // combined are upper bounds, is_duplicate is
                              // still correct

  // Kernel accounting for the obs layer (which fast path decided the
  // verdict). Never feeds back into the classification.
  bool desc_evaluated = false;      // the descendant Jaccard actually ran
  bool desc_short_circuit = false;  // descendants were available but the
                                    // OD bounds alone fixed the verdict
  size_t interned_equal = 0;        // OD components scored 1.0 via interned
                                    // ID equality, no bytes touched
};

/// Reusable struct-of-arrays buffers for SimilarityMeasure::BatchFilter.
/// One instance per window pass (buffers grow to the batch size once and
/// are reused across flushes); `reject` holds the screen's output.
struct BatchFilterScratch {
  // Per-component gather: lower-bound distance, maximum length, weight.
  std::vector<float> d, m, w;
  // Weighted upper-bound accumulation (OD components / descendant slots).
  std::vector<float> od_acc, od_wsum;
  std::vector<float> desc_acc, desc_wsum;
  // Final screen value per pair (combined upper bound minus threshold).
  std::vector<float> screen;
  // reject[i] == 1: pair i is provably below the classifier threshold.
  std::vector<uint8_t> reject;

  // Per-ordinal columns of the row fields the screens read, built once
  // per pass (`rows_built` keys the cache): the per-pair sweeps then
  // index a few flat arrays instead of chasing GkRow -> std::string
  // pointers for every pair. Layout per OD component i, ordinal o at
  // `i * num_rows + o`: interned id, interned length, first/last byte
  // (packed, first << 8 | last), and whether the raw OD was empty.
  const void* rows_built = nullptr;
  size_t num_rows = 0;
  std::vector<uint32_t> col_id, col_len;
  std::vector<uint16_t> col_fl;
  std::vector<uint8_t> col_empty;
  // Descendant slot sizes, same layout (slot * num_rows + ordinal).
  std::vector<uint32_t> col_desc_size;
};

/// Compares instances of one candidate. Descendant information is
/// optional: pass the child cluster sets produced earlier in the
/// bottom-up order (parallel to `instances.child_types`); pass an empty
/// vector for leaf candidates or when descendants are disabled.
///
/// All comparison methods are const and touch no mutable state, so one
/// instance may be shared by concurrent window passes.
class SimilarityMeasure {
 public:
  /// `instances` and each element of `child_cluster_sets` must outlive
  /// this object. `child_cluster_sets` is either empty or parallel to
  /// `instances.child_types`. Construction precomputes the per-ordinal
  /// sorted, deduplicated descendant cluster-ID lists (the l_e of Def. 3),
  /// so per-pair descendant comparison is a linear merge.
  ///
  /// `od_pool` (when non-null, must outlive this object) is the pool the
  /// rows' interned `norm_ods` resolve against — normally the GkTable's
  /// own pool. Without a pool the edit fast path falls back to on-the-fly
  /// normalization of the raw OD values.
  SimilarityMeasure(const CandidateConfig& config,
                    const CandidateInstances& instances,
                    std::vector<const ClusterSet*> child_cluster_sets,
                    const OdPool* od_pool = nullptr);

  /// Weighted φ^OD similarity of two GK rows (Def. 2). Relevancies are
  /// normalized to sum to 1 over the *comparable* components: entries
  /// whose value is missing on both sides are skipped (no information),
  /// so e.g. two discs both lacking a <did> are compared on the remaining
  /// fields alone. Returns 0 when nothing is comparable. Always exact.
  double OdSimilarity(const GkRow& a, const GkRow& b) const;

  /// Per-OD-entry similarities (parallel to the config's OD entries).
  /// Components missing on both sides yield 0.0 here (an equational-
  /// theory condition on such a component fails).
  std::vector<double> ComponentSimilarities(const GkRow& a,
                                            const GkRow& b) const;

  /// Descendant similarity (Def. 3): per child type, the Jaccard ratio of
  /// the two instances' descendant cluster-ID sets; aggregated by
  /// averaging over child types where at least one side has descendants.
  /// Returns -1 when no child type yields a comparable pair (no
  /// descendant information at all).
  double DescendantSimilarity(size_t ordinal_a, size_t ordinal_b) const;

  /// Full comparison with exact similarity values in the verdict.
  SimilarityVerdict Compare(const GkRow& a, const GkRow& b) const;

  /// The sliding-window comparison kernel: classifies identically to
  /// Compare but with upper-bound pruning (see SimilarityVerdict::pruned).
  /// Falls back to the exact path when the candidate disables fast paths
  /// (CandidateConfig::enable_fast_paths) or rows lack precomputed
  /// normalized ODs.
  SimilarityVerdict CompareFast(const GkRow& a, const GkRow& b) const;

  /// True when the batched SoA pre-filter may screen pairs of `rows`:
  /// the candidate has batch_scoring (and thus fast paths) on, no
  /// equational theory, an OD pool, and every row carries interned
  /// normalized ODs. Checked once per candidate by the detector.
  bool BatchFilterEligible(const std::vector<GkRow>& rows) const;

  /// Batched upper-bound screen over `n` pending window pairs (ordinal
  /// pairs into `rows`). Gathers lengths, interned ids, first/last bytes
  /// and descendant-set sizes into `scratch`'s SoA buffers, computes
  /// vectorized per-pair upper bounds of the combined similarity
  /// (util/simd.h), and sets scratch->reject[i] = 1 exactly when pair i
  /// is *provably* below the classifier threshold — CompareFast would
  /// return is_duplicate == false. Sound but incomplete: reject[i] == 0
  /// says nothing, the pair still needs the kernel. Requires
  /// BatchFilterEligible(rows).
  void BatchFilter(const std::vector<GkRow>& rows, const OrdinalPair* pairs,
                   size_t n, BatchFilterScratch* scratch) const;

  /// Full decision breakdown for the explain log: exact per-component
  /// similarities (values, interned refs, edit distances), per-child-slot
  /// descendant Jaccard detail, the exact combined score, and which
  /// component the bounded kernel would have pruned at (`bailout`).
  /// Deliberately off the hot path — it recomputes everything without
  /// pruning, so scores match Compare, not CompareFast's upper bounds.
  obs::PairExplain Explain(const GkRow& a, const GkRow& b) const;

 private:
  SimilarityVerdict CompareImpl(const GkRow& a, const GkRow& b,
                                bool bounded) const;

  /// One φ^OD component. When the entry uses the default "edit" function
  /// and both rows carry interned normalized ODs (and fast paths are
  /// enabled), equal pool IDs score exactly 1.0 without touching bytes
  /// (counted into `*interned_out` when non-null); unequal IDs run the
  /// bounded edit-distance kernel: the result is exact whenever it is
  /// >= `min_sim`; otherwise `*pruned_out` is set and the result is an
  /// upper bound. Other φ functions are always exact.
  double ComponentSimilarity(const GkRow& a, const GkRow& b, size_t i,
                             double min_sim, bool* pruned_out,
                             size_t* interned_out = nullptr) const;

  /// OD similarity that bails out once even a perfect score on the
  /// remaining components cannot lift the renormalized weighted sum to
  /// `min_required`. Returns the exact similarity with `pruned == false`,
  /// or an upper bound with `pruned == true` (the bound is < the real
  /// requirement used by the caller). `min_required <= 0` disables
  /// pruning.
  double OdSimilarityBounded(const GkRow& a, const GkRow& b,
                             double min_required, bool* pruned_out,
                             size_t* interned_out = nullptr) const;

  /// Smallest OD similarity at which the pair could still be classified a
  /// duplicate in *some* branch of the combine mode (descendants at their
  /// most favorable value, including "no descendant info"), minus a 1e-9
  /// safety margin so bounded arithmetic never flips a borderline accept.
  double MinUsefulOd(bool desc_possible) const;

  /// Set-based reference implementation of Def. 3, used when fast paths
  /// are disabled (bench baselines measure the original kernel).
  double DescendantSimilaritySetBased(size_t ordinal_a,
                                      size_t ordinal_b) const;

  const CandidateConfig& config_;
  const CandidateInstances& instances_;
  std::vector<const ClusterSet*> child_cluster_sets_;
  const OdPool* od_pool_ = nullptr;

  /// desc_cids_[slot][ordinal]: sorted unique cluster IDs of the
  /// instance's nearest descendants of child type `slot`.
  std::vector<std::vector<std::vector<int>>> desc_cids_;

  /// Which OD entries use the default normalized-edit φ (eligible for the
  /// precomputed-normalization + bounded-DP kernel).
  std::vector<bool> od_is_norm_edit_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_SIMILARITY_MEASURE_H_
