// SXNM similarity measure: OD similarity (Def. 2), descendant similarity
// (Def. 3), and their combination into a duplicate classification.

#ifndef SXNM_SXNM_SIMILARITY_MEASURE_H_
#define SXNM_SXNM_SIMILARITY_MEASURE_H_

#include <vector>

#include "sxnm/candidate_tree.h"
#include "sxnm/cluster_set.h"
#include "sxnm/config.h"
#include "sxnm/key_generation.h"

namespace sxnm::core {

/// Outcome of comparing two candidate instances.
struct SimilarityVerdict {
  double od_sim = 0.0;        // sim^OD (Def. 2)
  double desc_sim = 0.0;      // sim^Desc (Def. 3); meaningful only when
                              // used_descendants
  double combined = 0.0;      // sim^comb
  bool used_descendants = false;
  bool is_duplicate = false;
};

/// Compares instances of one candidate. Descendant information is
/// optional: pass the child cluster sets produced earlier in the
/// bottom-up order (parallel to `instances.child_types`); pass an empty
/// vector for leaf candidates or when descendants are disabled.
class SimilarityMeasure {
 public:
  /// `instances` and each element of `child_cluster_sets` must outlive
  /// this object. `child_cluster_sets` is either empty or parallel to
  /// `instances.child_types`.
  SimilarityMeasure(const CandidateConfig& config,
                    const CandidateInstances& instances,
                    std::vector<const ClusterSet*> child_cluster_sets);

  /// Weighted φ^OD similarity of two GK rows (Def. 2). Relevancies are
  /// normalized to sum to 1 over the *comparable* components: entries
  /// whose value is missing on both sides are skipped (no information),
  /// so e.g. two discs both lacking a <did> are compared on the remaining
  /// fields alone. Returns 0 when nothing is comparable.
  double OdSimilarity(const GkRow& a, const GkRow& b) const;

  /// Per-OD-entry similarities (parallel to the config's OD entries).
  /// Components missing on both sides yield 0.0 here (an equational-
  /// theory condition on such a component fails).
  std::vector<double> ComponentSimilarities(const GkRow& a,
                                            const GkRow& b) const;

  /// Descendant similarity (Def. 3): per child type, the Jaccard ratio of
  /// the two instances' descendant cluster-ID sets; aggregated by
  /// averaging over child types where at least one side has descendants.
  /// Returns -1 when no child type yields a comparable pair (no
  /// descendant information at all).
  double DescendantSimilarity(size_t ordinal_a, size_t ordinal_b) const;

  /// Full comparison as performed inside the sliding window.
  SimilarityVerdict Compare(const GkRow& a, const GkRow& b) const;

 private:
  const CandidateConfig& config_;
  const CandidateInstances& instances_;
  std::vector<const ClusterSet*> child_cluster_sets_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_SIMILARITY_MEASURE_H_
