// Comparator algorithms from the paper's related work (Sec. 2), built on
// the same configuration/similarity machinery as SXNM so that
// effectiveness and efficiency are directly comparable:
//
//   * AllPairsDetector — DogmatiX-style exhaustive comparison ([8] in the
//     paper): every pair of candidate instances is compared, optionally
//     after a cheap filter that upper-bounds the OD similarity. "In the
//     worst case, all pairs of elements need to be compared, unlike the
//     sorted neighborhood method" — this detector realizes that worst
//     case and provides the effectiveness ceiling.
//
//   * TopDownDetector — DELPHI-style top-down processing ([5]): the
//     candidate forest is processed root-first, and instances of a child
//     candidate are compared only when their parents landed in the same
//     cluster ("compares only children with same or similar ancestors").
//     Efficient, but — exactly as Sec. 2 argues — it cannot find
//     duplicates across different parents (the movie/actor M:N case),
//     which the bottom-up SXNM handles.
//
// Both reuse CandidateConfig (paths, ODs, thresholds); keys are ignored
// by AllPairs (no sorting) and by TopDown (comparisons are scoped by the
// parent cluster instead of a window).

#ifndef SXNM_SXNM_COMPARATORS_H_
#define SXNM_SXNM_COMPARATORS_H_

#include "sxnm/detector.h"

namespace sxnm::core {

struct AllPairsOptions {
  /// When true, a pair is fully compared only if the cheap filter cannot
  /// rule it out: the filter upper-bounds each string φ by the length
  /// ratio of the values (edit similarity can never exceed
  /// min_len/max_len), so pairs whose weighted upper bound is below the
  /// candidate's OD threshold are skipped.
  bool use_filter = true;
};

/// DogmatiX-style detector: exhaustive pairwise comparison per candidate,
/// bottom-up across candidates (descendant information is still used, as
/// in DogmatiX). Phase accounting: the comparison work appears under
/// kPhaseSlidingWindow for comparability; `comparisons` counts full
/// similarity evaluations (pairs the filter ruled out are excluded).
class AllPairsDetector {
 public:
  explicit AllPairsDetector(Config config, AllPairsOptions options = {})
      : config_(std::move(config)), options_(options) {}

  util::Result<DetectionResult> Run(const xml::Document& doc) const;

 private:
  Config config_;
  AllPairsOptions options_;
};

struct TopDownOptions {
  /// Root-level candidates have no parent clusters to scope them; they are
  /// compared with a sorted window of this size (DELPHI similarly starts
  /// from the top dimension). Use a large value for exhaustive roots.
  size_t root_window = 10;
};

/// DELPHI-style top-down detector: parents first; children compared only
/// within the same parent cluster. Descendant similarity is unavailable
/// (children are not clustered yet when parents are compared), so parent
/// decisions use the OD alone.
class TopDownDetector {
 public:
  explicit TopDownDetector(Config config, TopDownOptions options = {})
      : config_(std::move(config)), options_(options) {}

  util::Result<DetectionResult> Run(const xml::Document& doc) const;

 private:
  Config config_;
  TopDownOptions options_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_COMPARATORS_H_
