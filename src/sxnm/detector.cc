#include "sxnm/detector.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "extsort/extsort.h"
#include "obs/explain.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "sxnm/checkpoint.h"
#include "sxnm/shard_plan.h"
#include "sxnm/similarity_measure.h"
#include "sxnm/sliding_window.h"
#include "sxnm/transitive_closure.h"
#include "sxnm/verdict_cache.h"
#include "text/myers.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/flat_set.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace sxnm::core {

using util::Result;
using util::Status;

const CandidateResult* DetectionResult::Find(std::string_view name) const {
  for (const CandidateResult& c : candidates) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

double DetectionResult::KeyGenerationSeconds() const {
  return timer.Seconds(kPhaseKeyGeneration);
}

double DetectionResult::SlidingWindowSeconds() const {
  return timer.Seconds(kPhaseSlidingWindow);
}

double DetectionResult::TransitiveClosureSeconds() const {
  return timer.Seconds(kPhaseTransitiveClosure);
}

double DetectionResult::DuplicateDetectionSeconds() const {
  return SlidingWindowSeconds() + TransitiveClosureSeconds();
}

size_t DetectionResult::TotalComparisons() const {
  size_t total = 0;
  for (const CandidateResult& c : candidates) total += c.comparisons;
  return total;
}

namespace {

// Pairs are packed into one word for the flat hash sets of the merge
// (ordinals beyond 2^32 instances per candidate are far outside any
// supported document size).
uint64_t PackPair(OrdinalPair pair) {
  return (static_cast<uint64_t>(pair.first) << 32) |
         static_cast<uint64_t>(pair.second);
}

// Which fast path classified a windowed pair. The distinction is
// pair-deterministic (dag eligibility and the batched filter's verdict
// depend only on the pair's rows), so every pass that windows a pair
// records the same source — the merge relies on this to canonicalize
// provenance without knowing the scheduling.
enum class HitSource : uint8_t {
  kKernel,  // similarity kernel (or a cross-pass cache replay of it)
  kDag,     // identical interned subtrees: memoized self-comparison
  kFilter,  // batched SoA pre-filter proved the pair below threshold
};

// One windowed pair as recorded by a pass worker. Only the verdict's
// classification survives into the merge; everything else about the
// verdict is pair-deterministic and need not be kept. The pair is stored
// pre-packed (what the merge's dedup set keys on anyway), keeping the
// struct at 16 bytes — every windowed pair writes one of these, so the
// hit buffers are the largest per-pass memory stream. `distance` is the
// pair's sort-rank gap in this pass (filled only when the explain log is
// on).
struct PassHit {
  uint64_t packed;  // PackPair of the ordinal pair
  uint32_t distance;
  bool is_duplicate;
  HitSource source;

  OrdinalPair pair() const {
    return {static_cast<size_t>(packed >> 32),
            static_cast<size_t>(packed & 0xffffffffull)};
  }
};

// Bucket index of a similarity score under DefaultSimilarityBounds(),
// matching Histogram::Observe's lower_bound placement so the per-pass
// sim_buckets and the engine-wide sw.similarity histogram agree.
size_t SimilarityBucket(double value) {
  static const std::vector<double> bounds = obs::DefaultSimilarityBounds();
  return static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
}

// The governor's verdict for one window pass, fixed at level setup time
// (serially, in deterministic pass order) before any worker runs.
struct PassPlan {
  bool skip = false;     // pass elided entirely
  bool shrunk = false;   // boundary pass: window reduced to fit the budget
  size_t window = 0;     // window to run with (0 when skipped)
  size_t planned = 0;    // WindowPairCount(instances, configured window)
};

// Per-candidate state for one depth level of the bottom-up order.
struct CandidateRun {
  size_t index = 0;  // candidate index t within the forest
  const CandidateInstances* instances = nullptr;
  const CandidateConfig* cand = nullptr;
  const GkTable* table = nullptr;
  std::unique_ptr<SimilarityMeasure> measure;

  // Cross-pass verdict cache, shared by all of this candidate's window
  // passes (null when fewer than two passes could share a pair, or fast
  // paths are off). Internally synchronized.
  std::unique_ptr<VerdictCache> verdict_cache;

  // False when key generation for this candidate was cut off by
  // cancellation: every pass is then skipped (a partial GK relation would
  // make the windowing depend on where the cut landed).
  bool kg_ok = true;

  // DE-SNM exact-OD pre-pass output: byte-identical normalized ODs are
  // duplicates by definition. Both sets are read-only while the window
  // passes run.
  util::FlatU64Set prepass_pairs;
  std::vector<OrdinalPair> prepass_accepted;

  // DAG shortcut memo: interned subtree id -> the verdict of comparing
  // any two rows with that id. Built serially at level setup (so it is
  // identical for any thread count) from one CompareFast of the id's
  // first row against itself; an id is memoized only when that verdict
  // never consulted descendant cluster sets — then it is a pure function
  // of the (byte-identical) row contents, valid for every ordinal pair.
  // Read-only while the passes run. Empty when dag compression is off.
  std::unordered_map<uint32_t, bool> dag_verdicts;

  // True when the batched SoA pre-filter may screen this candidate's
  // pairs (SimilarityMeasure::BatchFilterEligible, checked once here
  // rather than per pair).
  bool batch_eligible = false;

  // pass_orders[key_index]: the pass's sorted order, computed once in
  // the level's order stage (in-memory stable sort, or the external
  // sorter when a memory budget is set — bit-identical either way) and
  // read by every shard of the pass plus the explain emitter.
  std::vector<std::vector<size_t>> pass_orders;

  // pass_hits[key_index][shard]: the shard's windowed pairs with
  // verdicts, in visit order. Written by exactly one shard task each.
  // Concatenating a pass's shard buffers in shard order reproduces the
  // unsharded pass's visit order exactly (the shard_plan.h owner rule),
  // which is what keeps the merge — and the explain byte stream —
  // bit-identical for any shard count.
  std::vector<std::vector<std::vector<PassHit>>> pass_hits;

  // shard_stats[key_index][shard]: each shard task's tallies, reduced
  // serially into pass_stats[key_index] (the pass's report row) after
  // the level's shard tasks join. Collected unconditionally — a handful
  // of integer increments next to an edit-distance DP — and only
  // published to the registry / report when metrics are on.
  std::vector<std::vector<PassStats>> shard_stats;
  std::vector<PassStats> pass_stats;

  // The run's shard slices: contiguous owned ranges of entering
  // positions, shared by all of its passes (ownership is window-
  // independent; the context accounting uses the candidate's widest
  // window).
  std::vector<ShardSlice> shard_plan;

  // Governance state: the governor's plan and order-stage status per
  // key_index; enumeration outcomes and statuses per (key_index, shard),
  // single-writer like pass_hits, with shard_outcomes reduced into
  // outcomes[key_index] after the level joins.
  std::vector<PassPlan> plans;
  std::vector<std::vector<WindowRunResult>> shard_outcomes;
  std::vector<WindowRunResult> outcomes;
  std::vector<util::Status> pass_status;
  std::vector<std::vector<util::Status>> shard_status;
};

// DE-SNM-style pre-pass (runs before the window passes so their workers
// can skip the already-accepted pairs): link every instance whose whole
// normalized OD matches an earlier instance's to the group's first
// instance (the closure expands the group).
void RunExactOdPrepass(CandidateRun& run) {
  const GkTable& table = *run.table;

  // Fast path: with every row's normalized ODs interned, two OD tuples
  // are byte-identical iff their pool-ID tuples match, so the group key
  // is the raw ID bytes — no string assembly, no byte comparisons.
  bool all_interned = true;
  for (const GkRow& row : table.rows) {
    if (row.norm_ods.size() != row.ods.size()) {
      all_interned = false;
      break;
    }
  }
  auto group = [&run](auto& first_of, auto&& key, size_t ordinal) {
    auto [it, inserted] =
        first_of.emplace(std::forward<decltype(key)>(key), ordinal);
    if (!inserted) {
      OrdinalPair pair = std::minmax(it->second, ordinal);
      run.prepass_pairs.Insert(PackPair(pair));
      run.prepass_accepted.push_back(pair);
    }
  };
  if (all_interned) {
    std::unordered_map<std::string, size_t> first_of;
    first_of.reserve(table.rows.size());
    std::string key;
    for (const GkRow& row : table.rows) {
      key.clear();
      for (const OdRef& ref : row.norm_ods) {
        uint32_t id = ref.id;
        key.append(reinterpret_cast<const char*>(&id), sizeof(id));
      }
      group(first_of, key, row.ordinal);
    }
    return;
  }

  // Rows built by hand may lack interned ODs; normalize on the fly.
  std::map<std::string, size_t> first_of;
  for (const GkRow& row : table.rows) {
    std::string key;
    for (size_t i = 0; i < row.ods.size(); ++i) {
      key += util::ToLower(util::NormalizeWhitespace(row.ods[i]));
      key += '\x1f';
    }
    group(first_of, std::move(key), row.ordinal);
  }
}

// Builds the DAG shortcut memo (CandidateRun::dag_verdicts). Two rows
// whose elements interned to the same SubtreeRef are byte-identical in
// every derived field (keys, ODs, normalized ODs), so the kernel's
// verdict on such a pair equals its verdict on the id's representative
// row compared against itself — unless descendant similarity entered the
// decision, which reads per-ordinal cluster sets and may differ between
// occurrences; those ids are simply left out of the memo and their pairs
// take the ordinary kernel path. Runs serially before the passes.
void BuildDagMemo(CandidateRun& run) {
  const std::vector<GkRow>& rows = run.table->rows;
  // id -> (first ordinal, multiplicity); only duplicated ids matter.
  std::unordered_map<uint32_t, std::pair<size_t, size_t>> groups;
  for (const GkRow& row : rows) {
    if (!row.subtree.valid()) continue;
    auto [it, inserted] =
        groups.emplace(row.subtree.id, std::make_pair(row.ordinal, size_t{1}));
    if (!inserted) ++it->second.second;
  }
  for (const auto& [id, group] : groups) {
    if (group.second < 2) continue;
    const GkRow& rep = rows[group.first];
    SimilarityVerdict verdict = run.measure->CompareFast(rep, rep);
    if (!verdict.desc_evaluated) {
      run.dag_verdicts.emplace(id, verdict.is_duplicate);
    }
  }
}

// Worker-visible spill telemetry, reduced into the extsort gauges at
// the level's serial quiescent point.
struct ExtSortHighWater {
  std::atomic<uint64_t> spill_bytes_peak{0};
  std::atomic<uint64_t> merge_fanin_max{0};

  void Update(const extsort::ExtSortStats& stats) {
    auto raise = [](std::atomic<uint64_t>& slot, uint64_t value) {
      uint64_t seen = slot.load(std::memory_order_relaxed);
      while (seen < value &&
             !slot.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
      }
    };
    raise(spill_bytes_peak, stats.spill_bytes);
    raise(merge_fanin_max, stats.runs);
  }
};

// The order stage of one pass: computes the sorted order every shard of
// the pass (and the explain emitter) reads. With no memory budget this
// is the GK table's resident stable sort; with one, rows are serialized
// through the spill codec and routed through the external sorter, whose
// (key, insertion-seq) merge reproduces the stable sort exactly — the
// two paths yield the same permutation, so detection output is
// bit-identical either way. Skipped passes still need an order when the
// explain log is on (instance records carry per-pass sort ranks); they
// take the resident path — governance skipped their *enumeration*, not
// the relation. Failures (injected spill faults, ENOSPC, corrupt run
// files) land in pass_status.
void ComputePassOrder(CandidateRun& run, size_t key_index, bool explain_on,
                      uint64_t sorter_budget, const std::string& spill_dir,
                      obs::MetricsRegistry& metrics, obs::Tracer& tracer,
                      ExtSortHighWater& high_water) {
  const PassPlan& plan = run.plans[key_index];
  if (!run.kg_ok) return;
  if (plan.skip && !explain_on) return;
  const GkTable& table = *run.table;
  if (sorter_budget == 0 || plan.skip) {
    obs::Tracer::Span sort_span = tracer.StartSpan("sw/sort");
    run.pass_orders[key_index] = table.SortedOrder(key_index);
    return;
  }
  extsort::ExtSortOptions options;
  options.memory_budget_bytes = sorter_budget;
  options.temp_dir = spill_dir;
  options.name = "sxnm." + run.cand->name + ".pass" +
                 std::to_string(key_index + 1);
  options.metrics = metrics.enabled() ? &metrics : nullptr;
  extsort::ExternalSorter sorter(options);
  {
    obs::Tracer::Span spill_span = tracer.StartSpan("extsort/spill");
    for (const GkRow& row : table.rows) {
      persist::Encoder enc;
      EncodeSpillRow(row, table.od_pool, enc);
      Status s = sorter.Add(row.keys[key_index], enc.bytes());
      if (!s.ok()) {
        run.pass_status[key_index] = s;
        return;
      }
    }
  }
  obs::Tracer::Span merge_span = tracer.StartSpan("extsort/merge");
  auto stream = sorter.Finish();
  if (!stream.ok()) {
    run.pass_status[key_index] = stream.status();
    return;
  }
  std::vector<size_t>& order = run.pass_orders[key_index];
  order.reserve(table.rows.size());
  // Full decode rather than peeking the ordinal: the round trip
  // validates every spilled byte (CRC already guards the frames; this
  // guards the codec), and the scratch pool is bounded by the pass's
  // distinct OD values.
  OdPool scratch_pool;
  extsort::SortedRecord record;
  while (true) {
    auto more = (*stream)->Next(&record);
    if (!more.ok()) {
      run.pass_status[key_index] = more.status();
      return;
    }
    if (!*more) break;
    auto row = DecodeSpillRow(record.payload, &scratch_pool);
    if (!row.ok()) {
      run.pass_status[key_index] = row.status();
      return;
    }
    order.push_back(static_cast<size_t>(row->ordinal));
  }
  if (order.size() != table.rows.size()) {
    run.pass_status[key_index] = Status::DataLoss(
        "external sort of candidate '" + run.cand->name + "' pass " +
        std::to_string(key_index + 1) + " returned " +
        std::to_string(order.size()) + " of " +
        std::to_string(table.rows.size()) + " rows");
    return;
  }
  high_water.Update(sorter.stats());
}

// One shard of one window pass: enumerates the windowed pairs whose
// entering position falls in the shard's owned range and compares them,
// buffering (pair, verdict) locally. Pairs already accepted by the
// exact-OD pre-pass are skipped, exactly as the serial detector skips
// pairs in its `compared` set. A pair windowed by more than one key
// pass is classified exactly once: the first pass to reach it through
// the candidate's shared verdict cache owns the comparison, every later
// pass reuses the published verdict (waiting briefly when the owner is
// mid-computation on another worker). The verdict is a pure function of
// the pair, so which pass wins the claim is invisible in the output;
// without a cache each pass simply computes its own verdicts and the
// deterministic merge drops the repeats. Within one pass no pair spans
// two shards (each pair belongs to its entering position's owner), so
// shards of a pass never contend on a pair either.
void RunWindowPass(CandidateRun& run, size_t key_index, size_t shard,
                   const util::CancellationToken& token,
                   const util::Deadline& deadline, bool interruptible,
                   bool record_distance, obs::MetricsRegistry& metrics,
                   obs::Tracer& tracer) {
  const PassPlan& plan = run.plans[key_index];
  if (plan.skip) return;
  if (util::FaultInjector::Instance().ShouldFail("detector.pass")) {
    run.shard_status[key_index][shard] = Status::Internal(
        "injected fault: window pass " + std::to_string(key_index + 1) +
        " of candidate '" + run.cand->name + "' failed");
    return;
  }
  if (interruptible && (token.cancelled() || deadline.expired())) {
    // Shed before enumerating: the shard contributes nothing, which the
    // degradation accounting reads off pairs_windowed == 0.
    run.shard_outcomes[key_index][shard].stopped_early = true;
    return;
  }
  const ShardSlice& slice = run.shard_plan[shard];
  obs::Tracer::Span span = tracer.StartSpan(
      run.cand->name + "/pass" + std::to_string(key_index + 1) +
      (run.shard_plan.size() > 1 ? "/shard" + std::to_string(shard)
                                 : std::string()));
  util::Stopwatch watch;
  const GkTable& table = *run.table;
  const std::vector<size_t>& order = run.pass_orders[key_index];
  std::vector<PassHit>& hits = run.pass_hits[key_index][shard];
  // Every windowed pair lands in `hits` (adaptive extensions can add
  // more); reserving the fixed-window count up front keeps the hot loop
  // free of growth reallocations.
  hits.reserve(WindowPairCountRange(order.size(), plan.window,
                                    slice.owned_begin, slice.owned_end));
  PassStats& stats = run.shard_stats[key_index][shard];
  VerdictCache* cache = run.verdict_cache.get();
  // Window distances for the explain log come from the inverse rank
  // array, built only when explain is on — the classification hot path
  // allocates nothing extra otherwise.
  std::vector<uint32_t> inv_rank;
  if (record_distance) {
    inv_rank.resize(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      inv_rank[order[i]] = static_cast<uint32_t>(i);
    }
  }
  // Per-pass similarity distribution: one engine-wide histogram (handle
  // resolved once, before the hot loop) plus the report row's decile
  // buckets. Owned computations only — with a verdict cache each unique
  // pair contributes once, without one each pass scores independently;
  // either way the observed multiset is deterministic.
  const bool track_sim = metrics.enabled();
  obs::Histogram* sim_hist = nullptr;
  if (track_sim) {
    sim_hist =
        &metrics.histogram("sw.similarity", obs::DefaultSimilarityBounds());
    stats.sim_buckets.assign(obs::DefaultSimilarityBounds().size() + 1, 0);
  }
  // The whole pass runs on one worker thread, so the thread-local Myers
  // word count brackets exactly this pass's kernel work.
  const uint64_t myers_before = text::ThreadMyersStats().words;

  // Live progress: batched adds to the shared sw.pairs_done counter (one
  // null test + local increment per pair; one shard write per batch) so
  // the telemetry sampler can track completion against
  // sw.pairs_planned_total mid-pass. Counted per visit, so the total
  // equals sw.pairs_windowed.
  obs::Counter* pairs_done =
      metrics.enabled() ? &metrics.counter("sw.pairs_done") : nullptr;
  uint32_t pairs_done_pending = 0;
  constexpr uint32_t kPairsDoneBatch = 1024;

  // Batched pre-filter state: pairs that pass the prepass and dag checks
  // are gathered (with their window distances) and screened kBatchSize
  // at a time; the reject mask is pair-deterministic, so which pairs
  // share a block is invisible in the output. Survivors run the ordinary
  // cache/kernel path in gather order.
  const bool use_dag = !run.dag_verdicts.empty();
  const bool use_batch = run.batch_eligible;
  constexpr size_t kBatchSize = 512;
  std::vector<OrdinalPair> pending;
  std::vector<size_t> pending_slot;  // index into `hits` per pending pair
  BatchFilterScratch scratch;
  if (use_batch) {
    pending.reserve(kBatchSize);
    pending_slot.reserve(kBatchSize);
  }

  // The ordinary classification of one pair: cross-pass verdict cache,
  // then the similarity kernel.
  auto classify_value = [&](OrdinalPair pair) -> bool {
    uint64_t packed = PackPair(pair);
    VerdictCache::Lookup lookup;
    if (cache != nullptr) lookup = cache->AcquireOrWait(packed);
    bool is_duplicate;
    if (cache != nullptr && !lookup.owner) {
      // Another pass already owns this pair's classification. The hit
      // still counts as a comparison — `comparisons` counts pair
      // classifications (pairs_windowed == comparisons + prepass_skips
      // must keep holding) — while the kernel counters below only ever
      // count the owning computation, keeping their totals equal to the
      // serial engine's unique work for any thread count.
      ++stats.verdict_cache_hits;
      is_duplicate = lookup.is_duplicate;
    } else {
      SimilarityVerdict verdict = run.measure->CompareFast(
          table.rows[pair.first], table.rows[pair.second]);
      if (cache != nullptr) cache->Publish(lookup, verdict.is_duplicate);
      is_duplicate = verdict.is_duplicate;
      if (verdict.pruned) ++stats.ed_bailouts;
      if (verdict.desc_evaluated) ++stats.desc_invocations;
      if (verdict.desc_short_circuit) ++stats.desc_short_circuits;
      stats.interned_equal += verdict.interned_equal;
      if (track_sim) {
        sim_hist->Observe(verdict.combined);
        ++stats.sim_buckets[SimilarityBucket(verdict.combined)];
      }
    }
    ++stats.comparisons;
    if (is_duplicate) ++stats.hits;
    return is_duplicate;
  };

  // Resolves the gathered pairs against their placeholder slots. The
  // slot was claimed at visit time, so `hits` stays in pure visit order
  // no matter where the flush boundaries fall — a shard (or an early
  // stop) that cuts a batch short produces the same per-pair records as
  // one that doesn't, which the cross-shard explain identity relies on.
  auto flush = [&]() {
    if (pending.empty()) return;
    run.measure->BatchFilter(table.rows, pending.data(), pending.size(),
                             &scratch);
    // Warm the verdict-cache slots of every survivor before the classify
    // walk: the probes then overlap instead of stalling one DRAM miss per
    // pair (a block of 512 slots is well within L2).
    if (cache != nullptr) {
      for (size_t i = 0; i < pending.size(); ++i) {
        if (scratch.reject[i] == 0) cache->Prefetch(PackPair(pending[i]));
      }
    }
    for (size_t i = 0; i < pending.size(); ++i) {
      PassHit& slot = hits[pending_slot[i]];
      if (scratch.reject[i] != 0) {
        // Provably below threshold: the verdict is false without running
        // the kernel. Still a pair classification, so the closure
        // pairs_windowed == comparisons + prepass_skips keeps holding.
        ++stats.batch_rejects;
        ++stats.comparisons;
        slot.is_duplicate = false;
        slot.source = HitSource::kFilter;
      } else {
        slot.is_duplicate = classify_value(pending[i]);
      }
    }
    pending.clear();
    pending_slot.clear();
  };

  auto visit = [&](size_t a, size_t b) {
    if (pairs_done != nullptr && ++pairs_done_pending >= kPairsDoneBatch) {
      pairs_done->Add(pairs_done_pending);
      pairs_done_pending = 0;
    }
    OrdinalPair pair = std::minmax(a, b);
    if (!run.prepass_pairs.empty() &&
        run.prepass_pairs.Contains(PackPair(pair))) {
      ++stats.prepass_skips;
      return;
    }
    uint32_t distance = 0;
    if (record_distance) {
      uint32_t ra = inv_rank[a];
      uint32_t rb = inv_rank[b];
      distance = ra > rb ? ra - rb : rb - ra;
    }
    if (use_dag) {
      // Structurally identical subtrees with a memoized verdict skip the
      // kernel (and the verdict cache — every pass replays the same
      // memo, so there is nothing to share).
      const SubtreeRef sa = table.rows[pair.first].subtree;
      if (sa.valid() && sa == table.rows[pair.second].subtree) {
        auto it = run.dag_verdicts.find(sa.id);
        if (it != run.dag_verdicts.end()) {
          ++stats.dag_equal;
          ++stats.comparisons;
          if (it->second) ++stats.hits;
          hits.push_back(
              {PackPair(pair), distance, it->second, HitSource::kDag});
          return;
        }
      }
    }
    if (use_batch) {
      // Placeholder in visit order; the flush fills the verdict (and
      // retags filter rejects) in place.
      pending.push_back(pair);
      pending_slot.push_back(hits.size());
      hits.push_back({PackPair(pair), distance, false, HitSource::kKernel});
      if (pending.size() >= kBatchSize) flush();
      return;
    }
    hits.push_back(
        {PackPair(pair), distance, classify_value(pair), HitSource::kKernel});
  };
  // A shrunk boundary pass always runs the plain fixed window: adaptive
  // extension would overrun the budget it was shrunk to fit. Only the
  // shard's owned entering positions are enumerated; the backward scan
  // reads context rows across the left edge freely (all rows are
  // resident), so concatenating the shard streams in shard order
  // reproduces the unsharded enumeration pair for pair.
  WindowRunResult& outcome = run.shard_outcomes[key_index][shard];
  // Kernel-level attribution for the sampling profiler: the window
  // enumeration plus every pair classification it triggers.
  obs::Tracer::Span classify_span = tracer.StartSpan("sw/classify");
  if (run.cand->window_policy == WindowPolicy::kAdaptivePrefix &&
      !plan.shrunk) {
    auto key_of = [&](size_t ordinal) -> const std::string& {
      return table.rows[ordinal].keys[key_index];
    };
    if (interruptible) {
      outcome = ForEachAdaptiveWindowPairRangeInterruptible(
          order, key_of, plan.window, run.cand->max_window,
          run.cand->adaptive_prefix_len, slice.owned_begin, slice.owned_end,
          token, deadline, visit);
      stats.pairs_windowed = outcome.pairs_visited;
    } else {
      stats.pairs_windowed = ForEachAdaptiveWindowPairRange(
          order, key_of, plan.window, run.cand->max_window,
          run.cand->adaptive_prefix_len, slice.owned_begin, slice.owned_end,
          visit);
    }
  } else if (interruptible) {
    outcome = ForEachWindowPairRangeInterruptible(
        order, plan.window, slice.owned_begin, slice.owned_end, token,
        deadline, visit);
    stats.pairs_windowed = outcome.pairs_visited;
  } else {
    stats.pairs_windowed = ForEachWindowPairRange(
        order, plan.window, slice.owned_begin, slice.owned_end, visit);
  }
  // Pairs still gathered when the enumeration stopped (end of pass or a
  // cooperative early stop) were counted into pairs_windowed, so they
  // must be classified for the counter closure to hold.
  flush();
  classify_span.End();
  stats.myers_words = text::ThreadMyersStats().words - myers_before;
  stats.wall_seconds = watch.ElapsedSeconds();

  // Publish from the worker thread itself: each add lands on the worker's
  // own shard, exercising the wait-free hot path under the pool.
  if (metrics.enabled()) {
    pairs_done->Add(pairs_done_pending);
    metrics.counter("sw.pairs_windowed").Add(stats.pairs_windowed);
    metrics.counter("sw.prepass_skips").Add(stats.prepass_skips);
    metrics.counter("sw.comparisons").Add(stats.comparisons);
    metrics.counter("sw.hits").Add(stats.hits);
    metrics.counter("sw.ed_bailouts").Add(stats.ed_bailouts);
    metrics.counter("sw.desc_jaccard").Add(stats.desc_invocations);
    metrics.counter("sw.desc_short_circuits").Add(stats.desc_short_circuits);
    metrics.counter("sw.verdict_cache_hits").Add(stats.verdict_cache_hits);
    metrics.counter("sw.dag_equal").Add(stats.dag_equal);
    metrics.counter("sw.batch_rejects").Add(stats.batch_rejects);
    metrics.counter("sw.interned_equal").Add(stats.interned_equal);
    metrics.counter("text.myers_words").Add(stats.myers_words);
    metrics.histogram("sw.pass_seconds", obs::DefaultTimeBounds())
        .Observe(stats.wall_seconds);
  }
  span.EndWithArgs("{\"pairs\": " + std::to_string(stats.pairs_windowed) +
                   ", \"comparisons\": " + std::to_string(stats.comparisons) +
                   ", \"hits\": " + std::to_string(stats.hits) + "}");
}

// Folds one shard's pass stats into the pass total. Counting fields sum
// (every windowed pair belongs to exactly one shard); wall_seconds sums
// too, so the report row reads as the pass's total worker time, and the
// per-shard wall distribution stays visible in sw.pass_seconds.
void AccumulateShardStats(PassStats& total, const PassStats& part) {
  total.pairs_windowed += part.pairs_windowed;
  total.prepass_skips += part.prepass_skips;
  total.comparisons += part.comparisons;
  total.hits += part.hits;
  total.ed_bailouts += part.ed_bailouts;
  total.desc_invocations += part.desc_invocations;
  total.desc_short_circuits += part.desc_short_circuits;
  total.verdict_cache_hits += part.verdict_cache_hits;
  total.dag_equal += part.dag_equal;
  total.batch_rejects += part.batch_rejects;
  total.interned_equal += part.interned_equal;
  total.myers_words += part.myers_words;
  total.wall_seconds += part.wall_seconds;
  if (!part.sim_buckets.empty()) {
    if (total.sim_buckets.empty()) {
      total.sim_buckets.assign(part.sim_buckets.size(), 0);
    }
    for (size_t i = 0; i < part.sim_buckets.size(); ++i) {
      total.sim_buckets[i] += part.sim_buckets[i];
    }
  }
}

// Explain-log emission for one candidate, from the serial merge point:
// the candidate header, one instance record per GK row (keys + per-pass
// sort ranks), one pair record per prepass accept, and one pair record
// per replayed pass hit. Provenance is canonicalized here rather than
// taken from the workers: which pass actually owned a cached verdict is
// scheduling-dependent, but the *count* of owned computations is not, so
// the first merge-order occurrence of a pair is tagged `owned` (with the
// full scoring breakdown recomputed exactly) and every repeat
// `verdict_cache`. The per-tag record counts then reconcile with
// sw.comparisons / sw.verdict_cache_hits / sw.prepass_pairs, and the
// byte stream is identical for any num_threads.
void EmitCandidateExplain(const CandidateRun& run, int depth,
                          obs::ExplainLog& explain) {
  const GkTable& table = *run.table;
  const std::vector<xml::ElementId>& eids = run.instances->eids;
  explain.AppendCandidate(run.cand->name, static_cast<size_t>(depth),
                          run.instances->NumInstances(),
                          run.cand->keys.size(), run.cand->window_size,
                          WindowPolicyName(run.cand->window_policy),
                          run.cand->classifier.od_threshold);

  size_t num_keys = run.cand->keys.size();
  std::vector<std::vector<size_t>> rank_of(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    // The order stage computed every pass's order (skipped passes
    // included — their enumeration was shed, not their relation), so the
    // ranks here are the same permutations the passes enumerated.
    const std::vector<size_t>& order = run.pass_orders[k];
    rank_of[k].resize(order.size());
    for (size_t i = 0; i < order.size(); ++i) rank_of[k][order[i]] = i;
  }
  std::vector<size_t> ranks(num_keys);
  for (size_t ordinal = 0; ordinal < table.rows.size(); ++ordinal) {
    for (size_t k = 0; k < num_keys; ++k) ranks[k] = rank_of[k][ordinal];
    explain.AppendInstance(run.cand->name, ordinal,
                           static_cast<size_t>(eids[ordinal]),
                           table.rows[ordinal].keys, ranks);
  }

  for (const auto& [a, b] : run.prepass_accepted) {
    explain.AppendPair(run.cand->name, /*pass=*/-1, a, b,
                       static_cast<size_t>(eids[a]),
                       static_cast<size_t>(eids[b]), /*window_distance=*/0,
                       obs::PairProvenance::kPrepass, /*detail=*/nullptr,
                       /*verdict=*/true);
  }
}

// Deterministic merge: replays the pass buffers in key order against a
// flat hash set, so the accepted pairs, their order, and the comparison
// count are those of the serial single-pass-at-a-time detector no matter
// how the passes were interleaved across threads. Verdict-cache hits
// record the same (pair, verdict) entries as owned computations, so the
// replay never needs to know which pass actually ran the kernel.
void MergePasses(CandidateRun& run, CandidateResult& result, int depth,
                 obs::MetricsRegistry& metrics, obs::ExplainLog& explain) {
  if (explain.enabled()) EmitCandidateExplain(run, depth, explain);

  util::FlatU64Set seen = run.prepass_pairs;
  std::vector<OrdinalPair> accepted = run.prepass_accepted;
  size_t total_hits = 0;
  for (const auto& shards : run.pass_hits) {
    for (const auto& hits : shards) total_hits += hits.size();
  }
  seen.Reserve(seen.size() + total_hits);

  // Canonical provenance: with a verdict cache, the first merge-order
  // occurrence of a pair counts as the owned computation; without one,
  // every pass computed its own verdict, so every record is owned.
  const bool has_cache = run.verdict_cache != nullptr;
  util::FlatU64Set first_seen;
  if (explain.enabled() && has_cache) first_seen.Reserve(total_hits);

  const std::vector<xml::ElementId>& eids = run.instances->eids;
  // Reserve() above sized `seen` for every hit, so no rehash happens
  // mid-merge and prefetched slots stay valid.
  constexpr size_t kMergeLookahead = 16;
  for (size_t k = 0; k < run.pass_hits.size(); ++k) {
    // Shards in shard order concatenate to the pass's unsharded hit
    // stream (the owner rule), so the replay below never knows whether
    // the pass ran in one piece or many.
    for (const std::vector<PassHit>& pass : run.pass_hits[k]) {
      for (size_t idx = 0; idx < pass.size(); ++idx) {
        if (idx + kMergeLookahead < pass.size()) {
          seen.PrefetchKey(pass[idx + kMergeLookahead].packed);
        }
        const PassHit& hit = pass[idx];
        uint64_t packed = hit.packed;
        if (explain.enabled()) {
          auto [a, b] = hit.pair();
          // Dag and filter hits keep their tag on every occurrence: those
          // paths bypass the verdict cache (each pass replays the memo /
          // re-screens deterministically), so there is no owned kernel
          // record to reconcile against. Kernel hits canonicalize as
          // before: first merge-order occurrence owned, repeats cached.
          obs::PairProvenance provenance = obs::PairProvenance::kOwned;
          if (hit.source == HitSource::kDag) {
            provenance = obs::PairProvenance::kDagEqual;
          } else if (hit.source == HitSource::kFilter) {
            provenance = obs::PairProvenance::kBatchFilter;
          } else if (has_cache && !first_seen.Insert(packed)) {
            provenance = obs::PairProvenance::kVerdictCache;
          }
          if (provenance == obs::PairProvenance::kOwned) {
            obs::PairExplain detail =
                run.measure->Explain(run.table->rows[a], run.table->rows[b]);
            explain.AppendPair(run.cand->name, static_cast<int>(k), a, b,
                               static_cast<size_t>(eids[a]),
                               static_cast<size_t>(eids[b]), hit.distance,
                               provenance, &detail, hit.is_duplicate);
          } else {
            explain.AppendPair(run.cand->name, static_cast<int>(k), a, b,
                               static_cast<size_t>(eids[a]),
                               static_cast<size_t>(eids[b]), hit.distance,
                               provenance, /*detail=*/nullptr,
                               hit.is_duplicate);
          }
        }
        if (!seen.Insert(packed)) continue;
        ++result.comparisons;
        if (hit.is_duplicate) accepted.push_back(hit.pair());
      }
    }
  }
  std::sort(accepted.begin(), accepted.end());
  result.duplicate_pairs = std::move(accepted);
  for (const auto& [a, b] : result.duplicate_pairs) {
    result.duplicate_eid_pairs.emplace_back(run.instances->eids[a],
                                            run.instances->eids[b]);
  }

  if (metrics.enabled()) {
    metrics.counter("sw.prepass_pairs").Add(run.prepass_accepted.size());
    metrics.counter("sw.unique_comparisons").Add(result.comparisons);
    metrics.counter("sw.unique_duplicates")
        .Add(result.duplicate_pairs.size());
  }
}

}  // namespace

util::Result<DetectionResult> Detector::Run(const xml::Document& doc) const {
  return Run(doc, RunOptions());
}

util::Result<DetectionResult> Detector::Run(const xml::Document& doc,
                                            const RunOptions& options) const {
  SXNM_RETURN_IF_ERROR(config_.Validate());

  DetectionResult result;
  size_t num_threads = util::ResolveNumThreads(config_.num_threads());

  // --- Resource governance setup ------------------------------------------
  // A deadline with a positive conversion rate becomes a comparison
  // budget here, ONCE — after this point the governor never reads the
  // clock, so the shed work set is a pure function of config + data
  // (identical for any thread count). Rate 0 keeps a live wall-clock
  // deadline instead, polled cooperatively.
  const RunLimits& limits = config_.limits();
  const util::CancellationToken& token = options.cancellation;
  const size_t budget = limits.ResolveComparisonBudget();
  const bool wallclock_mode =
      limits.deadline_seconds > 0.0 && limits.comparisons_per_second == 0.0;
  util::Deadline deadline = wallclock_mode
                                ? util::Deadline::After(limits.deadline_seconds)
                                : util::Deadline::Infinite();
  // Which governance source binds first, for the degradation reason.
  util::StatusCode budget_reason = util::StatusCode::kResourceExhausted;
  if (limits.deadline_seconds > 0.0 &&
      (limits.max_comparisons == 0 || budget < limits.max_comparisons)) {
    budget_reason = util::StatusCode::kDeadlineExceeded;
  }
  const bool interruptible =
      token.can_be_cancelled() || deadline.has_deadline();
  DegradationReport& degradation = result.degradation;
  degradation.comparison_budget = budget;
  bool cancelled = false;      // cancellation observed at a checkpoint
  bool wall_expired = false;   // cooperative deadline observed expired

  // Observability: both handles live for exactly this run. Disabled
  // instances are no-ops (every record is one branch), so the default
  // configuration pays nothing.
  const ObservabilityConfig& obs_cfg = config_.observability();
  obs::MetricsRegistry metrics(obs_cfg.metrics);
  const bool profiling = !obs_cfg.profile_path.empty();
  // Span paths are tracked only when the profiler needs them; a traced
  // but unprofiled run pays nothing extra for them.
  obs::Tracer tracer(!obs_cfg.trace_path.empty(), profiling);
  obs::ExplainLog explain(!obs_cfg.explain_path.empty());
  // The sampling profiler observes the span-path stacks; it never
  // writes engine state, so output is bit-identical with it on or off.
  obs::ProfilerOptions profiler_options;
  profiler_options.hz = obs_cfg.profile_hz;
  obs::Profiler profiler(profiler_options);
  if (profiling) {
    SXNM_RETURN_IF_ERROR(profiler.Start());
  }
  obs::Tracer::Span run_span = tracer.StartSpan("detect");
  auto set_phase = [&metrics](obs::RunPhase phase) {
    metrics.gauge("progress.phase")
        .Set(static_cast<double>(static_cast<int>(phase)));
  };
  if (metrics.enabled()) {
    metrics.gauge("engine.num_threads")
        .Set(static_cast<double>(num_threads));
    // Registered up front so the histogram appears in every snapshot,
    // comparisons or not.
    metrics.histogram("sw.similarity", obs::DefaultSimilarityBounds());
    // Progress metrics likewise registered before any sample can be
    // taken: every telemetry tick carries the full progress family.
    set_phase(obs::RunPhase::kSetup);
    metrics.counter("kg.rows_done");
    metrics.counter("sw.pairs_done");
    metrics.counter("tc.edges_done");
    metrics.gauge("kg.rows_total");
    metrics.gauge("sw.pairs_planned_total");
    metrics.gauge("cache.verdict_occupancy");
  }

  // --- Checkpoint/resume setup ---------------------------------------------
  // Fingerprints are computed before any work: the load must refuse a
  // snapshot of a different config or document before the engine trusts
  // its contents. kNotFound simply means "no snapshot yet" (fresh run);
  // a torn or corrupt file is a hard kDataLoss — silently recomputing
  // would hide the data loss the checkpoint was supposed to prevent.
  const std::string& ckpt_path = !options.checkpoint_path.empty()
                                     ? options.checkpoint_path
                                     : config_.checkpoint().path;
  const bool ckpt_every_pass = !options.checkpoint_path.empty()
                                   ? options.checkpoint_every_pass
                                   : config_.checkpoint().every_pass;
  const bool checkpointing = !ckpt_path.empty();
  CheckpointFingerprint ckpt_fingerprint;
  EngineSnapshot resume;
  bool resumed = false;
  if (checkpointing) {
    ckpt_fingerprint.config_fingerprint = ConfigFingerprint(config_);
    ckpt_fingerprint.doc_fingerprint = DocumentFingerprint(doc);
    ckpt_fingerprint.metrics_enabled = metrics.enabled();
    ckpt_fingerprint.explain_enabled = explain.enabled();
    obs::Tracer::Span load_span = tracer.StartSpan("checkpoint_load");
    auto loaded = LoadEngineSnapshot(ckpt_path, ckpt_fingerprint);
    if (loaded.ok()) {
      resume = std::move(*loaded);
      resumed = true;
    } else if (loaded.status().code() != util::StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  if (resumed) {
    // Counters, gauges, and histogram buckets continue from the cut, so
    // the final snapshot equals an uninterrupted run's. engine.num_threads
    // is re-published afterwards: resuming with a different thread count
    // is allowed and the gauge reports *this* run.
    if (metrics.enabled()) {
      metrics.MergeFrom(resume.metrics);
      metrics.gauge("engine.num_threads")
          .Set(static_cast<double>(num_threads));
      metrics.counter("persist.resume_loads").Add(1);
      metrics.counter("persist.resume_levels_restored")
          .Add(resume.cursor.levels_completed);
    }
    explain.Restore(std::move(resume.explain_text), resume.explain_tallies[0],
                    resume.explain_tallies[1], resume.explain_tallies[2],
                    resume.explain_tallies[3], resume.explain_tallies[4]);
    result.timer.Add(kPhaseKeyGeneration, resume.cursor.kg_seconds);
    result.timer.Add(kPhaseSlidingWindow, resume.cursor.sw_seconds);
    result.timer.Add(kPhaseTransitiveClosure, resume.cursor.tc_seconds);
    degradation.passes = std::move(resume.degradation.passes);
    result.report.rows = std::move(resume.report_rows);
  }

  // Live telemetry: a read-only background sampler over the registry.
  // It never writes a metric and the engine never waits on it, so the
  // detection output is bit-identical with telemetry on or off; the
  // sampler's destructor covers early-return paths (the stream is then
  // simply missing its final sample).
  obs::TelemetryOptions telemetry_options;
  telemetry_options.path = obs_cfg.telemetry_path;
  telemetry_options.interval_ms = obs_cfg.telemetry_interval_ms;
  obs::TelemetrySampler telemetry(&metrics, telemetry_options);
  if (!obs_cfg.telemetry_path.empty()) {
    SXNM_RETURN_IF_ERROR(telemetry.Start());
  }

  // --- Key generation phase (KG) -----------------------------------------
  // Candidate discovery and GK construction happen together: both read the
  // document once, mirroring the paper's single-pass key generation. The
  // per-candidate GK tables are independent, so they build concurrently.
  util::Stopwatch kg_watch;
  obs::Tracer::Span kg_span = tracer.StartSpan("key_generation");
  if (metrics.enabled()) set_phase(obs::RunPhase::kKeyGeneration);
  auto forest_or = CandidateForest::Build(config_, doc);
  if (!forest_or.ok()) return forest_or.status();
  const CandidateForest& forest = forest_or.value();

  if (metrics.enabled()) {
    // Planned totals for the progress gauges, published before the work
    // starts so completion fractions are meaningful from the first
    // sample. The pair total is pre-governance: budget shedding can
    // finish "early" relative to it, which makes the derived ETA an
    // upper-bound estimate.
    size_t rows_total = 0;
    size_t pairs_total = 0;
    for (const CandidateInstances& ci : forest.candidates()) {
      rows_total += ci.NumInstances();
      pairs_total += ci.config->keys.size() *
                     WindowPairCount(ci.NumInstances(), ci.config->window_size);
    }
    metrics.gauge("kg.rows_total").Set(static_cast<double>(rows_total));
    metrics.gauge("sw.pairs_planned_total")
        .Set(static_cast<double>(pairs_total));
  }

  std::vector<GkTable> gk(forest.candidates().size());
  std::vector<char> kg_done(forest.candidates().size(), 0);
  if (resumed) {
    // Every snapshot is taken at or after the post-KG durability point,
    // so the GK relations come back from disk instead of the document.
    // The fingerprint already proved config + document identity; the
    // size check below is pure defense against a hand-edited file.
    if (resume.gk.size() != forest.candidates().size()) {
      return Status::DataLoss(
          "corrupt snapshot: GK table count does not match the candidate "
          "forest");
    }
    for (EngineSnapshot::GkState& state : resume.gk) {
      if (state.index >= gk.size() || kg_done[state.index] != 0) {
        return Status::DataLoss(
            "corrupt snapshot: GK frame candidate index invalid or "
            "duplicated");
      }
      gk[state.index] = std::move(state.table);
      kg_done[state.index] = state.kg_done ? 1 : 0;
    }
  } else {
    std::vector<util::Status> kg_status(forest.candidates().size());
    util::ParallelForCancellable(
        forest.candidates().size(), num_threads, token, [&](size_t t) {
          const CandidateInstances& instances = forest.candidates()[t];
          obs::Tracer::Span gen_span = tracer.StartSpan("kg/generate");
          auto keys = GenerateKeysChecked(*instances.config, instances, token,
                                          &metrics);
          gen_span.End();
          if (!keys.ok()) {
            kg_status[t] = keys.status();
            return;
          }
          if (keys->cancelled) return;  // kg_done stays 0: candidate shed
          gk[t] = std::move(keys->table);
          kg_done[t] = 1;
        });
    // A genuine key-generation failure (fault injection, future IO) aborts
    // the run with its own status — degradation is only for shed work. The
    // lowest candidate index wins so the reported error is deterministic.
    for (const util::Status& status : kg_status) SXNM_RETURN_IF_ERROR(status);
  }
  if (token.cancelled()) cancelled = true;
  if (deadline.expired()) wall_expired = true;
  kg_span.End();
  result.timer.Add(kPhaseKeyGeneration, kg_watch.ElapsedSeconds());
  if (metrics.enabled()) {
    metrics.gauge("engine.num_candidates")
        .Set(static_cast<double>(forest.candidates().size()));
  }

  // --- Duplicate detection phase (per candidate, bottom-up) ---------------
  // Candidates are processed level by level: depths are longest root
  // distances, so every child type sits at a strictly greater depth than
  // its parents and all cluster sets a level needs are complete before it
  // starts. Within a level, every (candidate, key) window pass is an
  // independent task; a level-wide parallel-for covers both pass-level and
  // candidate-level parallelism without nesting.
  std::map<int, std::vector<size_t>, std::greater<int>> levels;
  for (size_t t : forest.ProcessingOrder()) {
    levels[forest.candidates()[t].depth].push_back(t);
  }

  std::vector<ClusterSet> cluster_sets(forest.candidates().size());
  std::vector<CandidateResult> cand_results(forest.candidates().size());

  // Budget governor state, threaded across levels. Passes are planned
  // serially in deterministic order (levels deepest-first, candidates in
  // processing order, keys in definition order): each runs in full while
  // the cumulative planned cost fits the budget, the first that does not
  // fit shrinks its window to the largest size that still does (the
  // paper's own efficiency knob), and everything after is skipped.
  size_t budget_spent = 0;
  bool budget_exhausted = false;

  // Cumulative verdict-cache accounting for the cache.verdict_occupancy
  // gauge: caches are per candidate run, so the gauge reports the fill
  // fraction over every cache retired so far.
  size_t verdict_occupied_total = 0;
  size_t verdict_capacity_total = 0;

  // Out-of-core knobs, fixed for the run. The budget is split evenly
  // across the level's pass tasks (not its threads — the split, and so
  // every extsort.* counter, must not depend on the thread count), with
  // half held back for the merge readers and the decode scratch.
  const size_t num_shards = config_.shards();
  const uint64_t memory_budget = config_.memory_budget_bytes();
  ExtSortHighWater extsort_high_water;

  uint64_t levels_restored = 0;
  if (resumed) {
    // Governor state continues from the cut so the resumed planner sheds
    // exactly the passes an uninterrupted run would.
    budget_spent = static_cast<size_t>(resume.cursor.budget_spent);
    budget_exhausted = resume.cursor.budget_exhausted;
    verdict_occupied_total =
        static_cast<size_t>(resume.cursor.verdict_occupied_total);
    verdict_capacity_total =
        static_cast<size_t>(resume.cursor.verdict_capacity_total);
    levels_restored = resume.cursor.levels_completed;
    if (levels_restored > levels.size()) {
      return Status::DataLoss(
          "corrupt snapshot: cursor names more levels than the forest has");
    }
    for (EngineSnapshot::CompletedCandidate& completed : resume.completed) {
      size_t t = static_cast<size_t>(completed.index);
      if (t >= cand_results.size() || !cand_results[t].name.empty()) {
        return Status::DataLoss(
            "corrupt snapshot: completed-candidate index invalid or "
            "duplicated");
      }
      cluster_sets[t] = completed.result.clusters;
      cand_results[t] = std::move(completed.result);
    }
  }

  // Commits one durable snapshot of everything accumulated so far. The
  // view borrows the engine's live state; Save serializes and atomically
  // replaces the file, so a crash mid-write leaves the previous snapshot.
  auto write_checkpoint = [&](uint64_t levels_completed) -> util::Status {
    obs::Tracer::Span ckpt_span = tracer.StartSpan("checkpoint_write");
    EngineSnapshotView view;
    view.fingerprint = ckpt_fingerprint;
    view.cursor.levels_completed = levels_completed;
    view.cursor.budget_spent = budget_spent;
    view.cursor.budget_exhausted = budget_exhausted;
    view.cursor.verdict_occupied_total = verdict_occupied_total;
    view.cursor.verdict_capacity_total = verdict_capacity_total;
    view.cursor.kg_seconds = result.KeyGenerationSeconds();
    view.cursor.sw_seconds = result.SlidingWindowSeconds();
    view.cursor.tc_seconds = result.TransitiveClosureSeconds();
    view.gk = &gk;
    view.kg_done = &kg_done;
    uint64_t ordinal = 0;
    for (const auto& [level_depth, level_members] : levels) {
      if (ordinal++ >= levels_completed) break;
      for (size_t t : level_members) {
        view.completed.emplace_back(t, &cand_results[t]);
      }
    }
    view.degradation = &degradation;
    obs::MetricsSnapshot metrics_snapshot;
    if (metrics.enabled()) {
      view.report_rows = &result.report.rows;
      metrics_snapshot = metrics.Snapshot();
      view.metrics = &metrics_snapshot;
    }
    uint64_t explain_tallies[5] = {explain.owned_pairs(), explain.cache_pairs(),
                                   explain.prepass_pairs(), explain.dag_pairs(),
                                   explain.filter_pairs()};
    if (explain.enabled()) {
      view.explain_text = &explain.text();
      for (size_t i = 0; i < 5; ++i) view.explain_tallies[i] = explain_tallies[i];
    }
    SnapshotWriteStats stats;
    SXNM_RETURN_IF_ERROR(SaveEngineSnapshot(view, ckpt_path, &stats));
    if (metrics.enabled()) {
      // Counted after the commit (and so absent from the frame just
      // written): persist.* counters describe *this* run's IO, differ
      // between resumed and uninterrupted runs by design, and are
      // excluded from determinism digests like the wall-time counters.
      metrics.counter("persist.snapshot_writes").Add(1);
      metrics.counter("persist.snapshot_bytes_total").Add(stats.bytes);
    }
    return util::Status::Ok();
  };

  // The post-KG durability point: even with every_pass off, a resumed
  // run never repeats key generation. Levels "completed" after a
  // cancellation or wall-clock cut are not checkpointed — their passes
  // were shed nondeterministically, and a resume must re-run them.
  if (checkpointing && !resumed && !cancelled && !wall_expired) {
    SXNM_RETURN_IF_ERROR(write_checkpoint(0));
  }

  uint64_t level_ordinal = 0;
  for (auto& [depth, members] : levels) {
    // Fast-forward through levels the snapshot already holds: their
    // merged results, cluster sets, report rows, shed entries, counters,
    // and explain records were all restored above.
    if (level_ordinal++ < levels_restored) continue;
    obs::Tracer::Span level_span =
        tracer.StartSpan("level_" + std::to_string(depth));
    if (metrics.enabled()) set_phase(obs::RunPhase::kSlidingWindow);
    // Serial setup: similarity measures (which snapshot the child cluster
    // sets into sorted cid lists) and the exact-OD pre-pass.
    util::Stopwatch sw_watch;
    std::vector<CandidateRun> runs(members.size());
    std::vector<std::pair<size_t, size_t>> pass_tasks;  // (run, key_index)
    for (size_t r = 0; r < members.size(); ++r) {
      CandidateRun& run = runs[r];
      run.index = members[r];
      run.instances = &forest.candidates()[run.index];
      run.cand = run.instances->config;
      run.table = &gk[run.index];

      std::vector<const ClusterSet*> child_sets;
      if (run.cand->use_descendants && !run.instances->child_types.empty()) {
        child_sets.reserve(run.instances->child_types.size());
        for (size_t child : run.instances->child_types) {
          child_sets.push_back(&cluster_sets[child]);
        }
      }
      run.measure = std::make_unique<SimilarityMeasure>(
          *run.cand, *run.instances, std::move(child_sets),
          &run.table->od_pool);
      run.kg_ok = kg_done[run.index] != 0;

      if (run.cand->exact_od_prepass && run.kg_ok) RunExactOdPrepass(run);
      if (run.cand->dag_compression && run.kg_ok) BuildDagMemo(run);
      if (run.kg_ok) {
        run.batch_eligible = run.measure->BatchFilterEligible(run.table->rows);
      }

      // Sized from the config, not the GK table: a candidate whose key
      // generation was shed has an empty table but still owes one
      // (skipped) degradation entry per configured pass.
      size_t num_keys = run.cand->keys.size();
      size_t n_inst = run.instances->NumInstances();
      // The shard plan partitions entering positions by the candidate's
      // maximum reach (adaptive passes can extend any window up to
      // max_window); context_begin is accounting only — rows are
      // resident, so a shard reads across its left edge freely.
      size_t reach =
          run.cand->window_policy == WindowPolicy::kAdaptivePrefix
              ? std::max(run.cand->max_window, run.cand->window_size)
              : run.cand->window_size;
      run.shard_plan = ComputeShardPlan(n_inst, num_shards, reach);
      run.pass_orders.resize(num_keys);
      run.pass_hits.assign(num_keys,
                           std::vector<std::vector<PassHit>>(num_shards));
      run.shard_stats.assign(num_keys, std::vector<PassStats>(num_shards));
      run.pass_stats.resize(num_keys);
      run.plans.resize(num_keys);
      run.shard_outcomes.assign(num_keys,
                                std::vector<WindowRunResult>(num_shards));
      run.outcomes.resize(num_keys);
      run.pass_status.resize(num_keys);
      run.shard_status.assign(num_keys,
                              std::vector<util::Status>(num_shards));
      for (size_t k = 0; k < num_keys; ++k) {
        PassPlan& plan = run.plans[k];
        plan.planned = WindowPairCount(n_inst, run.cand->window_size);
        if (token.cancelled()) cancelled = true;
        if (!run.kg_ok || cancelled || wall_expired) {
          plan.skip = true;
        } else if (budget == 0) {
          plan.window = run.cand->window_size;
        } else if (budget_exhausted) {
          plan.skip = true;
        } else if (budget_spent + plan.planned <= budget) {
          plan.window = run.cand->window_size;
          budget_spent += plan.planned;
        } else {
          // The boundary pass: shrink to the largest window whose full
          // pass still fits what is left, then close the budget.
          budget_exhausted = true;
          size_t shrunk = LargestWindowWithin(n_inst, run.cand->window_size,
                                              budget - budget_spent);
          if (shrunk >= 2) {
            plan.window = shrunk;
            plan.shrunk = true;
            budget_spent += WindowPairCount(n_inst, shrunk);
          } else {
            plan.skip = true;
          }
        }
        pass_tasks.emplace_back(r, k);
      }

      // Cross-pass verdict cache: only pays off when at least two passes
      // can window the same pair. Sized from each planned pass's
      // worst-case enumeration (adaptive passes may extend any window up
      // to max_window), so AcquireOrWait can never run out of slots.
      if (run.cand->enable_fast_paths && run.kg_ok && num_keys >= 2) {
        size_t distinct_bound = 0;
        for (const PassPlan& plan : run.plans) {
          if (plan.skip) continue;
          size_t w = plan.window;
          if (run.cand->window_policy == WindowPolicy::kAdaptivePrefix &&
              !plan.shrunk) {
            w = std::max(w, run.cand->max_window);
          }
          distinct_bound += WindowPairCount(n_inst, w);
        }
        if (distinct_bound > 0) {
          run.verdict_cache = std::make_unique<VerdictCache>(distinct_bound);
        }
      }
    }

    // Order stage: every pass's sorted order, in parallel. With a memory
    // budget this is where rows spill and merge back; either way the
    // orders are fixed before any shard enumerates, so all shards of a
    // pass read one shared permutation.
    //
    // The budget is the envelope for the whole process — the resident
    // document, GK tables, and cluster state take most of it — so the
    // spill buffers get a 1/16 slice, split across the level's
    // concurrent sorters. Dividing by pass count (never thread count)
    // keeps the extsort.* counters machine-independent.
    const uint64_t sorter_budget =
        memory_budget == 0
            ? 0
            : std::max<uint64_t>(
                  memory_budget /
                      (16 * std::max<size_t>(pass_tasks.size(), 1)),
                  1);
    if (metrics.enabled() && memory_budget > 0) {
      set_phase(obs::RunPhase::kExternalSort);
    }
    util::ParallelFor(pass_tasks.size(), num_threads, [&](size_t i) {
      auto [r, key_index] = pass_tasks[i];
      ComputePassOrder(runs[r], key_index, explain.enabled(), sorter_budget,
                       config_.spill_dir(), metrics, tracer,
                       extsort_high_water);
    });
    for (const CandidateRun& run : runs) {
      for (const util::Status& status : run.pass_status) {
        SXNM_RETURN_IF_ERROR(status);
      }
    }
    if (metrics.enabled() && memory_budget > 0) {
      set_phase(obs::RunPhase::kSlidingWindow);
      metrics.gauge("extsort.spill_bytes_peak")
          .Set(static_cast<double>(
              extsort_high_water.spill_bytes_peak.load()));
      metrics.gauge("extsort.merge_fanin_max")
          .Set(static_cast<double>(
              extsort_high_water.merge_fanin_max.load()));
    }

    // Multi-pass sorted window (SW): every (pass, shard) of the level in
    // parallel. Each task owns a disjoint range of entering positions,
    // writes only its own buffers, and shares the pass order read-only.
    std::vector<std::array<size_t, 3>> shard_tasks;  // (run, key, shard)
    shard_tasks.reserve(pass_tasks.size() * num_shards);
    for (auto [r, key_index] : pass_tasks) {
      for (size_t s = 0; s < num_shards; ++s) {
        shard_tasks.push_back({r, key_index, s});
      }
    }
    util::ParallelFor(shard_tasks.size(), num_threads, [&](size_t i) {
      auto [r, key_index, s] = shard_tasks[i];
      RunWindowPass(runs[r], key_index, s, token, deadline, interruptible,
                    explain.enabled(), metrics, tracer);
    });
    for (const CandidateRun& run : runs) {
      for (const auto& per_key : run.shard_status) {
        for (const util::Status& status : per_key) {
          SXNM_RETURN_IF_ERROR(status);
        }
      }
    }
    if (token.cancelled()) cancelled = true;
    if (deadline.expired()) wall_expired = true;

    // Reduce the per-shard stats and outcomes to the per-pass values the
    // merge, report rows, and degradation accounting read. Serial
    // quiescent point, so plain sums.
    for (CandidateRun& run : runs) {
      for (size_t k = 0; k < run.plans.size(); ++k) {
        for (const PassStats& part : run.shard_stats[k]) {
          AccumulateShardStats(run.pass_stats[k], part);
        }
        for (const WindowRunResult& part : run.shard_outcomes[k]) {
          run.outcomes[k].pairs_visited += part.pairs_visited;
          run.outcomes[k].stopped_early |= part.stopped_early;
        }
      }
    }
    if (metrics.enabled() && num_shards > 1) {
      // Run-shape telemetry, published only when sharding is actually
      // on: a shards=1 run's metric snapshot stays byte-identical to the
      // unsharded engine's. Excluded from determinism digests like the
      // persist.* family.
      metrics.gauge("shard.count").Set(static_cast<double>(num_shards));
      metrics.counter("shard.tasks").Add(shard_tasks.size());
      size_t sharded_passes = 0;
      size_t overlap_rows = 0;
      for (const CandidateRun& run : runs) {
        size_t per_pass_overlap = ShardOverlapRows(run.shard_plan);
        for (const PassPlan& plan : run.plans) {
          if (plan.skip) continue;
          ++sharded_passes;
          overlap_rows += per_pass_overlap;
        }
      }
      metrics.counter("shard.passes").Add(sharded_passes);
      metrics.counter("shard.overlap_rows").Add(overlap_rows);
    }

    // Deterministic merge + transitive closure (TC), serially in
    // processing order.
    obs::Tracer::Span merge_span = tracer.StartSpan("merge");
    for (CandidateRun& run : runs) {
      CandidateResult& cand_result = cand_results[run.index];
      cand_result.name = run.cand->name;
      cand_result.num_instances = run.instances->NumInstances();
      MergePasses(run, cand_result, depth, metrics, explain);
      if (metrics.enabled() && run.verdict_cache != nullptr) {
        // Serial quiescent point: the level's passes have joined, so the
        // scan is exact.
        verdict_occupied_total += run.verdict_cache->Occupancy();
        verdict_capacity_total += run.verdict_cache->capacity();
      }
    }
    if (metrics.enabled() && verdict_capacity_total > 0) {
      metrics.gauge("cache.verdict_occupancy")
          .Set(static_cast<double>(verdict_occupied_total) /
               static_cast<double>(verdict_capacity_total));
    }
    merge_span.End();
    result.timer.Add(kPhaseSlidingWindow, sw_watch.ElapsedSeconds());

    // Degradation accounting, in the same deterministic order the
    // governor planned in. `pairs_windowed` is what the pass actually
    // enumerated, so one rule covers skips, shrunk windows, and
    // cooperative early stops alike.
    for (CandidateRun& run : runs) {
      for (size_t k = 0; k < run.plans.size(); ++k) {
        const PassPlan& plan = run.plans[k];
        if (!plan.skip && !plan.shrunk && !run.outcomes[k].stopped_early) {
          continue;
        }
        size_t executed = plan.skip ? 0 : run.pass_stats[k].pairs_windowed;
        PassDegradation entry;
        entry.candidate = run.cand->name;
        entry.key_index = k;
        entry.skipped = plan.skip;
        entry.window_used = plan.window;
        entry.rows = run.instances->NumInstances();
        entry.pairs_planned = plan.planned;
        entry.pairs_elided =
            plan.planned > executed ? plan.planned - executed : 0;
        explain.AppendShed(run.cand->name, static_cast<int>(k), plan.skip,
                           run.cand->window_size, plan.window, entry.rows,
                           entry.pairs_planned, entry.pairs_elided);
        degradation.passes.push_back(std::move(entry));
      }
    }

    if (metrics.enabled()) set_phase(obs::RunPhase::kTransitiveClosure);
    for (CandidateRun& run : runs) {
      if (util::FaultInjector::Instance().ShouldFail("tc.closure")) {
        return Status::Internal(
            "injected fault: transitive closure failed for candidate '" +
            run.cand->name + "'");
      }
      util::Stopwatch tc_watch;
      obs::Tracer::Span tc_span = tracer.StartSpan("tc/" + run.cand->name);
      std::vector<MergeStep> lineage;
      cluster_sets[run.index] = ComputeTransitiveClosure(
          run.instances->NumInstances(),
          cand_results[run.index].duplicate_pairs, &metrics,
          explain.enabled() ? &lineage : nullptr);
      if (explain.enabled()) {
        for (const MergeStep& step : lineage) {
          explain.AppendMerge(run.cand->name, step.pair.first,
                              step.pair.second, step.root_a, step.root_b,
                              step.root, step.merged);
        }
        const ClusterSet& clusters = cluster_sets[run.index];
        for (const std::vector<size_t>& members :
             clusters.NonTrivialClusters()) {
          explain.AppendCluster(run.cand->name,
                                static_cast<size_t>(clusters.cid(members[0])),
                                members);
        }
      }
      tc_span.End();
      result.timer.Add(kPhaseTransitiveClosure, tc_watch.ElapsedSeconds());
      cand_results[run.index].clusters = cluster_sets[run.index];
    }

    // The report rows of this level, in processing order (levels iterate
    // deepest-first, matching the bottom-up assembly below).
    if (metrics.enabled()) {
      for (CandidateRun& run : runs) {
        for (size_t k = 0; k < run.pass_stats.size(); ++k) {
          result.report.rows.push_back({run.cand->name, k,
                                        run.instances->NumInstances(),
                                        run.pass_stats[k]});
        }
      }
    }

    // Level boundary: merge + closure done, every cluster set downstream
    // levels need is final — a consistent cut. Commit it. Cancelled /
    // wall-expired levels shed work nondeterministically, so they are
    // never recorded as completed (a resume re-runs them properly). The
    // FINAL level is not committed: a successful run deletes its
    // checkpoint moments later anyway, so the commit would be pure
    // overhead in the common case — a crash between here and completion
    // resumes from the previous cut and re-runs one level.
    if (checkpointing && ckpt_every_pass && level_ordinal < levels.size() &&
        !cancelled && !wall_expired) {
      SXNM_RETURN_IF_ERROR(write_checkpoint(level_ordinal));
    }
  }

  // Assemble in the canonical bottom-up order, independent of the level
  // grouping above.
  for (size_t t : forest.ProcessingOrder()) {
    cand_results[t].gk = std::move(gk[t]);
    result.candidates.push_back(std::move(cand_results[t]));
  }

  // --- Degradation summary -------------------------------------------------
  if (token.cancelled()) cancelled = true;
  if (deadline.expired()) wall_expired = true;
  if (!degradation.passes.empty()) {
    degradation.degraded = true;
    if (cancelled) {
      degradation.reason = util::StatusCode::kCancelled;
    } else if (wallclock_mode && wall_expired) {
      degradation.reason = util::StatusCode::kDeadlineExceeded;
    } else {
      degradation.reason = budget_reason;
    }
  }
  if (metrics.enabled()) {
    metrics.counter("robust.degraded").Add(degradation.degraded ? 1 : 0);
    metrics.counter("robust.passes_skipped").Add(degradation.PassesSkipped());
    metrics.counter("robust.passes_shrunk").Add(degradation.PassesShrunk());
    metrics.counter("robust.rows_skipped").Add(degradation.RowsSkipped());
    metrics.counter("robust.pairs_elided").Add(degradation.PairsElided());
    result.report.degradation = degradation;
  }

  // --- Observability export ----------------------------------------------
  run_span.End();
  if (profiling) {
    // Stop after the run span ends (all spans popped, samples final)
    // and before the telemetry final sample, which then reflects the
    // fully quiesced engine. The folded file commits atomically: a
    // crash leaves the previous profile or none, never a torn one.
    result.profile = profiler.Stop();
    SXNM_RETURN_IF_ERROR(result.profile.WriteFoldedFile(obs_cfg.profile_path));
    if (metrics.enabled()) result.report.profile = result.profile;
  }
  if (metrics.enabled()) set_phase(obs::RunPhase::kDone);
  // Stop the sampler before snapshotting: the worker joins first, so the
  // stream's final sample is taken after every engine writer quiesced
  // and equals result.metrics below.
  SXNM_RETURN_IF_ERROR(telemetry.Stop());
  if (tracer.enabled()) {
    SXNM_RETURN_IF_ERROR(tracer.WriteChromeTraceFile(obs_cfg.trace_path));
  }
  if (metrics.enabled()) {
    result.metrics = metrics.Snapshot();
    if (!obs_cfg.report_path.empty()) {
      SXNM_RETURN_IF_ERROR(result.report.WriteJsonFile(obs_cfg.report_path));
    }
  }
  if (explain.enabled()) {
    SXNM_RETURN_IF_ERROR(explain.WriteFile(obs_cfg.explain_path));
  }

  // A deterministically complete run (including budget-shed runs, whose
  // shed set is final) has nothing left to resume: drop the snapshot.
  // Cancelled or wall-clock-expired runs keep theirs so a later run can
  // pick up at the last durable level and finish the job.
  if (checkpointing && !cancelled && !wall_expired) {
    persist::RemoveFile(ckpt_path);
  }
  return result;
}

}  // namespace sxnm::core
