#include "sxnm/detector.h"

#include <algorithm>
#include <map>
#include <set>

#include "sxnm/similarity_measure.h"
#include "util/string_util.h"
#include "sxnm/sliding_window.h"
#include "sxnm/transitive_closure.h"

namespace sxnm::core {

using util::Result;
using util::Status;

const CandidateResult* DetectionResult::Find(std::string_view name) const {
  for (const CandidateResult& c : candidates) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

double DetectionResult::KeyGenerationSeconds() const {
  return timer.Seconds(kPhaseKeyGeneration);
}

double DetectionResult::SlidingWindowSeconds() const {
  return timer.Seconds(kPhaseSlidingWindow);
}

double DetectionResult::TransitiveClosureSeconds() const {
  return timer.Seconds(kPhaseTransitiveClosure);
}

double DetectionResult::DuplicateDetectionSeconds() const {
  return SlidingWindowSeconds() + TransitiveClosureSeconds();
}

size_t DetectionResult::TotalComparisons() const {
  size_t total = 0;
  for (const CandidateResult& c : candidates) total += c.comparisons;
  return total;
}

util::Result<DetectionResult> Detector::Run(const xml::Document& doc) const {
  SXNM_RETURN_IF_ERROR(config_.Validate());

  DetectionResult result;

  // --- Key generation phase (KG) -----------------------------------------
  // Candidate discovery and GK construction happen together: both read the
  // document once, mirroring the paper's single-pass key generation.
  util::Stopwatch kg_watch;
  auto forest_or = CandidateForest::Build(config_, doc);
  if (!forest_or.ok()) return forest_or.status();
  const CandidateForest& forest = forest_or.value();

  std::vector<GkTable> gk(forest.candidates().size());
  for (size_t t = 0; t < forest.candidates().size(); ++t) {
    const CandidateInstances& instances = forest.candidates()[t];
    gk[t] = GenerateKeys(*instances.config, instances);
  }
  result.timer.Add(kPhaseKeyGeneration, kg_watch.ElapsedSeconds());

  // --- Duplicate detection phase (per candidate, bottom-up) ---------------
  std::vector<ClusterSet> cluster_sets(forest.candidates().size());

  for (size_t t : forest.ProcessingOrder()) {
    const CandidateInstances& instances = forest.candidates()[t];
    const CandidateConfig& cand = *instances.config;

    // Child cluster sets are complete: children precede parents in the
    // processing order.
    std::vector<const ClusterSet*> child_sets;
    if (cand.use_descendants && !instances.child_types.empty()) {
      child_sets.reserve(instances.child_types.size());
      for (size_t child : instances.child_types) {
        child_sets.push_back(&cluster_sets[child]);
      }
    }
    SimilarityMeasure measure(cand, instances, std::move(child_sets));

    CandidateResult cand_result;
    cand_result.name = cand.name;
    cand_result.num_instances = instances.NumInstances();

    // Multi-pass sorted window (SW).
    util::Stopwatch sw_watch;
    std::set<OrdinalPair> accepted;
    std::set<OrdinalPair> compared;
    const GkTable& table = gk[t];

    if (cand.exact_od_prepass) {
      // DE-SNM-style pre-pass: byte-identical normalized ODs are
      // duplicates by definition; link members to the group's first
      // instance (the closure expands the group).
      std::map<std::string, size_t> first_of;
      for (const GkRow& row : table.rows) {
        std::string key;
        for (const std::string& od : row.ods) {
          key += util::ToLower(util::NormalizeWhitespace(od));
          key += '\x1f';
        }
        auto [it, inserted] = first_of.emplace(std::move(key), row.ordinal);
        if (!inserted) {
          OrdinalPair pair = std::minmax(it->second, row.ordinal);
          compared.insert(pair);
          accepted.insert(pair);
        }
      }
    }

    for (size_t key_index = 0; key_index < table.num_keys; ++key_index) {
      std::vector<size_t> order = table.SortedOrder(key_index);
      auto visit = [&](size_t a, size_t b) {
        OrdinalPair pair = std::minmax(a, b);
        if (!compared.insert(pair).second) return;  // seen in earlier pass
        ++cand_result.comparisons;
        SimilarityVerdict verdict =
            measure.Compare(table.rows[pair.first], table.rows[pair.second]);
        if (verdict.is_duplicate) accepted.insert(pair);
      };
      if (cand.window_policy == WindowPolicy::kAdaptivePrefix) {
        ForEachAdaptiveWindowPair(
            order,
            [&](size_t ordinal) -> const std::string& {
              return table.rows[ordinal].keys[key_index];
            },
            cand.window_size, cand.max_window, cand.adaptive_prefix_len,
            visit);
      } else {
        ForEachWindowPair(order, cand.window_size, visit);
      }
    }
    cand_result.duplicate_pairs.assign(accepted.begin(), accepted.end());
    for (const auto& [a, b] : cand_result.duplicate_pairs) {
      cand_result.duplicate_eid_pairs.emplace_back(instances.eids[a],
                                                   instances.eids[b]);
    }
    result.timer.Add(kPhaseSlidingWindow, sw_watch.ElapsedSeconds());

    // Transitive closure (TC).
    util::Stopwatch tc_watch;
    cluster_sets[t] = ComputeTransitiveClosure(instances.NumInstances(),
                                               cand_result.duplicate_pairs);
    result.timer.Add(kPhaseTransitiveClosure, tc_watch.ElapsedSeconds());

    cand_result.clusters = cluster_sets[t];
    cand_result.gk = std::move(gk[t]);
    result.candidates.push_back(std::move(cand_result));
  }

  return result;
}

}  // namespace sxnm::core
