#include "sxnm/detection_report.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "persist/io.h"
#include "util/table_printer.h"

namespace sxnm::core {

double PassStats::SimMedian() const {
  if (sim_buckets.empty()) return 0.0;
  std::vector<double> bounds = obs::DefaultSimilarityBounds();
  if (sim_buckets.size() != bounds.size() + 1) return 0.0;
  return obs::BucketQuantile(bounds, sim_buckets, 0.5);
}

void PassStats::Accumulate(const PassStats& other) {
  pairs_windowed += other.pairs_windowed;
  prepass_skips += other.prepass_skips;
  comparisons += other.comparisons;
  hits += other.hits;
  ed_bailouts += other.ed_bailouts;
  desc_invocations += other.desc_invocations;
  desc_short_circuits += other.desc_short_circuits;
  verdict_cache_hits += other.verdict_cache_hits;
  dag_equal += other.dag_equal;
  batch_rejects += other.batch_rejects;
  interned_equal += other.interned_equal;
  myers_words += other.myers_words;
  wall_seconds += other.wall_seconds;
  if (!other.sim_buckets.empty()) {
    if (sim_buckets.size() < other.sim_buckets.size()) {
      sim_buckets.resize(other.sim_buckets.size(), 0);
    }
    for (size_t i = 0; i < other.sim_buckets.size(); ++i) {
      sim_buckets[i] += other.sim_buckets[i];
    }
  }
}

size_t DegradationReport::PassesSkipped() const {
  size_t count = 0;
  for (const PassDegradation& p : passes) count += p.skipped ? 1 : 0;
  return count;
}

size_t DegradationReport::PassesShrunk() const {
  size_t count = 0;
  for (const PassDegradation& p : passes) count += p.skipped ? 0 : 1;
  return count;
}

size_t DegradationReport::RowsSkipped() const {
  size_t count = 0;
  for (const PassDegradation& p : passes) {
    if (p.skipped) count += p.rows;
  }
  return count;
}

size_t DegradationReport::PairsElided() const {
  size_t count = 0;
  for (const PassDegradation& p : passes) count += p.pairs_elided;
  return count;
}

std::string DegradationReport::ToString() const {
  if (!degraded) return "run complete: no degradation\n";
  std::string out = "DEGRADED (";
  out += util::StatusCodeName(reason);
  out += "): ";
  out += std::to_string(PassesShrunk());
  out += " pass(es) shrunk, ";
  out += std::to_string(PassesSkipped());
  out += " skipped, ";
  out += std::to_string(PairsElided());
  out += " pair(s) elided";
  if (comparison_budget != 0) {
    out += ", budget " + std::to_string(comparison_budget);
  }
  out += "\n";
  for (const PassDegradation& p : passes) {
    out += "  " + p.candidate + " pass " + std::to_string(p.key_index + 1);
    if (p.skipped) {
      out += ": skipped (" + std::to_string(p.rows) + " rows, " +
             std::to_string(p.pairs_elided) + " pairs elided)\n";
    } else {
      out += ": window shrunk to " + std::to_string(p.window_used) + " (" +
             std::to_string(p.pairs_elided) + " pairs elided)\n";
    }
  }
  return out;
}

size_t DetectionReport::TotalComparisons() const {
  size_t total = 0;
  for (const Row& row : rows) total += row.stats.comparisons;
  return total;
}

size_t DetectionReport::TotalHits() const {
  size_t total = 0;
  for (const Row& row : rows) total += row.stats.hits;
  return total;
}

PassStats DetectionReport::Totals() const {
  PassStats totals;
  for (const Row& row : rows) totals.Accumulate(row.stats);
  return totals;
}

namespace {

std::string Ms(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << seconds * 1e3;
  return os.str();
}

std::string Fixed2(double value) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << value;
  return os.str();
}

std::vector<std::string> StatsCells(const PassStats& s) {
  return {std::to_string(s.pairs_windowed),
          std::to_string(s.prepass_skips),
          std::to_string(s.comparisons),
          std::to_string(s.hits),
          std::to_string(s.ed_bailouts),
          std::to_string(s.desc_invocations),
          std::to_string(s.desc_short_circuits),
          std::to_string(s.verdict_cache_hits),
          std::to_string(s.dag_equal),
          std::to_string(s.batch_rejects),
          std::to_string(s.interned_equal),
          std::to_string(s.myers_words),
          Fixed2(s.SimMedian()),
          Ms(s.wall_seconds)};
}

void WriteStatsJson(std::ostream& os, const PassStats& s) {
  os << "{\"pairs_windowed\": " << s.pairs_windowed
     << ", \"prepass_skips\": " << s.prepass_skips
     << ", \"comparisons\": " << s.comparisons << ", \"hits\": " << s.hits
     << ", \"ed_bailouts\": " << s.ed_bailouts
     << ", \"desc_invocations\": " << s.desc_invocations
     << ", \"desc_short_circuits\": " << s.desc_short_circuits
     << ", \"verdict_cache_hits\": " << s.verdict_cache_hits
     << ", \"dag_equal\": " << s.dag_equal
     << ", \"batch_rejects\": " << s.batch_rejects
     << ", \"interned_equal\": " << s.interned_equal
     << ", \"myers_words\": " << s.myers_words
     << ", \"wall_seconds\": " << s.wall_seconds << ", \"sim_buckets\": [";
  for (size_t i = 0; i < s.sim_buckets.size(); ++i) {
    os << (i > 0 ? ", " : "") << s.sim_buckets[i];
  }
  os << "]}";
}

// JSON string escaping for candidate names (config-controlled, but a
// report must not emit malformed JSON for any name).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void DegradationReport::WriteJson(std::ostream& os) const {
  os << "{\"degraded\": " << (degraded ? "true" : "false") << ", \"reason\": \""
     << util::StatusCodeName(reason)
     << "\", \"comparison_budget\": " << comparison_budget
     << ", \"passes_skipped\": " << PassesSkipped()
     << ", \"passes_shrunk\": " << PassesShrunk()
     << ", \"rows_skipped\": " << RowsSkipped()
     << ", \"pairs_elided\": " << PairsElided() << ", \"passes\": [";
  bool first = true;
  for (const PassDegradation& p : passes) {
    os << (first ? "" : ", ");
    first = false;
    os << "{\"candidate\": \"" << JsonEscape(p.candidate)
       << "\", \"pass\": " << p.key_index + 1
       << ", \"skipped\": " << (p.skipped ? "true" : "false")
       << ", \"window_used\": " << p.window_used << ", \"rows\": " << p.rows
       << ", \"pairs_planned\": " << p.pairs_planned
       << ", \"pairs_elided\": " << p.pairs_elided << "}";
  }
  os << "]}";
}

std::string DetectionReport::ToTable() const {
  util::TablePrinter table({"candidate", "pass", "instances", "windowed",
                            "prepass_skips", "comparisons", "hits",
                            "ed_bailouts", "desc_jaccard", "desc_shortcut",
                            "cache_hits", "dag_eq", "batch_rej",
                            "interned_eq", "myers_words",
                            "sim_p50", "wall_ms"});
  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.candidate,
                                      std::to_string(row.key_index + 1),
                                      std::to_string(row.num_instances)};
    for (std::string& cell : StatsCells(row.stats)) {
      cells.push_back(std::move(cell));
    }
    table.AddRow(std::move(cells));
  }
  PassStats totals = Totals();
  std::vector<std::string> cells = {"TOTAL", "", ""};
  for (std::string& cell : StatsCells(totals)) cells.push_back(std::move(cell));
  table.AddRow(std::move(cells));
  std::string out = table.ToString();
  if (degradation.degraded) out += degradation.ToString();
  return out;
}

std::string DetectionReport::AttributionTable() const {
  if (attribution.empty()) return "";
  util::TablePrinter table({"candidate", "pass", "gold_pairs",
                            "gold_windowed", "accepted", "accepted_gold",
                            "precision", "recall"});
  for (const PassAttribution& row : attribution) {
    table.AddRow({row.candidate, std::to_string(row.key_index + 1),
                  std::to_string(row.gold_pairs),
                  std::to_string(row.gold_windowed),
                  std::to_string(row.accepted),
                  std::to_string(row.accepted_gold), Fixed2(row.precision),
                  Fixed2(row.recall)});
  }
  return table.ToString();
}

void DetectionReport::WriteJson(std::ostream& os) const {
  os << "{\n  \"rows\": [";
  bool first = true;
  for (const Row& row : rows) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"candidate\": \"" << JsonEscape(row.candidate)
       << "\", \"pass\": " << row.key_index + 1
       << ", \"num_instances\": " << row.num_instances << ", \"stats\": ";
    WriteStatsJson(os, row.stats);
    os << "}";
  }
  os << "\n  ],\n  \"totals\": ";
  WriteStatsJson(os, Totals());
  os << ",\n  \"degradation\": ";
  degradation.WriteJson(os);
  if (!attribution.empty()) {
    os << ",\n  \"attribution\": [";
    bool first_attr = true;
    for (const PassAttribution& row : attribution) {
      os << (first_attr ? "\n" : ",\n");
      first_attr = false;
      os << "    {\"candidate\": \"" << JsonEscape(row.candidate)
         << "\", \"pass\": " << row.key_index + 1
         << ", \"gold_pairs\": " << row.gold_pairs
         << ", \"gold_windowed\": " << row.gold_windowed
         << ", \"accepted\": " << row.accepted
         << ", \"accepted_gold\": " << row.accepted_gold
         << ", \"precision\": " << row.precision
         << ", \"recall\": " << row.recall << "}";
    }
    os << "\n  ]";
  }
  if (profile.enabled) {
    os << ",\n  \"profile\": ";
    profile.WriteJson(os);
  }
  os << "\n}\n";
}

std::string DetectionReport::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

util::Status DetectionReport::WriteJsonFile(const std::string& path) const {
  // Atomic commit: a crash mid-export leaves the previous report (or no
  // file), never a torn JSON document.
  return persist::AtomicWriteFile(path, ToJson());
}

}  // namespace sxnm::core
