// Key generation phase (Sec. 3.3): builds the GK relation
//   GK_s = (eid, key_1, ..., key_n, od_1, ..., od_m)
// for a candidate. Keys and object descriptions are extracted together in
// one traversal of the candidate's instances, exactly as the paper's key
// generation reads the data in a single pass.

#ifndef SXNM_SXNM_KEY_GENERATION_H_
#define SXNM_SXNM_KEY_GENERATION_H_

#include <string>
#include <vector>

#include "sxnm/candidate_tree.h"
#include "sxnm/config.h"
#include "sxnm/od_pool.h"
#include "sxnm/subtree_pool.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::obs {
class MetricsRegistry;
}  // namespace sxnm::obs

namespace sxnm::core {

/// One tuple of GK_s.
struct GkRow {
  size_t ordinal = 0;        // instance ordinal within the candidate
  xml::ElementId eid = xml::kInvalidElementId;
  std::vector<std::string> keys;  // one per KeyDef, in definition order
  std::vector<std::string> ods;   // one per OdEntry, in definition order

  /// Lowercased, whitespace-collapsed `ods`, computed once at key
  /// generation and interned into the table's OdPool so the default
  /// "edit" φ^OD never re-normalizes inside the O(n·w) comparison loop
  /// and equal values compare by ID without touching bytes. Parallel to
  /// `ods`; may be empty on rows constructed by hand (the comparison
  /// kernels then fall back to normalizing on the fly).
  std::vector<OdRef> norm_ods;

  /// Hash-consed id of the instance's whole subtree in the table's
  /// SubtreePool. Equal valid ids mean the instances are structurally
  /// identical document fragments — same keys, same ODs, same
  /// descendants — which the detector exploits to classify such window
  /// pairs without the comparison kernel (sw.dag_equal). Invalid when
  /// the candidate runs with dag_compression off (or on hand-built rows).
  SubtreeRef subtree;
};

/// The GK relation of one candidate.
struct GkTable {
  std::vector<GkRow> rows;
  size_t num_keys = 0;
  size_t num_od = 0;

  /// Interning pool the rows' `norm_ods` references resolve against.
  OdPool od_pool;

  /// Hash-consing pool the rows' `subtree` ids resolve against (empty
  /// when dag compression is disabled for the candidate).
  SubtreePool subtree_pool;

  /// Row indices sorted lexicographically by keys[key_index]
  /// (stable: ties keep instance order). `key_index < num_keys`.
  std::vector<size_t> SortedOrder(size_t key_index) const;
};

/// Builds GK for `candidate` over `elements`/`eids` (parallel vectors, as
/// produced by CandidateForest). Each key is the concatenation of its
/// parts in `order`-sequence, each part being the part's pattern applied
/// to the first value of the part's relative path; missing values
/// contribute an empty fragment (the paper's "missing year" case, which
/// produces poorly sorted keys — Fig. 4 discussion). OD values are the
/// first value of each OD path, empty when the path selects nothing.
/// With a non-null `metrics` registry, key generation contributes the
/// counters kg.rows, kg.keys_emitted, kg.od_values, kg.od_normalize_us
/// (time spent lowercasing / whitespace-collapsing OD values, µs),
/// kg.od_pool_strings (distinct interned normalized values),
/// kg.od_pool_bytes (interning arena size), and — when the candidate has
/// dag_compression on — kg.subtree_pool_nodes / kg.subtree_pool_bytes
/// (distinct DAG nodes and their encoding bytes).
GkTable GenerateKeys(const CandidateConfig& candidate,
                     const std::vector<const xml::Element*>& elements,
                     const std::vector<xml::ElementId>& eids,
                     obs::MetricsRegistry* metrics = nullptr);

/// Convenience overload over a CandidateInstances record.
GkTable GenerateKeys(const CandidateConfig& candidate,
                     const CandidateInstances& instances,
                     obs::MetricsRegistry* metrics = nullptr);

/// Governed key generation, used by the detector:
///   * polls `token` between rows; on cancellation the partially built
///     table is discarded and `cancelled` is set (a partial GK relation
///     would make windowing depend on where the cut landed, so key
///     generation for a candidate is all-or-nothing);
///   * checks the "kg.row" fault-injection site per row, failing with
///     kInternal when the armed fault fires (chaos tests).
struct KeyGenResult {
  GkTable table;
  bool cancelled = false;
};
util::Result<KeyGenResult> GenerateKeysChecked(
    const CandidateConfig& candidate, const CandidateInstances& instances,
    const util::CancellationToken& token,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_KEY_GENERATION_H_
