#include "sxnm/key_generation.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "obs/metrics.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sxnm::core {

std::vector<size_t> GkTable::SortedOrder(size_t key_index) const {
  assert(key_index < num_keys || (num_keys == 0 && key_index == 0));
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rows[a].keys[key_index] < rows[b].keys[key_index];
  });
  return order;
}

namespace {

// The shared row loop behind both entry points. `checked` enables the
// per-row governance hooks (fault site, cancellation poll) that the plain
// GenerateKeys skips entirely.
util::Result<KeyGenResult> GenerateKeysImpl(
    const CandidateConfig& candidate,
    const std::vector<const xml::Element*>& elements,
    const std::vector<xml::ElementId>& eids, bool checked,
    const util::CancellationToken& token, obs::MetricsRegistry* metrics) {
  assert(elements.size() == eids.size());
  GkTable table;
  table.num_keys = candidate.keys.size();
  table.num_od = candidate.od.size();
  table.rows.reserve(elements.size());

  // OD-normalization time is banked across rows with a paused stopwatch;
  // the clock reads happen only when metrics are actually collected.
  const bool measure = metrics != nullptr && metrics->enabled();
  util::Stopwatch norm_watch;
  norm_watch.Pause();

  // Live progress: batched adds to kg.rows_done let the telemetry
  // sampler watch key generation advance mid-candidate. Flushed at the
  // same completion point as kg.rows, so the two agree whenever a
  // candidate finishes; a cancelled candidate keeps its partial batches
  // (rows_done measures work performed, not rows kept).
  obs::Counter* rows_done =
      measure ? &metrics->counter("kg.rows_done") : nullptr;
  uint32_t rows_done_pending = 0;
  constexpr uint32_t kRowsDoneBatch = 256;

  for (size_t i = 0; i < elements.size(); ++i) {
    if (checked) {
      if (util::FaultInjector::Instance().ShouldFail("kg.row")) {
        return util::Status::Internal(
            "injected fault: key generation failed on row " +
            std::to_string(i) + " of candidate '" + candidate.name + "'");
      }
      if (token.cancelled()) {
        KeyGenResult out;
        out.cancelled = true;
        return out;
      }
    }
    const xml::Element& element = *elements[i];
    GkRow row;
    row.ordinal = i;
    row.eid = eids[i];

    // Each path referenced by a key or the OD is evaluated at most once.
    std::map<int, std::string> value_cache;
    auto value_of = [&](int pid) -> const std::string& {
      auto it = value_cache.find(pid);
      if (it == value_cache.end()) {
        const PathEntry* path = candidate.FindPath(pid);
        std::string value =
            path != nullptr ? path->path.SelectFirstValue(element) : "";
        it = value_cache.emplace(pid, std::move(value)).first;
      }
      return it->second;
    };

    row.keys.reserve(candidate.keys.size());
    for (const KeyDef& key : candidate.keys) {
      // Parts are applied in `order` sequence.
      std::vector<const KeyPartRef*> parts;
      parts.reserve(key.parts.size());
      for (const KeyPartRef& part : key.parts) parts.push_back(&part);
      std::stable_sort(parts.begin(), parts.end(),
                       [](const KeyPartRef* a, const KeyPartRef* b) {
                         return a->order < b->order;
                       });
      std::string generated;
      for (const KeyPartRef* part : parts) {
        generated += part->pattern.Apply(value_of(part->pid));
      }
      row.keys.push_back(std::move(generated));
    }

    row.ods.reserve(candidate.od.size());
    row.norm_ods.reserve(candidate.od.size());
    if (measure) norm_watch.Resume();
    for (const OdEntry& od : candidate.od) {
      row.ods.push_back(value_of(od.pid));
      row.norm_ods.push_back(table.od_pool.Intern(
          util::ToLower(util::NormalizeWhitespace(row.ods.back()))));
    }
    if (measure) norm_watch.Pause();

    if (candidate.dag_compression) {
      row.subtree = table.subtree_pool.Intern(element);
    }

    table.rows.push_back(std::move(row));
    if (rows_done != nullptr && ++rows_done_pending >= kRowsDoneBatch) {
      rows_done->Add(rows_done_pending);
      rows_done_pending = 0;
    }
  }

  if (measure) {
    rows_done->Add(rows_done_pending);
    metrics->counter("kg.rows").Add(table.rows.size());
    metrics->counter("kg.keys_emitted")
        .Add(table.rows.size() * table.num_keys);
    metrics->counter("kg.od_values").Add(table.rows.size() * table.num_od);
    metrics->counter("kg.od_normalize_us")
        .Add(static_cast<uint64_t>(norm_watch.ElapsedSeconds() * 1e6));
    metrics->counter("kg.od_pool_strings").Add(table.od_pool.size());
    metrics->counter("kg.od_pool_bytes").Add(table.od_pool.arena_bytes());
    metrics->counter("kg.subtree_pool_nodes")
        .Add(table.subtree_pool.num_nodes());
    metrics->counter("kg.subtree_pool_bytes").Add(table.subtree_pool.bytes());
  }
  KeyGenResult out;
  out.table = std::move(table);
  return out;
}

}  // namespace

GkTable GenerateKeys(const CandidateConfig& candidate,
                     const std::vector<const xml::Element*>& elements,
                     const std::vector<xml::ElementId>& eids,
                     obs::MetricsRegistry* metrics) {
  auto result = GenerateKeysImpl(candidate, elements, eids, /*checked=*/false,
                                 util::CancellationToken(), metrics);
  // Unchecked generation has no failure or cancellation path.
  return std::move(result.value().table);
}

GkTable GenerateKeys(const CandidateConfig& candidate,
                     const CandidateInstances& instances,
                     obs::MetricsRegistry* metrics) {
  return GenerateKeys(candidate, instances.elements, instances.eids, metrics);
}

util::Result<KeyGenResult> GenerateKeysChecked(
    const CandidateConfig& candidate, const CandidateInstances& instances,
    const util::CancellationToken& token, obs::MetricsRegistry* metrics) {
  return GenerateKeysImpl(candidate, instances.elements, instances.eids,
                          /*checked=*/true, token, metrics);
}

}  // namespace sxnm::core
