#include "sxnm/config.h"

#include <cmath>
#include <cstdint>
#include <set>

#include "util/string_util.h"

namespace sxnm::core {

using util::Result;
using util::Status;

const char* CombineModeName(CombineMode mode) {
  switch (mode) {
    case CombineMode::kOdOnly:
      return "od_only";
    case CombineMode::kAverage:
      return "average";
    case CombineMode::kWeighted:
      return "weighted";
    case CombineMode::kDescBoost:
      return "desc_boost";
    case CombineMode::kDescGate:
      return "desc_gate";
  }
  return "unknown";
}

util::Result<CombineMode> ParseCombineMode(std::string_view name) {
  std::string n = util::ToLower(util::Trim(name));
  if (n == "od_only") return CombineMode::kOdOnly;
  if (n == "average" || n.empty()) return CombineMode::kAverage;
  if (n == "weighted") return CombineMode::kWeighted;
  if (n == "desc_boost") return CombineMode::kDescBoost;
  if (n == "desc_gate") return CombineMode::kDescGate;
  return Status::InvalidArgument("unknown combine mode '" +
                                 std::string(name) + "'");
}

const char* WindowPolicyName(WindowPolicy policy) {
  switch (policy) {
    case WindowPolicy::kFixed:
      return "fixed";
    case WindowPolicy::kAdaptivePrefix:
      return "adaptive_prefix";
  }
  return "unknown";
}

util::Result<WindowPolicy> ParseWindowPolicy(std::string_view name) {
  std::string n = util::ToLower(util::Trim(name));
  if (n == "fixed" || n.empty()) return WindowPolicy::kFixed;
  if (n == "adaptive_prefix") return WindowPolicy::kAdaptivePrefix;
  return Status::InvalidArgument("unknown window policy '" +
                                 std::string(name) + "'");
}

const PathEntry* CandidateConfig::FindPath(int pid) const {
  for (const PathEntry& entry : paths) {
    if (entry.id == pid) return &entry;
  }
  return nullptr;
}

util::Status Config::AddCandidate(CandidateConfig candidate) {
  if (Find(candidate.name) != nullptr) {
    return Status::InvalidArgument("duplicate candidate name '" +
                                   candidate.name + "'");
  }
  candidates_.push_back(std::move(candidate));
  return Status::Ok();
}

const CandidateConfig* Config::Find(std::string_view name) const {
  for (const CandidateConfig& c : candidates_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

CandidateConfig* Config::Find(std::string_view name) {
  return const_cast<CandidateConfig*>(
      static_cast<const Config*>(this)->Find(name));
}

namespace {

Status ValidateCandidate(const CandidateConfig& c) {
  auto fail = [&c](const std::string& what) {
    return Status::InvalidArgument("candidate '" + c.name + "': " + what);
  };

  if (c.name.empty()) return Status::InvalidArgument("candidate without name");
  if (c.paths.empty()) return fail("no paths defined");

  std::set<int> path_ids;
  for (const PathEntry& p : c.paths) {
    if (!path_ids.insert(p.id).second) {
      return fail("duplicate path id " + std::to_string(p.id));
    }
  }

  if (c.od.empty()) return fail("empty object description");
  for (const OdEntry& od : c.od) {
    if (path_ids.count(od.pid) == 0) {
      return fail("OD entry references unknown path id " +
                  std::to_string(od.pid));
    }
    if (od.relevance <= 0.0) {
      return fail("OD relevance must be positive (pid " +
                  std::to_string(od.pid) + ")");
    }
    if (!od.similarity) {
      return fail("OD entry pid " + std::to_string(od.pid) +
                  " has no resolved similarity function");
    }
  }

  if (c.keys.empty()) return fail("no key defined");
  for (size_t k = 0; k < c.keys.size(); ++k) {
    if (c.keys[k].parts.empty()) {
      return fail("key " + std::to_string(k + 1) + " has no parts");
    }
    for (const KeyPartRef& part : c.keys[k].parts) {
      if (path_ids.count(part.pid) == 0) {
        return fail("key " + std::to_string(k + 1) +
                    " references unknown path id " + std::to_string(part.pid));
      }
    }
  }

  if (c.window_size < 2) return fail("window size must be >= 2");
  if (c.batch_scoring && !c.enable_fast_paths) {
    return fail(
        "batch_scoring requires enable_fast_paths (the SoA pre-filters "
        "screen against the interned normalized ODs); set "
        "batch-scoring=\"off\" alongside fast-paths=\"off\"");
  }
  if (c.window_policy == WindowPolicy::kAdaptivePrefix) {
    if (c.max_window < c.window_size) {
      return fail("max_window must be >= window size");
    }
    if (c.adaptive_prefix_len < 1) {
      return fail("adaptive_prefix_len must be >= 1");
    }
  }

  if (!c.theory.empty()) {
    std::vector<int> od_pids;
    od_pids.reserve(c.od.size());
    for (const OdEntry& od : c.od) od_pids.push_back(od.pid);
    if (auto status = c.theory.Validate(od_pids); !status.ok()) {
      return fail("equational theory: " + status.message());
    }
  }
  const ClassifierConfig& cls = c.classifier;
  if (cls.od_threshold < 0.0 || cls.od_threshold > 1.0) {
    return fail("od_threshold out of [0,1]");
  }
  if (cls.desc_threshold < 0.0 || cls.desc_threshold > 1.0) {
    return fail("desc_threshold out of [0,1]");
  }
  if (cls.od_weight < 0.0 || cls.od_weight > 1.0) {
    return fail("od_weight out of [0,1]");
  }
  return Status::Ok();
}

}  // namespace

xml::ParseOptions RunLimits::ToParseOptions() const {
  xml::ParseOptions options;
  options.max_depth = max_depth;
  options.max_input_bytes = max_input_bytes;
  options.max_nodes = max_nodes;
  options.max_attr_count = max_attr_count;
  return options;
}

size_t RunLimits::ResolveComparisonBudget() const {
  size_t budget = max_comparisons;
  if (deadline_seconds > 0.0 && comparisons_per_second > 0.0) {
    double derived = deadline_seconds * comparisons_per_second;
    // Saturate instead of overflowing for absurd rate × deadline products.
    size_t derived_budget =
        derived >= 9e18 ? SIZE_MAX : static_cast<size_t>(derived);
    if (budget == 0 || derived_budget < budget) budget = derived_budget;
  }
  return budget;
}

util::Status RunLimits::Validate() const {
  if (deadline_seconds < 0.0) {
    return Status::InvalidArgument("limits: deadline_seconds must be >= 0");
  }
  if (comparisons_per_second < 0.0) {
    return Status::InvalidArgument(
        "limits: comparisons_per_second must be >= 0");
  }
  return Status::Ok();
}

util::Status Config::Validate() const {
  if (candidates_.empty()) {
    return Status::InvalidArgument("configuration has no candidates");
  }
  SXNM_RETURN_IF_ERROR(limits_.Validate());
  if (shards_ == 0) {
    return Status::InvalidArgument("shards must be >= 1 (1 = unsharded)");
  }
  if (!observability_.report_path.empty() && !observability_.metrics) {
    return Status::InvalidArgument(
        "observability: report path set but metrics are off (the report "
        "is built from the metrics collection)");
  }
  if (!observability_.explain_path.empty() && !observability_.metrics) {
    return Status::InvalidArgument(
        "observability: explain path set but metrics are off (explain "
        "records are emitted alongside the metrics collection)");
  }
  if (!observability_.telemetry_path.empty() && !observability_.metrics) {
    return Status::InvalidArgument(
        "observability: telemetry path set but metrics are off (the "
        "sampler streams the metrics registry)");
  }
  if (!(observability_.telemetry_interval_ms > 0.0) ||
      !std::isfinite(observability_.telemetry_interval_ms)) {
    return Status::InvalidArgument(
        "observability: telemetry-interval-ms must be a positive number");
  }
  if (!(observability_.profile_hz > 0.0) ||
      !std::isfinite(observability_.profile_hz)) {
    return Status::InvalidArgument(
        "observability: profile-hz must be a positive number");
  }
  std::set<std::string> abs_paths;
  for (const CandidateConfig& c : candidates_) {
    SXNM_RETURN_IF_ERROR(ValidateCandidate(c));
    if (!abs_paths.insert(c.absolute_path.ToString()).second) {
      return Status::InvalidArgument(
          "two candidates share the absolute path '" +
          c.absolute_path.ToString() + "'");
    }
  }
  return Status::Ok();
}

CandidateBuilder::CandidateBuilder(std::string name,
                                   std::string absolute_path) {
  candidate_.name = std::move(name);
  candidate_.absolute_path_str = absolute_path;
  auto parsed = xml::XPath::Parse(absolute_path);
  if (parsed.ok()) {
    if (parsed->SelectsValue()) {
      first_error_ = Status::InvalidArgument(
          "candidate path must select elements: " + absolute_path);
    } else {
      candidate_.absolute_path = std::move(parsed).value();
    }
  } else {
    first_error_ = parsed.status();
  }
}

CandidateBuilder& CandidateBuilder::Path(int id, std::string rel_path) {
  auto parsed = xml::XPath::Parse(rel_path);
  if (!parsed.ok()) {
    if (first_error_.ok()) first_error_ = parsed.status();
    return *this;
  }
  PathEntry entry;
  entry.id = id;
  entry.rel_path = std::move(rel_path);
  entry.path = std::move(parsed).value();
  candidate_.paths.push_back(std::move(entry));
  return *this;
}

CandidateBuilder& CandidateBuilder::Od(int pid, double relevance,
                                       std::string similarity) {
  OdEntry entry;
  entry.pid = pid;
  entry.relevance = relevance;
  entry.similarity_name = similarity;
  auto fn = text::GetSimilarity(similarity);
  if (!fn.ok()) {
    if (first_error_.ok()) first_error_ = fn.status();
    return *this;
  }
  entry.similarity = std::move(fn).value();
  candidate_.od.push_back(std::move(entry));
  return *this;
}

CandidateBuilder& CandidateBuilder::Key(
    std::vector<std::pair<int, std::string>> parts) {
  KeyDef key;
  int order = 1;
  for (auto& [pid, pattern_str] : parts) {
    auto pattern = KeyPattern::Parse(pattern_str);
    if (!pattern.ok()) {
      if (first_error_.ok()) first_error_ = pattern.status();
      return *this;
    }
    KeyPartRef part;
    part.pid = pid;
    part.order = order++;
    part.pattern = std::move(pattern).value();
    key.parts.push_back(std::move(part));
  }
  candidate_.keys.push_back(std::move(key));
  return *this;
}

CandidateBuilder& CandidateBuilder::Window(size_t window_size) {
  candidate_.window_size = window_size;
  return *this;
}

CandidateBuilder& CandidateBuilder::AdaptiveWindow(size_t prefix_len,
                                                   size_t max_window) {
  candidate_.window_policy = WindowPolicy::kAdaptivePrefix;
  candidate_.adaptive_prefix_len = prefix_len;
  candidate_.max_window = max_window;
  return *this;
}

CandidateBuilder& CandidateBuilder::OdThreshold(double threshold) {
  candidate_.classifier.od_threshold = threshold;
  return *this;
}

CandidateBuilder& CandidateBuilder::DescThreshold(double threshold) {
  candidate_.classifier.desc_threshold = threshold;
  return *this;
}

CandidateBuilder& CandidateBuilder::OdWeight(double weight) {
  candidate_.classifier.od_weight = weight;
  return *this;
}

CandidateBuilder& CandidateBuilder::Mode(CombineMode mode) {
  candidate_.classifier.mode = mode;
  return *this;
}

CandidateBuilder& CandidateBuilder::UseDescendants(bool use) {
  candidate_.use_descendants = use;
  return *this;
}

CandidateBuilder& CandidateBuilder::ExactOdPrepass(bool enable) {
  candidate_.exact_od_prepass = enable;
  return *this;
}

CandidateBuilder& CandidateBuilder::FastPaths(bool enable) {
  candidate_.enable_fast_paths = enable;
  // Batched scoring is a fast-path refinement; a builder turning fast
  // paths off almost always wants the legacy scalar baseline, so follow
  // suit instead of failing validation (call BatchScoring(true) after to
  // override explicitly).
  if (!enable) candidate_.batch_scoring = false;
  return *this;
}

CandidateBuilder& CandidateBuilder::Dag(bool enable) {
  candidate_.dag_compression = enable;
  return *this;
}

CandidateBuilder& CandidateBuilder::BatchScoring(bool enable) {
  candidate_.batch_scoring = enable;
  return *this;
}

CandidateBuilder& CandidateBuilder::TheoryRule(
    std::vector<std::pair<int, double>> conditions) {
  Rule rule;
  for (const auto& [pid, min_similarity] : conditions) {
    rule.conditions.push_back({pid, min_similarity});
  }
  candidate_.theory.AddRule(std::move(rule));
  return *this;
}

util::Result<CandidateConfig> CandidateBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  return std::move(candidate_);
}

}  // namespace sxnm::core
