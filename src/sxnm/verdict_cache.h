// Cross-pass verdict cache for the sliding-window phase. With k > 1 keys
// the same instance pair frequently falls into a window of more than one
// key pass; the seed engine classified such pairs once per pass. The
// cache records each pair's verdict the first time *any* pass computes
// it, so every later pass — possibly running concurrently on another
// worker — reuses the classification instead of re-running the
// comparison kernel.
//
// Determinism contract: the set of pairs classified and every verdict
// are scheduling-independent, because a verdict is a pure function of
// the two rows. Exactly one thread (the first to claim the slot) runs
// the comparison; everyone else blocks until the verdict is published.
// Detection output and all verdict-derived counters therefore stay
// bit-identical to the serial engine for any thread count.
//
// The table is open-addressed with linear probing over a power-of-two
// capacity sized by the detector to at least 2x the number of distinct
// pairs any plan can window, so probe chains stay short and insertion
// can never fail. Key and state live in one slot struct, so the common
// claim-then-publish sequence touches a single cache line per slot
// instead of two parallel arrays. Keys are the detector's packed
// ordinal pairs (lo << 32 | hi with lo < hi), which are never 0 — key 0
// is the empty sentinel.

#ifndef SXNM_SXNM_VERDICT_CACHE_H_
#define SXNM_SXNM_VERDICT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/flat_set.h"

namespace sxnm::core {

class VerdictCache {
 public:
  /// Outcome of AcquireOrWait. When `owner` is true the caller must
  /// classify the pair and call Publish exactly once with `slot`;
  /// otherwise `is_duplicate` already holds the published verdict.
  struct Lookup {
    bool owner = false;
    bool is_duplicate = false;
    size_t slot = 0;
  };

  /// `max_distinct_pairs` is an upper bound on the number of distinct
  /// keys that will ever be acquired; capacity is the next power of two
  /// >= 2x that bound (min 16).
  explicit VerdictCache(size_t max_distinct_pairs);

  /// Claims `packed_pair` (must be non-zero). First caller becomes the
  /// owner and must Publish; later callers for the same key wait for the
  /// owner's verdict. Safe to call from any number of threads.
  Lookup AcquireOrWait(uint64_t packed_pair);

  /// Publishes the owner's verdict; wakes all waiters on this slot.
  void Publish(const Lookup& lookup, bool is_duplicate);

  /// Hints the pair's home slot into cache ahead of AcquireOrWait. The
  /// batched scoring path prefetches a whole block of survivors before
  /// classifying them, overlapping the slot loads that a pair-at-a-time
  /// walk would serialize one DRAM miss at a time.
  void Prefetch(uint64_t packed_pair) const {
    size_t slot = static_cast<size_t>(util::MixHash64(packed_pair)) & mask_;
    __builtin_prefetch(&slots_[slot], /*rw=*/1);
  }

  size_t capacity() const { return capacity_; }

  /// Published (key, verdict) entries sorted by key — a canonical,
  /// scheduling-independent view of the cache for serialization
  /// (checkpoint snapshots). Slots still kComputing are skipped; call at
  /// quiescent points only.
  std::vector<std::pair<uint64_t, bool>> Export() const;

  /// Re-seeds the cache from exported entries: each becomes a published
  /// verdict, so later AcquireOrWait calls replay it without owning.
  /// Keys must fit the capacity bound the cache was constructed with.
  void Import(const std::vector<std::pair<uint64_t, bool>>& entries);

  /// Number of claimed slots. A full scan, intended for telemetry at
  /// quiescent points (e.g. after a candidate's passes merge), not for
  /// hot paths; racy-but-safe if writers are still active.
  size_t Occupancy() const {
    size_t occupied = 0;
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i].key.load(std::memory_order_relaxed) != 0) ++occupied;
    }
    return occupied;
  }

 private:
  // Slot state machine: claimed slots start kComputing and move to
  // kNo/kYes exactly once, via a release store Publish pairs with the
  // waiters' acquire loads.
  enum State : uint8_t { kComputing = 0, kNo = 1, kYes = 2 };

  struct Slot {
    std::atomic<uint64_t> key{0};  // 0 = empty
    std::atomic<uint8_t> state{kComputing};
  };

  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_VERDICT_CACHE_H_
