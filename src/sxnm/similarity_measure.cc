#include "sxnm/similarity_measure.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string_view>

#include "text/edit_distance.h"
#include "util/simd.h"

namespace sxnm::core {

namespace {

// Size of the intersection of two sorted unique sequences.
size_t SortedOverlap(const std::vector<int>& a, const std::vector<int>& b) {
  size_t overlap = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

}  // namespace

SimilarityMeasure::SimilarityMeasure(
    const CandidateConfig& config, const CandidateInstances& instances,
    std::vector<const ClusterSet*> child_cluster_sets, const OdPool* od_pool)
    : config_(config),
      instances_(instances),
      child_cluster_sets_(std::move(child_cluster_sets)),
      od_pool_(od_pool) {
  assert(child_cluster_sets_.empty() ||
         child_cluster_sets_.size() == instances_.child_types.size());

  // The l_e lists of Def. 3 as sorted unique cluster-ID vectors, built
  // once per candidate instead of once per compared pair.
  desc_cids_.resize(child_cluster_sets_.size());
  for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
    const ClusterSet* clusters = child_cluster_sets_[slot];
    if (clusters == nullptr) continue;
    const auto& per_instance = instances_.desc_instances[slot];
    desc_cids_[slot].resize(per_instance.size());
    for (size_t ordinal = 0; ordinal < per_instance.size(); ++ordinal) {
      std::vector<int>& cids = desc_cids_[slot][ordinal];
      cids.reserve(per_instance[ordinal].size());
      for (size_t d : per_instance[ordinal]) cids.push_back(clusters->cid(d));
      std::sort(cids.begin(), cids.end());
      cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
    }
  }

  od_is_norm_edit_.reserve(config_.od.size());
  for (const OdEntry& od : config_.od) {
    od_is_norm_edit_.push_back(od.similarity_name == "edit");
  }
}

double SimilarityMeasure::ComponentSimilarity(const GkRow& a, const GkRow& b,
                                              size_t i, double min_sim,
                                              bool* pruned_out,
                                              size_t* interned_out) const {
  if (config_.enable_fast_paths && od_is_norm_edit_[i] && od_pool_ != nullptr &&
      a.norm_ods.size() == a.ods.size() &&
      b.norm_ods.size() == b.ods.size()) {
    const OdRef ra = a.norm_ods[i];
    const OdRef rb = b.norm_ods[i];
    if (ra.id == rb.id) {
      // Interned-equal: byte-identical normalized values, so φ^edit is
      // exactly 1.0 (distance 0) — same result the kernel would produce.
      if (interned_out != nullptr) ++*interned_out;
      return 1.0;
    }
    // "edit" is NormalizedEditSimilarity: lowercase + collapse whitespace,
    // then plain edit similarity. The normalization already happened at
    // key generation, so only the (bounded) distance kernel remains.
    return text::BoundedEditSimilarity(od_pool_->View(ra), od_pool_->View(rb),
                                       min_sim, pruned_out);
  }
  return config_.od[i].similarity(a.ods[i], b.ods[i]);
}

double SimilarityMeasure::OdSimilarity(const GkRow& a, const GkRow& b) const {
  // Components missing on *both* sides carry no information and are
  // excluded, with the relevancies renormalized over the remaining
  // components — the paper's "comparisons were then only performed on
  // 'readable' attributes" behaviour. A value present on one side only
  // still counts (as dissimilarity evidence).
  return OdSimilarityBounded(a, b, /*min_required=*/0.0, nullptr);
}

double SimilarityMeasure::OdSimilarityBounded(const GkRow& a, const GkRow& b,
                                              double min_required,
                                              bool* pruned_out,
                                              size_t* interned_out) const {
  if (pruned_out != nullptr) *pruned_out = false;

  double total_weight = 0.0;
  for (size_t i = 0; i < config_.od.size(); ++i) {
    if (a.ods[i].empty() && b.ods[i].empty()) continue;
    total_weight += config_.od[i].relevance;
  }
  if (total_weight <= 0.0) return 0.0;  // nothing comparable at all

  double sim = 0.0;
  double remaining = total_weight;
  for (size_t i = 0; i < config_.od.size(); ++i) {
    const OdEntry& od = config_.od[i];
    if (a.ods[i].empty() && b.ods[i].empty()) continue;
    remaining -= od.relevance;

    // Smallest value this component may take while the pair can still
    // reach min_required with perfect scores on everything after it:
    //   (sim + relevance*s + remaining) / total_weight >= min_required.
    double comp_min = 0.0;
    if (min_required > 0.0) {
      double needed = min_required * total_weight - sim - remaining;
      if (needed > 0.0) comp_min = needed / od.relevance;
    }

    bool comp_pruned = false;
    double s = ComponentSimilarity(a, b, i, comp_min, &comp_pruned,
                                   interned_out);
    sim += od.relevance * s;

    if (min_required > 0.0) {
      double upper_bound = (sim + remaining) / total_weight;
      if (comp_pruned || upper_bound < min_required) {
        // `s` may itself be an upper bound when comp_pruned; either way
        // the true OD similarity cannot reach min_required anymore.
        if (pruned_out != nullptr) *pruned_out = true;
        return upper_bound;
      }
    }
  }
  return sim / total_weight;
}

std::vector<double> SimilarityMeasure::ComponentSimilarities(
    const GkRow& a, const GkRow& b) const {
  std::vector<double> sims;
  sims.reserve(config_.od.size());
  for (size_t i = 0; i < config_.od.size(); ++i) {
    if (a.ods[i].empty() && b.ods[i].empty()) {
      sims.push_back(0.0);
    } else {
      sims.push_back(ComponentSimilarity(a, b, i, /*min_sim=*/0.0, nullptr));
    }
  }
  return sims;
}

double SimilarityMeasure::DescendantSimilarity(size_t ordinal_a,
                                               size_t ordinal_b) const {
  if (child_cluster_sets_.empty()) return -1.0;
  if (!config_.enable_fast_paths) {
    return DescendantSimilaritySetBased(ordinal_a, ordinal_b);
  }

  double sum = 0.0;
  size_t comparable_types = 0;

  for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
    if (child_cluster_sets_[slot] == nullptr) continue;
    const std::vector<int>& cids_a = desc_cids_[slot][ordinal_a];
    const std::vector<int>& cids_b = desc_cids_[slot][ordinal_b];
    if (cids_a.empty() && cids_b.empty()) continue;  // nothing to compare

    size_t overlap = SortedOverlap(cids_a, cids_b);
    size_t unions = cids_a.size() + cids_b.size() - overlap;
    double phi_desc =
        unions == 0 ? 0.0
                    : static_cast<double>(overlap) / static_cast<double>(unions);
    sum += phi_desc;
    ++comparable_types;
  }

  if (comparable_types == 0) return -1.0;
  return sum / static_cast<double>(comparable_types);  // agg() = average
}

double SimilarityMeasure::DescendantSimilaritySetBased(
    size_t ordinal_a, size_t ordinal_b) const {
  double sum = 0.0;
  size_t comparable_types = 0;

  for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
    const ClusterSet* clusters = child_cluster_sets_[slot];
    if (clusters == nullptr) continue;
    const auto& per_instance = instances_.desc_instances[slot];
    const std::vector<size_t>& desc_a = per_instance[ordinal_a];
    const std::vector<size_t>& desc_b = per_instance[ordinal_b];
    if (desc_a.empty() && desc_b.empty()) continue;  // nothing to compare

    // l_e lists of Def. 3, as cluster-ID sets.
    std::set<int> cids_a, cids_b;
    for (size_t d : desc_a) cids_a.insert(clusters->cid(d));
    for (size_t d : desc_b) cids_b.insert(clusters->cid(d));

    size_t overlap = 0;
    for (int cid : cids_a) overlap += cids_b.count(cid);
    size_t unions = cids_a.size() + cids_b.size() - overlap;
    double phi_desc =
        unions == 0 ? 0.0
                    : static_cast<double>(overlap) / static_cast<double>(unions);
    sum += phi_desc;
    ++comparable_types;
  }

  if (comparable_types == 0) return -1.0;
  return sum / static_cast<double>(comparable_types);
}

double SimilarityMeasure::MinUsefulOd(bool desc_possible) const {
  const ClassifierConfig& cls = config_.classifier;
  double t = cls.od_threshold;
  double m = t;
  if (desc_possible) {
    switch (cls.mode) {
      case CombineMode::kOdOnly:
      case CombineMode::kDescGate:
        m = t;  // the OD must clear the threshold by itself
        break;
      case CombineMode::kAverage:
      case CombineMode::kDescBoost:
        m = 2.0 * t - 1.0;  // descendants (boosted or not) at most 1
        break;
      case CombineMode::kWeighted:
        m = cls.od_weight > 0.0
                ? (t - (1.0 - cls.od_weight)) / cls.od_weight
                : 0.0;  // weight 0: the OD never matters, never prune
        break;
    }
  }
  // Safety margin: pruning must never flip a borderline accept into a
  // reject through bound arithmetic rounding differently than the exact
  // path.
  return std::max(0.0, m - 1e-9);
}

SimilarityVerdict SimilarityMeasure::Compare(const GkRow& a,
                                             const GkRow& b) const {
  return CompareImpl(a, b, /*bounded=*/false);
}

SimilarityVerdict SimilarityMeasure::CompareFast(const GkRow& a,
                                                 const GkRow& b) const {
  return CompareImpl(a, b, /*bounded=*/config_.enable_fast_paths);
}

SimilarityVerdict SimilarityMeasure::CompareImpl(const GkRow& a,
                                                 const GkRow& b,
                                                 bool bounded) const {
  const ClassifierConfig& cls = config_.classifier;
  SimilarityVerdict verdict;

  if (!config_.theory.empty()) {
    // Equational theory replaces the threshold classification (Sec. 5).
    // Rules read the per-component similarities, so OD pruning does not
    // apply; the OD similarity is derived from the same component values
    // (identical arithmetic to OdSimilarity).
    std::vector<double> comp = ComponentSimilarities(a, b);
    double sim = 0.0, weight = 0.0;
    for (size_t i = 0; i < config_.od.size(); ++i) {
      if (a.ods[i].empty() && b.ods[i].empty()) continue;
      sim += config_.od[i].relevance * comp[i];
      weight += config_.od[i].relevance;
    }
    verdict.od_sim = weight > 0.0 ? sim / weight : 0.0;

    // The descendant similarity is only worth computing when some rule
    // actually conditions on it.
    double desc = -1.0;
    if (config_.use_descendants && config_.theory.UsesDescendants()) {
      desc = DescendantSimilarity(a.ordinal, b.ordinal);
      verdict.desc_evaluated = true;
    }
    verdict.used_descendants = desc >= 0.0;
    verdict.desc_sim = verdict.used_descendants ? desc : 0.0;

    std::vector<int> od_pids;
    od_pids.reserve(config_.od.size());
    for (const OdEntry& od : config_.od) od_pids.push_back(od.pid);
    verdict.combined = verdict.od_sim;
    verdict.is_duplicate = config_.theory.Fires(comp, od_pids, desc);
    return verdict;
  }

  bool desc_possible = config_.use_descendants &&
                       !child_cluster_sets_.empty() &&
                       cls.mode != CombineMode::kOdOnly;

  double min_od = bounded ? MinUsefulOd(desc_possible) : 0.0;
  bool pruned = false;
  double od = OdSimilarityBounded(a, b, min_od, &pruned,
                                  &verdict.interned_equal);
  verdict.od_sim = od;
  if (pruned) {
    // Even the upper bound stays below every branch's requirement: not a
    // duplicate, whatever the descendants say.
    verdict.combined = od;
    verdict.pruned = true;
    return verdict;
  }

  if (!desc_possible) {
    // Leaf candidate, descendants disabled, or OD-only mode: classify on
    // the object description alone.
    verdict.combined = od;
    verdict.is_duplicate = od >= cls.od_threshold;
    return verdict;
  }

  // Descendant short-circuit: skip the Jaccard when every possible value
  // (including "no descendant info", which falls back to the plain OD
  // threshold) yields the same verdict. The bounds are evaluated with the
  // same formulas as the exact combination below, so floating-point
  // monotonicity keeps the classification identical.
  double t = cls.od_threshold;
  switch (cls.mode) {
    case CombineMode::kOdOnly:
      break;  // unreachable: desc_possible excludes kOdOnly
    case CombineMode::kAverage:
    case CombineMode::kDescBoost:
      if (0.5 * (od + 1.0) < t && od < t) {
        verdict.combined = od;
        verdict.desc_short_circuit = true;
        return verdict;  // reject in every branch
      }
      if (0.5 * od >= t && od >= t) {
        verdict.combined = od;
        verdict.is_duplicate = true;
        verdict.desc_short_circuit = true;
        return verdict;  // accept in every branch
      }
      break;
    case CombineMode::kWeighted: {
      double w = cls.od_weight;
      if (w * od + (1.0 - w) < t && od < t) {
        verdict.combined = od;
        verdict.desc_short_circuit = true;
        return verdict;
      }
      if (w * od >= t && od >= t) {
        verdict.combined = od;
        verdict.is_duplicate = true;
        verdict.desc_short_circuit = true;
        return verdict;
      }
      break;
    }
    case CombineMode::kDescGate:
      if (od < t) {
        verdict.combined = od;
        verdict.desc_short_circuit = true;
        return verdict;  // the gate can only veto, never rescue
      }
      break;
  }

  double desc = DescendantSimilarity(a.ordinal, b.ordinal);
  verdict.desc_evaluated = true;
  verdict.used_descendants = desc >= 0.0;
  verdict.desc_sim = verdict.used_descendants ? desc : 0.0;

  if (!verdict.used_descendants) {
    // No descendant info for the pair: classify on the object
    // description alone.
    verdict.combined = od;
    verdict.is_duplicate = od >= t;
    return verdict;
  }

  switch (cls.mode) {
    case CombineMode::kOdOnly:
      verdict.combined = od;
      break;
    case CombineMode::kAverage:
      verdict.combined = 0.5 * (od + verdict.desc_sim);
      break;
    case CombineMode::kWeighted:
      verdict.combined =
          cls.od_weight * od + (1.0 - cls.od_weight) * verdict.desc_sim;
      break;
    case CombineMode::kDescBoost: {
      // The paper's Experiment set 3 reading: a descendant overlap above
      // the descendants threshold means the children sets are similar
      // (full credit), compensating the harsh Jaccard of non-overlapping
      // children.
      double boosted =
          verdict.desc_sim >= cls.desc_threshold ? 1.0 : verdict.desc_sim;
      verdict.combined = 0.5 * (od + boosted);
      break;
    }
    case CombineMode::kDescGate:
      // The OD decides; descendants act as a veto: real duplicates share
      // at least a small fraction of their children's clusters, whereas
      // confusers (e.g. series CDs with disjoint track lists) do not.
      verdict.combined = od;
      verdict.is_duplicate =
          od >= t && verdict.desc_sim >= cls.desc_threshold;
      return verdict;
  }
  verdict.is_duplicate = verdict.combined >= t;
  return verdict;
}

bool SimilarityMeasure::BatchFilterEligible(
    const std::vector<GkRow>& rows) const {
  if (!config_.enable_fast_paths || !config_.batch_scoring) return false;
  if (!config_.theory.empty()) return false;
  if (od_pool_ == nullptr) return false;
  for (const GkRow& row : rows) {
    if (row.ods.size() != config_.od.size() ||
        row.norm_ods.size() != row.ods.size()) {
      return false;  // hand-built rows without interned normalized ODs
    }
  }
  return true;
}

void SimilarityMeasure::BatchFilter(const std::vector<GkRow>& rows,
                                    const OrdinalPair* pairs, size_t n,
                                    BatchFilterScratch* scratch) const {
  // Float bounds vs. the kernel's double arithmetic: every upper bound
  // below is >= the kernel's exact value in real arithmetic, and the
  // float evaluation of sums/ratios over [0,1] values is accurate to well
  // under this margin — so `upper bound < threshold - kMargin` implies
  // the kernel's combined similarity is strictly below the threshold.
  constexpr float kMargin = 1e-5f;

  const ClassifierConfig& cls = config_.classifier;
  BatchFilterScratch& s = *scratch;
  s.d.resize(n);
  s.m.resize(n);
  s.w.resize(n);
  s.od_acc.assign(n, 0.0f);
  s.od_wsum.assign(n, 0.0f);
  s.screen.resize(n);
  s.reject.resize(n);

  const size_t num_rows = rows.size();
  const bool desc_possible = config_.use_descendants &&
                             !child_cluster_sets_.empty() &&
                             cls.mode != CombineMode::kOdOnly;

  // --- Per-ordinal columns, built once per row table. ------------------
  // The screens only ever read a handful of small row fields; gathering
  // them into flat arrays up front means the per-pair sweeps below index
  // cache-resident columns instead of chasing GkRow -> std::string
  // pointers for every pair of every batch.
  if (s.rows_built != static_cast<const void*>(rows.data()) ||
      s.num_rows != num_rows) {
    s.rows_built = rows.data();
    s.num_rows = num_rows;
    const size_t nc = config_.od.size();
    s.col_id.resize(nc * num_rows);
    s.col_len.resize(nc * num_rows);
    s.col_fl.resize(nc * num_rows);
    s.col_empty.resize(nc * num_rows);
    for (size_t i = 0; i < nc; ++i) {
      for (size_t r = 0; r < num_rows; ++r) {
        const size_t at = i * num_rows + r;
        const OdRef ref = rows[r].norm_ods[i];
        s.col_id[at] = ref.id;
        s.col_len[at] = ref.length;
        uint16_t fl = 0;
        if (ref.length >= 2) {
          std::string_view v = od_pool_->View(ref);
          fl = static_cast<uint16_t>(
              (static_cast<uint8_t>(v.front()) << 8) |
              static_cast<uint8_t>(v.back()));
        }
        s.col_fl[at] = fl;
        s.col_empty[at] = rows[r].ods[i].empty() ? 1 : 0;
      }
    }
    if (desc_possible) {
      s.col_desc_size.assign(child_cluster_sets_.size() * num_rows, 0);
      for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
        if (child_cluster_sets_[slot] == nullptr) continue;
        const auto& cids = desc_cids_[slot];
        for (size_t r = 0; r < num_rows; ++r) {
          s.col_desc_size[slot * num_rows + r] =
              static_cast<uint32_t>(cids[rows[r].ordinal].size());
        }
      }
    }
  }

  // --- OD upper bound: one SoA sweep per component. --------------------
  for (size_t i = 0; i < config_.od.size(); ++i) {
    const float relevance = static_cast<float>(config_.od[i].relevance);
    const bool edit = od_is_norm_edit_[i];
    const uint32_t* ids = s.col_id.data() + i * num_rows;
    const uint32_t* lens = s.col_len.data() + i * num_rows;
    const uint16_t* fls = s.col_fl.data() + i * num_rows;
    const uint8_t* empties = s.col_empty.data() + i * num_rows;
    for (size_t p = 0; p < n; ++p) {
      const size_t ia = pairs[p].first;
      const size_t ib = pairs[p].second;
      // Zero-weight slots park at (0, 1, 0): they contribute nothing.
      float d = 0.0f, m = 1.0f, w = 0.0f;
      if (!(empties[ia] && empties[ib])) {
        w = relevance;
        if (edit) {
          if (ids[ia] != ids[ib]) {
            // Sound lower bounds on the edit distance of two *distinct*
            // interned values: the length difference; 1 (distinct ids
            // mean distinct bytes); and 2 when both the first and last
            // bytes differ and both sides have >= 2 characters (a single
            // edit leaves the first or the last character intact).
            const uint32_t la = lens[ia], lb = lens[ib];
            uint32_t lower = la > lb ? la - lb : lb - la;
            if (lower == 0) lower = 1;
            if (lower < 2 && la >= 2 && lb >= 2) {
              const uint16_t fa = fls[ia], fb = fls[ib];
              if ((fa >> 8) != (fb >> 8) && (fa & 0xffu) != (fb & 0xffu)) {
                lower = 2;
              }
            }
            d = static_cast<float>(lower);
            m = static_cast<float>(la > lb ? la : lb);
          }
          // Equal ids: distance 0, upper bound 1.0 (exact).
        }
        // Non-edit φ functions: no cheap bound, upper bound 1.0.
      }
      s.d[p] = d;
      s.m[p] = m;
      s.w[p] = w;
    }
    util::simd::AccumulateWeightedBound(n, s.d.data(), s.m.data(), s.w.data(),
                                        s.od_acc.data(), s.od_wsum.data());
  }
  // Collapse to the weighted upper bound; no comparable component means
  // the kernel scores the OD exactly 0.0.
  for (size_t p = 0; p < n; ++p) {
    s.od_acc[p] = s.od_wsum[p] > 0.0f ? s.od_acc[p] / s.od_wsum[p] : 0.0f;
  }

  // --- Descendant upper bound: Jaccard can reach at most min/max of the
  // two sorted-unique cluster-id set sizes. One sweep per child slot. ---
  if (desc_possible) {
    s.desc_acc.assign(n, 0.0f);
    s.desc_wsum.assign(n, 0.0f);
    for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
      if (child_cluster_sets_[slot] == nullptr) continue;
      const uint32_t* sizes = s.col_desc_size.data() + slot * num_rows;
      for (size_t p = 0; p < n; ++p) {
        const size_t sa = sizes[pairs[p].first];
        const size_t sb = sizes[pairs[p].second];
        float d = 0.0f, m = 1.0f, w = 0.0f;
        if (sa != 0 || sb != 0) {
          w = 1.0f;  // slots aggregate by unweighted average
          const size_t mx = sa > sb ? sa : sb;
          const size_t mn = sa + sb - mx;
          d = static_cast<float>(mx - mn);  // 1 - (mx-mn)/mx == mn/mx
          m = static_cast<float>(mx);
        }
        s.d[p] = d;
        s.m[p] = m;
        s.w[p] = w;
      }
      util::simd::AccumulateWeightedBound(n, s.d.data(), s.m.data(),
                                          s.w.data(), s.desc_acc.data(),
                                          s.desc_wsum.data());
    }
  }

  // --- Combine per mode into `screen` = upper bound - threshold, then
  // one vectorized compare against -kMargin. ----------------------------
  const float t = static_cast<float>(cls.od_threshold);
  const float dt = static_cast<float>(cls.desc_threshold);
  for (size_t p = 0; p < n; ++p) {
    const float od_ub = s.od_acc[p];
    float value = od_ub - t;
    if (desc_possible && s.desc_wsum[p] > 0.0f) {
      const float desc_ub = s.desc_acc[p] / s.desc_wsum[p];
      switch (cls.mode) {
        case CombineMode::kOdOnly:
          break;  // unreachable: desc_possible excludes kOdOnly
        case CombineMode::kAverage:
          value = 0.5f * (od_ub + desc_ub) - t;
          break;
        case CombineMode::kWeighted: {
          const float w = static_cast<float>(cls.od_weight);
          value = w * od_ub + (1.0f - w) * desc_ub - t;
          break;
        }
        case CombineMode::kDescBoost: {
          const float boosted = desc_ub >= dt - kMargin ? 1.0f : desc_ub;
          value = 0.5f * (od_ub + boosted) - t;
          break;
        }
        case CombineMode::kDescGate:
          // Both gates must hold; the smaller slack decides the screen.
          value = std::min(od_ub - t, desc_ub - dt);
          break;
      }
    }
    // Without comparable descendants the kernel falls back to the plain
    // OD threshold, which `value` already encodes.
    s.screen[p] = value;
  }
  util::simd::LessThanMask(n, s.screen.data(), -kMargin, s.reject.data());
}

obs::PairExplain SimilarityMeasure::Explain(const GkRow& a,
                                            const GkRow& b) const {
  const ClassifierConfig& cls = config_.classifier;
  obs::PairExplain out;
  out.threshold = cls.od_threshold;

  const bool pooled = od_pool_ != nullptr &&
                      a.norm_ods.size() == a.ods.size() &&
                      b.norm_ods.size() == b.ods.size();

  // Exact per-component detail. The explain path never prunes: every
  // comparable component gets its true similarity and (for the edit φ
  // with interned normalized values) its true edit distance.
  double weighted_sim = 0.0;
  double total_weight = 0.0;
  out.components.reserve(config_.od.size());
  for (size_t i = 0; i < config_.od.size(); ++i) {
    obs::ExplainOdComponent comp;
    comp.index = i;
    comp.weight = config_.od[i].relevance;
    comp.comparable = !(a.ods[i].empty() && b.ods[i].empty());
    const bool edit_entry = pooled && od_is_norm_edit_[i];
    if (pooled) {
      comp.ref_a = a.norm_ods[i].id;
      comp.ref_b = b.norm_ods[i].id;
    }
    if (edit_entry) {
      comp.value_a = std::string(od_pool_->View(a.norm_ods[i]));
      comp.value_b = std::string(od_pool_->View(b.norm_ods[i]));
    } else {
      comp.value_a = a.ods[i];
      comp.value_b = b.ods[i];
    }
    if (comp.comparable) {
      comp.interned_equal = edit_entry && a.norm_ods[i].id == b.norm_ods[i].id;
      if (edit_entry) {
        comp.edit_distance =
            comp.interned_equal
                ? 0
                : static_cast<int64_t>(text::LevenshteinDistance(
                      od_pool_->View(a.norm_ods[i]),
                      od_pool_->View(b.norm_ods[i])));
      }
      comp.sim = ComponentSimilarity(a, b, i, /*min_sim=*/0.0, nullptr);
      weighted_sim += comp.weight * comp.sim;
      total_weight += comp.weight;
    }
    out.components.push_back(std::move(comp));
  }
  out.od_valid = total_weight > 0.0;
  out.od_sim = out.od_valid ? weighted_sim / total_weight : 0.0;

  const bool desc_possible = config_.use_descendants &&
                             !child_cluster_sets_.empty() &&
                             cls.mode != CombineMode::kOdOnly;

  // Replay the bounded kernel's pruning decision to flag where the
  // sliding window would have bailed out (purely informational; the
  // similarities above stay exact).
  if (config_.enable_fast_paths && config_.theory.empty()) {
    double min_required = MinUsefulOd(desc_possible);
    if (min_required > 0.0) {
      double sim = 0.0;
      double remaining = total_weight;
      for (size_t i = 0; i < config_.od.size(); ++i) {
        if (a.ods[i].empty() && b.ods[i].empty()) continue;
        const OdEntry& od = config_.od[i];
        remaining -= od.relevance;
        double comp_min = 0.0;
        double needed = min_required * total_weight - sim - remaining;
        if (needed > 0.0) comp_min = needed / od.relevance;
        bool comp_pruned = false;
        double s = ComponentSimilarity(a, b, i, comp_min, &comp_pruned);
        sim += od.relevance * s;
        double upper_bound =
            total_weight > 0.0 ? (sim + remaining) / total_weight : 0.0;
        if (comp_pruned || upper_bound < min_required) {
          out.components[i].bailout = true;
          break;
        }
      }
    }
  }

  // Descendant detail: one slot per child type with a cluster set, with
  // the multiset sizes, intersection, and union behind the Jaccard.
  if (config_.use_descendants) {
    for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
      if (child_cluster_sets_[slot] == nullptr) continue;
      obs::ExplainDescSlot d;
      d.child = slot;
      const std::vector<int>& cids_a = desc_cids_[slot][a.ordinal];
      const std::vector<int>& cids_b = desc_cids_[slot][b.ordinal];
      d.size_a = cids_a.size();
      d.size_b = cids_b.size();
      d.intersection = SortedOverlap(cids_a, cids_b);
      d.union_size = d.size_a + d.size_b - d.intersection;
      d.jaccard = d.union_size == 0
                      ? 0.0
                      : static_cast<double>(d.intersection) /
                            static_cast<double>(d.union_size);
      out.descendants.push_back(d);
    }
  }

  if (!config_.theory.empty()) {
    // Theory classification: the score facing the user is the OD
    // similarity; whether the rules fired is recorded explicitly.
    std::vector<double> comp = ComponentSimilarities(a, b);
    double desc = -1.0;
    if (config_.use_descendants && config_.theory.UsesDescendants()) {
      desc = DescendantSimilarity(a.ordinal, b.ordinal);
    }
    out.desc_valid = desc >= 0.0;
    out.desc_sim = out.desc_valid ? desc : 0.0;
    std::vector<int> od_pids;
    od_pids.reserve(config_.od.size());
    for (const OdEntry& od : config_.od) od_pids.push_back(od.pid);
    out.theory_equal = config_.theory.Fires(comp, od_pids, desc);
    out.score = out.od_sim;
    return out;
  }

  if (!desc_possible) {
    out.score = out.od_sim;
    return out;
  }

  double desc = DescendantSimilarity(a.ordinal, b.ordinal);
  out.desc_valid = desc >= 0.0;
  out.desc_sim = out.desc_valid ? desc : 0.0;
  if (!out.desc_valid) {
    out.score = out.od_sim;
    return out;
  }
  switch (cls.mode) {
    case CombineMode::kOdOnly:
    case CombineMode::kDescGate:
      out.score = out.od_sim;
      break;
    case CombineMode::kAverage:
      out.score = 0.5 * (out.od_sim + out.desc_sim);
      break;
    case CombineMode::kWeighted:
      out.score =
          cls.od_weight * out.od_sim + (1.0 - cls.od_weight) * out.desc_sim;
      break;
    case CombineMode::kDescBoost: {
      double boosted =
          out.desc_sim >= cls.desc_threshold ? 1.0 : out.desc_sim;
      out.score = 0.5 * (out.od_sim + boosted);
      break;
    }
  }
  return out;
}

}  // namespace sxnm::core
