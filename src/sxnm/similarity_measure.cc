#include "sxnm/similarity_measure.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sxnm::core {

SimilarityMeasure::SimilarityMeasure(
    const CandidateConfig& config, const CandidateInstances& instances,
    std::vector<const ClusterSet*> child_cluster_sets)
    : config_(config),
      instances_(instances),
      child_cluster_sets_(std::move(child_cluster_sets)) {
  assert(child_cluster_sets_.empty() ||
         child_cluster_sets_.size() == instances_.child_types.size());
}

double SimilarityMeasure::OdSimilarity(const GkRow& a, const GkRow& b) const {
  // Components missing on *both* sides carry no information and are
  // excluded, with the relevancies renormalized over the remaining
  // components — the paper's "comparisons were then only performed on
  // 'readable' attributes" behaviour. A value present on one side only
  // still counts (as dissimilarity evidence).
  double sim = 0.0;
  double weight = 0.0;
  for (size_t i = 0; i < config_.od.size(); ++i) {
    const OdEntry& od = config_.od[i];
    if (a.ods[i].empty() && b.ods[i].empty()) continue;
    sim += od.relevance * od.similarity(a.ods[i], b.ods[i]);
    weight += od.relevance;
  }
  if (weight <= 0.0) return 0.0;  // nothing comparable at all
  return sim / weight;
}

std::vector<double> SimilarityMeasure::ComponentSimilarities(
    const GkRow& a, const GkRow& b) const {
  std::vector<double> sims;
  sims.reserve(config_.od.size());
  for (size_t i = 0; i < config_.od.size(); ++i) {
    if (a.ods[i].empty() && b.ods[i].empty()) {
      sims.push_back(0.0);
    } else {
      sims.push_back(config_.od[i].similarity(a.ods[i], b.ods[i]));
    }
  }
  return sims;
}

double SimilarityMeasure::DescendantSimilarity(size_t ordinal_a,
                                               size_t ordinal_b) const {
  if (child_cluster_sets_.empty()) return -1.0;

  double sum = 0.0;
  size_t comparable_types = 0;

  for (size_t slot = 0; slot < child_cluster_sets_.size(); ++slot) {
    const ClusterSet* clusters = child_cluster_sets_[slot];
    if (clusters == nullptr) continue;
    const auto& per_instance = instances_.desc_instances[slot];
    const std::vector<size_t>& desc_a = per_instance[ordinal_a];
    const std::vector<size_t>& desc_b = per_instance[ordinal_b];
    if (desc_a.empty() && desc_b.empty()) continue;  // nothing to compare

    // l_e lists of Def. 3, as cluster-ID sets.
    std::set<int> cids_a, cids_b;
    for (size_t d : desc_a) cids_a.insert(clusters->cid(d));
    for (size_t d : desc_b) cids_b.insert(clusters->cid(d));

    size_t overlap = 0;
    for (int cid : cids_a) overlap += cids_b.count(cid);
    size_t unions = cids_a.size() + cids_b.size() - overlap;
    double phi_desc =
        unions == 0 ? 0.0
                    : static_cast<double>(overlap) / static_cast<double>(unions);
    sum += phi_desc;
    ++comparable_types;
  }

  if (comparable_types == 0) return -1.0;
  return sum / static_cast<double>(comparable_types);  // agg() = average
}

SimilarityVerdict SimilarityMeasure::Compare(const GkRow& a,
                                             const GkRow& b) const {
  const ClassifierConfig& cls = config_.classifier;
  SimilarityVerdict verdict;
  verdict.od_sim = OdSimilarity(a, b);

  double desc = -1.0;
  if (config_.use_descendants &&
      (cls.mode != CombineMode::kOdOnly || !config_.theory.empty())) {
    desc = DescendantSimilarity(a.ordinal, b.ordinal);
  }
  verdict.used_descendants = desc >= 0.0;
  verdict.desc_sim = verdict.used_descendants ? desc : 0.0;

  if (!config_.theory.empty()) {
    // Equational theory replaces the threshold classification (Sec. 5).
    std::vector<int> od_pids;
    od_pids.reserve(config_.od.size());
    for (const OdEntry& od : config_.od) od_pids.push_back(od.pid);
    verdict.combined = verdict.od_sim;
    verdict.is_duplicate =
        config_.theory.Fires(ComponentSimilarities(a, b), od_pids, desc);
    return verdict;
  }

  if (!verdict.used_descendants) {
    // Leaf candidate, descendants disabled, or no descendant info for the
    // pair: classify on the object description alone.
    verdict.combined = verdict.od_sim;
    verdict.is_duplicate = verdict.od_sim >= cls.od_threshold;
    return verdict;
  }

  switch (cls.mode) {
    case CombineMode::kOdOnly:
      verdict.combined = verdict.od_sim;
      break;
    case CombineMode::kAverage:
      verdict.combined = 0.5 * (verdict.od_sim + verdict.desc_sim);
      break;
    case CombineMode::kWeighted:
      verdict.combined = cls.od_weight * verdict.od_sim +
                         (1.0 - cls.od_weight) * verdict.desc_sim;
      break;
    case CombineMode::kDescBoost: {
      // The paper's Experiment set 3 reading: a descendant overlap above
      // the descendants threshold means the children sets are similar
      // (full credit), compensating the harsh Jaccard of non-overlapping
      // children.
      double boosted =
          verdict.desc_sim >= cls.desc_threshold ? 1.0 : verdict.desc_sim;
      verdict.combined = 0.5 * (verdict.od_sim + boosted);
      break;
    }
    case CombineMode::kDescGate:
      // The OD decides; descendants act as a veto: real duplicates share
      // at least a small fraction of their children's clusters, whereas
      // confusers (e.g. series CDs with disjoint track lists) do not.
      verdict.combined = verdict.od_sim;
      verdict.is_duplicate = verdict.od_sim >= cls.od_threshold &&
                             verdict.desc_sim >= cls.desc_threshold;
      return verdict;
  }
  verdict.is_duplicate = verdict.combined >= cls.od_threshold;
  return verdict;
}

}  // namespace sxnm::core
