// Key-range sharding of one sliding-window pass.
//
// A pass enumerates pairs entering-position-major: position i of the
// sorted order pairs with the window-1 positions before it. That makes
// the enumeration trivially partitionable by ENTERING position: give
// each shard a contiguous range [owned_begin, owned_end) of entering
// positions, replicate the window-1 positions before owned_begin as
// read-only context, and let the owner rule be
//
//   the shard owning entering position i owns every pair
//   (order[j], order[i]), j in [max(0, i-(window-1)), i).
//
// Each windowed pair has exactly one entering position, so every pair
// is enumerated exactly once, by exactly one shard, and concatenating
// the shards' pair streams in shard order reproduces the single-shard
// enumeration order byte for byte — the foundation of the bit-identical
// merged clusters / counters / explain guarantee.

#ifndef SXNM_SXNM_SHARD_PLAN_H_
#define SXNM_SXNM_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

namespace sxnm::core {

/// One shard's slice of a pass: owned entering positions plus the
/// replicated context prefix its windows reach back into.
struct ShardSlice {
  size_t owned_begin = 0;   // first owned entering position
  size_t owned_end = 0;     // one past the last owned entering position
  size_t context_begin = 0; // max(0, owned_begin - (window-1)): replicated
                            // rows this shard reads but does not own
};

/// Splits the `n` entering positions of a pass into exactly `shards`
/// contiguous near-equal slices (earlier slices get the remainder).
/// Slices may be empty when shards > n. `window` only shapes the
/// context prefix; ownership is window-independent, so one plan serves
/// every pass of the same relation. `shards` must be >= 1.
std::vector<ShardSlice> ComputeShardPlan(size_t n, size_t shards,
                                         size_t window);

/// Total replicated context rows across a plan (the shard.overlap_rows
/// counter): sum of owned_begin - context_begin.
size_t ShardOverlapRows(const std::vector<ShardSlice>& plan);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_SHARD_PLAN_H_
