// Transitive closure over duplicate pairs (Sec. 3.4): pairs accepted by the
// sliding window across all passes are closed into the candidate's cluster
// set (Def. 1) using union-find.

#ifndef SXNM_SXNM_TRANSITIVE_CLOSURE_H_
#define SXNM_SXNM_TRANSITIVE_CLOSURE_H_

#include <cstddef>
#include <vector>

#include "sxnm/cluster_set.h"

namespace sxnm::core {

/// Closes `pairs` (ordinal pairs over 0..num_instances-1) transitively and
/// returns the resulting partition; instances untouched by any pair become
/// singleton clusters.
ClusterSet ComputeTransitiveClosure(size_t num_instances,
                                    const std::vector<OrdinalPair>& pairs);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_TRANSITIVE_CLOSURE_H_
