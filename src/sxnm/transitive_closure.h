// Transitive closure over duplicate pairs (Sec. 3.4): pairs accepted by the
// sliding window across all passes are closed into the candidate's cluster
// set (Def. 1) using union-find.

#ifndef SXNM_SXNM_TRANSITIVE_CLOSURE_H_
#define SXNM_SXNM_TRANSITIVE_CLOSURE_H_

#include <cstddef>
#include <vector>

#include "sxnm/cluster_set.h"

namespace sxnm::obs {
class MetricsRegistry;
}  // namespace sxnm::obs

namespace sxnm::core {

/// One union-find step of the closure, for the explain log's cluster
/// lineage: pair (a, b) arrived while the sets had roots `root_a` and
/// `root_b`; `root` is the surviving root afterwards. `merged` is false
/// when the pair was already intra-cluster (root_a == root_b), i.e. the
/// pair added no new information.
struct MergeStep {
  OrdinalPair pair;
  size_t root_a = 0;
  size_t root_b = 0;
  size_t root = 0;
  bool merged = false;
};

/// Closes `pairs` (ordinal pairs over 0..num_instances-1) transitively and
/// returns the resulting partition; instances untouched by any pair become
/// singleton clusters.
///
/// With a non-null `metrics` registry, contributes the counters tc.pairs
/// (input pairs), tc.union_ops (unions that actually merged two distinct
/// sets), tc.clusters (non-singleton clusters produced), and the
/// histogram tc.cluster_size over the non-singleton cluster sizes.
///
/// With a non-null `lineage`, appends one MergeStep per input pair in
/// order — the union-find root trail the explain log serializes. The
/// trail is a pure function of `pairs`, so it inherits the engine's
/// determinism guarantees.
ClusterSet ComputeTransitiveClosure(size_t num_instances,
                                    const std::vector<OrdinalPair>& pairs,
                                    obs::MetricsRegistry* metrics = nullptr,
                                    std::vector<MergeStep>* lineage = nullptr);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_TRANSITIVE_CLOSURE_H_
