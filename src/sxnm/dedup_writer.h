// De-duplicated output (Sec. 3.4 closing paragraph): "a typical approach
// selects a prime representative for each cluster and discards the
// others". This module produces a de-duplicated copy of the input
// document from a DetectionResult.

#ifndef SXNM_SXNM_DEDUP_WRITER_H_
#define SXNM_SXNM_DEDUP_WRITER_H_

#include "sxnm/detector.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::core {

enum class RepresentativeStrategy {
  /// Keep the cluster member that appears first in document order.
  kFirst,
  /// Keep the member with the most textual content (subtree deep-text
  /// length, ties broken by document order) — a cheap "most complete
  /// representation" heuristic.
  kRichest,
  /// Data fusion (Sec. 3.4: "more sophisticated approaches perform data
  /// fusion"): keep the richest member and merge into it, from the other
  /// members, (a) attributes it lacks and (b) child elements whose
  /// (name, content) is not already present — so the survivor carries the
  /// union of the cluster's information.
  kFuse,
};

struct DedupStats {
  size_t clusters_collapsed = 0;  // clusters with >= 2 members
  size_t elements_removed = 0;    // non-representative members detached
  size_t attributes_fused = 0;    // kFuse: attributes copied to survivors
  size_t children_fused = 0;      // kFuse: child elements copied
};

/// Returns a de-duplicated deep copy of `doc`: for every candidate cluster
/// with two or more members, all but the chosen representative are removed
/// from their parents (together with their subtrees). Element IDs are
/// re-assigned in the copy.
///
/// `result` must come from running a detector over exactly this `doc`
/// (element IDs are used to locate the members).
util::Result<xml::Document> Deduplicate(
    const xml::Document& doc, const DetectionResult& result,
    RepresentativeStrategy strategy = RepresentativeStrategy::kRichest,
    DedupStats* stats = nullptr);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_DEDUP_WRITER_H_
