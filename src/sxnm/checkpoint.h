// Engine-state serialization for crash-consistent checkpoint/resume.
//
// This maps the detector's resident state onto the persist layer's
// snapshot container (persist/snapshot.h): the GK relations (rows plus
// their OdPool; SubtreePool contents are deliberately not serialized —
// after key generation the engine only ever consumes SubtreeRef *ids*,
// whose equality survives in the rows themselves), every completed
// candidate's merged result and cluster set, the degradation and report
// rows accumulated so far, a metrics snapshot, the explain-log byte
// stream, and the pass cursor (levels completed + budget governor
// state). A snapshot additionally carries a (config, document)
// fingerprint; loading against a different input or config refuses with
// kFailedPrecondition, and structural corruption surfaces as kDataLoss.
//
// Durability points are level boundaries of the bottom-up processing
// order: after a level's merge + transitive closure, every cluster set
// downstream levels need is complete, so the snapshot is a consistent
// cut of the run. Resume replays completed levels from the snapshot and
// re-runs the interrupted level from its start — output is then
// bit-identical to an uninterrupted run for any num_threads.

#ifndef SXNM_SXNM_CHECKPOINT_H_
#define SXNM_SXNM_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "persist/snapshot.h"
#include "sxnm/config.h"
#include "sxnm/detection_report.h"
#include "sxnm/detector.h"
#include "sxnm/key_generation.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::core {

/// Identity of the configuration a snapshot belongs to. Deliberately
/// EXCLUDES num_threads (resuming with a different thread count is
/// allowed — the engine is thread-count deterministic), observability
/// paths, the checkpoint settings themselves, and the out-of-core
/// knobs (shards / memory-budget / spill-dir, which are
/// output-identical by construction); everything that shapes detection
/// output is included.
uint64_t ConfigFingerprint(const Config& config);

/// Identity of the data document: a structural hash over names,
/// attributes, and text in document order.
uint64_t DocumentFingerprint(const xml::Document& doc);

/// The pass cursor: where the run stood when the snapshot was taken.
struct CheckpointCursor {
  /// Bottom-up levels fully processed (merge + closure done).
  uint64_t levels_completed = 0;

  /// Budget governor state at the cut, so resumed planning sheds exactly
  /// the passes an uninterrupted run would.
  uint64_t budget_spent = 0;
  bool budget_exhausted = false;

  /// Cumulative verdict-cache occupancy accounting (cache.verdict_occupancy).
  uint64_t verdict_occupied_total = 0;
  uint64_t verdict_capacity_total = 0;

  /// Phase wall-clock accumulated before the cut.
  double kg_seconds = 0.0;
  double sw_seconds = 0.0;
  double tc_seconds = 0.0;
};

/// Snapshot identity header (the kFingerprint frame).
struct CheckpointFingerprint {
  uint64_t config_fingerprint = 0;
  uint64_t doc_fingerprint = 0;
  /// Observability shape: a snapshot taken without metrics/explain holds
  /// no counters/byte stream to restore, so resuming with them enabled
  /// would produce partial output — refused at load.
  bool metrics_enabled = false;
  bool explain_enabled = false;
};

/// Borrowed view of the detector's state for one snapshot write.
/// Pointers must outlive the SaveEngineSnapshot call; optional parts may
/// be null.
struct EngineSnapshotView {
  CheckpointFingerprint fingerprint;
  CheckpointCursor cursor;

  /// All candidates' GK relations, indexed by forest candidate index,
  /// with the kg_done flag of each (0 = key generation was shed).
  const std::vector<GkTable>* gk = nullptr;
  const std::vector<char>* kg_done = nullptr;

  /// Merged results of candidates in completed levels, as
  /// (candidate index, result). `result->clusters` carries the cluster
  /// set downstream levels read.
  std::vector<std::pair<uint64_t, const CandidateResult*>> completed;

  const DegradationReport* degradation = nullptr;              // optional
  const std::vector<DetectionReport::Row>* report_rows = nullptr;  // optional
  const obs::MetricsSnapshot* metrics = nullptr;               // optional
  /// Explain byte stream + tallies; both null when explain is off.
  const std::string* explain_text = nullptr;
  uint64_t explain_tallies[5] = {0, 0, 0, 0, 0};  // owned, cache, prepass,
                                                  // dag, filter
};

/// Owned form of a loaded snapshot.
struct EngineSnapshot {
  CheckpointFingerprint fingerprint;
  CheckpointCursor cursor;

  struct GkState {
    uint64_t index = 0;
    bool kg_done = false;
    GkTable table;
  };
  std::vector<GkState> gk;

  struct CompletedCandidate {
    uint64_t index = 0;
    CandidateResult result;
  };
  std::vector<CompletedCandidate> completed;

  DegradationReport degradation;
  std::vector<DetectionReport::Row> report_rows;
  obs::MetricsSnapshot metrics;
  std::string explain_text;
  uint64_t explain_tallies[5] = {0, 0, 0, 0, 0};
};

/// Statistics of one committed snapshot (persist.* metrics).
struct SnapshotWriteStats {
  uint64_t bytes = 0;
  uint64_t frames = 0;
};

/// Serializes `view` and atomically commits it to `path` (never leaves a
/// torn file at `path`). Injected persist faults surface as
/// kResourceExhausted / kDataLoss.
util::Status SaveEngineSnapshot(const EngineSnapshotView& view,
                                const std::string& path,
                                SnapshotWriteStats* stats = nullptr);

/// Loads, verifies, and decodes the snapshot at `path`:
///   kNotFound           — no snapshot (caller starts fresh);
///   kDataLoss           — torn, truncated, or checksum-corrupt;
///   kFailedPrecondition — valid snapshot of a different config,
///                         document, observability shape, or format
///                         version.
util::Result<EngineSnapshot> LoadEngineSnapshot(
    const std::string& path, const CheckpointFingerprint& expected);

// --- Frame codecs (exposed for the sxnm_snapshot inspector and tests) ----

void EncodeFingerprint(const CheckpointFingerprint& fp, persist::Encoder& enc);
util::Result<CheckpointFingerprint> DecodeFingerprint(
    std::string_view payload);

void EncodeCursor(const CheckpointCursor& cursor, persist::Encoder& enc);
util::Result<CheckpointCursor> DecodeCursor(std::string_view payload);

void EncodeGkTable(const GkTable& table, uint64_t candidate_index,
                   bool kg_done, persist::Encoder& enc);
util::Result<EngineSnapshot::GkState> DecodeGkTable(std::string_view payload);

void EncodeCandidateResult(const CandidateResult& result,
                           uint64_t candidate_index, persist::Encoder& enc);
util::Result<EngineSnapshot::CompletedCandidate> DecodeCandidateResult(
    std::string_view payload);

void EncodeClusterSet(const ClusterSet& clusters, persist::Encoder& enc);
util::Result<ClusterSet> DecodeClusterSet(persist::Decoder& dec);

void EncodeDegradation(const DegradationReport& degradation,
                       persist::Encoder& enc);
util::Result<DegradationReport> DecodeDegradation(std::string_view payload);

void EncodeReportRows(const std::vector<DetectionReport::Row>& rows,
                      persist::Encoder& enc);
util::Result<std::vector<DetectionReport::Row>> DecodeReportRows(
    std::string_view payload);

void EncodeMetricsSnapshot(const obs::MetricsSnapshot& snapshot,
                           persist::Encoder& enc);
util::Result<obs::MetricsSnapshot> DecodeMetricsSnapshot(
    std::string_view payload);

/// One GK row serialized for an external-sort spill run. Unlike the
/// GkTable codec, spill rows travel without their pool: normalized OD
/// values are materialized inline and re-interned on decode, so a row
/// is self-contained across the spill/merge round trip. Subtree ids are
/// carried verbatim (the engine only ever compares them for equality).
void EncodeSpillRow(const GkRow& row, const OdPool& pool,
                    persist::Encoder& enc);

/// Decodes a spill row, re-interning its normalized OD values into
/// `pool`. Structural corruption surfaces as kDataLoss.
util::Result<GkRow> DecodeSpillRow(std::string_view payload, OdPool* pool);

/// Verdict-cache contents as exported by VerdictCache::Export. The
/// detector's level-boundary snapshots never hold a live cache (caches
/// retire at each level's merge), so this frame is format surface for
/// finer-grained future checkpoints; it round-trips and fuzzes like the
/// rest of the format.
void EncodeVerdictEntries(
    const std::vector<std::pair<uint64_t, bool>>& entries,
    persist::Encoder& enc);
util::Result<std::vector<std::pair<uint64_t, bool>>> DecodeVerdictEntries(
    std::string_view payload);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_CHECKPOINT_H_
