#include "sxnm/config_xml.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "util/fault_injection.h"
#include "util/string_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace sxnm::core {

namespace {

using util::Result;
using util::Status;
using xml::Element;

Result<int> RequiredIntAttr(const Element& e, std::string_view name) {
  const std::string* value = e.FindAttribute(name);
  if (value == nullptr) {
    return Status::ParseError("<" + e.name() + "> missing attribute '" +
                              std::string(name) + "'");
  }
  int parsed = util::ParseNonNegativeInt(util::TrimView(*value));
  if (parsed < 0) {
    return Status::ParseError("<" + e.name() + "> attribute '" +
                              std::string(name) + "' is not a number: " +
                              *value);
  }
  return parsed;
}

Result<std::string> RequiredAttr(const Element& e, std::string_view name) {
  const std::string* value = e.FindAttribute(name);
  if (value == nullptr) {
    return Status::ParseError("<" + e.name() + "> missing attribute '" +
                              std::string(name) + "'");
  }
  return *value;
}

Result<bool> BoolAttrOr(const Element& e, std::string_view name,
                        bool fallback) {
  const std::string* value = e.FindAttribute(name);
  if (value == nullptr) return fallback;
  std::string v = util::ToLower(util::Trim(*value));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::ParseError("<" + e.name() + "> attribute '" +
                            std::string(name) + "' is not a boolean: " +
                            *value);
}

// Parses a non-negative size attribute (supports the full size_t range:
// byte limits exceed int). Returns `fallback` when absent.
Result<size_t> SizeAttrOr(const Element& e, std::string_view name,
                          size_t fallback) {
  const std::string* value = e.FindAttribute(name);
  if (value == nullptr) return fallback;
  std::string trimmed(util::TrimView(*value));
  if (trimmed.empty() ||
      trimmed.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("<" + e.name() + "> attribute '" +
                              std::string(name) +
                              "' is not a non-negative number: " + *value);
  }
  errno = 0;
  unsigned long long parsed = std::strtoull(trimmed.c_str(), nullptr, 10);
  if (errno != 0) {
    return Status::ParseError("<" + e.name() + "> attribute '" +
                              std::string(name) + "' is out of range: " +
                              *value);
  }
  return static_cast<size_t>(parsed);
}

// <limits max-depth=".." max-input-bytes=".." max-nodes=".." max-attrs=".."
//         max-comparisons=".." recover="false"/>
Status ParseLimits(const Element& elem, RunLimits& limits) {
  auto max_depth = SizeAttrOr(elem, "max-depth", limits.max_depth);
  if (!max_depth.ok()) return max_depth.status();
  limits.max_depth = max_depth.value();
  auto max_bytes = SizeAttrOr(elem, "max-input-bytes", limits.max_input_bytes);
  if (!max_bytes.ok()) return max_bytes.status();
  limits.max_input_bytes = max_bytes.value();
  auto max_nodes = SizeAttrOr(elem, "max-nodes", limits.max_nodes);
  if (!max_nodes.ok()) return max_nodes.status();
  limits.max_nodes = max_nodes.value();
  auto max_attrs = SizeAttrOr(elem, "max-attrs", limits.max_attr_count);
  if (!max_attrs.ok()) return max_attrs.status();
  limits.max_attr_count = max_attrs.value();
  auto max_cmp = SizeAttrOr(elem, "max-comparisons", limits.max_comparisons);
  if (!max_cmp.ok()) return max_cmp.status();
  limits.max_comparisons = max_cmp.value();
  auto recover = BoolAttrOr(elem, "recover", limits.recover_parse);
  if (!recover.ok()) return recover.status();
  limits.recover_parse = recover.value();
  return Status::Ok();
}

// <deadline seconds="1.5" comparisons-per-second="1000000"/>
Status ParseDeadline(const Element& elem, RunLimits& limits) {
  if (const std::string* seconds = elem.FindAttribute("seconds")) {
    double parsed = util::ParseDoubleOr(*seconds, -1.0);
    if (parsed < 0.0) {
      return Status::ParseError(
          "<deadline> attribute 'seconds' is not a non-negative number: " +
          *seconds);
    }
    limits.deadline_seconds = parsed;
  }
  if (const std::string* rate = elem.FindAttribute("comparisons-per-second")) {
    double parsed = util::ParseDoubleOr(*rate, -1.0);
    if (parsed < 0.0) {
      return Status::ParseError(
          "<deadline> attribute 'comparisons-per-second' is not a "
          "non-negative number: " +
          *rate);
    }
    limits.comparisons_per_second = parsed;
  }
  return Status::Ok();
}

// <checkpoint path="run.ckpt" every-pass="true"/>
Status ParseCheckpoint(const Element& elem, CheckpointConfig& checkpoint) {
  checkpoint.path = elem.AttributeOr("path", "");
  if (checkpoint.path.empty()) {
    return Status::ParseError(
        "<checkpoint> requires a non-empty 'path' attribute");
  }
  auto every_pass = BoolAttrOr(elem, "every-pass", checkpoint.every_pass);
  if (!every_pass.ok()) return every_pass.status();
  checkpoint.every_pass = every_pass.value();
  return Status::Ok();
}

// <observability metrics="on" trace="trace.json" report="report.json"
//                 explain="explain.ndjson" telemetry="run.tlm.ndjsonl"
//                 telemetry-interval-ms="250" profile="run.folded"
//                 profile-hz="97"/>
Result<ObservabilityConfig> ParseObservability(const Element& elem) {
  ObservabilityConfig obs;
  auto metrics = BoolAttrOr(elem, "metrics", false);
  if (!metrics.ok()) return metrics.status();
  obs.metrics = metrics.value();
  obs.trace_path = elem.AttributeOr("trace", "");
  obs.report_path = elem.AttributeOr("report", "");
  obs.explain_path = elem.AttributeOr("explain", "");
  obs.telemetry_path = elem.AttributeOr("telemetry", "");
  if (const std::string* interval =
          elem.FindAttribute("telemetry-interval-ms")) {
    double parsed = util::ParseDoubleOr(*interval, -1.0);
    if (parsed <= 0.0) {
      return Status::ParseError(
          "<observability> attribute 'telemetry-interval-ms' is not a "
          "positive number: " +
          *interval);
    }
    obs.telemetry_interval_ms = parsed;
  }
  obs.profile_path = elem.AttributeOr("profile", "");
  if (const std::string* hz = elem.FindAttribute("profile-hz")) {
    double parsed = util::ParseDoubleOr(*hz, -1.0);
    if (parsed <= 0.0) {
      return Status::ParseError(
          "<observability> attribute 'profile-hz' is not a positive "
          "number: " +
          *hz);
    }
    obs.profile_hz = parsed;
  }
  return obs;
}

Result<CandidateConfig> ParseCandidate(const Element& elem) {
  auto name = RequiredAttr(elem, "name");
  if (!name.ok()) return name.status();
  auto path = RequiredAttr(elem, "path");
  if (!path.ok()) return path.status();

  CandidateBuilder builder(name.value(), path.value());

  if (const std::string* window = elem.FindAttribute("window")) {
    int w = util::ParseNonNegativeInt(util::TrimView(*window));
    if (w < 2) {
      return Status::ParseError("candidate '" + name.value() +
                                "': bad window '" + *window + "'");
    }
    builder.Window(static_cast<size_t>(w));
  }
  auto use_desc = BoolAttrOr(elem, "use-descendants", true);
  if (!use_desc.ok()) return use_desc.status();
  builder.UseDescendants(use_desc.value());
  auto prepass = BoolAttrOr(elem, "exact-od-prepass", false);
  if (!prepass.ok()) return prepass.status();
  builder.ExactOdPrepass(prepass.value());
  auto fast_paths = BoolAttrOr(elem, "fast-paths", true);
  if (!fast_paths.ok()) return fast_paths.status();
  builder.FastPaths(fast_paths.value());
  auto dag = BoolAttrOr(elem, "dag", true);
  if (!dag.ok()) return dag.status();
  builder.Dag(dag.value());
  // Default follows fast-paths (FastPaths(false) above already turned
  // batching off), so legacy configs without the attribute stay valid.
  auto batch = BoolAttrOr(elem, "batch-scoring", fast_paths.value());
  if (!batch.ok()) return batch.status();
  builder.BatchScoring(batch.value());

  auto policy = ParseWindowPolicy(elem.AttributeOr("window-policy", "fixed"));
  if (!policy.ok()) return policy.status();
  if (policy.value() == WindowPolicy::kAdaptivePrefix) {
    int prefix = util::ParseNonNegativeInt(
        util::TrimView(elem.AttributeOr("adaptive-prefix", "4")));
    int max_window = util::ParseNonNegativeInt(
        util::TrimView(elem.AttributeOr("max-window", "100")));
    if (prefix < 1 || max_window < 2) {
      return Status::ParseError("candidate '" + name.value() +
                                "': bad adaptive window attributes");
    }
    builder.AdaptiveWindow(static_cast<size_t>(prefix),
                           static_cast<size_t>(max_window));
  }

  // <paths>
  const Element* paths = elem.FirstChildElement("paths");
  if (paths != nullptr) {
    for (const Element* p : paths->ChildElements("path")) {
      auto id = RequiredIntAttr(*p, "id");
      if (!id.ok()) return id.status();
      auto rel = RequiredAttr(*p, "rel");
      if (!rel.ok()) return rel.status();
      builder.Path(id.value(), rel.value());
    }
  }

  // <od>
  const Element* od = elem.FirstChildElement("od");
  if (od != nullptr) {
    for (const Element* entry : od->ChildElements("entry")) {
      auto pid = RequiredIntAttr(*entry, "pid");
      if (!pid.ok()) return pid.status();
      double relevance = util::ParseDoubleOr(
          entry->AttributeOr("relevance", "1"), -1.0);
      if (relevance <= 0.0) {
        return Status::ParseError("candidate '" + name.value() +
                                  "': bad OD relevance");
      }
      builder.Od(pid.value(), relevance,
                 entry->AttributeOr("similarity", "edit"));
    }
  }

  // <keys>
  const Element* keys = elem.FirstChildElement("keys");
  if (keys != nullptr) {
    for (const Element* key : keys->ChildElements("key")) {
      // Collect parts with explicit order, then sort.
      struct RawPart {
        int pid;
        int order;
        std::string pattern;
      };
      std::vector<RawPart> raw;
      int implicit_order = 1;
      for (const Element* part : key->ChildElements("part")) {
        auto pid = RequiredIntAttr(*part, "pid");
        if (!pid.ok()) return pid.status();
        auto pattern = RequiredAttr(*part, "pattern");
        if (!pattern.ok()) return pattern.status();
        int order = implicit_order++;
        if (part->HasAttribute("order")) {
          auto parsed = RequiredIntAttr(*part, "order");
          if (!parsed.ok()) return parsed.status();
          order = parsed.value();
        }
        raw.push_back({pid.value(), order, pattern.value()});
      }
      std::stable_sort(raw.begin(), raw.end(),
                       [](const RawPart& a, const RawPart& b) {
                         return a.order < b.order;
                       });
      std::vector<std::pair<int, std::string>> parts;
      parts.reserve(raw.size());
      for (auto& r : raw) parts.emplace_back(r.pid, std::move(r.pattern));
      builder.Key(std::move(parts));
    }
  }

  // <rules> (equational theory)
  const Element* rules = elem.FirstChildElement("rules");
  if (rules != nullptr) {
    for (const Element* rule : rules->ChildElements("rule")) {
      std::vector<std::pair<int, double>> conditions;
      for (const Element* cond : rule->ChildElements("cond")) {
        double min_sim =
            util::ParseDoubleOr(cond->AttributeOr("min", ""), -1.0);
        if (min_sim < 0.0 || min_sim > 1.0) {
          return Status::ParseError("candidate '" + name.value() +
                                    "': rule condition needs min in [0,1]");
        }
        if (cond->HasAttribute("pid")) {
          auto pid = RequiredIntAttr(*cond, "pid");
          if (!pid.ok()) return pid.status();
          conditions.emplace_back(pid.value(), min_sim);
        } else if (cond->AttributeOr("on", "") == "descendants") {
          conditions.emplace_back(RuleCondition::kDescendants, min_sim);
        } else {
          return Status::ParseError(
              "candidate '" + name.value() +
              "': rule condition needs pid=... or on=\"descendants\"");
        }
      }
      builder.TheoryRule(std::move(conditions));
    }
  }

  // <classifier>
  const Element* classifier = elem.FirstChildElement("classifier");
  if (classifier != nullptr) {
    auto mode = ParseCombineMode(classifier->AttributeOr("mode", "average"));
    if (!mode.ok()) return mode.status();
    builder.Mode(mode.value());
    builder.OdThreshold(util::ParseDoubleOr(
        classifier->AttributeOr("od-threshold", "0.75"), 0.75));
    builder.DescThreshold(util::ParseDoubleOr(
        classifier->AttributeOr("desc-threshold", "0.5"), 0.5));
    builder.OdWeight(util::ParseDoubleOr(
        classifier->AttributeOr("od-weight", "0.5"), 0.5));
  }

  return builder.Build();
}

// Byte size with an optional binary-multiple suffix: "268435456",
// "64K", "256M", "4G" (case-insensitive). Used by the memory-budget
// attribute, whose values routinely exceed 32 bits.
util::Result<uint64_t> ParseByteSize(std::string_view text) {
  uint64_t multiplier = 1;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k': case 'K': multiplier = uint64_t{1} << 10; break;
      case 'm': case 'M': multiplier = uint64_t{1} << 20; break;
      case 'g': case 'G': multiplier = uint64_t{1} << 30; break;
      default: break;
    }
    if (multiplier != 1) text.remove_suffix(1);
  }
  if (text.empty()) {
    return Status::ParseError("bad memory-budget: missing number");
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError("bad memory-budget digit '" +
                                std::string(1, c) + "'");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::ParseError("memory-budget overflows 64 bits");
    }
    value = value * 10 + digit;
  }
  if (multiplier != 1 && value > UINT64_MAX / multiplier) {
    return Status::ParseError("memory-budget overflows 64 bits");
  }
  return value * multiplier;
}

}  // namespace

util::Result<Config> ConfigFromXml(const xml::Document& doc) {
  if (util::FaultInjector::Instance().ShouldFail("config.load")) {
    return Status::Internal("injected fault: configuration load failed");
  }
  if (doc.root() == nullptr) {
    return Status::ParseError("empty configuration document");
  }
  if (doc.root()->name() != "sxnm-config") {
    return Status::ParseError("expected root element <sxnm-config>, found <" +
                              doc.root()->name() + ">");
  }
  Config config;
  if (const std::string* threads = doc.root()->FindAttribute("num-threads")) {
    int n = util::ParseNonNegativeInt(util::TrimView(*threads));
    if (n < 0) {
      return Status::ParseError("bad num-threads '" + *threads +
                                "' (0 = all hardware threads)");
    }
    config.set_num_threads(static_cast<size_t>(n));
  }
  if (const std::string* shards = doc.root()->FindAttribute("shards")) {
    int n = util::ParseNonNegativeInt(util::TrimView(*shards));
    if (n < 1) {
      return Status::ParseError("bad shards '" + *shards +
                                "' (must be a positive integer)");
    }
    config.set_shards(static_cast<size_t>(n));
  }
  if (const std::string* budget = doc.root()->FindAttribute("memory-budget")) {
    auto bytes = ParseByteSize(util::TrimView(*budget));
    if (!bytes.ok()) return bytes.status();
    config.set_memory_budget_bytes(*bytes);
  }
  if (const std::string* dir = doc.root()->FindAttribute("spill-dir")) {
    config.set_spill_dir(std::string(util::TrimView(*dir)));
  }
  if (const Element* obs = doc.root()->FirstChildElement("observability")) {
    auto parsed = ParseObservability(*obs);
    if (!parsed.ok()) return parsed.status();
    config.mutable_observability() = std::move(parsed).value();
  }
  if (const Element* limits = doc.root()->FirstChildElement("limits")) {
    SXNM_RETURN_IF_ERROR(ParseLimits(*limits, config.mutable_limits()));
  }
  if (const Element* deadline = doc.root()->FirstChildElement("deadline")) {
    SXNM_RETURN_IF_ERROR(ParseDeadline(*deadline, config.mutable_limits()));
  }
  if (const Element* ckpt = doc.root()->FirstChildElement("checkpoint")) {
    SXNM_RETURN_IF_ERROR(ParseCheckpoint(*ckpt, config.mutable_checkpoint()));
  }
  for (const Element* elem : doc.root()->ChildElements("candidate")) {
    auto candidate = ParseCandidate(*elem);
    if (!candidate.ok()) return candidate.status();
    SXNM_RETURN_IF_ERROR(config.AddCandidate(std::move(candidate).value()));
  }
  SXNM_RETURN_IF_ERROR(config.Validate());
  return config;
}

util::Result<Config> ConfigFromXmlString(std::string_view text) {
  auto doc = xml::Parse(text);
  if (!doc.ok()) return doc.status();
  return ConfigFromXml(doc.value());
}

util::Result<Config> ConfigFromXmlFile(const std::string& path) {
  auto doc = xml::ParseFile(path);
  if (!doc.ok()) return doc.status();
  return ConfigFromXml(doc.value());
}

xml::Document ConfigToXml(const Config& config) {
  auto root = std::make_unique<Element>("sxnm-config");
  if (config.num_threads() != 1) {
    root->SetAttribute("num-threads", std::to_string(config.num_threads()));
  }
  if (config.shards() != 1) {
    root->SetAttribute("shards", std::to_string(config.shards()));
  }
  if (config.memory_budget_bytes() != 0) {
    // Serialized as plain bytes: round-trips every value exactly,
    // including ones that did not arrive with a K/M/G suffix.
    root->SetAttribute("memory-budget",
                       std::to_string(config.memory_budget_bytes()));
  }
  if (!config.spill_dir().empty()) {
    root->SetAttribute("spill-dir", config.spill_dir());
  }
  const ObservabilityConfig& obs = config.observability();
  const ObservabilityConfig obs_defaults;
  if (obs.metrics || !obs.trace_path.empty() || !obs.report_path.empty() ||
      !obs.explain_path.empty() || !obs.telemetry_path.empty() ||
      obs.telemetry_interval_ms != obs_defaults.telemetry_interval_ms ||
      !obs.profile_path.empty() ||
      obs.profile_hz != obs_defaults.profile_hz) {
    Element* e = root->AddElement("observability");
    e->SetAttribute("metrics", obs.metrics ? "on" : "off");
    if (!obs.trace_path.empty()) e->SetAttribute("trace", obs.trace_path);
    if (!obs.report_path.empty()) e->SetAttribute("report", obs.report_path);
    if (!obs.explain_path.empty()) {
      e->SetAttribute("explain", obs.explain_path);
    }
    if (!obs.telemetry_path.empty()) {
      e->SetAttribute("telemetry", obs.telemetry_path);
    }
    if (obs.telemetry_interval_ms != obs_defaults.telemetry_interval_ms) {
      e->SetAttribute("telemetry-interval-ms",
                      util::FormatDouble(obs.telemetry_interval_ms, 6));
    }
    if (!obs.profile_path.empty()) {
      e->SetAttribute("profile", obs.profile_path);
    }
    if (obs.profile_hz != obs_defaults.profile_hz) {
      e->SetAttribute("profile-hz", util::FormatDouble(obs.profile_hz, 6));
    }
  }
  const RunLimits& limits = config.limits();
  const RunLimits defaults;
  if (limits.max_depth != defaults.max_depth ||
      limits.max_input_bytes != defaults.max_input_bytes ||
      limits.max_nodes != defaults.max_nodes ||
      limits.max_attr_count != defaults.max_attr_count ||
      limits.max_comparisons != defaults.max_comparisons ||
      limits.recover_parse != defaults.recover_parse) {
    Element* e = root->AddElement("limits");
    e->SetAttribute("max-depth", std::to_string(limits.max_depth));
    e->SetAttribute("max-input-bytes",
                    std::to_string(limits.max_input_bytes));
    e->SetAttribute("max-nodes", std::to_string(limits.max_nodes));
    e->SetAttribute("max-attrs", std::to_string(limits.max_attr_count));
    if (limits.max_comparisons != 0) {
      e->SetAttribute("max-comparisons",
                      std::to_string(limits.max_comparisons));
    }
    e->SetAttribute("recover", limits.recover_parse ? "true" : "false");
  }
  if (limits.deadline_seconds > 0.0 ||
      limits.comparisons_per_second != defaults.comparisons_per_second) {
    Element* e = root->AddElement("deadline");
    e->SetAttribute("seconds",
                    util::FormatDouble(limits.deadline_seconds, 6));
    e->SetAttribute("comparisons-per-second",
                    util::FormatDouble(limits.comparisons_per_second, 6));
  }
  if (config.checkpoint().enabled()) {
    Element* e = root->AddElement("checkpoint");
    e->SetAttribute("path", config.checkpoint().path);
    e->SetAttribute("every-pass",
                    config.checkpoint().every_pass ? "true" : "false");
  }
  for (const CandidateConfig& c : config.candidates()) {
    Element* cand = root->AddElement("candidate");
    cand->SetAttribute("name", c.name);
    cand->SetAttribute("path", c.absolute_path.ToString());
    cand->SetAttribute("window", std::to_string(c.window_size));
    cand->SetAttribute("use-descendants",
                       c.use_descendants ? "true" : "false");
    cand->SetAttribute("exact-od-prepass",
                       c.exact_od_prepass ? "true" : "false");
    cand->SetAttribute("fast-paths", c.enable_fast_paths ? "true" : "false");
    cand->SetAttribute("dag", c.dag_compression ? "true" : "false");
    cand->SetAttribute("batch-scoring", c.batch_scoring ? "true" : "false");
    cand->SetAttribute("window-policy", WindowPolicyName(c.window_policy));
    if (c.window_policy == WindowPolicy::kAdaptivePrefix) {
      cand->SetAttribute("adaptive-prefix",
                         std::to_string(c.adaptive_prefix_len));
      cand->SetAttribute("max-window", std::to_string(c.max_window));
    }

    Element* paths = cand->AddElement("paths");
    for (const PathEntry& p : c.paths) {
      Element* path = paths->AddElement("path");
      path->SetAttribute("id", std::to_string(p.id));
      path->SetAttribute("rel", p.path.ToString());
    }

    Element* od = cand->AddElement("od");
    for (const OdEntry& entry : c.od) {
      Element* e = od->AddElement("entry");
      e->SetAttribute("pid", std::to_string(entry.pid));
      e->SetAttribute("relevance", util::FormatDouble(entry.relevance, 4));
      e->SetAttribute("similarity", entry.similarity_name);
    }

    Element* keys = cand->AddElement("keys");
    for (const KeyDef& key : c.keys) {
      Element* k = keys->AddElement("key");
      for (const KeyPartRef& part : key.parts) {
        Element* p = k->AddElement("part");
        p->SetAttribute("pid", std::to_string(part.pid));
        p->SetAttribute("order", std::to_string(part.order));
        p->SetAttribute("pattern", part.pattern.ToString());
      }
    }

    if (!c.theory.empty()) {
      Element* rules = cand->AddElement("rules");
      for (const Rule& rule : c.theory.rules()) {
        Element* r = rules->AddElement("rule");
        for (const RuleCondition& cond : rule.conditions) {
          Element* e = r->AddElement("cond");
          if (cond.pid == RuleCondition::kDescendants) {
            e->SetAttribute("on", "descendants");
          } else {
            e->SetAttribute("pid", std::to_string(cond.pid));
          }
          e->SetAttribute("min",
                          util::FormatDouble(cond.min_similarity, 4));
        }
      }
    }

    Element* classifier = cand->AddElement("classifier");
    classifier->SetAttribute("mode", CombineModeName(c.classifier.mode));
    classifier->SetAttribute(
        "od-threshold", util::FormatDouble(c.classifier.od_threshold, 4));
    classifier->SetAttribute(
        "desc-threshold", util::FormatDouble(c.classifier.desc_threshold, 4));
    classifier->SetAttribute("od-weight",
                             util::FormatDouble(c.classifier.od_weight, 4));
  }

  xml::Document doc;
  doc.SetRoot(std::move(root));
  return doc;
}

std::string ConfigToXmlString(const Config& config) {
  return xml::WriteDocument(ConfigToXml(config));
}

}  // namespace sxnm::core
