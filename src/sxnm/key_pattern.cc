#include "sxnm/key_pattern.h"

#include "text/soundex.h"
#include "util/string_util.h"

namespace sxnm::core {

namespace {

using util::Result;
using util::Status;

// Parses "K5" / "C12" / "S" into (class, position). Position of a soundex
// selector is fixed to 1.
Result<std::pair<CharClass, int>> ParseSelector(std::string_view token,
                                                std::string_view whole) {
  if (token.empty()) {
    return Status::InvalidArgument("empty selector in key pattern '" +
                                   std::string(whole) + "'");
  }
  CharClass cls;
  switch (util::AsciiToUpper(token[0])) {
    case 'K':
      cls = CharClass::kConsonant;
      break;
    case 'C':
      cls = CharClass::kCharacter;
      break;
    case 'D':
      cls = CharClass::kDigit;
      break;
    case 'S':
      if (token.size() != 1) {
        return Status::InvalidArgument(
            "soundex selector 'S' takes no position in key pattern '" +
            std::string(whole) + "'");
      }
      return std::pair<CharClass, int>{CharClass::kSoundex, 1};
    default:
      return Status::InvalidArgument("unknown character class '" +
                                     std::string(1, token[0]) +
                                     "' in key pattern '" +
                                     std::string(whole) + "'");
  }
  int pos = util::ParseNonNegativeInt(token.substr(1));
  if (pos <= 0) {
    return Status::InvalidArgument("bad position in key pattern selector '" +
                                   std::string(token) + "' of '" +
                                   std::string(whole) + "'");
  }
  return std::pair<CharClass, int>{cls, pos};
}

}  // namespace

util::Result<KeyPattern> KeyPattern::Parse(std::string_view pattern) {
  KeyPattern result;
  std::string_view trimmed = util::TrimView(pattern);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty key pattern");
  }
  for (const std::string& raw : util::Split(trimmed, ',')) {
    std::string token = util::Trim(raw);
    if (token.empty()) {
      return Status::InvalidArgument("empty component in key pattern '" +
                                     std::string(pattern) + "'");
    }
    KeyPatternPart part;
    size_t dash = token.find('-');
    if (dash == std::string::npos) {
      auto sel = ParseSelector(token, pattern);
      if (!sel.ok()) return sel.status();
      part.char_class = sel->first;
      part.from = part.to = sel->second;
    } else {
      auto lo = ParseSelector(util::TrimView(
                                  std::string_view(token).substr(0, dash)),
                              pattern);
      if (!lo.ok()) return lo.status();
      auto hi = ParseSelector(
          util::TrimView(std::string_view(token).substr(dash + 1)), pattern);
      if (!hi.ok()) return hi.status();
      if (lo->first != hi->first) {
        return Status::InvalidArgument(
            "range endpoints use different classes in key pattern '" +
            std::string(pattern) + "'");
      }
      if (lo->first == CharClass::kSoundex) {
        return Status::InvalidArgument(
            "soundex selector cannot form a range in key pattern '" +
            std::string(pattern) + "'");
      }
      if (lo->second > hi->second) {
        return Status::InvalidArgument("descending range in key pattern '" +
                                       std::string(pattern) + "'");
      }
      part.char_class = lo->first;
      part.from = lo->second;
      part.to = hi->second;
    }
    result.parts_.push_back(part);
  }
  return result;
}

std::string KeyPattern::Apply(std::string_view value) const {
  // Extract each character class lazily, at most once.
  std::string consonants, characters, digits, soundex;
  bool have_k = false, have_c = false, have_d = false, have_s = false;

  std::string out;
  for (const KeyPatternPart& part : parts_) {
    const std::string* pool = nullptr;
    switch (part.char_class) {
      case CharClass::kConsonant:
        if (!have_k) {
          consonants = util::ExtractConsonants(value);
          have_k = true;
        }
        pool = &consonants;
        break;
      case CharClass::kCharacter:
        if (!have_c) {
          characters = util::ExtractAlnum(value);
          have_c = true;
        }
        pool = &characters;
        break;
      case CharClass::kDigit:
        if (!have_d) {
          digits = util::ExtractDigits(value);
          have_d = true;
        }
        pool = &digits;
        break;
      case CharClass::kSoundex:
        if (!have_s) {
          soundex = text::Soundex(value);
          have_s = true;
        }
        out += soundex;
        continue;
    }
    for (int p = part.from; p <= part.to; ++p) {
      if (static_cast<size_t>(p) <= pool->size()) {
        out.push_back((*pool)[static_cast<size_t>(p) - 1]);
      }
    }
  }
  return out;
}

std::string KeyPattern::ToString() const {
  std::string out;
  auto class_letter = [](CharClass c) {
    switch (c) {
      case CharClass::kConsonant:
        return 'K';
      case CharClass::kCharacter:
        return 'C';
      case CharClass::kDigit:
        return 'D';
      case CharClass::kSoundex:
        return 'S';
    }
    return '?';
  };
  for (size_t i = 0; i < parts_.size(); ++i) {
    const KeyPatternPart& part = parts_[i];
    if (i > 0) out += ',';
    if (part.char_class == CharClass::kSoundex) {
      out += 'S';
      continue;
    }
    out += class_letter(part.char_class);
    out += std::to_string(part.from);
    if (part.to != part.from) {
      out += '-';
      out += class_letter(part.char_class);
      out += std::to_string(part.to);
    }
  }
  return out;
}

}  // namespace sxnm::core
