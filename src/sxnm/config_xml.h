// XML serialization of the SXNM configuration (the paper notes that the
// configuration "is itself an XML document").
//
// Format:
//
//   <sxnm-config num-threads="4">   <!-- optional; 1 = serial, 0 = auto -->
//     <checkpoint path="run.ckpt" every-pass="true"/>  <!-- optional -->
//     <candidate name="movie" path="movie_database/movies/movie"
//                window="10" use-descendants="true">
//       <paths>
//         <path id="1" rel="title/text()"/>
//         <path id="3" rel="@year"/>
//       </paths>
//       <od>
//         <entry pid="1" relevance="0.8" similarity="edit"/>
//         <entry pid="3" relevance="0.2" similarity="numeric:10"/>
//       </od>
//       <keys>
//         <key>
//           <part pid="1" order="1" pattern="K1,K2"/>
//           <part pid="3" order="2" pattern="D3,D4"/>
//         </key>
//         <key>
//           <part pid="3" order="1" pattern="D1"/>
//           <part pid="1" order="2" pattern="C1,C2"/>
//         </key>
//       </keys>
//       <classifier mode="average" od-threshold="0.75"
//                   desc-threshold="0.5" od-weight="0.5"/>
//     </candidate>
//   </sxnm-config>

#ifndef SXNM_SXNM_CONFIG_XML_H_
#define SXNM_SXNM_CONFIG_XML_H_

#include <string>
#include <string_view>

#include "sxnm/config.h"
#include "util/status.h"
#include "xml/node.h"

namespace sxnm::core {

/// Parses a configuration document. The result is validated
/// (Config::Validate) before being returned.
util::Result<Config> ConfigFromXml(const xml::Document& doc);

/// Convenience: parse XML text, then ConfigFromXml.
util::Result<Config> ConfigFromXmlString(std::string_view text);

/// Loads a configuration from a file.
util::Result<Config> ConfigFromXmlFile(const std::string& path);

/// Serializes `config` into the format above. Round-trips with
/// ConfigFromXml.
xml::Document ConfigToXml(const Config& config);

/// Serialized text form.
std::string ConfigToXmlString(const Config& config);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_CONFIG_XML_H_
