// Per-candidate hash-consing pool for whole element subtrees — the
// OdPool idea (strings → ids) lifted to trees. Real XML corpora are full
// of structurally identical subtrees ("Efficient XML Keyword Search based
// on DAG-Compression"): exact duplicates created by copy-paste, repeated
// boilerplate children, shared sub-records. The pool assigns every
// distinct subtree shape a dense, stable SubtreeRef id bottom-up, so the
// whole candidate forest collapses to a DAG of distinct nodes:
//
//   * equal ids  ⇔  structurally identical subtrees
//     (xml::StructurallyEqual — the exact relation, not a probabilistic
//     hash: ids are keyed on the full canonical encoding, so there are no
//     collisions by construction),
//   * GK rows carry their instance's root id alongside norm_ods, letting
//     the detector classify id-equal candidate pairs without touching the
//     comparison kernel (sw.dag_equal),
//   * pool size (kg.subtree_pool_nodes/bytes) measures how DAG-compressed
//     the corpus is: nodes_seen() / num_nodes() is the sharing factor.
//
// Not thread-safe for interning; candidates intern during (serial per
// candidate) key generation.

#ifndef SXNM_SXNM_SUBTREE_POOL_H_
#define SXNM_SXNM_SUBTREE_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "xml/node.h"

namespace sxnm::core {

/// Interned reference to one subtree shape. Default-constructed refs are
/// invalid (row not interned — e.g. dag compression disabled).
struct SubtreeRef {
  static constexpr uint32_t kInvalidId = 0xffffffffu;

  uint32_t id = kInvalidId;

  bool valid() const { return id != kInvalidId; }

  friend bool operator==(SubtreeRef a, SubtreeRef b) { return a.id == b.id; }
  friend bool operator!=(SubtreeRef a, SubtreeRef b) { return a.id != b.id; }
};

/// Append-only subtree interning pool. Ids are dense (0, 1, 2, ...) in
/// first-intern order and stable for the pool's lifetime. Every DOM node
/// kind participates in identity: element names, attribute lists (names
/// and values, in order), text vs CDATA, comments, and child order.
class SubtreePool {
 public:
  /// Interns `root`'s subtree (and, transitively, every node below it)
  /// and returns the root's id. Iterative post-order — safe for trees as
  /// deep as the parser admits (ParseOptions::max_depth).
  SubtreeRef Intern(const xml::Element& root);

  /// Number of distinct DAG nodes (subtree shapes) interned.
  size_t num_nodes() const { return index_.size(); }

  /// Total DOM nodes walked over all Intern calls; nodes_seen() minus
  /// num_nodes() is how many nodes DAG-compression deduplicated.
  size_t nodes_seen() const { return nodes_seen_; }

  /// Bytes retained for the canonical node encodings (the DAG's memory).
  size_t bytes() const { return bytes_; }

 private:
  /// Interns one canonical node encoding; `scratch_` holds the encoding.
  uint32_t InternEncoding();

  // Canonical encodings are injective: every variable-length field is
  // length-prefixed and children are reduced to their (already unique)
  // 4-byte ids, so equal encodings imply structurally identical subtrees
  // by induction over tree height.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      index_;
  std::string scratch_;
  size_t nodes_seen_ = 0;
  size_t bytes_ = 0;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_SUBTREE_POOL_H_
