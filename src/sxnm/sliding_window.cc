#include "sxnm/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace sxnm::core {

size_t WindowPairCount(size_t n, size_t window) {
  assert(window >= 2);
  size_t count = 0;
  for (size_t i = 1; i < n; ++i) {
    count += std::min(i, window - 1);
  }
  return count;
}

size_t WindowPairCountRange(size_t n, size_t window, size_t begin,
                            size_t end) {
  assert(window >= 2);
  assert(end <= n);
  (void)n;
  size_t count = 0;
  for (size_t i = std::max<size_t>(begin, 1); i < end; ++i) {
    count += std::min(i, window - 1);
  }
  return count;
}

size_t LargestWindowWithin(size_t n, size_t window, size_t budget) {
  assert(window >= 2);
  // WindowPairCount is monotone in the window, so binary search works;
  // windows are small enough that a linear scan from the top is fine too,
  // but the search keeps this O(log w) per boundary pass.
  if (WindowPairCount(n, 2) > budget) return 0;
  size_t lo = 2, hi = window;
  while (lo < hi) {
    size_t mid = lo + (hi - lo + 1) / 2;
    if (WindowPairCount(n, mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace sxnm::core
