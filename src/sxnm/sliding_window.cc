#include "sxnm/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace sxnm::core {

size_t ForEachWindowPair(const std::vector<size_t>& order, size_t window,
                         const std::function<void(size_t, size_t)>& visit) {
  assert(window >= 2);
  size_t visited = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    size_t lo = (i >= window - 1) ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      visit(order[j], order[i]);
      ++visited;
    }
  }
  return visited;
}

namespace {

bool SharePrefix(const std::string& a, const std::string& b, size_t len) {
  if (a.size() < len || b.size() < len) {
    // Keys shorter than the prefix must match entirely (and be equal in
    // length) to count as "same block".
    return a == b;
  }
  return a.compare(0, len, b, 0, len) == 0;
}

}  // namespace

size_t ForEachAdaptiveWindowPair(
    const std::vector<size_t>& order,
    const std::function<const std::string&(size_t)>& key_of,
    size_t base_window, size_t max_window, size_t prefix_len,
    const std::function<void(size_t, size_t)>& visit) {
  assert(base_window >= 2);
  assert(max_window >= base_window);
  assert(prefix_len >= 1);

  size_t visited = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    const std::string& entering = key_of(order[i]);
    size_t max_span = std::min(i, max_window - 1);
    for (size_t span = 1; span <= max_span; ++span) {
      size_t j = i - span;
      if (span >= base_window &&
          !SharePrefix(key_of(order[j]), entering, prefix_len)) {
        break;  // left the equal-prefix block; stop extending
      }
      visit(order[j], order[i]);
      ++visited;
    }
  }
  return visited;
}

size_t WindowPairCount(size_t n, size_t window) {
  assert(window >= 2);
  size_t count = 0;
  for (size_t i = 1; i < n; ++i) {
    count += std::min(i, window - 1);
  }
  return count;
}

size_t LargestWindowWithin(size_t n, size_t window, size_t budget) {
  assert(window >= 2);
  // WindowPairCount is monotone in the window, so binary search works;
  // windows are small enough that a linear scan from the top is fine too,
  // but the search keeps this O(log w) per boundary pass.
  if (WindowPairCount(n, 2) > budget) return 0;
  size_t lo = 2, hi = window;
  while (lo < hi) {
    size_t mid = lo + (hi - lo + 1) / 2;
    if (WindowPairCount(n, mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

namespace {

// Shared polling state of the interruptible enumerations.
struct InterruptPoll {
  const util::CancellationToken& token;
  const util::Deadline& deadline;
  size_t until_check = 0;

  bool ShouldStop() {
    if (until_check > 0) {
      --until_check;
      return false;
    }
    until_check = kInterruptCheckInterval - 1;
    return token.cancelled() || deadline.expired();
  }
};

}  // namespace

WindowRunResult ForEachWindowPairInterruptible(
    const std::vector<size_t>& order, size_t window,
    const util::CancellationToken& token, const util::Deadline& deadline,
    const std::function<void(size_t, size_t)>& visit) {
  assert(window >= 2);
  WindowRunResult result;
  InterruptPoll poll{token, deadline};
  for (size_t i = 1; i < order.size(); ++i) {
    size_t lo = (i >= window - 1) ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      if (poll.ShouldStop()) {
        result.stopped_early = true;
        return result;
      }
      visit(order[j], order[i]);
      ++result.pairs_visited;
    }
  }
  return result;
}

WindowRunResult ForEachAdaptiveWindowPairInterruptible(
    const std::vector<size_t>& order,
    const std::function<const std::string&(size_t)>& key_of,
    size_t base_window, size_t max_window, size_t prefix_len,
    const util::CancellationToken& token, const util::Deadline& deadline,
    const std::function<void(size_t, size_t)>& visit) {
  assert(base_window >= 2);
  assert(max_window >= base_window);
  assert(prefix_len >= 1);
  WindowRunResult result;
  InterruptPoll poll{token, deadline};
  for (size_t i = 1; i < order.size(); ++i) {
    const std::string& entering = key_of(order[i]);
    size_t max_span = std::min(i, max_window - 1);
    for (size_t span = 1; span <= max_span; ++span) {
      size_t j = i - span;
      if (span >= base_window &&
          !SharePrefix(key_of(order[j]), entering, prefix_len)) {
        break;
      }
      if (poll.ShouldStop()) {
        result.stopped_early = true;
        return result;
      }
      visit(order[j], order[i]);
      ++result.pairs_visited;
    }
  }
  return result;
}

}  // namespace sxnm::core
