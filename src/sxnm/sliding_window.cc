#include "sxnm/sliding_window.h"

#include <algorithm>
#include <cassert>

namespace sxnm::core {

size_t ForEachWindowPair(const std::vector<size_t>& order, size_t window,
                         const std::function<void(size_t, size_t)>& visit) {
  assert(window >= 2);
  size_t visited = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    size_t lo = (i >= window - 1) ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      visit(order[j], order[i]);
      ++visited;
    }
  }
  return visited;
}

namespace {

bool SharePrefix(const std::string& a, const std::string& b, size_t len) {
  if (a.size() < len || b.size() < len) {
    // Keys shorter than the prefix must match entirely (and be equal in
    // length) to count as "same block".
    return a == b;
  }
  return a.compare(0, len, b, 0, len) == 0;
}

}  // namespace

size_t ForEachAdaptiveWindowPair(
    const std::vector<size_t>& order,
    const std::function<const std::string&(size_t)>& key_of,
    size_t base_window, size_t max_window, size_t prefix_len,
    const std::function<void(size_t, size_t)>& visit) {
  assert(base_window >= 2);
  assert(max_window >= base_window);
  assert(prefix_len >= 1);

  size_t visited = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    const std::string& entering = key_of(order[i]);
    size_t max_span = std::min(i, max_window - 1);
    for (size_t span = 1; span <= max_span; ++span) {
      size_t j = i - span;
      if (span >= base_window &&
          !SharePrefix(key_of(order[j]), entering, prefix_len)) {
        break;  // left the equal-prefix block; stop extending
      }
      visit(order[j], order[i]);
      ++visited;
    }
  }
  return visited;
}

size_t WindowPairCount(size_t n, size_t window) {
  assert(window >= 2);
  size_t count = 0;
  for (size_t i = 1; i < n; ++i) {
    count += std::min(i, window - 1);
  }
  return count;
}

}  // namespace sxnm::core
