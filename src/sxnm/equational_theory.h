// Equational theory for duplicate classification (Sec. 5 outlook; the
// relational SNM of Hernández & Stolfo uses one instead of a plain
// threshold).
//
// A theory is a *disjunction of rules*; a rule is a *conjunction of
// conditions* over the per-component OD similarities and (optionally) the
// descendant similarity:
//
//   rule 1: sim(did)   >= 0.95                         -> duplicates
//   rule 2: sim(artist)>= 0.85 AND sim(dtitle) >= 0.8
//           AND desc   >= 0.3                          -> duplicates
//
// When a candidate carries a theory, rule evaluation replaces the
// threshold-based classification of the similarity measure (the OD and
// descendant similarities are still computed the same way and reported in
// the verdict).

#ifndef SXNM_SXNM_EQUATIONAL_THEORY_H_
#define SXNM_SXNM_EQUATIONAL_THEORY_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace sxnm::core {

/// One conjunct of a rule.
struct RuleCondition {
  /// Path id of the OD entry the condition constrains, or kDescendants
  /// for a condition on the descendant similarity.
  static constexpr int kDescendants = -1;

  int pid = 0;
  double min_similarity = 1.0;

  bool operator==(const RuleCondition&) const = default;
};

/// A conjunction of conditions; fires when all conditions hold.
struct Rule {
  std::vector<RuleCondition> conditions;

  bool operator==(const Rule&) const = default;
};

/// A disjunction of rules. An empty theory never fires (callers fall back
/// to threshold classification).
class EquationalTheory {
 public:
  EquationalTheory() = default;
  explicit EquationalTheory(std::vector<Rule> rules)
      : rules_(std::move(rules)) {}

  bool empty() const { return rules_.empty(); }
  const std::vector<Rule>& rules() const { return rules_; }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// True when any rule has a condition on the descendant similarity —
  /// only then does Fires() ever read `desc_sim`, so callers may skip
  /// computing it otherwise.
  bool UsesDescendants() const;

  /// Evaluates the theory.
  ///   `od_sims`   — per-OD-entry similarities, parallel to the entries;
  ///   `od_pids`   — the pid of each entry (same order);
  ///   `desc_sim`  — descendant similarity, or a negative value when no
  ///                 descendant information exists (conditions on
  ///                 kDescendants then fail).
  /// A condition referencing a pid that is not in `od_pids` fails.
  bool Fires(const std::vector<double>& od_sims,
             const std::vector<int>& od_pids, double desc_sim) const;

  /// Validation helper: every condition pid must be kDescendants or a
  /// member of `od_pids`, and min_similarity within [0, 1].
  util::Status Validate(const std::vector<int>& od_pids) const;

  bool operator==(const EquationalTheory&) const = default;

 private:
  std::vector<Rule> rules_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_EQUATIONAL_THEORY_H_
