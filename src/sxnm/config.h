// SXNM configuration model (Sec. 3.2 of the paper).
//
// The configuration mirrors the paper's relations exactly:
//   PATH_s(id, relPath)            -> PathEntry
//   OD_s(pid, relevance)           -> OdEntry (plus a φ function name)
//   KEY_{s,i}(pid, order, pattern) -> KeyDef / KeyPartRef
// together with the per-candidate knobs of Sec. 3.4 (window size,
// thresholds, whether descendants participate).

#ifndef SXNM_SXNM_CONFIG_H_
#define SXNM_SXNM_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sxnm/equational_theory.h"
#include "sxnm/key_pattern.h"
#include "text/similarity.h"
#include "util/status.h"
#include "xml/parser.h"
#include "xml/xpath.h"

namespace sxnm::core {

/// One row of PATH_s: a relative path addressing a text node or attribute
/// of the candidate, referenced by OD and KEY entries through `id`.
struct PathEntry {
  int id = 0;
  std::string rel_path;  // original string form
  xml::XPath path;       // parsed form
};

/// One row of OD_s: which path participates in the object description and
/// with which relevance (weight) and φ^OD function.
struct OdEntry {
  int pid = 0;
  double relevance = 1.0;
  std::string similarity_name = "edit";
  text::SimilarityFn similarity;  // resolved from similarity_name
};

/// One row of KEY_{s,i}: a (pid, order, pattern) triple.
struct KeyPartRef {
  int pid = 0;
  int order = 0;
  KeyPattern pattern;
};

/// One key definition: its parts sorted by `order`.
struct KeyDef {
  std::vector<KeyPartRef> parts;
};

/// How OD similarity and descendant similarity combine into the final
/// classification (the paper computes the average; the exact thresholding
/// in Experiment set 3 is configurable here — see DESIGN.md).
enum class CombineMode {
  kOdOnly,    // ignore descendants entirely
  kAverage,   // combined = (od + desc)/2 when descendants exist, else od
  kWeighted,  // combined = w*od + (1-w)*desc
  kDescBoost, // desc >= desc_threshold counts as fully similar children
              // (desc' = 1), else desc' = desc; combined = (od + desc')/2
  kDescGate,  // duplicate iff od >= od_threshold AND desc >= desc_threshold
              // (children must overlap at least a little — kills false
              // positives like series CDs, the Fig. 6(b) use of the
              // descendants threshold)
};

const char* CombineModeName(CombineMode mode);
util::Result<CombineMode> ParseCombineMode(std::string_view name);

/// How the comparison neighborhood is formed during the sliding-window
/// phase (Sec. 5 outlook cites [20] for dynamically adapted windows).
enum class WindowPolicy {
  kFixed,             // classic SNM: fixed window of `window_size`
  kAdaptivePrefix,    // fixed base window + extension within equal-key-
                      // prefix blocks, up to `max_window`
};

const char* WindowPolicyName(WindowPolicy policy);
util::Result<WindowPolicy> ParseWindowPolicy(std::string_view name);

struct ClassifierConfig {
  /// Pairs with combined similarity >= this are duplicates. In kOdOnly
  /// mode this is exactly the paper's "OD threshold".
  double od_threshold = 0.75;

  /// The paper's "descendants threshold" (Experiment set 3); used by
  /// kDescBoost.
  double desc_threshold = 0.5;

  /// OD weight for kWeighted.
  double od_weight = 0.5;

  CombineMode mode = CombineMode::kAverage;
};

/// Everything the algorithm knows about one candidate (one XML schema
/// element type subject to deduplication).
struct CandidateConfig {
  std::string name;               // unique, e.g. "movie"
  std::string absolute_path_str;  // e.g. "movie_database/movies/movie"
  xml::XPath absolute_path;

  std::vector<PathEntry> paths;
  std::vector<OdEntry> od;
  std::vector<KeyDef> keys;

  size_t window_size = 10;

  /// Adaptive-window knobs (used when window_policy == kAdaptivePrefix):
  /// the neighborhood extends past window_size while sort keys share a
  /// `adaptive_prefix_len`-character prefix, but never beyond
  /// `max_window`.
  WindowPolicy window_policy = WindowPolicy::kFixed;
  size_t adaptive_prefix_len = 4;
  size_t max_window = 100;

  ClassifierConfig classifier;

  /// "information about when not to use descendants" (Sec. 3.4): when
  /// false, descendants are ignored for this candidate even if present.
  bool use_descendants = true;

  /// DE-SNM-style exact-duplicate pre-pass (the paper's outlook, Sec. 5,
  /// citing [19]): instances whose whole normalized object description is
  /// byte-identical are accepted as duplicates before windowing, without
  /// any similarity computation. Escapes the window-size limit inside
  /// long runs of equal keys (e.g. identical track titles). Off by
  /// default; recommended for leaf candidates whose OD is a single text
  /// value.
  bool exact_od_prepass = false;

  /// Optional equational theory (outlook, Sec. 5). When non-empty, rule
  /// evaluation replaces the threshold classification: a pair is a
  /// duplicate iff some rule's conditions all hold over the per-component
  /// OD similarities (and optionally the descendant similarity).
  EquationalTheory theory;

  /// Comparison-kernel fast paths inside the sliding-window phase:
  /// precomputed normalized ODs for the "edit" φ, bounded edit-distance
  /// pruning against the classifier threshold, and sorted-vector
  /// descendant Jaccard. They never change which pairs are accepted (the
  /// verdict is identical up to floating-point ties ~1e-9 at the
  /// threshold); disable only to measure their effect (bench baselines).
  bool enable_fast_paths = true;

  /// DAG compression: hash-cons every instance subtree at key-generation
  /// time (SubtreePool), so structurally identical instances share one
  /// id, and windowed pairs with equal ids are classified without the
  /// comparison kernel (sw.dag_equal). Never changes which pairs are
  /// compared or accepted; disable only for bench baselines.
  bool dag_compression = true;

  /// Batched SoA pre-filtering of window pairs: pending pairs are
  /// gathered into struct-of-arrays buffers and screened in bulk with
  /// SIMD upper-bound filters (length / interned-id / descendant-set
  /// Jaccard bounds, util/simd.h) before survivors reach the Myers
  /// kernel. Rejections are sound — a screened-out pair is provably
  /// below the classifier threshold — so the verdict set is identical.
  /// Requires enable_fast_paths (validated); disable for baselines.
  bool batch_scoring = true;

  /// Resolves a pid to its PathEntry, nullptr when absent.
  const PathEntry* FindPath(int pid) const;
};

/// Observability switches for a detection run (the `sxnm_obs` layer).
/// With `metrics` on, the detector collects engine-wide counters and
/// histograms plus the per-candidate × per-pass DetectionReport; with a
/// trace path set, it records phase/pass spans and writes a Chrome
/// trace_event JSON there. Everything off (the default) routes the hot
/// paths through no-op handles — observability costs nothing unless
/// asked for.
struct ObservabilityConfig {
  /// Collect metrics and build DetectionResult::report / ::metrics.
  bool metrics = false;

  /// When non-empty, write a chrome://tracing / Perfetto compatible
  /// trace of the run to this path.
  std::string trace_path;

  /// When non-empty, serialize the DetectionReport as JSON to this path
  /// (requires `metrics`; validated).
  std::string report_path;

  /// When non-empty, write the decision-provenance log (one NDJSON
  /// record per pair classification, plus instance headers, shed
  /// notices and cluster lineage) to this path (requires `metrics`;
  /// validated). Output is byte-identical for any num_threads.
  std::string explain_path;

  /// When non-empty, a background sampler streams periodic NDJSON
  /// telemetry samples (counter rates, phase progress/ETA, RSS) to
  /// this path while the run executes (requires `metrics`; validated).
  /// The time series is wall-clock-driven and non-deterministic, but
  /// enabling it never changes detection output.
  std::string telemetry_path;

  /// Sampling period for the telemetry stream, in milliseconds.
  double telemetry_interval_ms = 250.0;

  /// When non-empty, run the in-process sampling CPU profiler for the
  /// duration of the detection and write a flamegraph.pl-compatible
  /// folded-stack profile to this path (see docs/OBSERVABILITY.md and
  /// tools/sxnm_flame). With `metrics` on, the per-span-path breakdown
  /// is additionally embedded as the report's "profile" block. The
  /// profiler only observes: detection output is bit-identical with
  /// profiling on or off, for any num_threads.
  std::string profile_path;

  /// Sampling frequency of the profiler in samples per thread-CPU
  /// second. Prime by default so the sampler cannot phase-lock with
  /// periodic engine work.
  double profile_hz = 97.0;

  bool any() const { return metrics || !trace_path.empty(); }
};

/// Crash-consistent checkpointing for a detection run (`<checkpoint>` in
/// config XML; format in src/persist). With a non-empty path the
/// detector commits an atomic snapshot of its resident state — GK
/// relations, completed candidate results and cluster sets, degradation
/// and report rows, metrics, explain log, pass cursor — after key
/// generation and (with `every_pass`) after every completed bottom-up
/// candidate level. A later run pointed at the same path resumes from
/// the last durable snapshot and produces clusters, counters, and
/// explain output bit-identical to an uninterrupted run, for any
/// num_threads. Snapshots are fingerprinted against config + document;
/// resuming against different input refuses with kFailedPrecondition,
/// and a torn or corrupt snapshot fails with kDataLoss (never silently
/// recomputed — delete the file to start fresh). A successful run
/// removes its checkpoint file.
struct CheckpointConfig {
  /// Snapshot file path; empty (default) disables checkpointing.
  std::string path;

  /// True (default): snapshot after every completed candidate level —
  /// the run's pass-boundary durability points. False: snapshot only
  /// once, after key generation.
  bool every_pass = true;

  bool enabled() const { return !path.empty(); }
};

/// Resource governance for a run: hard ingestion limits (applied by the
/// tools and examples when they parse data documents) plus a comparison
/// budget / deadline for the detection phases. Everything defaults to
/// "ungoverned": the zero-cost path when nothing is configured.
struct RunLimits {
  // --- Ingestion (mirrors xml::ParseOptions; 0 = unlimited) ---------------
  size_t max_depth = 10'000;
  size_t max_input_bytes = 0;
  size_t max_nodes = 0;
  size_t max_attr_count = 1'000;

  /// Parse data documents in recovering mode: malformed subtrees are
  /// skipped with diagnostics instead of failing the whole file.
  bool recover_parse = false;

  // --- Detection governance -----------------------------------------------

  /// Hard cap on planned window comparisons across the whole run
  /// (0 = unlimited). Exceeding it sheds work deterministically:
  /// passes run in full in deterministic order until the budget is hit,
  /// the boundary pass shrinks its window to the largest size that still
  /// fits, and every later pass is skipped. The shed set is a pure
  /// function of config + data — identical for any num_threads.
  size_t max_comparisons = 0;

  /// Soft run deadline in seconds (0 = none). With a positive
  /// `comparisons_per_second`, the deadline converts ONCE at run start
  /// into a comparison budget (seconds × rate) and degrades exactly like
  /// max_comparisons — deterministically. With rate = 0, the deadline is
  /// enforced cooperatively against the wall clock: passes stop early at
  /// the next poll once it expires. Cooperative results are always
  /// well-formed but the cut point depends on machine speed.
  double deadline_seconds = 0.0;

  /// Deadline-to-budget conversion rate (pairs/second). The default is a
  /// conservative estimate of the comparison kernel's throughput; 0
  /// selects cooperative wall-clock enforcement.
  double comparisons_per_second = 1e6;

  /// The xml::ParseOptions equivalent of the ingestion limits.
  xml::ParseOptions ToParseOptions() const;

  /// True when any detection-phase governance is configured.
  bool HasGovernance() const {
    return max_comparisons != 0 || deadline_seconds > 0.0;
  }

  /// The comparison budget the detector resolves at run start: the
  /// stricter of max_comparisons and the deadline-derived budget
  /// (0 = none). Pure function of this struct.
  size_t ResolveComparisonBudget() const;

  /// Range validation (rates and deadlines non-negative, ...).
  util::Status Validate() const;
};

/// The full parameter set P = union of P_s over all candidates.
class Config {
 public:
  Config() = default;

  /// Adds a candidate. Fails on duplicate names.
  util::Status AddCandidate(CandidateConfig candidate);

  const std::vector<CandidateConfig>& candidates() const {
    return candidates_;
  }
  std::vector<CandidateConfig>& mutable_candidates() { return candidates_; }

  /// Candidate by name; nullptr when absent.
  const CandidateConfig* Find(std::string_view name) const;
  CandidateConfig* Find(std::string_view name);

  /// Worker threads for the duplicate-detection phase: window passes and
  /// independent candidates at the same forest depth run concurrently; the
  /// merge of pass results is deterministic, so any thread count produces
  /// the same detection result. 1 = serial (default), 0 = all hardware
  /// threads.
  size_t num_threads() const { return num_threads_; }
  void set_num_threads(size_t n) { num_threads_ = n; }

  /// Key-range shards per sliding-window pass. Each shard owns a
  /// contiguous range of entering positions of the sorted order
  /// (shard_plan.h); merged clusters, counters, and explain output are
  /// bit-identical for any shard count, so — like num_threads — this is
  /// a run-shape knob, excluded from the checkpoint fingerprint.
  /// 1 = unsharded (default).
  size_t shards() const { return shards_; }
  void set_shards(size_t n) { shards_ = n; }

  /// In-memory budget (bytes) for each pass's sort of the GK relation.
  /// 0 (default) keeps the historical fully-resident std::stable_sort;
  /// > 0 routes pass sorts through the external sorter (src/extsort),
  /// which spills budget-bounded sorted runs to disk and k-way merges
  /// them. Output is bit-identical either way for any budget.
  uint64_t memory_budget_bytes() const { return memory_budget_bytes_; }
  void set_memory_budget_bytes(uint64_t b) { memory_budget_bytes_ = b; }

  /// Directory for external-sort spill files; empty (default) = the
  /// process temp directory. Only consulted when memory_budget_bytes
  /// > 0.
  const std::string& spill_dir() const { return spill_dir_; }
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }

  /// Observability switches (metrics registry, tracing, report files).
  const ObservabilityConfig& observability() const { return observability_; }
  ObservabilityConfig& mutable_observability() { return observability_; }

  /// Resource-governance limits (<limits>/<deadline> in config XML).
  const RunLimits& limits() const { return limits_; }
  RunLimits& mutable_limits() { return limits_; }

  /// Checkpoint/resume settings (<checkpoint> in config XML).
  const CheckpointConfig& checkpoint() const { return checkpoint_; }
  CheckpointConfig& mutable_checkpoint() { return checkpoint_; }

  /// Structural validation: every candidate has >= 1 key and >= 1 OD
  /// entry, every pid resolves, relevancies are positive, window sizes
  /// >= 2, thresholds within [0, 1], similarity functions resolved.
  util::Status Validate() const;

 private:
  std::vector<CandidateConfig> candidates_;
  size_t num_threads_ = 1;
  size_t shards_ = 1;
  uint64_t memory_budget_bytes_ = 0;
  std::string spill_dir_;
  ObservabilityConfig observability_;
  RunLimits limits_;
  CheckpointConfig checkpoint_;
};

/// Fluent construction helper used by examples, tests, and benches:
///
///   auto movie = CandidateBuilder("movie", "movies/movie")
///                    .Path(1, "title/text()")
///                    .Path(3, "@year")
///                    .Od(1, 0.8).Od(3, 0.2, "numeric:10")
///                    .Key({{1, "K1,K2"}, {3, "D3,D4"}})
///                    .Window(10)
///                    .OdThreshold(0.75)
///                    .Build();
class CandidateBuilder {
 public:
  CandidateBuilder(std::string name, std::string absolute_path);

  CandidateBuilder& Path(int id, std::string rel_path);
  CandidateBuilder& Od(int pid, double relevance,
                       std::string similarity = "edit");
  /// One key: ordered (pid, pattern) pairs; order is the list position.
  CandidateBuilder& Key(std::vector<std::pair<int, std::string>> parts);
  CandidateBuilder& Window(size_t window_size);
  /// Enables the adaptive-prefix window policy.
  CandidateBuilder& AdaptiveWindow(size_t prefix_len, size_t max_window);
  CandidateBuilder& OdThreshold(double threshold);
  CandidateBuilder& DescThreshold(double threshold);
  CandidateBuilder& OdWeight(double weight);
  CandidateBuilder& Mode(CombineMode mode);
  CandidateBuilder& UseDescendants(bool use);
  CandidateBuilder& ExactOdPrepass(bool enable);
  CandidateBuilder& FastPaths(bool enable);
  CandidateBuilder& Dag(bool enable);
  CandidateBuilder& BatchScoring(bool enable);
  /// Adds one equational-theory rule: conditions as (pid, min_similarity)
  /// pairs; use RuleCondition::kDescendants (-1) as pid for a condition
  /// on the descendant similarity.
  CandidateBuilder& TheoryRule(std::vector<std::pair<int, double>> conditions);

  /// Returns the candidate or the first accumulated error.
  util::Result<CandidateConfig> Build();

 private:
  CandidateConfig candidate_;
  util::Status first_error_;
  std::string abs_path_pending_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_CONFIG_H_
