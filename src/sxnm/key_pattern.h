// Key pattern language of the paper's KEY relations (Tab. 1 / Tab. 3).
//
// A pattern is a comma-separated list of selectors over a text value:
//   K<n>        the n-th consonant (1-based) of the value
//   C<n>        the n-th alphanumeric character
//   D<n>        the n-th digit
//   K<a>-K<b>   the a-th through b-th consonants (likewise C, D)
//   S           the Soundex code of the whole value (extension)
//
// Examples from the paper: "K1-K5" (first five consonants of a movie
// title), "D3,D4" (third and fourth digit of the year), "C1,C2".
// Selected characters are uppercased and concatenated in pattern order;
// positions beyond the available characters select nothing ("Mask of
// Zorro" has 7 consonants, so K1-K9 yields "MSKFZRR").

#ifndef SXNM_SXNM_KEY_PATTERN_H_
#define SXNM_SXNM_KEY_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sxnm::core {

enum class CharClass {
  kConsonant,  // K
  kCharacter,  // C (alphanumeric)
  kDigit,      // D
  kSoundex,    // S (whole-value Soundex code; extension)
};

/// One selector of a pattern: positions `from`..`to` (1-based, inclusive)
/// of the given character class. Soundex selectors ignore positions.
struct KeyPatternPart {
  CharClass char_class = CharClass::kCharacter;
  int from = 1;
  int to = 1;

  bool operator==(const KeyPatternPart&) const = default;
};

class KeyPattern {
 public:
  /// Parses a pattern string such as "K1-K5" or "D3,D4". Rules:
  ///   * positions are positive integers
  ///   * in a range both endpoints must use the same class and from <= to
  ///   * whitespace around commas is tolerated
  static util::Result<KeyPattern> Parse(std::string_view pattern);

  const std::vector<KeyPatternPart>& parts() const { return parts_; }

  /// Applies the pattern to `value`, returning the extracted key fragment
  /// (uppercase). Missing positions are skipped, so short or empty values
  /// simply produce shorter fragments.
  std::string Apply(std::string_view value) const;

  /// Canonical string form ("K1-K5,D3,D4").
  std::string ToString() const;

  bool operator==(const KeyPattern&) const = default;

 private:
  std::vector<KeyPatternPart> parts_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_KEY_PATTERN_H_
