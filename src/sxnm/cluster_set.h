// Cluster sets (Def. 1 of the paper): the output of duplicate detection
// for one candidate. Every instance of the candidate belongs to exactly
// one cluster; a cluster groups the representations of one real-world
// object and has a unique cluster ID (`cid`).

#ifndef SXNM_SXNM_CLUSTER_SET_H_
#define SXNM_SXNM_CLUSTER_SET_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace sxnm::core {

/// A pair of instance ordinals, ordered (first < second).
using OrdinalPair = std::pair<size_t, size_t>;

class ClusterSet {
 public:
  /// Empty set over zero instances.
  ClusterSet() = default;

  /// Builds from an explicit partition of ordinals 0..num_instances-1.
  /// Every ordinal must appear exactly once across `clusters` (singleton
  /// ordinals may be omitted; they are added as singleton clusters).
  static ClusterSet FromClusters(std::vector<std::vector<size_t>> clusters,
                                 size_t num_instances);

  /// All-singletons partition.
  static ClusterSet Singletons(size_t num_instances);

  size_t num_instances() const { return cid_.size(); }
  size_t num_clusters() const { return clusters_.size(); }

  /// The paper's cid() function: cluster ID of an instance ordinal.
  int cid(size_t ordinal) const { return cid_[ordinal]; }

  /// Clusters, each a sorted list of ordinals; cluster index == its cid.
  const std::vector<std::vector<size_t>>& clusters() const {
    return clusters_;
  }

  /// Clusters with at least two members (actual duplicate groups).
  std::vector<std::vector<size_t>> NonTrivialClusters() const;

  /// Number of intra-cluster pairs: sum over clusters of C(|c|, 2). This is
  /// the pair count used by the pairwise precision/recall metrics.
  size_t NumDuplicatePairs() const;

  /// All intra-cluster pairs, ordered.
  std::vector<OrdinalPair> DuplicatePairs() const;

 private:
  std::vector<int> cid_;                       // ordinal -> cluster id
  std::vector<std::vector<size_t>> clusters_;  // cid -> members
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_CLUSTER_SET_H_
