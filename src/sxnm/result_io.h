// Persistence for detection results — the paper's CS tables: "For every
// candidate, the result of duplicate detection can be retrieved from the
// corresponding CS table for further processing" (Sec. 3.1/3.4).
//
// The serialized form keeps, per candidate, the instance count and every
// non-trivial cluster with its members' ordinals and element IDs:
//
//   <sxnm-result>
//     <candidate name="movie" instances="279">
//       <cluster cid="0">
//         <member ordinal="3" eid="941"/>
//         <member ordinal="17" eid="1797"/>
//       </cluster>
//     </candidate>
//   </sxnm-result>
//
// Singleton clusters are implied. GK contents and timings are not
// persisted (re-derivable / run-specific).

#ifndef SXNM_SXNM_RESULT_IO_H_
#define SXNM_SXNM_RESULT_IO_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sxnm/detector.h"

namespace sxnm::core {

/// A candidate's persisted cluster set.
struct StoredCandidateResult {
  std::string name;
  size_t num_instances = 0;
  ClusterSet clusters;
  /// Element IDs per instance ordinal (kInvalidElementId where unknown —
  /// only ordinals that appear in non-trivial clusters are stored).
  std::vector<xml::ElementId> eids;
};

struct StoredDetectionResult {
  std::vector<StoredCandidateResult> candidates;

  const StoredCandidateResult* Find(std::string_view name) const;
};

/// Serializes the cluster sets of `result`.
xml::Document ResultToXml(const DetectionResult& result);
std::string ResultToXmlString(const DetectionResult& result);

/// Parses a previously serialized result document.
util::Result<StoredDetectionResult> ResultFromXml(const xml::Document& doc);
util::Result<StoredDetectionResult> ResultFromXmlString(
    std::string_view text);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_RESULT_IO_H_
