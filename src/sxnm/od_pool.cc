#include "sxnm/od_pool.h"

#include <cassert>

namespace sxnm::core {

OdRef OdPool::Intern(std::string_view value) {
  assert(value.size() <= UINT32_MAX);
  auto it = index_.find(value);
  if (it == index_.end()) {
    assert(arena_.size() + value.size() <= UINT32_MAX);
    uint32_t id = static_cast<uint32_t>(offsets_.size());
    offsets_.push_back(static_cast<uint32_t>(arena_.size()));
    arena_.append(value);
    it = index_.emplace(std::string(value), id).first;
  }
  return OdRef{it->second, static_cast<uint32_t>(value.size())};
}

OdPool OdPool::FromParts(std::string arena, std::vector<uint32_t> offsets) {
  OdPool pool;
  pool.arena_ = std::move(arena);
  pool.offsets_ = std::move(offsets);
  pool.index_.reserve(pool.offsets_.size());
  for (size_t i = 0; i < pool.offsets_.size(); ++i) {
    size_t end = i + 1 < pool.offsets_.size() ? pool.offsets_[i + 1]
                                              : pool.arena_.size();
    std::string_view value = std::string_view(pool.arena_)
                                 .substr(pool.offsets_[i],
                                         end - pool.offsets_[i]);
    pool.index_.emplace(std::string(value), static_cast<uint32_t>(i));
  }
  return pool;
}

}  // namespace sxnm::core
