#include "sxnm/od_pool.h"

#include <cassert>

namespace sxnm::core {

OdRef OdPool::Intern(std::string_view value) {
  assert(value.size() <= UINT32_MAX);
  auto it = index_.find(value);
  if (it == index_.end()) {
    assert(arena_.size() + value.size() <= UINT32_MAX);
    uint32_t id = static_cast<uint32_t>(offsets_.size());
    offsets_.push_back(static_cast<uint32_t>(arena_.size()));
    arena_.append(value);
    it = index_.emplace(std::string(value), id).first;
  }
  return OdRef{it->second, static_cast<uint32_t>(value.size())};
}

}  // namespace sxnm::core
