// Per-candidate interning pool for normalized OD values. Dirty XML data
// is highly repetitive — the same normalized strings recur across
// records — so key generation interns each value once and GK rows store
// compact (id, length) references instead of owning strings. Equal IDs
// mean byte-identical values, which lets the comparison kernel score such
// component pairs 1.0 without touching any bytes; unequal IDs resolve to
// contiguous arena views for the edit-distance kernel.

#ifndef SXNM_SXNM_OD_POOL_H_
#define SXNM_SXNM_OD_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sxnm::core {

/// Interned reference to one normalized OD value: the pool-stable ID plus
/// the value's byte length (kept inline so length-based pruning and
/// empty checks never touch the pool).
struct OdRef {
  uint32_t id = 0;
  uint32_t length = 0;
};

/// Append-only string pool. IDs are dense (0, 1, 2, ...) in first-intern
/// order and stable for the pool's lifetime; the backing arena keeps all
/// distinct values contiguous. Not thread-safe for interning; concurrent
/// read-only View calls are safe once building is done.
class OdPool {
 public:
  /// Returns the existing reference when `value` was interned before,
  /// otherwise appends it to the arena and assigns the next ID.
  OdRef Intern(std::string_view value);

  /// The interned bytes of `ref`. `ref` must come from this pool.
  std::string_view View(OdRef ref) const {
    return std::string_view(arena_).substr(offsets_[ref.id], ref.length);
  }

  /// Number of distinct interned values.
  size_t size() const { return offsets_.size(); }

  /// Bytes held by the arena (distinct values only).
  size_t arena_bytes() const { return arena_.size(); }

  /// Raw parts for serialization (checkpointing). Values are appended
  /// contiguously, so `arena` + `offsets` fully determine the pool:
  /// value i spans [offsets[i], offsets[i+1]) (the last one runs to the
  /// arena's end).
  const std::string& arena() const { return arena_; }
  const std::vector<uint32_t>& offsets() const { return offsets_; }

  /// Rebuilds a pool from serialized parts. `offsets` must be strictly
  /// derived from a pool built by Intern (ascending, within the arena);
  /// the lookup index is reconstructed so further interning works.
  static OdPool FromParts(std::string arena, std::vector<uint32_t> offsets);

 private:
  // Heterogeneous lookup: Intern probes with the string_view directly and
  // only materializes a std::string for genuinely new values.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string arena_;
  std::vector<uint32_t> offsets_;  // offsets_[id]: start of the value
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      index_;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_OD_POOL_H_
