#include "sxnm/verdict_cache.h"

#include <cassert>
#include <thread>

namespace sxnm::core {

namespace {

// Finalizer-style mixer (splitmix64): packed pairs are highly regular
// (adjacent ordinals), so identity hashing would cluster probes.
uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

VerdictCache::VerdictCache(size_t max_distinct_pairs) {
  size_t capacity = 16;
  // >= 2x the bound keeps the load factor <= 0.5, so linear probing stays
  // short and a free slot always exists.
  while (capacity < max_distinct_pairs * 2) capacity <<= 1;
  capacity_ = capacity;
  mask_ = capacity - 1;
  keys_ = std::make_unique<std::atomic<uint64_t>[]>(capacity);
  states_ = std::make_unique<std::atomic<uint8_t>[]>(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    keys_[i].store(0, std::memory_order_relaxed);
    states_[i].store(kComputing, std::memory_order_relaxed);
  }
}

VerdictCache::Lookup VerdictCache::AcquireOrWait(uint64_t packed_pair) {
  assert(packed_pair != 0);
  size_t slot = static_cast<size_t>(MixHash(packed_pair)) & mask_;
  for (;;) {
    uint64_t existing = keys_[slot].load(std::memory_order_acquire);
    if (existing == 0) {
      // Empty slot: try to claim it. Success makes this thread the owner
      // of the pair's one and only classification.
      if (keys_[slot].compare_exchange_strong(existing, packed_pair,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        return Lookup{/*owner=*/true, /*is_duplicate=*/false, slot};
      }
      // Lost the race; `existing` now holds the winner's key. Fall
      // through to inspect it like any occupied slot.
    }
    if (existing == packed_pair) {
      // Someone owns (or owned) this pair; wait for the verdict. The
      // owner never re-enters the cache while computing, so this cannot
      // deadlock.
      uint8_t state = states_[slot].load(std::memory_order_acquire);
      while (state == kComputing) {
        std::this_thread::yield();
        state = states_[slot].load(std::memory_order_acquire);
      }
      return Lookup{/*owner=*/false, /*is_duplicate=*/state == kYes, slot};
    }
    slot = (slot + 1) & mask_;  // occupied by a different pair: probe on
  }
}

void VerdictCache::Publish(const Lookup& lookup, bool is_duplicate) {
  assert(lookup.owner);
  assert(states_[lookup.slot].load(std::memory_order_relaxed) == kComputing);
  states_[lookup.slot].store(is_duplicate ? kYes : kNo,
                             std::memory_order_release);
}

}  // namespace sxnm::core
