#include "sxnm/verdict_cache.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "util/flat_set.h"

namespace sxnm::core {

VerdictCache::VerdictCache(size_t max_distinct_pairs) {
  size_t capacity = 16;
  // >= 2x the bound keeps the load factor <= 0.5, so linear probing stays
  // short and a free slot always exists.
  while (capacity < max_distinct_pairs * 2) capacity <<= 1;
  capacity_ = capacity;
  mask_ = capacity - 1;
  slots_ = std::make_unique<Slot[]>(capacity);
}

VerdictCache::Lookup VerdictCache::AcquireOrWait(uint64_t packed_pair) {
  assert(packed_pair != 0);
  // Packed pairs are highly regular (adjacent ordinals), so identity
  // hashing would cluster probes; the splitmix64 finalizer scatters them.
  size_t slot = static_cast<size_t>(util::MixHash64(packed_pair)) & mask_;
  for (;;) {
    uint64_t existing = slots_[slot].key.load(std::memory_order_acquire);
    if (existing == 0) {
      // Empty slot: try to claim it. Success makes this thread the owner
      // of the pair's one and only classification.
      if (slots_[slot].key.compare_exchange_strong(
              existing, packed_pair, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        return Lookup{/*owner=*/true, /*is_duplicate=*/false, slot};
      }
      // Lost the race; `existing` now holds the winner's key. Fall
      // through to inspect it like any occupied slot.
    }
    if (existing == packed_pair) {
      // Someone owns (or owned) this pair; wait for the verdict. The
      // owner never re-enters the cache while computing, so this cannot
      // deadlock.
      uint8_t state = slots_[slot].state.load(std::memory_order_acquire);
      while (state == kComputing) {
        std::this_thread::yield();
        state = slots_[slot].state.load(std::memory_order_acquire);
      }
      return Lookup{/*owner=*/false, /*is_duplicate=*/state == kYes, slot};
    }
    slot = (slot + 1) & mask_;  // occupied by a different pair: probe on
  }
}

std::vector<std::pair<uint64_t, bool>> VerdictCache::Export() const {
  std::vector<std::pair<uint64_t, bool>> entries;
  for (size_t i = 0; i < capacity_; ++i) {
    uint64_t key = slots_[i].key.load(std::memory_order_acquire);
    if (key == 0) continue;
    uint8_t state = slots_[i].state.load(std::memory_order_acquire);
    if (state == kComputing) continue;
    entries.emplace_back(key, state == kYes);
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

void VerdictCache::Import(
    const std::vector<std::pair<uint64_t, bool>>& entries) {
  for (const auto& [key, is_duplicate] : entries) {
    Lookup lookup = AcquireOrWait(key);
    if (lookup.owner) Publish(lookup, is_duplicate);
  }
}

void VerdictCache::Publish(const Lookup& lookup, bool is_duplicate) {
  assert(lookup.owner);
  assert(slots_[lookup.slot].state.load(std::memory_order_relaxed) ==
         kComputing);
  slots_[lookup.slot].state.store(is_duplicate ? kYes : kNo,
                                  std::memory_order_release);
}

}  // namespace sxnm::core
