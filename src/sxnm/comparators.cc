#include "sxnm/comparators.h"

#include <algorithm>
#include <set>

#include "sxnm/similarity_measure.h"
#include "sxnm/sliding_window.h"
#include "sxnm/transitive_closure.h"
#include "util/string_util.h"

namespace sxnm::core {

namespace {

using util::Result;
using util::Status;

// Upper bound on one OD component's similarity, valid for the edit-
// distance family (similarity can never exceed min_len/max_len); 1.0 for
// other φ functions.
double ComponentUpperBound(const OdEntry& od, const std::string& a,
                           const std::string& b) {
  if (!util::StartsWith(od.similarity_name, "edit")) return 1.0;
  size_t la = a.size(), lb = b.size();
  size_t lo = std::min(la, lb), hi = std::max(la, lb);
  if (hi == 0) return 1.0;
  if (lo == 0) return 0.0;
  return static_cast<double>(lo) / static_cast<double>(hi);
}

// Upper bound on the OD similarity of a pair (mirrors the renormalizing
// weighted sum of SimilarityMeasure::OdSimilarity).
double OdUpperBound(const CandidateConfig& cand, const GkRow& a,
                    const GkRow& b) {
  double sum = 0.0, weight = 0.0;
  for (size_t i = 0; i < cand.od.size(); ++i) {
    if (a.ods[i].empty() && b.ods[i].empty()) continue;
    sum += cand.od[i].relevance *
           ComponentUpperBound(cand.od[i], a.ods[i], b.ods[i]);
    weight += cand.od[i].relevance;
  }
  if (weight <= 0.0) return 0.0;
  return sum / weight;
}

// True when the pair can be skipped: even the most optimistic combined
// similarity stays below the decision threshold.
bool FilterRejects(const CandidateConfig& cand, const GkRow& a,
                   const GkRow& b) {
  if (!cand.theory.empty()) return false;  // rules are arbitrary
  double ub_od = OdUpperBound(cand, a, b);
  const ClassifierConfig& cls = cand.classifier;
  double ub_combined;
  switch (cls.mode) {
    case CombineMode::kOdOnly:
    case CombineMode::kDescGate:
      ub_combined = ub_od;  // the OD must clear the threshold by itself
      break;
    case CombineMode::kAverage:
    case CombineMode::kDescBoost:
      ub_combined = 0.5 * (ub_od + 1.0);  // descendants at most 1
      break;
    case CombineMode::kWeighted:
      ub_combined = cls.od_weight * ub_od + (1.0 - cls.od_weight);
      break;
    default:
      ub_combined = 1.0;
      break;
  }
  return ub_combined < cls.od_threshold;
}

}  // namespace

util::Result<DetectionResult> AllPairsDetector::Run(
    const xml::Document& doc) const {
  SXNM_RETURN_IF_ERROR(config_.Validate());

  DetectionResult result;
  util::Stopwatch kg_watch;
  auto forest_or = CandidateForest::Build(config_, doc);
  if (!forest_or.ok()) return forest_or.status();
  const CandidateForest& forest = forest_or.value();
  std::vector<GkTable> gk(forest.candidates().size());
  for (size_t t = 0; t < forest.candidates().size(); ++t) {
    gk[t] = GenerateKeys(*forest.candidates()[t].config,
                         forest.candidates()[t]);
  }
  result.timer.Add(kPhaseKeyGeneration, kg_watch.ElapsedSeconds());

  std::vector<ClusterSet> cluster_sets(forest.candidates().size());
  for (size_t t : forest.ProcessingOrder()) {
    const CandidateInstances& instances = forest.candidates()[t];
    const CandidateConfig& cand = *instances.config;

    std::vector<const ClusterSet*> child_sets;
    if (cand.use_descendants && !instances.child_types.empty()) {
      for (size_t child : instances.child_types) {
        child_sets.push_back(&cluster_sets[child]);
      }
    }
    SimilarityMeasure measure(cand, instances, std::move(child_sets),
                              &gk[t].od_pool);

    CandidateResult cand_result;
    cand_result.name = cand.name;
    cand_result.num_instances = instances.NumInstances();

    util::Stopwatch sw_watch;
    std::vector<OrdinalPair> accepted;
    const GkTable& table = gk[t];
    size_t n = table.rows.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (options_.use_filter &&
            FilterRejects(cand, table.rows[i], table.rows[j])) {
          continue;
        }
        ++cand_result.comparisons;
        SimilarityVerdict verdict =
            measure.Compare(table.rows[i], table.rows[j]);
        if (verdict.is_duplicate) accepted.emplace_back(i, j);
      }
    }
    cand_result.duplicate_pairs = std::move(accepted);
    for (const auto& [a, b] : cand_result.duplicate_pairs) {
      cand_result.duplicate_eid_pairs.emplace_back(instances.eids[a],
                                                   instances.eids[b]);
    }
    result.timer.Add(kPhaseSlidingWindow, sw_watch.ElapsedSeconds());

    util::Stopwatch tc_watch;
    cluster_sets[t] = ComputeTransitiveClosure(instances.NumInstances(),
                                               cand_result.duplicate_pairs);
    result.timer.Add(kPhaseTransitiveClosure, tc_watch.ElapsedSeconds());

    cand_result.clusters = cluster_sets[t];
    cand_result.gk = std::move(gk[t]);
    result.candidates.push_back(std::move(cand_result));
  }
  return result;
}

util::Result<DetectionResult> TopDownDetector::Run(
    const xml::Document& doc) const {
  SXNM_RETURN_IF_ERROR(config_.Validate());
  if (options_.root_window < 2) {
    return Status::InvalidArgument("root_window must be >= 2");
  }

  DetectionResult result;
  util::Stopwatch kg_watch;
  auto forest_or = CandidateForest::Build(config_, doc);
  if (!forest_or.ok()) return forest_or.status();
  const CandidateForest& forest = forest_or.value();
  std::vector<GkTable> gk(forest.candidates().size());
  for (size_t t = 0; t < forest.candidates().size(); ++t) {
    gk[t] = GenerateKeys(*forest.candidates()[t].config,
                         forest.candidates()[t]);
  }
  result.timer.Add(kPhaseKeyGeneration, kg_watch.ElapsedSeconds());

  // parents_of[t] = (parent candidate index, slot of t within the parent).
  size_t n_types = forest.candidates().size();
  std::vector<std::vector<std::pair<size_t, size_t>>> parents_of(n_types);
  for (size_t s = 0; s < n_types; ++s) {
    const CandidateInstances& info = forest.candidates()[s];
    for (size_t slot = 0; slot < info.child_types.size(); ++slot) {
      parents_of[info.child_types[slot]].emplace_back(s, slot);
    }
  }

  // Top-down: reverse of the bottom-up order (parents first).
  std::vector<size_t> top_down(forest.ProcessingOrder().rbegin(),
                               forest.ProcessingOrder().rend());

  std::vector<ClusterSet> cluster_sets(n_types);
  for (size_t t : top_down) {
    const CandidateInstances& instances = forest.candidates()[t];
    const CandidateConfig& cand = *instances.config;
    // No descendant information in top-down order.
    SimilarityMeasure measure(cand, instances, {}, &gk[t].od_pool);

    CandidateResult cand_result;
    cand_result.name = cand.name;
    cand_result.num_instances = instances.NumInstances();

    util::Stopwatch sw_watch;
    std::set<OrdinalPair> accepted;
    std::set<OrdinalPair> compared;
    const GkTable& table = gk[t];

    auto compare = [&](size_t a, size_t b) {
      OrdinalPair pair = std::minmax(a, b);
      if (!compared.insert(pair).second) return;
      ++cand_result.comparisons;
      SimilarityVerdict verdict =
          measure.Compare(table.rows[pair.first], table.rows[pair.second]);
      if (verdict.is_duplicate) accepted.insert(pair);
    };

    if (parents_of[t].empty()) {
      // Root candidate: multi-pass sorted window.
      for (size_t key_index = 0; key_index < table.num_keys; ++key_index) {
        std::vector<size_t> order = table.SortedOrder(key_index);
        ForEachWindowPair(order, options_.root_window, compare);
      }
    } else {
      // Child candidate: compare only within a parent cluster ("children
      // with same or similar ancestors").
      for (const auto& [parent_type, slot] : parents_of[t]) {
        const CandidateInstances& parent_info =
            forest.candidates()[parent_type];
        const ClusterSet& parent_clusters = cluster_sets[parent_type];
        for (const auto& parent_cluster : parent_clusters.clusters()) {
          // Union of the members' nearest descendant instances of type t.
          std::vector<size_t> scope;
          for (size_t parent_ordinal : parent_cluster) {
            const auto& descendants =
                parent_info.desc_instances[slot][parent_ordinal];
            scope.insert(scope.end(), descendants.begin(),
                         descendants.end());
          }
          for (size_t i = 0; i < scope.size(); ++i) {
            for (size_t j = i + 1; j < scope.size(); ++j) {
              compare(scope[i], scope[j]);
            }
          }
        }
      }
    }

    cand_result.duplicate_pairs.assign(accepted.begin(), accepted.end());
    for (const auto& [a, b] : cand_result.duplicate_pairs) {
      cand_result.duplicate_eid_pairs.emplace_back(instances.eids[a],
                                                   instances.eids[b]);
    }
    result.timer.Add(kPhaseSlidingWindow, sw_watch.ElapsedSeconds());

    util::Stopwatch tc_watch;
    cluster_sets[t] = ComputeTransitiveClosure(instances.NumInstances(),
                                               cand_result.duplicate_pairs);
    result.timer.Add(kPhaseTransitiveClosure, tc_watch.ElapsedSeconds());

    cand_result.clusters = cluster_sets[t];
    cand_result.gk = std::move(gk[t]);
    result.candidates.push_back(std::move(cand_result));
  }
  return result;
}

}  // namespace sxnm::core
