// Structured per-run detection report: one row per (candidate, pass)
// with the pass's window, comparison, fast-path, and timing statistics.
// Built by the detector when observability metrics are on; printable as
// an aligned table (util::TablePrinter) and serializable to JSON for
// tooling.

#ifndef SXNM_SXNM_DETECTION_REPORT_H_
#define SXNM_SXNM_DETECTION_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "util/status.h"

namespace sxnm::core {

/// Statistics of one sorted-window pass over one candidate. Counts refer
/// to this pass alone, before the cross-pass deduplicating merge.
struct PassStats {
  size_t pairs_windowed = 0;       // pairs the window enumeration visited
  size_t prepass_skips = 0;        // skipped: accepted by the exact-OD
                                   // pre-pass before windowing
  size_t comparisons = 0;          // similarity-kernel invocations
  size_t hits = 0;                 // pairs classified duplicate
  size_t ed_bailouts = 0;          // bounded edit-distance pruned verdicts
  size_t desc_invocations = 0;     // descendant Jaccard evaluations
  size_t desc_short_circuits = 0;  // verdict fixed by OD bounds alone,
                                   // descendant Jaccard skipped
  size_t verdict_cache_hits = 0;   // pair verdicts reused from another
                                   // pass via the cross-pass cache
  size_t dag_equal = 0;            // pair verdicts replayed from the
                                   // DAG-interned identical-subtree memo
  size_t batch_rejects = 0;        // pairs the batched SoA pre-filter
                                   // proved below threshold (no kernel)
  size_t interned_equal = 0;       // OD components scored 1.0 by interned
                                   // pool-ID equality, no bytes touched
  size_t myers_words = 0;          // 64-bit words processed by the
                                   // bit-parallel edit-distance kernel
  double wall_seconds = 0.0;       // pass task wall time

  /// Combined-score distribution of this pass's owned kernel invocations:
  /// decile buckets over [0, 1] (bounds 0.1 .. 1.0 plus one overflow
  /// slot), mirroring the engine-wide sw.similarity histogram. Empty when
  /// the pass never ran a kernel.
  std::vector<uint64_t> sim_buckets;

  /// Median of `sim_buckets` (bucket interpolation); 0 when empty.
  double SimMedian() const;

  /// Element-wise sum (wall times add too).
  void Accumulate(const PassStats& other);
};

/// How the governance layer degraded one window pass (or a whole
/// candidate) to honor a comparison budget, deadline, or cancellation.
struct PassDegradation {
  std::string candidate;
  size_t key_index = 0;       // pass within the candidate, 0-based
  bool skipped = false;       // pass elided entirely (its rows unprocessed)
  size_t window_used = 0;     // the window the pass actually ran with;
                              // < the configured window for a shrunk
                              // boundary pass, 0 when skipped
  size_t rows = 0;            // GK rows of the pass (instances)
  size_t pairs_planned = 0;   // WindowPairCount(rows, configured window)
  size_t pairs_elided = 0;    // planned pairs not enumerated
};

/// Degradation summary of a governed run. `degraded` is false (and the
/// per-pass list empty) whenever the run completed all planned work —
/// governance is free when nothing fires. Totals here are mirrored into
/// the metrics registry as robust.* counters.
struct DegradationReport {
  bool degraded = false;

  /// Why work was shed: kDeadlineExceeded (budget from <deadline> or
  /// wall-clock expiry), kResourceExhausted (max_comparisons), or
  /// kCancelled. kOk when not degraded.
  util::StatusCode reason = util::StatusCode::kOk;

  /// The comparison budget the run resolved at start (0 = none; the
  /// deadline-derived and max_comparisons budgets are merged).
  size_t comparison_budget = 0;

  /// Passes that were shrunk or skipped, in deterministic pass order.
  std::vector<PassDegradation> passes;

  size_t PassesSkipped() const;
  size_t PassesShrunk() const;
  /// Rows of skipped passes (a shrunk pass still visits every row).
  size_t RowsSkipped() const;
  size_t PairsElided() const;

  /// One-line summary plus one line per degraded pass.
  std::string ToString() const;

  /// JSON object: {"degraded": ..., "reason": ..., "passes": [...]}.
  void WriteJson(std::ostream& os) const;
};

/// Gold-joined effectiveness attribution of one window pass: how many of
/// the candidate's gold duplicate pairs this pass windowed and accepted,
/// and the precision/recall it contributes on its own. Computed by
/// eval::DiagnoseMisses (the engine itself never sees gold labels) and
/// attached to the DetectionReport for rendering next to the cost rows.
struct PassAttribution {
  std::string candidate;
  size_t key_index = 0;       // pass within the candidate, 0-based
  size_t gold_pairs = 0;      // gold duplicate pairs of the candidate
  size_t gold_windowed = 0;   // gold pairs this pass actually windowed
  size_t accepted = 0;        // windowed pairs classified duplicate
  size_t accepted_gold = 0;   // of those, gold-true
  double precision = 0.0;     // accepted_gold / accepted (1 when none)
  double recall = 0.0;        // accepted_gold / gold_pairs (0 when none)
};

/// Per-candidate × per-pass table for one detection run.
struct DetectionReport {
  struct Row {
    std::string candidate;
    size_t key_index = 0;      // pass number within the candidate, 0-based
    size_t num_instances = 0;  // instances of the candidate
    PassStats stats;
  };

  /// Rows in bottom-up candidate order, passes in key-definition order.
  std::vector<Row> rows;

  /// Degradation of the run that produced this report (copied from
  /// DetectionResult::degradation so serialized reports are
  /// self-contained). Not degraded for ungoverned runs.
  DegradationReport degradation;

  /// Per-pass precision/recall attribution rows. Empty unless a gold
  /// standard was joined in (eval::AttachAttribution).
  std::vector<PassAttribution> attribution;

  /// Span-attributed CPU profile of the run (profile.enabled == false
  /// unless the run was profiled via ObservabilityConfig::profile_path).
  /// Serialized as the report's "profile" block.
  obs::CpuProfile profile;

  bool empty() const { return rows.empty(); }

  /// Sum of kernel invocations over all rows. With metrics on this equals
  /// the registry's "sw.comparisons" counter.
  size_t TotalComparisons() const;
  size_t TotalHits() const;
  PassStats Totals() const;

  /// Aligned ASCII table (one row per pass plus a totals row).
  std::string ToTable() const;

  /// Aligned ASCII table of the attribution rows; empty string when no
  /// attribution is attached.
  std::string AttributionTable() const;

  /// JSON: {"rows": [...], "totals": {...}}.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

  /// WriteJson to a file; fails when the path is unwritable.
  util::Status WriteJsonFile(const std::string& path) const;
};

}  // namespace sxnm::core

#endif  // SXNM_SXNM_DETECTION_REPORT_H_
