#include "sxnm/candidate_tree.h"

#include <algorithm>
#include <memory>
#include <map>
#include <queue>

namespace sxnm::core {

using util::Result;
using util::Status;

util::Result<CandidateForest> CandidateForest::Build(
    const Config& caller_config, const xml::Document& doc) {
  CandidateForest forest;
  forest.config_ = std::make_unique<Config>(caller_config);
  const Config& config = *forest.config_;
  forest.candidates_.resize(config.candidates().size());

  // Instance discovery, plus the element -> (type, ordinal) index.
  struct Membership {
    size_t type;
    size_t ordinal;
  };
  std::map<const xml::Element*, Membership> membership;

  for (size_t t = 0; t < config.candidates().size(); ++t) {
    const CandidateConfig& cand = config.candidates()[t];
    CandidateInstances& info = forest.candidates_[t];
    info.config = &cand;

    auto matches = cand.absolute_path.SelectFromRoot(doc);
    if (!matches.ok()) return matches.status();
    info.elements = std::move(matches).value();
    info.eids.reserve(info.elements.size());
    for (size_t i = 0; i < info.elements.size(); ++i) {
      const xml::Element* e = info.elements[i];
      info.eids.push_back(e->id());
      auto [it, inserted] = membership.emplace(e, Membership{t, i});
      if (!inserted) {
        return Status::InvalidArgument(
            "element <" + e->name() + "> (eid " + std::to_string(e->id()) +
            ") matches two candidates: '" +
            config.candidates()[it->second.type].name + "' and '" +
            cand.name + "'");
      }
    }
  }

  // Parent discovery: for every instance walk up to the nearest candidate
  // ancestor. Build type-level edges and per-instance descendant lists.
  size_t n = forest.candidates_.size();
  // slot_of[s][t] = slot index of child type t within s (or missing).
  std::vector<std::map<size_t, size_t>> slot_of(n);
  std::vector<std::vector<size_t>> type_children(n);  // s -> child types
  std::vector<size_t> indegree(n, 0);  // #parent types of each type
  std::vector<std::vector<bool>> edge_seen(n, std::vector<bool>(n, false));

  for (size_t t = 0; t < n; ++t) {
    CandidateInstances& child_info = forest.candidates_[t];
    for (size_t j = 0; j < child_info.elements.size(); ++j) {
      const xml::Element* ancestor = child_info.elements[j]->parent();
      while (ancestor != nullptr) {
        auto it = membership.find(ancestor);
        if (it != membership.end()) break;
        ancestor = ancestor->parent();
      }
      if (ancestor == nullptr) continue;  // root-level candidate instance

      Membership parent = membership.at(ancestor);
      size_t s = parent.type;
      CandidateInstances& parent_info = forest.candidates_[s];

      // Register the type edge s -> t once.
      auto [slot_it, new_slot] =
          slot_of[s].emplace(t, parent_info.child_types.size());
      if (new_slot) {
        parent_info.child_types.push_back(t);
        parent_info.desc_instances.emplace_back(
            parent_info.elements.size());
        type_children[s].push_back(t);
        if (!edge_seen[s][t]) {
          edge_seen[s][t] = true;
          ++indegree[t];
        }
      }
      parent_info.desc_instances[slot_it->second][parent.ordinal].push_back(
          j);
    }
  }

  // Kahn's algorithm over parent->child edges gives a topological order
  // (parents before children); the processing order is its reverse.
  std::vector<size_t> topo;
  std::queue<size_t> ready;
  std::vector<size_t> remaining = indegree;
  for (size_t t = 0; t < n; ++t) {
    if (remaining[t] == 0) ready.push(t);
  }
  while (!ready.empty()) {
    size_t s = ready.front();
    ready.pop();
    topo.push_back(s);
    for (size_t t : type_children[s]) {
      if (--remaining[t] == 0) ready.push(t);
    }
  }
  if (topo.size() != n) {
    return Status::InvalidArgument(
        "candidate nesting is cyclic at the type level; bottom-up "
        "processing cannot order the candidates");
  }

  // Depth (δ in the paper): distance from the root level, longest path.
  for (size_t s : topo) {
    for (size_t t : type_children[s]) {
      forest.candidates_[t].depth =
          std::max(forest.candidates_[t].depth,
                   forest.candidates_[s].depth + 1);
    }
  }

  forest.processing_order_.assign(topo.rbegin(), topo.rend());
  return forest;
}

int CandidateForest::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].config->name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t CandidateForest::TotalInstances() const {
  size_t total = 0;
  for (const CandidateInstances& c : candidates_) total += c.NumInstances();
  return total;
}

}  // namespace sxnm::core
