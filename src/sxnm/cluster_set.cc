#include "sxnm/cluster_set.h"

#include <algorithm>
#include <cassert>

namespace sxnm::core {

ClusterSet ClusterSet::FromClusters(
    std::vector<std::vector<size_t>> clusters, size_t num_instances) {
  ClusterSet result;
  result.cid_.assign(num_instances, -1);
  for (auto& cluster : clusters) {
    if (cluster.empty()) continue;
    std::sort(cluster.begin(), cluster.end());
    int cid = static_cast<int>(result.clusters_.size());
    for (size_t ordinal : cluster) {
      assert(ordinal < num_instances);
      assert(result.cid_[ordinal] == -1 && "ordinal in two clusters");
      result.cid_[ordinal] = cid;
    }
    result.clusters_.push_back(std::move(cluster));
  }
  // Any uncovered ordinal becomes a singleton cluster.
  for (size_t i = 0; i < num_instances; ++i) {
    if (result.cid_[i] == -1) {
      result.cid_[i] = static_cast<int>(result.clusters_.size());
      result.clusters_.push_back({i});
    }
  }
  return result;
}

ClusterSet ClusterSet::Singletons(size_t num_instances) {
  return FromClusters({}, num_instances);
}

std::vector<std::vector<size_t>> ClusterSet::NonTrivialClusters() const {
  std::vector<std::vector<size_t>> out;
  for (const auto& cluster : clusters_) {
    if (cluster.size() >= 2) out.push_back(cluster);
  }
  return out;
}

size_t ClusterSet::NumDuplicatePairs() const {
  size_t pairs = 0;
  for (const auto& cluster : clusters_) {
    pairs += cluster.size() * (cluster.size() - 1) / 2;
  }
  return pairs;
}

std::vector<OrdinalPair> ClusterSet::DuplicatePairs() const {
  std::vector<OrdinalPair> out;
  out.reserve(NumDuplicatePairs());
  for (const auto& cluster : clusters_) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        out.emplace_back(cluster[i], cluster[j]);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sxnm::core
