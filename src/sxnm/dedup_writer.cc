#include "sxnm/dedup_writer.h"

#include <set>
#include <string>
#include <utility>

namespace sxnm::core {

namespace {

// Removes, below `element`, every child element whose ID is in `remove`;
// recurses into kept children only (removed subtrees disappear wholesale).
void RemoveMarked(xml::Element* element,
                  const std::set<xml::ElementId>& remove, size_t* removed) {
  for (size_t i = element->NumChildren(); i > 0; --i) {
    xml::Node* child = element->children()[i - 1].get();
    xml::Element* child_elem = child->AsElement();
    if (child_elem == nullptr) continue;
    if (remove.count(child_elem->id()) > 0) {
      element->RemoveChild(i - 1);
      ++*removed;
    } else {
      RemoveMarked(child_elem, remove, removed);
    }
  }
}

// Merges attributes and children of `donor` into `survivor` (see
// RepresentativeStrategy::kFuse).
void FuseInto(xml::Element* survivor, const xml::Element& donor,
              DedupStats* stats) {
  for (const xml::Attribute& attr : donor.attributes()) {
    if (!survivor->HasAttribute(attr.name)) {
      survivor->SetAttribute(attr.name, attr.value);
      ++stats->attributes_fused;
    }
  }

  // Existing child content of the survivor, as (name, deep text) pairs.
  std::set<std::pair<std::string, std::string>> present;
  for (const xml::Element* child : survivor->ChildElements()) {
    present.insert({child->name(), child->DeepText()});
  }
  for (const xml::Element* child : donor.ChildElements()) {
    std::pair<std::string, std::string> signature = {child->name(),
                                                     child->DeepText()};
    if (present.insert(signature).second) {
      survivor->AddChild(child->Clone());
      ++stats->children_fused;
    }
  }
}

}  // namespace

util::Result<xml::Document> Deduplicate(const xml::Document& doc,
                                        const DetectionResult& result,
                                        RepresentativeStrategy strategy,
                                        DedupStats* stats) {
  if (doc.root() == nullptr) {
    return util::Status::FailedPrecondition("document has no root");
  }

  DedupStats local_stats;
  xml::Document deduped = doc.Clone();  // clone preserves pre-order IDs
  deduped.AssignElementIds();

  std::set<xml::ElementId> remove;
  for (const CandidateResult& cand : result.candidates) {
    for (const auto& cluster : cand.clusters.NonTrivialClusters()) {
      ++local_stats.clusters_collapsed;

      // Resolve ordinals to elements in the clone via the GK relation.
      auto element_of =
          [&](size_t ordinal) -> util::Result<xml::Element*> {
        xml::ElementId eid = cand.gk.rows[ordinal].eid;
        xml::Element* e = deduped.ElementById(eid);
        if (e == nullptr) {
          return util::Status::FailedPrecondition(
              "detection result does not match document: missing eid " +
              std::to_string(eid));
        }
        return e;
      };

      size_t representative = cluster.front();
      if (strategy == RepresentativeStrategy::kRichest ||
          strategy == RepresentativeStrategy::kFuse) {
        size_t best_len = 0;
        for (size_t ordinal : cluster) {
          auto e = element_of(ordinal);
          if (!e.ok()) return e.status();
          size_t len = (*e)->DeepText().size();
          if (len > best_len) {
            best_len = len;
            representative = ordinal;
          }
        }
      }

      if (strategy == RepresentativeStrategy::kFuse) {
        auto survivor = element_of(representative);
        if (!survivor.ok()) return survivor.status();
        for (size_t ordinal : cluster) {
          if (ordinal == representative) continue;
          auto donor = element_of(ordinal);
          if (!donor.ok()) return donor.status();
          FuseInto(survivor.value(), *donor.value(), &local_stats);
        }
      }

      for (size_t ordinal : cluster) {
        if (ordinal == representative) continue;
        remove.insert(cand.gk.rows[ordinal].eid);
      }
    }
  }

  if (deduped.root() != nullptr && remove.count(deduped.root()->id()) > 0) {
    return util::Status::FailedPrecondition(
        "cannot remove the document root as a duplicate");
  }
  RemoveMarked(deduped.root(), remove, &local_stats.elements_removed);
  deduped.AssignElementIds();

  if (stats != nullptr) *stats = local_stats;
  return deduped;
}

}  // namespace sxnm::core
