// Sliding-window pair enumeration — the heart of SNM/SXNM efficiency.
//
// A window of size w advances one position at a time over a sorted order;
// the element entering the window is compared with the w-1 elements
// already inside. Thus every pair of elements within sort distance < w is
// visited exactly once per pass, and a full pass costs (n - w + 1)·(w - 1)
// + C(w-1, 2) comparisons — linear in n for fixed w.
//
// The enumerations are templates on the visitor: a window pass visits
// every windowed pair through this call, so routing it through
// std::function would put one indirect dispatch on the hottest edge of
// the whole detector. With the visitor a template parameter the call
// inlines into the enumeration loop.

#ifndef SXNM_SXNM_SLIDING_WINDOW_H_
#define SXNM_SXNM_SLIDING_WINDOW_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/cancellation.h"

namespace sxnm::core {

/// Range variant of ForEachWindowPair, enumerating only the pairs whose
/// ENTERING position lies in [begin, end). Every windowed pair has
/// exactly one entering position, so a partition of [0, n) into
/// contiguous ranges partitions the pair stream: running the ranges in
/// order and concatenating their visits reproduces the full enumeration
/// exactly — the owner rule behind key-range sharding (shard_plan.h).
template <typename Visit>
size_t ForEachWindowPairRange(const std::vector<size_t>& order, size_t window,
                              size_t begin, size_t end, Visit&& visit) {
  assert(window >= 2);
  assert(end <= order.size());
  size_t visited = 0;
  for (size_t i = std::max<size_t>(begin, 1); i < end; ++i) {
    size_t lo = (i >= window - 1) ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      visit(order[j], order[i]);
      ++visited;
    }
  }
  return visited;
}

/// Calls `visit(a, b)` for every pair of values of `order` at positions
/// within distance < window of each other, in increasing position order;
/// `a` precedes `b` in `order`. window >= 2; a window larger than the
/// sequence degenerates to all pairs. Returns the number of pairs
/// visited (== WindowPairCount(order.size(), window)).
template <typename Visit>
size_t ForEachWindowPair(const std::vector<size_t>& order, size_t window,
                         Visit&& visit) {
  return ForEachWindowPairRange(order, window, 0, order.size(),
                                std::forward<Visit>(visit));
}

/// Number of pairs ForEachWindowPair visits for `n` elements.
size_t WindowPairCount(size_t n, size_t window);

/// Number of pairs ForEachWindowPairRange visits for entering positions
/// [begin, end) of `n` elements.
size_t WindowPairCountRange(size_t n, size_t window, size_t begin,
                            size_t end);

/// Largest window w' in [2, window] with WindowPairCount(n, w') <= budget,
/// or 0 when even w' = 2 exceeds the budget. The governance layer shrinks
/// a boundary pass to this window — the paper's own efficiency knob —
/// instead of truncating the pass mid-way.
size_t LargestWindowWithin(size_t n, size_t window, size_t budget);

/// How often the interruptible enumerations poll cancellation/deadline:
/// every this many visited pairs (and once up front).
inline constexpr size_t kInterruptCheckInterval = 4096;

/// Outcome of an interruptible window enumeration.
struct WindowRunResult {
  size_t pairs_visited = 0;
  bool stopped_early = false;  // cancellation or deadline cut the pass short
};

namespace internal {

inline bool SharePrefix(const std::string& a, const std::string& b,
                        size_t len) {
  if (a.size() < len || b.size() < len) {
    // Keys shorter than the prefix must match entirely (and be equal in
    // length) to count as "same block".
    return a == b;
  }
  return a.compare(0, len, b, 0, len) == 0;
}

// Shared polling state of the interruptible enumerations.
struct InterruptPoll {
  const util::CancellationToken& token;
  const util::Deadline& deadline;
  size_t until_check = 0;

  bool ShouldStop() {
    if (until_check > 0) {
      --until_check;
      return false;
    }
    until_check = kInterruptCheckInterval - 1;
    return token.cancelled() || deadline.expired();
  }
};

}  // namespace internal

/// ForEachWindowPair that polls `token`/`deadline` every
/// kInterruptCheckInterval pairs and stops early when either fires,
/// with entering positions restricted to [begin, end). The visited
/// pairs are a prefix of the RANGE's enumeration (per-shard prefix; a
/// cut-short sharded pass is a union of per-shard prefixes).
template <typename Visit>
WindowRunResult ForEachWindowPairRangeInterruptible(
    const std::vector<size_t>& order, size_t window, size_t begin, size_t end,
    const util::CancellationToken& token, const util::Deadline& deadline,
    Visit&& visit) {
  assert(window >= 2);
  assert(end <= order.size());
  WindowRunResult result;
  internal::InterruptPoll poll{token, deadline};
  for (size_t i = std::max<size_t>(begin, 1); i < end; ++i) {
    size_t lo = (i >= window - 1) ? i - (window - 1) : 0;
    for (size_t j = lo; j < i; ++j) {
      if (poll.ShouldStop()) {
        result.stopped_early = true;
        return result;
      }
      visit(order[j], order[i]);
      ++result.pairs_visited;
    }
  }
  return result;
}

/// Full-relation form: polls the same way with the visited pairs a
/// prefix of the complete enumeration order, so a cut-short pass is
/// still a valid (smaller) neighborhood.
template <typename Visit>
WindowRunResult ForEachWindowPairInterruptible(
    const std::vector<size_t>& order, size_t window,
    const util::CancellationToken& token, const util::Deadline& deadline,
    Visit&& visit) {
  return ForEachWindowPairRangeInterruptible(order, window, 0, order.size(),
                                             token, deadline,
                                             std::forward<Visit>(visit));
}

/// Adaptive windowing (the paper's outlook cites Lehti & Fankhauser's
/// precise blocking [20]): every pair within the base window is visited
/// as usual, and the neighborhood *extends* beyond it — up to
/// `max_window` — for as long as the sort keys still share a prefix of
/// `prefix_len` characters with the entering element's key. Duplicates
/// stranded in long runs of near-equal keys are reached without paying a
/// large window everywhere.
///
/// `key_of(v)` returns the sort key of value `v` of `order` for the
/// current pass. Requires 2 <= base_window <= max_window and
/// prefix_len >= 1. Returns the number of pairs visited.
/// Range variant of ForEachAdaptiveWindowPair: entering positions
/// restricted to [begin, end). The backward scan still reaches through
/// the range's left edge (context rows of the owning shard), so the
/// concatenated shard streams reproduce the full adaptive enumeration.
template <typename KeyOf, typename Visit>
size_t ForEachAdaptiveWindowPairRange(const std::vector<size_t>& order,
                                      KeyOf&& key_of, size_t base_window,
                                      size_t max_window, size_t prefix_len,
                                      size_t begin, size_t end,
                                      Visit&& visit) {
  assert(base_window >= 2);
  assert(max_window >= base_window);
  assert(prefix_len >= 1);
  assert(end <= order.size());

  size_t visited = 0;
  for (size_t i = std::max<size_t>(begin, 1); i < end; ++i) {
    const std::string& entering = key_of(order[i]);
    size_t max_span = std::min(i, max_window - 1);
    for (size_t span = 1; span <= max_span; ++span) {
      size_t j = i - span;
      if (span >= base_window &&
          !internal::SharePrefix(key_of(order[j]), entering, prefix_len)) {
        break;  // left the equal-prefix block; stop extending
      }
      visit(order[j], order[i]);
      ++visited;
    }
  }
  return visited;
}

template <typename KeyOf, typename Visit>
size_t ForEachAdaptiveWindowPair(const std::vector<size_t>& order,
                                 KeyOf&& key_of, size_t base_window,
                                 size_t max_window, size_t prefix_len,
                                 Visit&& visit) {
  return ForEachAdaptiveWindowPairRange(
      order, std::forward<KeyOf>(key_of), base_window, max_window, prefix_len,
      0, order.size(), std::forward<Visit>(visit));
}

/// Interruptible range variant of ForEachAdaptiveWindowPair; same
/// polling and per-range prefix guarantee.
template <typename KeyOf, typename Visit>
WindowRunResult ForEachAdaptiveWindowPairRangeInterruptible(
    const std::vector<size_t>& order, KeyOf&& key_of, size_t base_window,
    size_t max_window, size_t prefix_len, size_t begin, size_t end,
    const util::CancellationToken& token, const util::Deadline& deadline,
    Visit&& visit) {
  assert(base_window >= 2);
  assert(max_window >= base_window);
  assert(prefix_len >= 1);
  assert(end <= order.size());
  WindowRunResult result;
  internal::InterruptPoll poll{token, deadline};
  for (size_t i = std::max<size_t>(begin, 1); i < end; ++i) {
    const std::string& entering = key_of(order[i]);
    size_t max_span = std::min(i, max_window - 1);
    for (size_t span = 1; span <= max_span; ++span) {
      size_t j = i - span;
      if (span >= base_window &&
          !internal::SharePrefix(key_of(order[j]), entering, prefix_len)) {
        break;
      }
      if (poll.ShouldStop()) {
        result.stopped_early = true;
        return result;
      }
      visit(order[j], order[i]);
      ++result.pairs_visited;
    }
  }
  return result;
}

/// Interruptible variant of ForEachAdaptiveWindowPair; same polling and
/// prefix guarantee.
template <typename KeyOf, typename Visit>
WindowRunResult ForEachAdaptiveWindowPairInterruptible(
    const std::vector<size_t>& order, KeyOf&& key_of, size_t base_window,
    size_t max_window, size_t prefix_len,
    const util::CancellationToken& token, const util::Deadline& deadline,
    Visit&& visit) {
  return ForEachAdaptiveWindowPairRangeInterruptible(
      order, std::forward<KeyOf>(key_of), base_window, max_window, prefix_len,
      0, order.size(), token, deadline, std::forward<Visit>(visit));
}

}  // namespace sxnm::core

#endif  // SXNM_SXNM_SLIDING_WINDOW_H_
