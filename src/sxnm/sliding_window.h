// Sliding-window pair enumeration — the heart of SNM/SXNM efficiency.
//
// A window of size w advances one position at a time over a sorted order;
// the element entering the window is compared with the w-1 elements
// already inside. Thus every pair of elements within sort distance < w is
// visited exactly once per pass, and a full pass costs (n - w + 1)·(w - 1)
// + C(w-1, 2) comparisons — linear in n for fixed w.

#ifndef SXNM_SXNM_SLIDING_WINDOW_H_
#define SXNM_SXNM_SLIDING_WINDOW_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/cancellation.h"

namespace sxnm::core {

/// Calls `visit(a, b)` for every pair of values of `order` at positions
/// within distance < window of each other, in increasing position order;
/// `a` precedes `b` in `order`. window >= 2; a window larger than the
/// sequence degenerates to all pairs. Returns the number of pairs
/// visited (== WindowPairCount(order.size(), window)).
size_t ForEachWindowPair(const std::vector<size_t>& order, size_t window,
                         const std::function<void(size_t, size_t)>& visit);

/// Number of pairs ForEachWindowPair visits for `n` elements.
size_t WindowPairCount(size_t n, size_t window);

/// Largest window w' in [2, window] with WindowPairCount(n, w') <= budget,
/// or 0 when even w' = 2 exceeds the budget. The governance layer shrinks
/// a boundary pass to this window — the paper's own efficiency knob —
/// instead of truncating the pass mid-way.
size_t LargestWindowWithin(size_t n, size_t window, size_t budget);

/// How often the interruptible enumerations poll cancellation/deadline:
/// every this many visited pairs (and once up front).
inline constexpr size_t kInterruptCheckInterval = 4096;

/// Outcome of an interruptible window enumeration.
struct WindowRunResult {
  size_t pairs_visited = 0;
  bool stopped_early = false;  // cancellation or deadline cut the pass short
};

/// ForEachWindowPair that polls `token`/`deadline` every
/// kInterruptCheckInterval pairs and stops early when either fires. The
/// visited pairs are always a prefix of the full enumeration order, so a
/// cut-short pass is still a valid (smaller) neighborhood.
WindowRunResult ForEachWindowPairInterruptible(
    const std::vector<size_t>& order, size_t window,
    const util::CancellationToken& token, const util::Deadline& deadline,
    const std::function<void(size_t, size_t)>& visit);

/// Interruptible variant of ForEachAdaptiveWindowPair; same polling and
/// prefix guarantee.
WindowRunResult ForEachAdaptiveWindowPairInterruptible(
    const std::vector<size_t>& order,
    const std::function<const std::string&(size_t)>& key_of,
    size_t base_window, size_t max_window, size_t prefix_len,
    const util::CancellationToken& token, const util::Deadline& deadline,
    const std::function<void(size_t, size_t)>& visit);

/// Adaptive windowing (the paper's outlook cites Lehti & Fankhauser's
/// precise blocking [20]): every pair within the base window is visited
/// as usual, and the neighborhood *extends* beyond it — up to
/// `max_window` — for as long as the sort keys still share a prefix of
/// `prefix_len` characters with the entering element's key. Duplicates
/// stranded in long runs of near-equal keys are reached without paying a
/// large window everywhere.
///
/// `key_of(v)` returns the sort key of value `v` of `order` for the
/// current pass. Requires 2 <= base_window <= max_window and
/// prefix_len >= 1. Returns the number of pairs visited.
size_t ForEachAdaptiveWindowPair(
    const std::vector<size_t>& order,
    const std::function<const std::string&(size_t)>& key_of,
    size_t base_window, size_t max_window, size_t prefix_len,
    const std::function<void(size_t, size_t)>& visit);

}  // namespace sxnm::core

#endif  // SXNM_SXNM_SLIDING_WINDOW_H_
