#include "sxnm/transitive_closure.h"

#include "util/union_find.h"

namespace sxnm::core {

ClusterSet ComputeTransitiveClosure(size_t num_instances,
                                    const std::vector<OrdinalPair>& pairs) {
  util::UnionFind uf(num_instances);
  for (const auto& [a, b] : pairs) uf.Union(a, b);
  return ClusterSet::FromClusters(uf.Clusters(/*min_size=*/2), num_instances);
}

}  // namespace sxnm::core
