#include "sxnm/transitive_closure.h"

#include "obs/metrics.h"
#include "util/union_find.h"

namespace sxnm::core {

ClusterSet ComputeTransitiveClosure(size_t num_instances,
                                    const std::vector<OrdinalPair>& pairs,
                                    obs::MetricsRegistry* metrics) {
  util::UnionFind uf(num_instances);
  size_t union_ops = 0;
  for (const auto& [a, b] : pairs) {
    if (uf.Union(a, b)) ++union_ops;
  }
  std::vector<std::vector<size_t>> clusters = uf.Clusters(/*min_size=*/2);

  if (metrics != nullptr && metrics->enabled()) {
    metrics->counter("tc.pairs").Add(pairs.size());
    metrics->counter("tc.union_ops").Add(union_ops);
    metrics->counter("tc.clusters").Add(clusters.size());
    obs::Histogram& sizes =
        metrics->histogram("tc.cluster_size", obs::DefaultSizeBounds());
    for (const auto& cluster : clusters) {
      sizes.Observe(static_cast<double>(cluster.size()));
    }
  }
  return ClusterSet::FromClusters(std::move(clusters), num_instances);
}

}  // namespace sxnm::core
