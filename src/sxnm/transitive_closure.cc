#include "sxnm/transitive_closure.h"

#include "obs/metrics.h"
#include "util/union_find.h"

namespace sxnm::core {

ClusterSet ComputeTransitiveClosure(size_t num_instances,
                                    const std::vector<OrdinalPair>& pairs,
                                    obs::MetricsRegistry* metrics,
                                    std::vector<MergeStep>* lineage) {
  util::UnionFind uf(num_instances);
  size_t union_ops = 0;
  if (lineage != nullptr) lineage->reserve(lineage->size() + pairs.size());
  for (const auto& [a, b] : pairs) {
    if (lineage == nullptr) {
      if (uf.Union(a, b)) ++union_ops;
      continue;
    }
    MergeStep step;
    step.pair = {a, b};
    step.root_a = uf.Find(a);
    step.root_b = uf.Find(b);
    step.merged = uf.Union(a, b);
    step.root = uf.Find(a);
    if (step.merged) ++union_ops;
    lineage->push_back(step);
  }
  std::vector<std::vector<size_t>> clusters = uf.Clusters(/*min_size=*/2);

  if (metrics != nullptr && metrics->enabled()) {
    metrics->counter("tc.pairs").Add(pairs.size());
    metrics->counter("tc.union_ops").Add(union_ops);
    metrics->counter("tc.clusters").Add(clusters.size());
    obs::Histogram& sizes =
        metrics->histogram("tc.cluster_size", obs::DefaultSizeBounds());
    for (const auto& cluster : clusters) {
      sizes.Observe(static_cast<double>(cluster.size()));
    }
  }
  return ClusterSet::FromClusters(std::move(clusters), num_instances);
}

}  // namespace sxnm::core
