#include "sxnm/transitive_closure.h"

#include "obs/metrics.h"
#include "util/union_find.h"

namespace sxnm::core {

ClusterSet ComputeTransitiveClosure(size_t num_instances,
                                    const std::vector<OrdinalPair>& pairs,
                                    obs::MetricsRegistry* metrics,
                                    std::vector<MergeStep>* lineage) {
  util::UnionFind uf(num_instances);
  size_t union_ops = 0;
  // Live progress: batched adds to tc.edges_done while folding edges;
  // the remainder flushes with the other tc.* counters below, so the
  // total always equals tc.pairs.
  obs::Counter* edges_done = (metrics != nullptr && metrics->enabled())
                                 ? &metrics->counter("tc.edges_done")
                                 : nullptr;
  uint32_t edges_done_pending = 0;
  constexpr uint32_t kEdgesDoneBatch = 1024;
  if (lineage != nullptr) lineage->reserve(lineage->size() + pairs.size());
  for (const auto& [a, b] : pairs) {
    if (edges_done != nullptr && ++edges_done_pending >= kEdgesDoneBatch) {
      edges_done->Add(edges_done_pending);
      edges_done_pending = 0;
    }
    if (lineage == nullptr) {
      if (uf.Union(a, b)) ++union_ops;
      continue;
    }
    MergeStep step;
    step.pair = {a, b};
    step.root_a = uf.Find(a);
    step.root_b = uf.Find(b);
    step.merged = uf.Union(a, b);
    step.root = uf.Find(a);
    if (step.merged) ++union_ops;
    lineage->push_back(step);
  }
  std::vector<std::vector<size_t>> clusters = uf.Clusters(/*min_size=*/2);

  if (metrics != nullptr && metrics->enabled()) {
    edges_done->Add(edges_done_pending);
    metrics->counter("tc.pairs").Add(pairs.size());
    metrics->counter("tc.union_ops").Add(union_ops);
    metrics->counter("tc.clusters").Add(clusters.size());
    obs::Histogram& sizes =
        metrics->histogram("tc.cluster_size", obs::DefaultSizeBounds());
    for (const auto& cluster : clusters) {
      sizes.Observe(static_cast<double>(cluster.size()));
    }
  }
  return ClusterSet::FromClusters(std::move(clusters), num_instances);
}

}  // namespace sxnm::core
