#include "sxnm/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "persist/io.h"
#include "sxnm/config_xml.h"
#include "sxnm/subtree_pool.h"

namespace sxnm::core {

using persist::Decoder;
using persist::Encoder;
using persist::Frame;
using persist::FrameType;
using persist::SnapshotReader;
using persist::SnapshotWriter;
using util::Result;
using util::Status;

namespace {

// FNV-1a 64: simple, stable, order-sensitive — all the fingerprints
// need. Collisions only weaken the refusal check, never correctness of
// a legitimate resume.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a-style mix, widened to 8-byte lanes: the document fingerprint
// hashes every byte of text in the corpus, and the byte-serial loop was
// the single largest cost of enabling checkpointing on a large run. The
// lane variant is NOT byte-FNV (each lane is xor-folded in one multiply)
// but keeps the same avalanche quality for the only job this hash has —
// refusing a resume against different input. Changing this mixing
// changes fingerprints, which is a snapshot format change; it is covered
// by kSnapshotVersion.
uint64_t Fnv1a(std::string_view data, uint64_t h) {
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * kFnvPrime;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; ++i) {
    tail |= uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  // Fold the length in so "ab" + "c" never collides with "a" + "bc"
  // across tag boundaries.
  h = (h ^ tail) * kFnvPrime;
  h = (h ^ (uint64_t(data.size()) + 1)) * kFnvPrime;
  return h;
}

uint64_t Fnv1aByte(char c, uint64_t h) {
  h ^= static_cast<unsigned char>(c);
  return h * kFnvPrime;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("corrupt snapshot: " + what);
}

// SXNM_RETURN_IF_ERROR for Result-returning getters: assigns on success.
#define ASSIGN_OR_RETURN(lhs, expr)            \
  do {                                         \
    auto assign_or_return_tmp__ = (expr);      \
    if (!assign_or_return_tmp__.ok()) {        \
      return assign_or_return_tmp__.status();  \
    }                                          \
    lhs = std::move(*assign_or_return_tmp__);  \
  } while (false)

void EncodeStringList(const std::vector<std::string>& strings, Encoder& enc) {
  enc.PutU64(strings.size());
  for (const std::string& s : strings) enc.PutString(s);
}

Result<std::vector<std::string>> DecodeStringList(Decoder& dec) {
  uint64_t count;
  // Every entry costs at least its 8-byte length prefix.
  ASSIGN_OR_RETURN(count, dec.GetCount(dec.remaining() / 8));
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view s;
    ASSIGN_OR_RETURN(s, dec.GetString());
    out.emplace_back(s);
  }
  return out;
}

void EncodePassStats(const PassStats& stats, Encoder& enc) {
  enc.PutU64(stats.pairs_windowed);
  enc.PutU64(stats.prepass_skips);
  enc.PutU64(stats.comparisons);
  enc.PutU64(stats.hits);
  enc.PutU64(stats.ed_bailouts);
  enc.PutU64(stats.desc_invocations);
  enc.PutU64(stats.desc_short_circuits);
  enc.PutU64(stats.verdict_cache_hits);
  enc.PutU64(stats.dag_equal);
  enc.PutU64(stats.batch_rejects);
  enc.PutU64(stats.interned_equal);
  enc.PutU64(stats.myers_words);
  enc.PutDouble(stats.wall_seconds);
  enc.PutU64(stats.sim_buckets.size());
  for (uint64_t b : stats.sim_buckets) enc.PutU64(b);
}

Result<PassStats> DecodePassStats(Decoder& dec) {
  PassStats stats;
  ASSIGN_OR_RETURN(stats.pairs_windowed, dec.GetU64());
  ASSIGN_OR_RETURN(stats.prepass_skips, dec.GetU64());
  ASSIGN_OR_RETURN(stats.comparisons, dec.GetU64());
  ASSIGN_OR_RETURN(stats.hits, dec.GetU64());
  ASSIGN_OR_RETURN(stats.ed_bailouts, dec.GetU64());
  ASSIGN_OR_RETURN(stats.desc_invocations, dec.GetU64());
  ASSIGN_OR_RETURN(stats.desc_short_circuits, dec.GetU64());
  ASSIGN_OR_RETURN(stats.verdict_cache_hits, dec.GetU64());
  ASSIGN_OR_RETURN(stats.dag_equal, dec.GetU64());
  ASSIGN_OR_RETURN(stats.batch_rejects, dec.GetU64());
  ASSIGN_OR_RETURN(stats.interned_equal, dec.GetU64());
  ASSIGN_OR_RETURN(stats.myers_words, dec.GetU64());
  ASSIGN_OR_RETURN(stats.wall_seconds, dec.GetDouble());
  uint64_t buckets;
  ASSIGN_OR_RETURN(buckets, dec.GetCount(dec.remaining() / 8));
  stats.sim_buckets.reserve(static_cast<size_t>(buckets));
  for (uint64_t i = 0; i < buckets; ++i) {
    uint64_t b;
    ASSIGN_OR_RETURN(b, dec.GetU64());
    stats.sim_buckets.push_back(b);
  }
  return stats;
}

}  // namespace

uint64_t ConfigFingerprint(const Config& config) {
  // Fingerprint the semantic configuration only: thread count,
  // observability paths, the checkpoint settings themselves, and the
  // out-of-core knobs (shards / memory-budget / spill-dir) never change
  // detection output, so they must not block a resume.
  Config stripped;
  for (const CandidateConfig& c : config.candidates()) {
    (void)stripped.AddCandidate(c);
  }
  stripped.mutable_limits() = config.limits();
  return Fnv1a(ConfigToXmlString(stripped), kFnvOffset);
}

uint64_t DocumentFingerprint(const xml::Document& doc) {
  uint64_t h = kFnvOffset;
  if (doc.root() == nullptr) return h;
  // Iterative pre-order walk (documents may be as deep as the parser's
  // max_depth allows). Every structural feature feeds the hash with a
  // kind tag, so reordered or re-nested content cannot collide by
  // concatenation.
  std::vector<const xml::Node*> stack;
  stack.push_back(doc.root());
  while (!stack.empty()) {
    const xml::Node* node = stack.back();
    stack.pop_back();
    if (node == nullptr) {  // close marker: this element's children are done
      h = Fnv1aByte('<', h);
      continue;
    }
    if (const xml::Element* elem = node->AsElement()) {
      h = Fnv1aByte('E', h);
      h = Fnv1a(elem->name(), h);
      for (const xml::Attribute& attr : elem->attributes()) {
        h = Fnv1aByte('A', h);
        h = Fnv1a(attr.name, h);
        h = Fnv1aByte('=', h);
        h = Fnv1a(attr.value, h);
      }
      h = Fnv1aByte('>', h);
      stack.push_back(nullptr);  // pops after all children: re-nesting moves it
      const auto& children = elem->children();
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(it->get());
      }
    } else if (node->kind() == xml::NodeKind::kComment) {
      h = Fnv1aByte('#', h);
    } else {  // text / CDATA
      h = Fnv1aByte('T', h);
      h = Fnv1a(static_cast<const xml::TextNode*>(node)->text(), h);
    }
  }
  return h;
}

// --- Fingerprint frame -----------------------------------------------------

void EncodeFingerprint(const CheckpointFingerprint& fp, Encoder& enc) {
  enc.PutU64(fp.config_fingerprint);
  enc.PutU64(fp.doc_fingerprint);
  enc.PutBool(fp.metrics_enabled);
  enc.PutBool(fp.explain_enabled);
}

Result<CheckpointFingerprint> DecodeFingerprint(std::string_view payload) {
  Decoder dec(payload);
  CheckpointFingerprint fp;
  ASSIGN_OR_RETURN(fp.config_fingerprint, dec.GetU64());
  ASSIGN_OR_RETURN(fp.doc_fingerprint, dec.GetU64());
  ASSIGN_OR_RETURN(fp.metrics_enabled, dec.GetBool());
  ASSIGN_OR_RETURN(fp.explain_enabled, dec.GetBool());
  return fp;
}

// --- Cursor frame ----------------------------------------------------------

void EncodeCursor(const CheckpointCursor& cursor, Encoder& enc) {
  enc.PutU64(cursor.levels_completed);
  enc.PutU64(cursor.budget_spent);
  enc.PutBool(cursor.budget_exhausted);
  enc.PutU64(cursor.verdict_occupied_total);
  enc.PutU64(cursor.verdict_capacity_total);
  enc.PutDouble(cursor.kg_seconds);
  enc.PutDouble(cursor.sw_seconds);
  enc.PutDouble(cursor.tc_seconds);
}

Result<CheckpointCursor> DecodeCursor(std::string_view payload) {
  Decoder dec(payload);
  CheckpointCursor cursor;
  ASSIGN_OR_RETURN(cursor.levels_completed, dec.GetU64());
  ASSIGN_OR_RETURN(cursor.budget_spent, dec.GetU64());
  ASSIGN_OR_RETURN(cursor.budget_exhausted, dec.GetBool());
  ASSIGN_OR_RETURN(cursor.verdict_occupied_total, dec.GetU64());
  ASSIGN_OR_RETURN(cursor.verdict_capacity_total, dec.GetU64());
  ASSIGN_OR_RETURN(cursor.kg_seconds, dec.GetDouble());
  ASSIGN_OR_RETURN(cursor.sw_seconds, dec.GetDouble());
  ASSIGN_OR_RETURN(cursor.tc_seconds, dec.GetDouble());
  return cursor;
}

// --- GK table frame --------------------------------------------------------

void EncodeGkTable(const GkTable& table, uint64_t candidate_index,
                   bool kg_done, Encoder& enc) {
  enc.PutU64(candidate_index);
  enc.PutBool(kg_done);
  enc.PutU64(table.num_keys);
  enc.PutU64(table.num_od);
  enc.PutString(table.od_pool.arena());
  enc.PutU64(table.od_pool.offsets().size());
  for (uint32_t off : table.od_pool.offsets()) enc.PutU32(off);
  enc.PutU64(table.rows.size());
  for (const GkRow& row : table.rows) {
    enc.PutU64(row.ordinal);
    enc.PutI64(row.eid);
    EncodeStringList(row.keys, enc);
    EncodeStringList(row.ods, enc);
    enc.PutU64(row.norm_ods.size());
    for (const OdRef& ref : row.norm_ods) {
      enc.PutU32(ref.id);
      enc.PutU32(ref.length);
    }
    enc.PutU32(row.subtree.id);  // kInvalidId round-trips as invalid
  }
}

Result<EngineSnapshot::GkState> DecodeGkTable(std::string_view payload) {
  Decoder dec(payload);
  EngineSnapshot::GkState state;
  ASSIGN_OR_RETURN(state.index, dec.GetU64());
  ASSIGN_OR_RETURN(state.kg_done, dec.GetBool());
  GkTable& table = state.table;
  ASSIGN_OR_RETURN(table.num_keys, dec.GetU64());
  ASSIGN_OR_RETURN(table.num_od, dec.GetU64());
  std::string_view arena;
  ASSIGN_OR_RETURN(arena, dec.GetString());
  uint64_t num_offsets;
  ASSIGN_OR_RETURN(num_offsets, dec.GetCount(dec.remaining() / 4));
  std::vector<uint32_t> offsets;
  offsets.reserve(static_cast<size_t>(num_offsets));
  uint32_t prev = 0;
  for (uint64_t i = 0; i < num_offsets; ++i) {
    uint32_t off;
    ASSIGN_OR_RETURN(off, dec.GetU32());
    if (off > arena.size() || (i > 0 && off < prev)) {
      return Corrupt("od-pool offset out of order or past arena end");
    }
    prev = off;
    offsets.push_back(off);
  }
  table.od_pool = OdPool::FromParts(std::string(arena), std::move(offsets));

  uint64_t num_rows;
  ASSIGN_OR_RETURN(num_rows, dec.GetCount(dec.remaining()));
  table.rows.reserve(static_cast<size_t>(num_rows));
  for (uint64_t i = 0; i < num_rows; ++i) {
    GkRow row;
    ASSIGN_OR_RETURN(row.ordinal, dec.GetU64());
    ASSIGN_OR_RETURN(row.eid, dec.GetI64());
    ASSIGN_OR_RETURN(row.keys, DecodeStringList(dec));
    ASSIGN_OR_RETURN(row.ods, DecodeStringList(dec));
    uint64_t num_norm;
    ASSIGN_OR_RETURN(num_norm, dec.GetCount(dec.remaining() / 8));
    row.norm_ods.reserve(static_cast<size_t>(num_norm));
    for (uint64_t j = 0; j < num_norm; ++j) {
      OdRef ref;
      ASSIGN_OR_RETURN(ref.id, dec.GetU32());
      ASSIGN_OR_RETURN(ref.length, dec.GetU32());
      if (ref.id >= table.od_pool.size() ||
          static_cast<size_t>(table.od_pool.offsets()[ref.id]) + ref.length >
              table.od_pool.arena().size()) {
        return Corrupt("normalized-OD reference outside its pool");
      }
      row.norm_ods.push_back(ref);
    }
    ASSIGN_OR_RETURN(row.subtree.id, dec.GetU32());
    table.rows.push_back(std::move(row));
  }
  // SubtreePool contents are not serialized: after key generation the
  // engine only compares SubtreeRef ids, which live in the rows.
  return state;
}

// --- Spill rows (external sort) --------------------------------------------

void EncodeSpillRow(const GkRow& row, const OdPool& pool, Encoder& enc) {
  enc.PutU64(row.ordinal);
  enc.PutI64(row.eid);
  EncodeStringList(row.keys, enc);
  EncodeStringList(row.ods, enc);
  enc.PutU64(row.norm_ods.size());
  for (const OdRef& ref : row.norm_ods) enc.PutString(pool.View(ref));
  enc.PutU32(row.subtree.id);  // kInvalidId round-trips as invalid
}

Result<GkRow> DecodeSpillRow(std::string_view payload, OdPool* pool) {
  Decoder dec(payload);
  GkRow row;
  ASSIGN_OR_RETURN(row.ordinal, dec.GetU64());
  ASSIGN_OR_RETURN(row.eid, dec.GetI64());
  ASSIGN_OR_RETURN(row.keys, DecodeStringList(dec));
  ASSIGN_OR_RETURN(row.ods, DecodeStringList(dec));
  uint64_t num_norm;
  ASSIGN_OR_RETURN(num_norm, dec.GetCount(dec.remaining() / 8));
  row.norm_ods.reserve(static_cast<size_t>(num_norm));
  for (uint64_t i = 0; i < num_norm; ++i) {
    std::string_view value;
    ASSIGN_OR_RETURN(value, dec.GetString());
    row.norm_ods.push_back(pool->Intern(value));
  }
  ASSIGN_OR_RETURN(row.subtree.id, dec.GetU32());
  if (!dec.AtEnd()) return Corrupt("trailing bytes after spill row");
  return row;
}

// --- Cluster set -----------------------------------------------------------

void EncodeClusterSet(const ClusterSet& clusters, Encoder& enc) {
  enc.PutU64(clusters.num_instances());
  enc.PutU64(clusters.clusters().size());
  for (const std::vector<size_t>& members : clusters.clusters()) {
    enc.PutU64(members.size());
    for (size_t m : members) enc.PutU64(m);
  }
}

Result<ClusterSet> DecodeClusterSet(Decoder& dec) {
  uint64_t num_instances;
  ASSIGN_OR_RETURN(num_instances, dec.GetU64());
  uint64_t num_clusters;
  ASSIGN_OR_RETURN(num_clusters, dec.GetCount(dec.remaining() / 8));
  // FromClusters hard-requires a valid partition; corrupt bytes must
  // fail here, not inside it.
  std::vector<char> seen(static_cast<size_t>(num_instances), 0);
  std::vector<std::vector<size_t>> clusters;
  clusters.reserve(static_cast<size_t>(num_clusters));
  for (uint64_t i = 0; i < num_clusters; ++i) {
    uint64_t size;
    ASSIGN_OR_RETURN(size, dec.GetCount(dec.remaining() / 8));
    std::vector<size_t> members;
    members.reserve(static_cast<size_t>(size));
    for (uint64_t j = 0; j < size; ++j) {
      uint64_t m;
      ASSIGN_OR_RETURN(m, dec.GetU64());
      if (m >= num_instances || seen[static_cast<size_t>(m)]) {
        return Corrupt("cluster member out of range or duplicated");
      }
      seen[static_cast<size_t>(m)] = 1;
      members.push_back(static_cast<size_t>(m));
    }
    clusters.push_back(std::move(members));
  }
  return ClusterSet::FromClusters(std::move(clusters),
                                  static_cast<size_t>(num_instances));
}

// --- Candidate result frame ------------------------------------------------

void EncodeCandidateResult(const CandidateResult& result,
                           uint64_t candidate_index, Encoder& enc) {
  enc.PutU64(candidate_index);
  enc.PutString(result.name);
  enc.PutU64(result.num_instances);
  enc.PutU64(result.comparisons);
  enc.PutU64(result.duplicate_pairs.size());
  for (const auto& [a, b] : result.duplicate_pairs) {
    enc.PutU64(a);
    enc.PutU64(b);
  }
  enc.PutU64(result.duplicate_eid_pairs.size());
  for (const auto& [a, b] : result.duplicate_eid_pairs) {
    enc.PutI64(a);
    enc.PutI64(b);
  }
  EncodeClusterSet(result.clusters, enc);
  // The GK relation travels in its own kGkTable frame.
}

Result<EngineSnapshot::CompletedCandidate> DecodeCandidateResult(
    std::string_view payload) {
  Decoder dec(payload);
  EngineSnapshot::CompletedCandidate out;
  ASSIGN_OR_RETURN(out.index, dec.GetU64());
  std::string_view name;
  ASSIGN_OR_RETURN(name, dec.GetString());
  out.result.name = std::string(name);
  ASSIGN_OR_RETURN(out.result.num_instances, dec.GetU64());
  ASSIGN_OR_RETURN(out.result.comparisons, dec.GetU64());
  uint64_t num_pairs;
  ASSIGN_OR_RETURN(num_pairs, dec.GetCount(dec.remaining() / 16));
  out.result.duplicate_pairs.reserve(static_cast<size_t>(num_pairs));
  for (uint64_t i = 0; i < num_pairs; ++i) {
    uint64_t a, b;
    ASSIGN_OR_RETURN(a, dec.GetU64());
    ASSIGN_OR_RETURN(b, dec.GetU64());
    out.result.duplicate_pairs.emplace_back(static_cast<size_t>(a),
                                            static_cast<size_t>(b));
  }
  uint64_t num_eid_pairs;
  ASSIGN_OR_RETURN(num_eid_pairs, dec.GetCount(dec.remaining() / 16));
  out.result.duplicate_eid_pairs.reserve(static_cast<size_t>(num_eid_pairs));
  for (uint64_t i = 0; i < num_eid_pairs; ++i) {
    int64_t a, b;
    ASSIGN_OR_RETURN(a, dec.GetI64());
    ASSIGN_OR_RETURN(b, dec.GetI64());
    out.result.duplicate_eid_pairs.emplace_back(a, b);
  }
  ASSIGN_OR_RETURN(out.result.clusters, DecodeClusterSet(dec));
  return out;
}

// --- Degradation frame -----------------------------------------------------

void EncodeDegradation(const DegradationReport& degradation, Encoder& enc) {
  enc.PutBool(degradation.degraded);
  enc.PutU32(static_cast<uint32_t>(degradation.reason));
  enc.PutU64(degradation.comparison_budget);
  enc.PutU64(degradation.passes.size());
  for (const PassDegradation& pass : degradation.passes) {
    enc.PutString(pass.candidate);
    enc.PutU64(pass.key_index);
    enc.PutBool(pass.skipped);
    enc.PutU64(pass.window_used);
    enc.PutU64(pass.rows);
    enc.PutU64(pass.pairs_planned);
    enc.PutU64(pass.pairs_elided);
  }
}

Result<DegradationReport> DecodeDegradation(std::string_view payload) {
  Decoder dec(payload);
  DegradationReport degradation;
  ASSIGN_OR_RETURN(degradation.degraded, dec.GetBool());
  uint32_t reason;
  ASSIGN_OR_RETURN(reason, dec.GetU32());
  if (reason > static_cast<uint32_t>(util::StatusCode::kDataLoss)) {
    return Corrupt("degradation reason out of range");
  }
  degradation.reason = static_cast<util::StatusCode>(reason);
  ASSIGN_OR_RETURN(degradation.comparison_budget, dec.GetU64());
  uint64_t num_passes;
  ASSIGN_OR_RETURN(num_passes, dec.GetCount(dec.remaining() / 8));
  degradation.passes.reserve(static_cast<size_t>(num_passes));
  for (uint64_t i = 0; i < num_passes; ++i) {
    PassDegradation pass;
    std::string_view candidate;
    ASSIGN_OR_RETURN(candidate, dec.GetString());
    pass.candidate = std::string(candidate);
    ASSIGN_OR_RETURN(pass.key_index, dec.GetU64());
    ASSIGN_OR_RETURN(pass.skipped, dec.GetBool());
    ASSIGN_OR_RETURN(pass.window_used, dec.GetU64());
    ASSIGN_OR_RETURN(pass.rows, dec.GetU64());
    ASSIGN_OR_RETURN(pass.pairs_planned, dec.GetU64());
    ASSIGN_OR_RETURN(pass.pairs_elided, dec.GetU64());
    degradation.passes.push_back(std::move(pass));
  }
  return degradation;
}

// --- Report rows frame -----------------------------------------------------

void EncodeReportRows(const std::vector<DetectionReport::Row>& rows,
                      Encoder& enc) {
  enc.PutU64(rows.size());
  for (const DetectionReport::Row& row : rows) {
    enc.PutString(row.candidate);
    enc.PutU64(row.key_index);
    enc.PutU64(row.num_instances);
    EncodePassStats(row.stats, enc);
  }
}

Result<std::vector<DetectionReport::Row>> DecodeReportRows(
    std::string_view payload) {
  Decoder dec(payload);
  uint64_t num_rows;
  ASSIGN_OR_RETURN(num_rows, dec.GetCount(dec.remaining() / 8));
  std::vector<DetectionReport::Row> rows;
  rows.reserve(static_cast<size_t>(num_rows));
  for (uint64_t i = 0; i < num_rows; ++i) {
    DetectionReport::Row row;
    std::string_view candidate;
    ASSIGN_OR_RETURN(candidate, dec.GetString());
    row.candidate = std::string(candidate);
    ASSIGN_OR_RETURN(row.key_index, dec.GetU64());
    ASSIGN_OR_RETURN(row.num_instances, dec.GetU64());
    ASSIGN_OR_RETURN(row.stats, DecodePassStats(dec));
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- Metrics frame ---------------------------------------------------------

void EncodeMetricsSnapshot(const obs::MetricsSnapshot& snapshot,
                           Encoder& enc) {
  enc.PutU64(snapshot.counters.size());
  for (const auto& sample : snapshot.counters) {
    enc.PutString(sample.name);
    enc.PutU64(sample.value);
  }
  enc.PutU64(snapshot.gauges.size());
  for (const auto& sample : snapshot.gauges) {
    enc.PutString(sample.name);
    enc.PutDouble(sample.value);
  }
  enc.PutU64(snapshot.histograms.size());
  for (const auto& sample : snapshot.histograms) {
    enc.PutString(sample.name);
    enc.PutU64(sample.bounds.size());
    for (double b : sample.bounds) enc.PutDouble(b);
    enc.PutU64(sample.counts.size());
    for (uint64_t c : sample.counts) enc.PutU64(c);
    enc.PutDouble(sample.sum);
    enc.PutU64(sample.total_count);
  }
}

Result<obs::MetricsSnapshot> DecodeMetricsSnapshot(std::string_view payload) {
  Decoder dec(payload);
  obs::MetricsSnapshot snapshot;
  uint64_t num_counters;
  ASSIGN_OR_RETURN(num_counters, dec.GetCount(dec.remaining() / 16));
  snapshot.counters.reserve(static_cast<size_t>(num_counters));
  for (uint64_t i = 0; i < num_counters; ++i) {
    obs::MetricsSnapshot::CounterSample sample;
    std::string_view name;
    ASSIGN_OR_RETURN(name, dec.GetString());
    sample.name = std::string(name);
    ASSIGN_OR_RETURN(sample.value, dec.GetU64());
    snapshot.counters.push_back(std::move(sample));
  }
  uint64_t num_gauges;
  ASSIGN_OR_RETURN(num_gauges, dec.GetCount(dec.remaining() / 16));
  snapshot.gauges.reserve(static_cast<size_t>(num_gauges));
  for (uint64_t i = 0; i < num_gauges; ++i) {
    obs::MetricsSnapshot::GaugeSample sample;
    std::string_view name;
    ASSIGN_OR_RETURN(name, dec.GetString());
    sample.name = std::string(name);
    ASSIGN_OR_RETURN(sample.value, dec.GetDouble());
    snapshot.gauges.push_back(std::move(sample));
  }
  uint64_t num_histograms;
  ASSIGN_OR_RETURN(num_histograms, dec.GetCount(dec.remaining() / 8));
  snapshot.histograms.reserve(static_cast<size_t>(num_histograms));
  for (uint64_t i = 0; i < num_histograms; ++i) {
    obs::MetricsSnapshot::HistogramSample sample;
    std::string_view name;
    ASSIGN_OR_RETURN(name, dec.GetString());
    sample.name = std::string(name);
    uint64_t num_bounds;
    ASSIGN_OR_RETURN(num_bounds, dec.GetCount(dec.remaining() / 8));
    sample.bounds.reserve(static_cast<size_t>(num_bounds));
    for (uint64_t j = 0; j < num_bounds; ++j) {
      double b;
      ASSIGN_OR_RETURN(b, dec.GetDouble());
      sample.bounds.push_back(b);
    }
    uint64_t num_counts;
    ASSIGN_OR_RETURN(num_counts, dec.GetCount(dec.remaining() / 8));
    sample.counts.reserve(static_cast<size_t>(num_counts));
    for (uint64_t j = 0; j < num_counts; ++j) {
      uint64_t c;
      ASSIGN_OR_RETURN(c, dec.GetU64());
      sample.counts.push_back(c);
    }
    ASSIGN_OR_RETURN(sample.sum, dec.GetDouble());
    ASSIGN_OR_RETURN(sample.total_count, dec.GetU64());
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

// --- Verdict-cache frame ---------------------------------------------------

void EncodeVerdictEntries(
    const std::vector<std::pair<uint64_t, bool>>& entries, Encoder& enc) {
  enc.PutU64(entries.size());
  for (const auto& [key, verdict] : entries) {
    enc.PutU64(key);
    enc.PutBool(verdict);
  }
}

Result<std::vector<std::pair<uint64_t, bool>>> DecodeVerdictEntries(
    std::string_view payload) {
  Decoder dec(payload);
  uint64_t count;
  ASSIGN_OR_RETURN(count, dec.GetCount(dec.remaining() / 9));
  std::vector<std::pair<uint64_t, bool>> entries;
  entries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key;
    ASSIGN_OR_RETURN(key, dec.GetU64());
    bool verdict;
    ASSIGN_OR_RETURN(verdict, dec.GetBool());
    if (key == 0) return Corrupt("verdict-cache key 0 (reserved sentinel)");
    entries.emplace_back(key, verdict);
  }
  return entries;
}

// --- Whole-snapshot save / load --------------------------------------------

Status SaveEngineSnapshot(const EngineSnapshotView& view,
                          const std::string& path, SnapshotWriteStats* stats) {
  SnapshotWriter writer;
  {
    Encoder enc;
    EncodeFingerprint(view.fingerprint, enc);
    writer.AddFrame(FrameType::kFingerprint, std::move(enc));
  }
  {
    Encoder enc;
    EncodeCursor(view.cursor, enc);
    writer.AddFrame(FrameType::kCursor, std::move(enc));
  }
  if (view.gk != nullptr) {
    for (size_t t = 0; t < view.gk->size(); ++t) {
      Encoder enc;
      bool kg_done =
          view.kg_done != nullptr && t < view.kg_done->size()
              ? (*view.kg_done)[t] != 0
              : true;
      EncodeGkTable((*view.gk)[t], t, kg_done, enc);
      writer.AddFrame(FrameType::kGkTable, std::move(enc));
    }
  }
  for (const auto& [index, result] : view.completed) {
    Encoder enc;
    EncodeCandidateResult(*result, index, enc);
    writer.AddFrame(FrameType::kCandidateResult, std::move(enc));
  }
  if (view.degradation != nullptr) {
    Encoder enc;
    EncodeDegradation(*view.degradation, enc);
    writer.AddFrame(FrameType::kDegradation, std::move(enc));
  }
  if (view.report_rows != nullptr) {
    Encoder enc;
    EncodeReportRows(*view.report_rows, enc);
    writer.AddFrame(FrameType::kReportRows, std::move(enc));
  }
  if (view.metrics != nullptr) {
    Encoder enc;
    EncodeMetricsSnapshot(*view.metrics, enc);
    writer.AddFrame(FrameType::kMetrics, std::move(enc));
  }
  if (view.explain_text != nullptr) {
    Encoder enc;
    enc.PutString(*view.explain_text);
    for (uint64_t tally : view.explain_tallies) enc.PutU64(tally);
    writer.AddFrame(FrameType::kExplain, std::move(enc));
  }
  std::string bytes = writer.Serialize();
  if (stats != nullptr) {
    stats->bytes = bytes.size();
    stats->frames = writer.num_frames() + 1;  // + end frame
  }
  return persist::AtomicWriteFile(path, bytes);
}

Result<EngineSnapshot> LoadEngineSnapshot(
    const std::string& path, const CheckpointFingerprint& expected) {
  auto bytes = persist::ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();  // kNotFound or kDataLoss
  auto reader = SnapshotReader::Parse(*bytes);
  if (!reader.ok()) return reader.status();

  EngineSnapshot snapshot;
  const Frame* fp_frame = reader->Find(FrameType::kFingerprint);
  if (fp_frame == nullptr) return Corrupt("missing fingerprint frame");
  ASSIGN_OR_RETURN(snapshot.fingerprint, DecodeFingerprint(fp_frame->payload));
  const CheckpointFingerprint& fp = snapshot.fingerprint;
  if (fp.config_fingerprint != expected.config_fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint '" + path +
        "' was taken under a different configuration; delete it to start "
        "fresh");
  }
  if (fp.doc_fingerprint != expected.doc_fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint '" + path +
        "' was taken over a different input document; delete it to start "
        "fresh");
  }
  if (fp.metrics_enabled != expected.metrics_enabled ||
      fp.explain_enabled != expected.explain_enabled) {
    return Status::FailedPrecondition(
        "checkpoint '" + path +
        "' was taken with a different observability shape "
        "(metrics/explain); delete it to start fresh");
  }

  const Frame* cursor_frame = reader->Find(FrameType::kCursor);
  if (cursor_frame == nullptr) return Corrupt("missing cursor frame");
  ASSIGN_OR_RETURN(snapshot.cursor, DecodeCursor(cursor_frame->payload));

  for (const Frame* frame : reader->FindAll(FrameType::kGkTable)) {
    EngineSnapshot::GkState state;
    ASSIGN_OR_RETURN(state, DecodeGkTable(frame->payload));
    snapshot.gk.push_back(std::move(state));
  }
  for (const Frame* frame : reader->FindAll(FrameType::kCandidateResult)) {
    EngineSnapshot::CompletedCandidate completed;
    ASSIGN_OR_RETURN(completed, DecodeCandidateResult(frame->payload));
    snapshot.completed.push_back(std::move(completed));
  }
  if (const Frame* frame = reader->Find(FrameType::kDegradation)) {
    ASSIGN_OR_RETURN(snapshot.degradation, DecodeDegradation(frame->payload));
  }
  if (const Frame* frame = reader->Find(FrameType::kReportRows)) {
    ASSIGN_OR_RETURN(snapshot.report_rows, DecodeReportRows(frame->payload));
  }
  if (const Frame* frame = reader->Find(FrameType::kMetrics)) {
    ASSIGN_OR_RETURN(snapshot.metrics, DecodeMetricsSnapshot(frame->payload));
  }
  if (const Frame* frame = reader->Find(FrameType::kExplain)) {
    Decoder dec(frame->payload);
    std::string_view text;
    ASSIGN_OR_RETURN(text, dec.GetString());
    snapshot.explain_text = std::string(text);
    for (uint64_t& tally : snapshot.explain_tallies) {
      ASSIGN_OR_RETURN(tally, dec.GetU64());
    }
  }
  return snapshot;
}

#undef ASSIGN_OR_RETURN

}  // namespace sxnm::core
