// Parallel engine determinism: the detector must produce bit-identical
// results for every thread count and with the comparison-kernel fast
// paths on or off. These tests drive full dirty-generated datasets
// through Detector::Run at several thread counts and diff every
// observable output. They also serve as the TSan workload (the `tsan`
// CMake preset's test filter selects names containing "Parallel").

#include <gtest/gtest.h>

#include <vector>

#include "datagen/dirty_gen.h"
#include "datagen/freedb.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

// Diffs every observable output of two detection results.
void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    SCOPED_TRACE(ca.name);
    EXPECT_EQ(ca.name, cb.name) << "candidate order must be bottom-up";
    EXPECT_EQ(ca.num_instances, cb.num_instances);
    EXPECT_EQ(ca.duplicate_pairs, cb.duplicate_pairs);
    EXPECT_EQ(ca.duplicate_eid_pairs, cb.duplicate_eid_pairs);
    EXPECT_EQ(ca.comparisons, cb.comparisons);
    EXPECT_EQ(ca.clusters.clusters(), cb.clusters.clusters());
    EXPECT_EQ(ca.gk.rows.size(), cb.gk.rows.size());
  }
  EXPECT_EQ(a.TotalComparisons(), b.TotalComparisons());
}

TEST(ParallelDetectorTest, ThreadCountDoesNotChangeMovieResults) {
  xml::Document dirty = DirtyMovies(300, 101, 7);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());

  auto serial = Detector(config.value()).Run(dirty);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (size_t threads : {size_t{2}, size_t{4}, size_t{0}}) {
    Config parallel_config = config.value();
    parallel_config.set_num_threads(threads);
    auto parallel = Detector(parallel_config).Run(dirty);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectIdenticalResults(serial.value(), parallel.value());
  }
}

TEST(ParallelDetectorTest, BottomUpMultiCandidateIsDeterministic) {
  // Three candidates across two forest depths (title and person feed
  // movie): exercises the level-parallel candidate scheduling, not just
  // concurrent passes of a single candidate.
  xml::Document dirty = DirtyMovies(200, 41, 6);
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());

  auto serial = Detector(config.value()).Run(dirty);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->candidates.size(), 3u);

  Config parallel_config = config.value();
  parallel_config.set_num_threads(4);
  auto parallel = Detector(parallel_config).Run(dirty);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdenticalResults(serial.value(), parallel.value());
}

TEST(ParallelDetectorTest, FastPathsDoNotChangeAcceptedPairs) {
  xml::Document dirty = DirtyMovies(250, 13, 3);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());

  Config slow_config = config.value();
  for (CandidateConfig& cand : slow_config.mutable_candidates()) {
    cand.enable_fast_paths = false;
    cand.dag_compression = false;
    cand.batch_scoring = false;
  }

  auto fast = Detector(config.value()).Run(dirty);
  auto slow = Detector(slow_config).Run(dirty);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ExpectIdenticalResults(fast.value(), slow.value());
}

TEST(ParallelDetectorTest, FastPathsOffParallelStillDeterministic) {
  // The legacy kernels under the parallel engine: isolates engine
  // determinism from the kernel rewrites.
  xml::Document dirty = DirtyMovies(150, 9, 4);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config base = config.value();
  for (CandidateConfig& cand : base.mutable_candidates()) {
    cand.enable_fast_paths = false;
    cand.dag_compression = false;
    cand.batch_scoring = false;
  }

  auto serial = Detector(base).Run(dirty);
  ASSERT_TRUE(serial.ok());
  Config parallel_config = base;
  parallel_config.set_num_threads(3);
  auto parallel = Detector(parallel_config).Run(dirty);
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalResults(serial.value(), parallel.value());
}

TEST(ParallelDetectorTest, DescendantHeavyCdDataIsDeterministic) {
  // DataSet2: discs with track children, descendant similarity in play.
  auto doc = datagen::GenerateDataSet2(150, 77);
  ASSERT_TRUE(doc.ok());
  auto config = datagen::CdConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());

  auto serial = Detector(config.value()).Run(doc.value());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  Config parallel_config = config.value();
  parallel_config.set_num_threads(4);
  auto parallel = Detector(parallel_config).Run(doc.value());
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalResults(serial.value(), parallel.value());
}

TEST(ParallelDetectorTest, RepeatedParallelRunsAgree) {
  // Flushes out scheduling-dependent nondeterminism that a single run
  // might get lucky on.
  xml::Document dirty = DirtyMovies(120, 5, 2);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config parallel_config = config.value();
  parallel_config.set_num_threads(4);
  Detector detector(parallel_config);

  auto first = detector.Run(dirty);
  ASSERT_TRUE(first.ok());
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto again = detector.Run(dirty);
    ASSERT_TRUE(again.ok());
    ExpectIdenticalResults(first.value(), again.value());
  }
}

}  // namespace
}  // namespace sxnm::core
