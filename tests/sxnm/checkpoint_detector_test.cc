// Crash-consistent checkpoint/resume: frame codec round-trips, the
// fingerprint refusal matrix, and the central guarantee — a resumed run
// produces clusters, counters, report rows, and explain output
// bit-identical to an uninterrupted run, for any thread count and any
// kernel configuration.

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/dirty_gen.h"
#include "datagen/movies.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "sxnm/checkpoint.h"
#include "sxnm/config_xml.h"
#include "sxnm/detector.h"
#include "util/fault_injection.h"
#include "xml/parser.h"

namespace sxnm::core {
namespace {

using util::StatusCode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

// --- Fingerprints ----------------------------------------------------------

TEST(CheckpointFingerprintTest, ConfigFingerprintIgnoresNonSemanticKnobs) {
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  uint64_t base = ConfigFingerprint(config.value());

  Config threads = config.value();
  threads.set_num_threads(8);
  EXPECT_EQ(ConfigFingerprint(threads), base)
      << "thread count must not block resume";

  Config obs = config.value();
  obs.mutable_observability().metrics = true;
  obs.mutable_observability().trace_path = "/tmp/t.json";
  EXPECT_EQ(ConfigFingerprint(obs), base)
      << "observability shape is carried separately, not in the fingerprint";

  Config ckpt = config.value();
  ckpt.mutable_checkpoint().path = "/tmp/x.ckpt";
  EXPECT_EQ(ConfigFingerprint(ckpt), base);
}

TEST(CheckpointFingerprintTest, ConfigFingerprintSeesSemanticChanges) {
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  uint64_t base = ConfigFingerprint(config.value());

  Config window = config.value();
  window.mutable_candidates()[0].window_size = 11;
  EXPECT_NE(ConfigFingerprint(window), base);

  Config threshold = config.value();
  threshold.mutable_candidates()[0].classifier.od_threshold = 0.9;
  EXPECT_NE(ConfigFingerprint(threshold), base);

  Config budget = config.value();
  budget.mutable_limits().max_comparisons = 1000;
  EXPECT_NE(ConfigFingerprint(budget), base)
      << "the comparison budget shapes the shed set";
}

TEST(CheckpointFingerprintTest, DocumentFingerprintSeesStructureAndText) {
  auto a = xml::Parse("<db><m year='1999'><t>Matrix</t></m></db>");
  auto b = xml::Parse("<db><m year='1999'><t>Matrix</t></m></db>");
  auto text = xml::Parse("<db><m year='1999'><t>Matrxi</t></m></db>");
  auto attr = xml::Parse("<db><m year='1998'><t>Matrix</t></m></db>");
  auto nest = xml::Parse("<db><m year='1999'></m><t>Matrix</t></db>");
  ASSERT_TRUE(a.ok() && b.ok() && text.ok() && attr.ok() && nest.ok());
  uint64_t base = DocumentFingerprint(a.value());
  EXPECT_EQ(DocumentFingerprint(b.value()), base);
  EXPECT_NE(DocumentFingerprint(text.value()), base);
  EXPECT_NE(DocumentFingerprint(attr.value()), base);
  EXPECT_NE(DocumentFingerprint(nest.value()), base);
}

// --- Frame codec round-trips ----------------------------------------------

TEST(CheckpointCodecTest, CursorRoundTrips) {
  CheckpointCursor cursor;
  cursor.levels_completed = 3;
  cursor.budget_spent = 12345;
  cursor.budget_exhausted = true;
  cursor.verdict_occupied_total = 17;
  cursor.verdict_capacity_total = 256;
  cursor.kg_seconds = 0.5;
  cursor.sw_seconds = 1.25;
  cursor.tc_seconds = 0.0625;

  persist::Encoder enc;
  EncodeCursor(cursor, enc);
  auto decoded = DecodeCursor(enc.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->levels_completed, 3u);
  EXPECT_EQ(decoded->budget_spent, 12345u);
  EXPECT_TRUE(decoded->budget_exhausted);
  EXPECT_EQ(decoded->verdict_occupied_total, 17u);
  EXPECT_EQ(decoded->verdict_capacity_total, 256u);
  EXPECT_EQ(decoded->kg_seconds, 0.5);
  EXPECT_EQ(decoded->sw_seconds, 1.25);
  EXPECT_EQ(decoded->tc_seconds, 0.0625);
}

TEST(CheckpointCodecTest, GkTableRoundTripsRowsAndPool) {
  GkTable table;
  table.num_keys = 2;
  table.num_od = 2;
  OdRef matrix = table.od_pool.Intern("matrix");
  OdRef year = table.od_pool.Intern("1999");
  GkRow row;
  row.ordinal = 0;
  row.eid = 42;
  row.keys = {"MTRX1999", "1999MTRX"};
  row.ods = {"Matrix", "1999"};
  row.norm_ods = {matrix, year};
  row.subtree.id = 7;
  table.rows.push_back(row);
  GkRow second = row;
  second.ordinal = 1;
  second.eid = 43;
  second.subtree = SubtreeRef{};  // invalid id must round-trip as invalid
  table.rows.push_back(second);

  persist::Encoder enc;
  EncodeGkTable(table, /*candidate_index=*/5, /*kg_done=*/true, enc);
  auto decoded = DecodeGkTable(enc.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->index, 5u);
  EXPECT_TRUE(decoded->kg_done);
  GkTable& got = decoded->table;
  EXPECT_EQ(got.num_keys, 2u);
  ASSERT_EQ(got.rows.size(), 2u);
  EXPECT_EQ(got.rows[0].keys, row.keys);
  EXPECT_EQ(got.rows[0].ods, row.ods);
  EXPECT_EQ(got.rows[0].eid, 42);
  EXPECT_EQ(got.rows[0].subtree.id, 7u);
  EXPECT_FALSE(got.rows[1].subtree.valid());
  // The rebuilt pool resolves the references to the same bytes and keeps
  // interning: re-interning an existing value returns its old id.
  EXPECT_EQ(got.od_pool.View(got.rows[0].norm_ods[0]), "matrix");
  EXPECT_EQ(got.od_pool.View(got.rows[0].norm_ods[1]), "1999");
  EXPECT_EQ(got.od_pool.Intern("matrix").id, matrix.id);
}

TEST(CheckpointCodecTest, GkTableRejectsDanglingOdRefs) {
  GkTable table;
  table.num_keys = 1;
  OdRef ref = table.od_pool.Intern("x");
  GkRow row;
  row.keys = {"k"};
  row.ods = {"x"};
  ref.length = 100;  // past the arena
  row.norm_ods = {ref};
  table.rows.push_back(row);
  persist::Encoder enc;
  EncodeGkTable(table, 0, true, enc);
  auto decoded = DecodeGkTable(enc.bytes());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointCodecTest, CandidateResultRoundTripsPairsAndClusters) {
  CandidateResult result;
  result.name = "movie";
  result.num_instances = 6;
  result.comparisons = 15;
  result.duplicate_pairs = {{0, 1}, {1, 2}, {4, 5}};
  result.duplicate_eid_pairs = {{10, 11}, {11, 12}, {14, 15}};
  result.clusters = ClusterSet::FromClusters({{0, 1, 2}, {4, 5}}, 6);

  persist::Encoder enc;
  EncodeCandidateResult(result, /*candidate_index=*/2, enc);
  auto decoded = DecodeCandidateResult(enc.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->index, 2u);
  EXPECT_EQ(decoded->result.name, "movie");
  EXPECT_EQ(decoded->result.num_instances, 6u);
  EXPECT_EQ(decoded->result.comparisons, 15u);
  EXPECT_EQ(decoded->result.duplicate_pairs, result.duplicate_pairs);
  EXPECT_EQ(decoded->result.duplicate_eid_pairs, result.duplicate_eid_pairs);
  EXPECT_EQ(decoded->result.clusters.clusters(), result.clusters.clusters());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(decoded->result.clusters.cid(i), result.clusters.cid(i));
  }
}

TEST(CheckpointCodecTest, ClusterSetRejectsInvalidPartitions) {
  // Members out of range and ordinals claimed by two clusters must fail
  // in the decoder — ClusterSet::FromClusters trusts its input.
  persist::Encoder out_of_range;
  EncodeClusterSet(ClusterSet::FromClusters({{0, 1}}, 3), out_of_range);
  std::string bytes = out_of_range.bytes();
  // num_instances is the first u64; shrink it below the member values.
  bytes[0] = 1;
  persist::Decoder dec1(bytes);
  auto decoded = DecodeClusterSet(dec1);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);

  persist::Encoder duplicated;
  duplicated.PutU64(4);  // num_instances
  duplicated.PutU64(2);  // two clusters...
  duplicated.PutU64(2);
  duplicated.PutU64(0);
  duplicated.PutU64(1);
  duplicated.PutU64(2);
  duplicated.PutU64(1);  // ...both claiming ordinal 1
  duplicated.PutU64(2);
  persist::Decoder dec2(duplicated.bytes());
  auto dup = DecodeClusterSet(dec2);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointCodecTest, DegradationRoundTrips) {
  DegradationReport report;
  report.degraded = true;
  report.reason = StatusCode::kResourceExhausted;
  report.comparison_budget = 500;
  PassDegradation pass;
  pass.candidate = "movie";
  pass.key_index = 1;
  pass.skipped = false;
  pass.window_used = 4;
  pass.rows = 100;
  pass.pairs_planned = 900;
  pass.pairs_elided = 603;
  report.passes.push_back(pass);

  persist::Encoder enc;
  EncodeDegradation(report, enc);
  auto decoded = DecodeDegradation(enc.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->degraded);
  EXPECT_EQ(decoded->reason, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->comparison_budget, 500u);
  ASSERT_EQ(decoded->passes.size(), 1u);
  EXPECT_EQ(decoded->passes[0].candidate, "movie");
  EXPECT_EQ(decoded->passes[0].pairs_elided, 603u);
}

TEST(CheckpointCodecTest, VerdictEntriesRoundTripAndRejectSentinel) {
  std::vector<std::pair<uint64_t, bool>> entries = {
      {3, true}, {9, false}, {77, true}};
  persist::Encoder enc;
  EncodeVerdictEntries(entries, enc);
  auto decoded = DecodeVerdictEntries(enc.bytes());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entries);

  persist::Encoder bad;
  EncodeVerdictEntries({{0, true}}, bad);  // key 0 is the empty-slot sentinel
  auto rejected = DecodeVerdictEntries(bad.bytes());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);
}

// --- Whole-snapshot save/load ---------------------------------------------

TEST(EngineSnapshotTest, LoadRefusalMatrix) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  auto doc = xml::Parse("<db><movies/></db>");
  ASSERT_TRUE(doc.ok());
  CheckpointFingerprint fp;
  fp.config_fingerprint = ConfigFingerprint(config.value());
  fp.doc_fingerprint = DocumentFingerprint(doc.value());

  std::string path = TempPath("refusal.ckpt");
  EngineSnapshotView view;
  view.fingerprint = fp;
  ASSERT_TRUE(SaveEngineSnapshot(view, path).ok());

  // Matching fingerprint loads.
  EXPECT_TRUE(LoadEngineSnapshot(path, fp).ok());

  // Different config / document / observability shape: refused, not
  // corrupt — the snapshot is fine, it just belongs to another run.
  CheckpointFingerprint other = fp;
  other.config_fingerprint ^= 1;
  auto wrong_config = LoadEngineSnapshot(path, other);
  ASSERT_FALSE(wrong_config.ok());
  EXPECT_EQ(wrong_config.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(wrong_config.status().message().find("configuration"),
            std::string::npos);

  other = fp;
  other.doc_fingerprint ^= 1;
  auto wrong_doc = LoadEngineSnapshot(path, other);
  ASSERT_FALSE(wrong_doc.ok());
  EXPECT_EQ(wrong_doc.status().code(), StatusCode::kFailedPrecondition);

  other = fp;
  other.metrics_enabled = true;
  auto wrong_obs = LoadEngineSnapshot(path, other);
  ASSERT_FALSE(wrong_obs.ok());
  EXPECT_EQ(wrong_obs.status().code(), StatusCode::kFailedPrecondition);

  // Missing file: kNotFound (fresh start), not an error class.
  auto missing = LoadEngineSnapshot(TempPath("never_written.ckpt"), fp);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Corrupt file: kDataLoss. Magic and version are intact (a bad version
  // word would be refused as kFailedPrecondition instead), but the frame
  // stream behind them is garbage.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string junk("SXNMSNAP\x01\x00\x00\x00garbage frames", 26);
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  auto corrupt = LoadEngineSnapshot(path, fp);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);
  persist::RemoveFile(path);
}

// --- Detector resume == uninterrupted -------------------------------------

void ExpectIdenticalResults(const DetectionResult& a,
                            const DetectionResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateResult& ca = a.candidates[i];
    const CandidateResult& cb = b.candidates[i];
    SCOPED_TRACE(ca.name);
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.num_instances, cb.num_instances);
    EXPECT_EQ(ca.duplicate_pairs, cb.duplicate_pairs);
    EXPECT_EQ(ca.duplicate_eid_pairs, cb.duplicate_eid_pairs);
    EXPECT_EQ(ca.comparisons, cb.comparisons);
    EXPECT_EQ(ca.clusters.clusters(), cb.clusters.clusters());
    EXPECT_EQ(ca.gk.rows.size(), cb.gk.rows.size());
  }
  EXPECT_EQ(a.TotalComparisons(), b.TotalComparisons());
  EXPECT_EQ(a.degradation.degraded, b.degradation.degraded);
  EXPECT_EQ(a.degradation.passes.size(), b.degradation.passes.size());
}

// Deterministic (non-wall-clock, non-persist) counters must match
// between a resumed and an uninterrupted run.
void ExpectIdenticalCounters(const obs::MetricsSnapshot& a,
                             const obs::MetricsSnapshot& b) {
  auto deterministic = [](const std::string& name) {
    return name.rfind("persist.", 0) != 0 &&
           name.find("_us") == std::string::npos &&
           name.find("seconds") == std::string::npos;
  };
  std::vector<std::pair<std::string, uint64_t>> ca, cb;
  for (const auto& s : a.counters) {
    if (deterministic(s.name)) ca.emplace_back(s.name, s.value);
  }
  for (const auto& s : b.counters) {
    if (deterministic(s.name)) cb.emplace_back(s.name, s.value);
  }
  EXPECT_EQ(ca, cb);
}

class CheckpointDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Instance().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Instance().DisarmAll(); }
};

// Runs detection with checkpointing, interrupted by an injected failure
// of pass `fail_pass`, then resumes; the resumed result must equal the
// uninterrupted baseline byte for byte.
void RunInterruptResumeCase(Config config, const xml::Document& doc,
                            const std::string& tag) {
  std::string ckpt = TempPath("resume_" + tag + ".ckpt");
  std::string explain_base = TempPath("explain_base_" + tag + ".ndjson");
  std::string explain_resumed = TempPath("explain_res_" + tag + ".ndjson");
  persist::RemoveFile(ckpt);

  config.mutable_observability().metrics = true;
  // Explain stays on across interrupt + resume (the enabled flag is part
  // of the snapshot fingerprint); the file only materializes when a run
  // completes.
  config.mutable_observability().explain_path = explain_resumed;
  config.mutable_checkpoint().path = ckpt;

  // Baseline: uninterrupted, no checkpointing (prove checkpoint writes
  // never perturb the result), explain on for the byte-level diff.
  Config base_config = config;
  base_config.mutable_checkpoint() = CheckpointConfig{};
  base_config.mutable_observability().explain_path = explain_base;
  auto baseline = Detector(base_config).Run(doc);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Interrupted run: a window pass of a later level fails hard. Levels
  // before it committed snapshots.
  {
    util::ScopedFault fault("detector.pass", 3);
    auto interrupted = Detector(config).Run(doc);
    ASSERT_FALSE(interrupted.ok()) << "fault did not fire for " << tag;
  }
  ASSERT_TRUE(persist::PathExists(ckpt))
      << "interrupted run left no snapshot for " << tag;

  // Resume: picks up at the last durable level and finishes.
  auto resumed = Detector(config).Run(doc);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ExpectIdenticalResults(baseline.value(), resumed.value());
  ExpectIdenticalCounters(baseline->metrics, resumed->metrics);
  ASSERT_EQ(baseline->report.rows.size(), resumed->report.rows.size());
  for (size_t i = 0; i < baseline->report.rows.size(); ++i) {
    EXPECT_EQ(baseline->report.rows[i].candidate,
              resumed->report.rows[i].candidate);
    EXPECT_EQ(baseline->report.rows[i].stats.comparisons,
              resumed->report.rows[i].stats.comparisons);
    EXPECT_EQ(baseline->report.rows[i].stats.hits,
              resumed->report.rows[i].stats.hits);
  }

  // The explain byte stream — the strictest observable — must be
  // byte-identical.
  std::ifstream a(explain_base), b(explain_resumed);
  std::string text_a((std::istreambuf_iterator<char>(a)),
                     std::istreambuf_iterator<char>());
  std::string text_b((std::istreambuf_iterator<char>(b)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(text_a, text_b) << "explain streams diverged for " << tag;

  // A completed run has nothing to resume: the snapshot is gone.
  EXPECT_FALSE(persist::PathExists(ckpt))
      << "completed run must remove its checkpoint (" << tag << ")";
  persist::RemoveFile(explain_base);
  persist::RemoveFile(explain_resumed);
}

TEST_F(CheckpointDetectorTest, ResumeMatchesUninterruptedSerial) {
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());
  RunInterruptResumeCase(config.value(), DirtyMovies(120, 41, 6), "serial");
}

TEST_F(CheckpointDetectorTest, ResumeMatchesUninterruptedParallel) {
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());
  Config parallel = config.value();
  parallel.set_num_threads(4);
  RunInterruptResumeCase(parallel, DirtyMovies(120, 41, 6), "parallel");
}

TEST_F(CheckpointDetectorTest, ResumeAcrossThreadCountsIsIdentical) {
  // Interrupt under 4 threads, resume serially: the snapshot must be
  // thread-count neutral in both directions.
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());
  xml::Document doc = DirtyMovies(120, 17, 3);
  std::string ckpt = TempPath("cross_threads.ckpt");
  persist::RemoveFile(ckpt);

  auto baseline = Detector(config.value()).Run(doc);
  ASSERT_TRUE(baseline.ok());

  Config interrupted_config = config.value();
  interrupted_config.set_num_threads(4);
  interrupted_config.mutable_checkpoint().path = ckpt;
  {
    util::ScopedFault fault("detector.pass", 3);
    auto interrupted = Detector(interrupted_config).Run(doc);
    ASSERT_FALSE(interrupted.ok());
  }
  ASSERT_TRUE(persist::PathExists(ckpt));

  Config resume_config = config.value();  // back to serial
  resume_config.mutable_checkpoint().path = ckpt;
  auto resumed = Detector(resume_config).Run(doc);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(baseline.value(), resumed.value());
}

TEST_F(CheckpointDetectorTest, ResumeWithKernelVariants) {
  // dag/batch off exercises the no-subtree-pool, no-SoA resume paths.
  auto config = datagen::MovieScalabilityConfig(/*window=*/5);
  ASSERT_TRUE(config.ok());
  Config plain = config.value();
  for (CandidateConfig& cand : plain.mutable_candidates()) {
    cand.dag_compression = false;
    cand.batch_scoring = false;
  }
  RunInterruptResumeCase(plain, DirtyMovies(120, 23, 9), "plain_kernels");
}

TEST_F(CheckpointDetectorTest, RunOptionsPathOverridesConfig) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  xml::Document doc = DirtyMovies(40, 5, 5);
  std::string ckpt = TempPath("via_options.ckpt");
  persist::RemoveFile(ckpt);

  RunOptions options;
  options.checkpoint_path = ckpt;
  {
    util::ScopedFault fault("detector.pass", 2);
    auto interrupted = Detector(config.value()).Run(doc, options);
    ASSERT_FALSE(interrupted.ok());
  }
  EXPECT_TRUE(persist::PathExists(ckpt));
  auto resumed = Detector(config.value()).Run(doc, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(persist::PathExists(ckpt));
}

TEST_F(CheckpointDetectorTest, CorruptSnapshotFailsRunWithDataLoss) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  xml::Document doc = DirtyMovies(40, 5, 5);
  std::string ckpt = TempPath("corrupt_run.ckpt");
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    std::string torn("SXNMSNAP\x01\x00\x00\x00 torn tail", 22);
    out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
  }
  Config run_config = config.value();
  run_config.mutable_checkpoint().path = ckpt;
  auto result = Detector(run_config).Run(doc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
      << result.status().ToString();
  persist::RemoveFile(ckpt);
}

TEST_F(CheckpointDetectorTest, MismatchedDocumentRefusesResume) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config run_config = config.value();
  std::string ckpt = TempPath("mismatch_doc.ckpt");
  persist::RemoveFile(ckpt);
  run_config.mutable_checkpoint().path = ckpt;

  xml::Document doc = DirtyMovies(40, 5, 5);
  {
    util::ScopedFault fault("detector.pass", 2);
    auto interrupted = Detector(run_config).Run(doc);
    ASSERT_FALSE(interrupted.ok());
  }
  ASSERT_TRUE(persist::PathExists(ckpt));

  xml::Document other = DirtyMovies(40, 6, 5);  // different data seed
  auto refused = Detector(run_config).Run(other);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  persist::RemoveFile(ckpt);
}

TEST_F(CheckpointDetectorTest, SnapshotWriteFailureFailsTheRun) {
  // A checkpointed run that cannot make its state durable must say so —
  // carrying on silently would break the crash contract the user asked
  // for.
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config run_config = config.value();
  std::string ckpt = TempPath("write_fail.ckpt");
  persist::RemoveFile(ckpt);
  run_config.mutable_checkpoint().path = ckpt;
  xml::Document doc = DirtyMovies(40, 5, 5);

  util::ScopedFault fault("persist.write");
  auto result = Detector(run_config).Run(doc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  persist::RemoveFile(ckpt);
  persist::RemoveFile(ckpt + ".tmp");
}

TEST_F(CheckpointDetectorTest, CompletedRunRemovesSnapshotAndPerturbsNothing) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  xml::Document doc = DirtyMovies(60, 8, 2);
  auto plain = Detector(config.value()).Run(doc);
  ASSERT_TRUE(plain.ok());

  Config ckpt_config = config.value();
  std::string ckpt = TempPath("complete_clean.ckpt");
  persist::RemoveFile(ckpt);
  ckpt_config.mutable_checkpoint().path = ckpt;
  auto checkpointed = Detector(ckpt_config).Run(doc);
  ASSERT_TRUE(checkpointed.ok());
  EXPECT_FALSE(persist::PathExists(ckpt));
  ExpectIdenticalResults(plain.value(), checkpointed.value());
}

TEST_F(CheckpointDetectorTest, ConfigXmlCheckpointRoundTrips) {
  auto parsed = ConfigFromXmlString(R"xml(
<sxnm-config>
  <checkpoint path="run.ckpt" every-pass="false"/>
  <candidate name="movie" path="db/movies/movie" window="4">
    <paths><path id="1" rel="title/text()"/></paths>
    <od><entry pid="1"/></od>
    <keys><key><part pid="1" pattern="K1-K5"/></key></keys>
  </candidate>
</sxnm-config>
)xml");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->checkpoint().path, "run.ckpt");
  EXPECT_FALSE(parsed->checkpoint().every_pass);

  std::string serialized = ConfigToXmlString(parsed.value());
  auto round = ConfigFromXmlString(serialized);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->checkpoint().path, "run.ckpt");
  EXPECT_FALSE(round->checkpoint().every_pass);
}

}  // namespace
}  // namespace sxnm::core
