#include "sxnm/cluster_set.h"

#include <gtest/gtest.h>

namespace sxnm::core {
namespace {

TEST(ClusterSetTest, SingletonsPartition) {
  ClusterSet cs = ClusterSet::Singletons(4);
  EXPECT_EQ(cs.num_instances(), 4u);
  EXPECT_EQ(cs.num_clusters(), 4u);
  EXPECT_EQ(cs.NumDuplicatePairs(), 0u);
  EXPECT_TRUE(cs.NonTrivialClusters().empty());
  // Distinct cids.
  EXPECT_NE(cs.cid(0), cs.cid(1));
}

TEST(ClusterSetTest, FromClustersFillsSingletons) {
  ClusterSet cs = ClusterSet::FromClusters({{1, 3}}, 5);
  EXPECT_EQ(cs.num_instances(), 5u);
  EXPECT_EQ(cs.num_clusters(), 4u);  // {1,3}, {0}, {2}, {4}
  EXPECT_EQ(cs.cid(1), cs.cid(3));
  EXPECT_NE(cs.cid(0), cs.cid(1));
  EXPECT_NE(cs.cid(0), cs.cid(2));
}

TEST(ClusterSetTest, CidMatchesClusterIndex) {
  ClusterSet cs = ClusterSet::FromClusters({{0, 2}, {1, 4}}, 5);
  for (size_t c = 0; c < cs.clusters().size(); ++c) {
    for (size_t member : cs.clusters()[c]) {
      EXPECT_EQ(cs.cid(member), static_cast<int>(c));
    }
  }
}

TEST(ClusterSetTest, MembersSortedWithinCluster) {
  ClusterSet cs = ClusterSet::FromClusters({{4, 1, 2}}, 5);
  EXPECT_EQ(cs.clusters()[0], (std::vector<size_t>{1, 2, 4}));
}

TEST(ClusterSetTest, DuplicatePairCount) {
  // Cluster of 3 -> 3 pairs; cluster of 2 -> 1 pair.
  ClusterSet cs = ClusterSet::FromClusters({{0, 1, 2}, {3, 4}}, 6);
  EXPECT_EQ(cs.NumDuplicatePairs(), 4u);
  auto pairs = cs.DuplicatePairs();
  EXPECT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs, (std::vector<OrdinalPair>{{0, 1}, {0, 2}, {1, 2}, {3, 4}}));
}

TEST(ClusterSetTest, NonTrivialClustersOnly) {
  ClusterSet cs = ClusterSet::FromClusters({{0, 1}}, 4);
  auto nontrivial = cs.NonTrivialClusters();
  ASSERT_EQ(nontrivial.size(), 1u);
  EXPECT_EQ(nontrivial[0], (std::vector<size_t>{0, 1}));
}

TEST(ClusterSetTest, EmptySet) {
  ClusterSet cs;
  EXPECT_EQ(cs.num_instances(), 0u);
  EXPECT_EQ(cs.num_clusters(), 0u);
  EXPECT_EQ(cs.NumDuplicatePairs(), 0u);
}

TEST(ClusterSetTest, EmptyClustersIgnored) {
  ClusterSet cs = ClusterSet::FromClusters({{}, {0, 1}, {}}, 2);
  EXPECT_EQ(cs.num_clusters(), 1u);
}

TEST(ClusterSetTest, EveryInstanceInExactlyOneCluster) {
  ClusterSet cs = ClusterSet::FromClusters({{2, 5}, {1, 7, 8}}, 10);
  std::vector<int> seen(10, 0);
  for (const auto& cluster : cs.clusters()) {
    for (size_t m : cluster) ++seen[m];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace sxnm::core
