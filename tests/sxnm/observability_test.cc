// Engine observability: the detector's metrics snapshot, per-pass
// DetectionReport, trace export, and — critically — that none of it
// perturbs detection output for any thread count (the parallel tests'
// names contain "Parallel" so the tsan preset exercises them).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "datagen/dirty_gen.h"
#include "datagen/freedb.h"
#include "datagen/movies.h"
#include "sxnm/detector.h"
#include "xml/node.h"

namespace sxnm::core {
namespace {

xml::Document DirtyMovies(size_t num_movies, unsigned data_seed,
                          unsigned dirty_seed) {
  datagen::MovieDataOptions gen;
  gen.num_movies = num_movies;
  gen.seed = data_seed;
  xml::Document clean = datagen::GenerateCleanMovies(gen);
  auto dirty =
      datagen::MakeDirty(clean, datagen::DataSet1DirtyPreset(dirty_seed));
  EXPECT_TRUE(dirty.ok());
  return std::move(dirty).value();
}

TEST(ObservabilityTest, MetricsOffLeavesResultUninstrumented) {
  xml::Document dirty = DirtyMovies(100, 11, 3);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());
  auto result = Detector(config.value()).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->metrics.empty());
  EXPECT_TRUE(result->report.empty());
}

TEST(ObservabilityTest, ReportComparisonsEqualRegistryCounter) {
  xml::Document dirty = DirtyMovies(200, 21, 5);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_FALSE(result->report.empty());
  ASSERT_FALSE(result->metrics.empty());
  // The per-pass report rows and the engine-wide counter describe the
  // same kernel invocations.
  EXPECT_EQ(result->report.TotalComparisons(),
            result->metrics.CounterOr("sw.comparisons"));
  // Unique (merged) comparisons match the result's own accounting.
  EXPECT_EQ(result->metrics.CounterOr("sw.unique_comparisons"),
            result->TotalComparisons());
  EXPECT_EQ(result->metrics.CounterOr("kg.rows"),
            result->Find("movie")->num_instances);
}

TEST(ObservabilityTest, ReportCoversEveryCandidatePass) {
  auto doc = datagen::GenerateDataSet2(80, 17);
  ASSERT_TRUE(doc.ok());
  auto config = datagen::CdConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  auto result = Detector(cfg).Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // One report row per (candidate, key) pair, in bottom-up order.
  size_t expected_rows = 0;
  for (const CandidateResult& cand : result->candidates) {
    expected_rows += cand.gk.num_keys;
  }
  ASSERT_EQ(result->report.rows.size(), expected_rows);
  size_t row = 0;
  for (const CandidateResult& cand : result->candidates) {
    for (size_t k = 0; k < cand.gk.num_keys; ++k, ++row) {
      EXPECT_EQ(result->report.rows[row].candidate, cand.name);
      EXPECT_EQ(result->report.rows[row].key_index, k);
      EXPECT_EQ(result->report.rows[row].num_instances, cand.num_instances);
    }
  }

  std::string table = result->report.ToTable();
  EXPECT_NE(table.find("candidate"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  std::string json = result->report.ToJson();
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
}

TEST(ObservabilityTest, PassStatsAreInternallyConsistent) {
  xml::Document dirty = DirtyMovies(150, 31, 9);
  auto config = datagen::MovieConfig(/*window=*/10);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok());
  for (const DetectionReport::Row& row : result->report.rows) {
    const PassStats& s = row.stats;
    EXPECT_EQ(s.pairs_windowed, s.comparisons + s.prepass_skips);
    EXPECT_LE(s.hits, s.comparisons);
    EXPECT_LE(s.ed_bailouts, s.comparisons);
    EXPECT_LE(s.desc_invocations, s.comparisons);
    EXPECT_LE(s.desc_short_circuits, s.comparisons);
    // A cache hit is a pair classification without an owned computation.
    EXPECT_LE(s.verdict_cache_hits, s.comparisons);
    EXPECT_GE(s.wall_seconds, 0.0);
  }
}

TEST(ObservabilityTest, MetricsDoNotPerturbParallelDetection) {
  // Determinism across metrics on/off and every thread count: the
  // observability layer must be write-only.
  xml::Document dirty = DirtyMovies(150, 41, 7);
  auto config = datagen::MovieConfig(/*window=*/8);
  ASSERT_TRUE(config.ok());

  auto baseline = Detector(config.value()).Run(dirty);
  ASSERT_TRUE(baseline.ok());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    Config cfg = config.value();
    cfg.set_num_threads(threads);
    cfg.mutable_observability().metrics = true;
    auto instrumented = Detector(cfg).Run(dirty);
    ASSERT_TRUE(instrumented.ok());
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ASSERT_EQ(instrumented->candidates.size(), baseline->candidates.size());
    for (size_t i = 0; i < baseline->candidates.size(); ++i) {
      EXPECT_EQ(instrumented->candidates[i].duplicate_pairs,
                baseline->candidates[i].duplicate_pairs);
      EXPECT_EQ(instrumented->candidates[i].comparisons,
                baseline->candidates[i].comparisons);
      EXPECT_EQ(instrumented->candidates[i].clusters.clusters(),
                baseline->candidates[i].clusters.clusters());
    }
    // Counters are scheduling-independent too: kernel invocation totals
    // depend only on the pass structure, never on thread interleaving.
    EXPECT_EQ(instrumented->metrics.CounterOr("sw.comparisons"),
              instrumented->report.TotalComparisons());
  }
}

TEST(ObservabilityTest, ParallelRunsProduceIdenticalCounters) {
  xml::Document dirty = DirtyMovies(120, 51, 2);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config serial_cfg = config.value();
  serial_cfg.mutable_observability().metrics = true;
  auto serial = Detector(serial_cfg).Run(dirty);
  ASSERT_TRUE(serial.ok());

  Config parallel_cfg = serial_cfg;
  parallel_cfg.set_num_threads(4);
  auto parallel = Detector(parallel_cfg).Run(dirty);
  ASSERT_TRUE(parallel.ok());

  // The cache/kernel counters are scheduling-independent by design: each
  // unique pair is computed by exactly one owner regardless of which pass
  // or thread wins the claim, so the totals match the serial run's.
  for (const char* name :
       {"sw.pairs_windowed", "sw.comparisons", "sw.hits", "sw.ed_bailouts",
        "sw.desc_jaccard", "sw.desc_short_circuits", "sw.verdict_cache_hits",
        "sw.interned_equal", "text.myers_words", "sw.unique_comparisons",
        "sw.unique_duplicates", "kg.rows", "kg.od_pool_strings",
        "kg.od_pool_bytes", "tc.pairs", "tc.union_ops", "tc.clusters"}) {
    EXPECT_EQ(serial->metrics.CounterOr(name),
              parallel->metrics.CounterOr(name))
        << name;
  }
}

TEST(ObservabilityTest, TraceFileIsWrittenAndLooksLikeChromeTrace) {
  xml::Document dirty = DirtyMovies(60, 61, 1);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  std::string path = ::testing::TempDir() + "/sxnm_obs_trace.json";
  cfg.mutable_observability().trace_path = path;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string& trace = content.str();
  EXPECT_EQ(trace.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(trace.find("\"detect\""), std::string::npos);
  EXPECT_NE(trace.find("\"key_generation\""), std::string::npos);
  EXPECT_NE(trace.find("movie/pass1"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObservabilityTest, ReportFileIsWritten) {
  xml::Document dirty = DirtyMovies(60, 71, 1);
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().metrics = true;
  std::string path = ::testing::TempDir() + "/sxnm_obs_report.json";
  cfg.mutable_observability().report_path = path;
  auto result = Detector(cfg).Run(dirty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"candidate\": \"movie\""),
            std::string::npos);
}

TEST(ObservabilityTest, ReportPathWithoutMetricsFailsValidation) {
  auto config = datagen::MovieConfig(/*window=*/6);
  ASSERT_TRUE(config.ok());
  Config cfg = config.value();
  cfg.mutable_observability().report_path = "/tmp/never_written.json";
  auto status = cfg.Validate();
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace sxnm::core
