#include "sxnm/detector.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace sxnm::core {
namespace {

constexpr const char* kMovies = R"(
<db>
  <movies>
    <movie year="1999"><title>The Matrix</title></movie>
    <movie year="1999"><title>The Matrxi</title></movie>
    <movie year="1998"><title>Mask of Zorro</title></movie>
    <movie year="2001"><title>Ocean Storm</title></movie>
  </movies>
</db>
)";

Config MovieConfig(size_t window = 4, double threshold = 0.8) {
  Config config;
  auto movie = CandidateBuilder("movie", "db/movies/movie")
                   .Path(1, "title/text()")
                   .Path(2, "@year")
                   .Od(1, 0.8)
                   .Od(2, 0.2, "numeric:5")
                   .Key({{1, "K1-K5"}, {2, "D3,D4"}})
                   .Key({{2, "D3,D4"}, {1, "K1,K2"}})
                   .Window(window)
                   .OdThreshold(threshold)
                   .Build();
  EXPECT_TRUE(movie.ok()) << movie.status().ToString();
  EXPECT_TRUE(config.AddCandidate(std::move(movie).value()).ok());
  return config;
}

TEST(DetectorTest, FindsSimilarMovies) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const CandidateResult* movie = result->Find("movie");
  ASSERT_NE(movie, nullptr);
  EXPECT_EQ(movie->num_instances, 4u);
  ASSERT_EQ(movie->duplicate_pairs.size(), 1u);
  EXPECT_EQ(movie->duplicate_pairs[0], (OrdinalPair{0, 1}));
  EXPECT_EQ(movie->clusters.NonTrivialClusters().size(), 1u);
  EXPECT_GT(movie->comparisons, 0u);
}

TEST(DetectorTest, EidPairsMatchOrdinalPairs) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  const CandidateResult* movie = result->Find("movie");
  ASSERT_EQ(movie->duplicate_eid_pairs.size(),
            movie->duplicate_pairs.size());
  for (size_t i = 0; i < movie->duplicate_pairs.size(); ++i) {
    auto [a, b] = movie->duplicate_pairs[i];
    auto [ea, eb] = movie->duplicate_eid_pairs[i];
    EXPECT_EQ(movie->gk.rows[a].eid, ea);
    EXPECT_EQ(movie->gk.rows[b].eid, eb);
    EXPECT_EQ(doc->ElementById(ea)->name(), "movie");
  }
}

TEST(DetectorTest, PhaseTimersPopulated) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->KeyGenerationSeconds(), 0.0);
  EXPECT_GE(result->SlidingWindowSeconds(), 0.0);
  EXPECT_GE(result->TransitiveClosureSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(result->DuplicateDetectionSeconds(),
                   result->SlidingWindowSeconds() +
                       result->TransitiveClosureSeconds());
}

TEST(DetectorTest, InvalidConfigRejectedAtRun) {
  Config config;  // empty
  Detector detector(config);
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(detector.Run(doc.value()).ok());
}

TEST(DetectorTest, HighThresholdFindsNothing) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig(4, 1.0));
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Find("movie")->duplicate_pairs.empty());
}

TEST(DetectorTest, ZeroThresholdMergesWindowedPairs) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig(4, 0.0));
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  const CandidateResult* movie = result->Find("movie");
  // Window 4 over 4 instances compares all pairs; threshold 0 accepts all.
  EXPECT_EQ(movie->duplicate_pairs.size(), 6u);
  EXPECT_EQ(movie->clusters.num_clusters(), 1u);
}

TEST(DetectorTest, BottomUpDescendantsHelpParents) {
  // Two books whose titles differ beyond the OD threshold but whose
  // authors coincide; desc-average mode pulls them over the line.
  constexpr const char* kBooks = R"(
<lib>
  <book><name>Completely Different A</name>
    <authors><author>Jane Q Doe</author><author>Max Power</author></authors>
  </book>
  <book><name>Unrelated Title Zq</name>
    <authors><author>Jane Q Doe</author><author>Max Power</author></authors>
  </book>
</lib>
)";
  auto doc = xml::Parse(kBooks);
  ASSERT_TRUE(doc.ok());

  Config config;
  auto author = CandidateBuilder("author", "lib/book/authors/author")
                    .Path(1, "text()")
                    .Od(1, 1.0)
                    .Key({{1, "K1-K4"}})
                    .Window(4)
                    .OdThreshold(0.9)
                    .Build();
  ASSERT_TRUE(author.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(author).value()).ok());

  auto book = CandidateBuilder("book", "lib/book")
                  .Path(1, "name/text()")
                  .Od(1, 1.0)
                  .Key({{1, "K1-K4"}})
                  .Window(4)
                  .OdThreshold(0.6)
                  .Mode(CombineMode::kAverage)
                  .Build();
  ASSERT_TRUE(book.ok());
  ASSERT_TRUE(config.AddCandidate(std::move(book).value()).ok());

  Detector detector(config);
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Authors deduplicate (identical names).
  const CandidateResult* authors = result->Find("author");
  ASSERT_NE(authors, nullptr);
  EXPECT_EQ(authors->clusters.NonTrivialClusters().size(), 2u);

  // Books: OD sim is low, but desc sim = 1.0 lifts the average over 0.6.
  const CandidateResult* books = result->Find("book");
  ASSERT_NE(books, nullptr);
  EXPECT_EQ(books->duplicate_pairs.size(), 1u)
      << "shared author clusters should make the books duplicates";

  // Control: with kOdOnly the same books do not match.
  Config od_only = config;
  od_only.Find("book")->classifier.mode = CombineMode::kOdOnly;
  auto control = Detector(od_only).Run(doc.value());
  ASSERT_TRUE(control.ok());
  EXPECT_TRUE(control->Find("book")->duplicate_pairs.empty());
}

TEST(DetectorTest, ProcessingOrderChildrenFirst) {
  constexpr const char* kNested = R"(
<db><outer><inner>x</inner></outer><outer><inner>y</inner></outer></db>
)";
  auto doc = xml::Parse(kNested);
  ASSERT_TRUE(doc.ok());
  Config config;
  ASSERT_TRUE(config
                  .AddCandidate(CandidateBuilder("outer", "db/outer")
                                    .Path(1, "inner/text()")
                                    .Od(1, 1.0)
                                    .Key({{1, "C1"}})
                                    .Build()
                                    .value())
                  .ok());
  ASSERT_TRUE(config
                  .AddCandidate(CandidateBuilder("inner", "db/outer/inner")
                                    .Path(1, "text()")
                                    .Od(1, 1.0)
                                    .Key({{1, "C1"}})
                                    .Build()
                                    .value())
                  .ok());
  Detector detector(config);
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  // Results listed in processing order: inner before outer.
  ASSERT_EQ(result->candidates.size(), 2u);
  EXPECT_EQ(result->candidates[0].name, "inner");
  EXPECT_EQ(result->candidates[1].name, "outer");
}

TEST(DetectorTest, ExactOdPrepassLinksIdenticalValues) {
  // Ten identical leaf values, far apart in a window of 2 thanks to
  // interleaving: without the prepass the window misses most pairs.
  std::string body;
  for (int i = 0; i < 10; ++i) {
    body += "<item><v>same value</v></item>";
    body += "<item><v>filler" + std::to_string(i) + "</v></item>";
  }
  auto doc = xml::Parse("<db>" + body + "</db>");
  ASSERT_TRUE(doc.ok());

  auto make_config = [](bool prepass) {
    Config config;
    EXPECT_TRUE(config
                    .AddCandidate(CandidateBuilder("item", "db/item")
                                      .Path(1, "v/text()")
                                      .Od(1, 1.0)
                                      .Key({{1, "C1-C4"}})
                                      .Window(2)
                                      .OdThreshold(0.95)
                                      .ExactOdPrepass(prepass)
                                      .Build()
                                      .value())
                    .ok());
    return config;
  };

  auto with = Detector(make_config(true)).Run(doc.value());
  ASSERT_TRUE(with.ok());
  auto without = Detector(make_config(false)).Run(doc.value());
  ASSERT_TRUE(without.ok());

  size_t biggest_with = 0, biggest_without = 0;
  for (const auto& c : with->Find("item")->clusters.clusters()) {
    biggest_with = std::max(biggest_with, c.size());
  }
  for (const auto& c : without->Find("item")->clusters.clusters()) {
    biggest_without = std::max(biggest_without, c.size());
  }
  EXPECT_EQ(biggest_with, 10u) << "prepass links all identical values";
  EXPECT_GE(biggest_with, biggest_without);
}

TEST(DetectorTest, EmptyDocumentNoInstances) {
  auto doc = xml::Parse("<db><movies/></db>");
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("movie")->num_instances, 0u);
  EXPECT_EQ(result->Find("movie")->comparisons, 0u);
}

TEST(DetectorTest, WindowLargerThanInstances) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig(/*window=*/100));
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  // Degenerates to all-pairs: C(4,2) = 6 comparisons.
  EXPECT_EQ(result->Find("movie")->comparisons, 6u);
}

TEST(DetectorTest, FindMissingCandidateReturnsNull) {
  auto doc = xml::Parse(kMovies);
  ASSERT_TRUE(doc.ok());
  Detector detector(MovieConfig());
  auto result = detector.Run(doc.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Find("nope"), nullptr);
}

}  // namespace
}  // namespace sxnm::core
